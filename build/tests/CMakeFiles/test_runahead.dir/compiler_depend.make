# Empty compiler generated dependencies file for test_runahead.
# This may be replaced when dependencies are built.
