file(REMOVE_RECURSE
  "CMakeFiles/test_runahead.dir/runahead/runahead_test.cc.o"
  "CMakeFiles/test_runahead.dir/runahead/runahead_test.cc.o.d"
  "test_runahead"
  "test_runahead.pdb"
  "test_runahead[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
