file(REMOVE_RECURSE
  "CMakeFiles/mlp_structure.dir/mlp_structure.cpp.o"
  "CMakeFiles/mlp_structure.dir/mlp_structure.cpp.o.d"
  "mlp_structure"
  "mlp_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
