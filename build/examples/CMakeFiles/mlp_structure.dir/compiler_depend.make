# Empty compiler generated dependencies file for mlp_structure.
# This may be replaced when dependencies are built.
