file(REMOVE_RECURSE
  "CMakeFiles/memory_vs_compute.dir/memory_vs_compute.cpp.o"
  "CMakeFiles/memory_vs_compute.dir/memory_vs_compute.cpp.o.d"
  "memory_vs_compute"
  "memory_vs_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_vs_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
