# Empty compiler generated dependencies file for memory_vs_compute.
# This may be replaced when dependencies are built.
