# Empty compiler generated dependencies file for level_trace.
# This may be replaced when dependencies are built.
