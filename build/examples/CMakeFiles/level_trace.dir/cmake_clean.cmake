file(REMOVE_RECURSE
  "CMakeFiles/level_trace.dir/level_trace.cpp.o"
  "CMakeFiles/level_trace.dir/level_trace.cpp.o.d"
  "level_trace"
  "level_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/level_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
