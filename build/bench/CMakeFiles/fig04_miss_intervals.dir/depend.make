# Empty dependencies file for fig04_miss_intervals.
# This may be replaced when dependencies are built.
