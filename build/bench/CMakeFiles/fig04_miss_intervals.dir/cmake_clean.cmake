file(REMOVE_RECURSE
  "CMakeFiles/fig04_miss_intervals.dir/fig04_miss_intervals.cc.o"
  "CMakeFiles/fig04_miss_intervals.dir/fig04_miss_intervals.cc.o.d"
  "fig04_miss_intervals"
  "fig04_miss_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_miss_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
