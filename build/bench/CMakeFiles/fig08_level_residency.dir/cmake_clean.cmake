file(REMOVE_RECURSE
  "CMakeFiles/fig08_level_residency.dir/fig08_level_residency.cc.o"
  "CMakeFiles/fig08_level_residency.dir/fig08_level_residency.cc.o.d"
  "fig08_level_residency"
  "fig08_level_residency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_level_residency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
