# Empty dependencies file for fig08_level_residency.
# This may be replaced when dependencies are built.
