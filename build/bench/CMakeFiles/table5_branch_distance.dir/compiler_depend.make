# Empty compiler generated dependencies file for table5_branch_distance.
# This may be replaced when dependencies are built.
