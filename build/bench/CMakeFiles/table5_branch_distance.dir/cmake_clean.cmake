file(REMOVE_RECURSE
  "CMakeFiles/table5_branch_distance.dir/table5_branch_distance.cc.o"
  "CMakeFiles/table5_branch_distance.dir/table5_branch_distance.cc.o.d"
  "table5_branch_distance"
  "table5_branch_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_branch_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
