# Empty dependencies file for fig11_pollution.
# This may be replaced when dependencies are built.
