file(REMOVE_RECURSE
  "CMakeFiles/fig11_pollution.dir/fig11_pollution.cc.o"
  "CMakeFiles/fig11_pollution.dir/fig11_pollution.cc.o.d"
  "fig11_pollution"
  "fig11_pollution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pollution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
