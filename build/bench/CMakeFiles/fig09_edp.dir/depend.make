# Empty dependencies file for fig09_edp.
# This may be replaced when dependencies are built.
