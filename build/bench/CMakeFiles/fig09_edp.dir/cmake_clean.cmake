file(REMOVE_RECURSE
  "CMakeFiles/fig09_edp.dir/fig09_edp.cc.o"
  "CMakeFiles/fig09_edp.dir/fig09_edp.cc.o.d"
  "fig09_edp"
  "fig09_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
