# Empty compiler generated dependencies file for abl_pf_kind.
# This may be replaced when dependencies are built.
