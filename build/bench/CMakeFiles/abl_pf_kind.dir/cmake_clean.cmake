file(REMOVE_RECURSE
  "CMakeFiles/abl_pf_kind.dir/abl_pf_kind.cc.o"
  "CMakeFiles/abl_pf_kind.dir/abl_pf_kind.cc.o.d"
  "abl_pf_kind"
  "abl_pf_kind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pf_kind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
