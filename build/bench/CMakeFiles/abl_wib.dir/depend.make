# Empty dependencies file for abl_wib.
# This may be replaced when dependencies are built.
