file(REMOVE_RECURSE
  "CMakeFiles/abl_wib.dir/abl_wib.cc.o"
  "CMakeFiles/abl_wib.dir/abl_wib.cc.o.d"
  "abl_wib"
  "abl_wib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_wib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
