# Empty compiler generated dependencies file for abl_memlat.
# This may be replaced when dependencies are built.
