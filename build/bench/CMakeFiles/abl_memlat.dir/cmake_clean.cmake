file(REMOVE_RECURSE
  "CMakeFiles/abl_memlat.dir/abl_memlat.cc.o"
  "CMakeFiles/abl_memlat.dir/abl_memlat.cc.o.d"
  "abl_memlat"
  "abl_memlat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_memlat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
