file(REMOVE_RECURSE
  "CMakeFiles/fig10_bigl2.dir/fig10_bigl2.cc.o"
  "CMakeFiles/fig10_bigl2.dir/fig10_bigl2.cc.o.d"
  "fig10_bigl2"
  "fig10_bigl2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bigl2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
