# Empty dependencies file for fig10_bigl2.
# This may be replaced when dependencies are built.
