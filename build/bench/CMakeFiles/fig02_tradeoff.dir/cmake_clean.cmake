file(REMOVE_RECURSE
  "CMakeFiles/fig02_tradeoff.dir/fig02_tradeoff.cc.o"
  "CMakeFiles/fig02_tradeoff.dir/fig02_tradeoff.cc.o.d"
  "fig02_tradeoff"
  "fig02_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
