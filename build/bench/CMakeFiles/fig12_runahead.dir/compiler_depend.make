# Empty compiler generated dependencies file for fig12_runahead.
# This may be replaced when dependencies are built.
