file(REMOVE_RECURSE
  "CMakeFiles/fig12_runahead.dir/fig12_runahead.cc.o"
  "CMakeFiles/fig12_runahead.dir/fig12_runahead.cc.o.d"
  "fig12_runahead"
  "fig12_runahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_runahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
