file(REMOVE_RECURSE
  "CMakeFiles/fig06_level_trace.dir/fig06_level_trace.cc.o"
  "CMakeFiles/fig06_level_trace.dir/fig06_level_trace.cc.o.d"
  "fig06_level_trace"
  "fig06_level_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_level_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
