# Empty dependencies file for abl_transition_penalty.
# This may be replaced when dependencies are built.
