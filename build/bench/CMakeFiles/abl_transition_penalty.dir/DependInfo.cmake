
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_transition_penalty.cc" "bench/CMakeFiles/abl_transition_penalty.dir/abl_transition_penalty.cc.o" "gcc" "bench/CMakeFiles/abl_transition_penalty.dir/abl_transition_penalty.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlpwin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mlpwin_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/mlpwin_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mlpwin_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/mlpwin_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/mlpwin_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/resize/CMakeFiles/mlpwin_resize.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mlpwin_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mlpwin_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlpwin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
