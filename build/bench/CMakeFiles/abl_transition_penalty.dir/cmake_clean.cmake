file(REMOVE_RECURSE
  "CMakeFiles/abl_transition_penalty.dir/abl_transition_penalty.cc.o"
  "CMakeFiles/abl_transition_penalty.dir/abl_transition_penalty.cc.o.d"
  "abl_transition_penalty"
  "abl_transition_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_transition_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
