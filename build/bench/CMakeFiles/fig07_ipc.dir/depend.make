# Empty dependencies file for fig07_ipc.
# This may be replaced when dependencies are built.
