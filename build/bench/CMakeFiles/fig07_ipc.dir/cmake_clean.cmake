file(REMOVE_RECURSE
  "CMakeFiles/fig07_ipc.dir/fig07_ipc.cc.o"
  "CMakeFiles/fig07_ipc.dir/fig07_ipc.cc.o.d"
  "fig07_ipc"
  "fig07_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
