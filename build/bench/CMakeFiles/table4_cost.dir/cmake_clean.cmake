file(REMOVE_RECURSE
  "CMakeFiles/table4_cost.dir/table4_cost.cc.o"
  "CMakeFiles/table4_cost.dir/table4_cost.cc.o.d"
  "table4_cost"
  "table4_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
