# Empty dependencies file for table4_cost.
# This may be replaced when dependencies are built.
