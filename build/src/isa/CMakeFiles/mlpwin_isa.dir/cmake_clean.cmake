file(REMOVE_RECURSE
  "CMakeFiles/mlpwin_isa.dir/assembler.cc.o"
  "CMakeFiles/mlpwin_isa.dir/assembler.cc.o.d"
  "CMakeFiles/mlpwin_isa.dir/isa.cc.o"
  "CMakeFiles/mlpwin_isa.dir/isa.cc.o.d"
  "CMakeFiles/mlpwin_isa.dir/program.cc.o"
  "CMakeFiles/mlpwin_isa.dir/program.cc.o.d"
  "libmlpwin_isa.a"
  "libmlpwin_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpwin_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
