file(REMOVE_RECURSE
  "libmlpwin_isa.a"
)
