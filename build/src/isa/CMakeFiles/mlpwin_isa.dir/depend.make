# Empty dependencies file for mlpwin_isa.
# This may be replaced when dependencies are built.
