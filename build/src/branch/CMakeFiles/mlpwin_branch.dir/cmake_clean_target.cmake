file(REMOVE_RECURSE
  "libmlpwin_branch.a"
)
