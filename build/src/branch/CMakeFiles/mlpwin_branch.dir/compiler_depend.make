# Empty compiler generated dependencies file for mlpwin_branch.
# This may be replaced when dependencies are built.
