file(REMOVE_RECURSE
  "CMakeFiles/mlpwin_branch.dir/predictor.cc.o"
  "CMakeFiles/mlpwin_branch.dir/predictor.cc.o.d"
  "libmlpwin_branch.a"
  "libmlpwin_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpwin_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
