file(REMOVE_RECURSE
  "libmlpwin_energy.a"
)
