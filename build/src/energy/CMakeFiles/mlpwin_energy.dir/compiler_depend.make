# Empty compiler generated dependencies file for mlpwin_energy.
# This may be replaced when dependencies are built.
