file(REMOVE_RECURSE
  "CMakeFiles/mlpwin_energy.dir/area_model.cc.o"
  "CMakeFiles/mlpwin_energy.dir/area_model.cc.o.d"
  "CMakeFiles/mlpwin_energy.dir/energy_model.cc.o"
  "CMakeFiles/mlpwin_energy.dir/energy_model.cc.o.d"
  "libmlpwin_energy.a"
  "libmlpwin_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpwin_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
