file(REMOVE_RECURSE
  "libmlpwin_sim.a"
)
