file(REMOVE_RECURSE
  "CMakeFiles/mlpwin_sim.dir/simulator.cc.o"
  "CMakeFiles/mlpwin_sim.dir/simulator.cc.o.d"
  "libmlpwin_sim.a"
  "libmlpwin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpwin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
