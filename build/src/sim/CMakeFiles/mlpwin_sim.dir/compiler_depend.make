# Empty compiler generated dependencies file for mlpwin_sim.
# This may be replaced when dependencies are built.
