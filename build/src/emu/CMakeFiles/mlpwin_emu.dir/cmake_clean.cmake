file(REMOVE_RECURSE
  "CMakeFiles/mlpwin_emu.dir/emulator.cc.o"
  "CMakeFiles/mlpwin_emu.dir/emulator.cc.o.d"
  "libmlpwin_emu.a"
  "libmlpwin_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpwin_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
