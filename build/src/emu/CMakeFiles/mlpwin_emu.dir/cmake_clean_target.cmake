file(REMOVE_RECURSE
  "libmlpwin_emu.a"
)
