# Empty compiler generated dependencies file for mlpwin_emu.
# This may be replaced when dependencies are built.
