file(REMOVE_RECURSE
  "libmlpwin_mem.a"
)
