file(REMOVE_RECURSE
  "CMakeFiles/mlpwin_mem.dir/cache.cc.o"
  "CMakeFiles/mlpwin_mem.dir/cache.cc.o.d"
  "CMakeFiles/mlpwin_mem.dir/dram.cc.o"
  "CMakeFiles/mlpwin_mem.dir/dram.cc.o.d"
  "CMakeFiles/mlpwin_mem.dir/hierarchy.cc.o"
  "CMakeFiles/mlpwin_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/mlpwin_mem.dir/main_memory.cc.o"
  "CMakeFiles/mlpwin_mem.dir/main_memory.cc.o.d"
  "CMakeFiles/mlpwin_mem.dir/prefetcher.cc.o"
  "CMakeFiles/mlpwin_mem.dir/prefetcher.cc.o.d"
  "libmlpwin_mem.a"
  "libmlpwin_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpwin_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
