# Empty dependencies file for mlpwin_mem.
# This may be replaced when dependencies are built.
