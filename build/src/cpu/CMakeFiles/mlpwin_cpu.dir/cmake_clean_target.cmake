file(REMOVE_RECURSE
  "libmlpwin_cpu.a"
)
