# Empty dependencies file for mlpwin_cpu.
# This may be replaced when dependencies are built.
