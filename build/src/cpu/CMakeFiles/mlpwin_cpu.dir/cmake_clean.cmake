file(REMOVE_RECURSE
  "CMakeFiles/mlpwin_cpu.dir/core.cc.o"
  "CMakeFiles/mlpwin_cpu.dir/core.cc.o.d"
  "CMakeFiles/mlpwin_cpu.dir/tracer.cc.o"
  "CMakeFiles/mlpwin_cpu.dir/tracer.cc.o.d"
  "libmlpwin_cpu.a"
  "libmlpwin_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpwin_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
