# Empty compiler generated dependencies file for mlpwin_workloads.
# This may be replaced when dependencies are built.
