file(REMOVE_RECURSE
  "libmlpwin_workloads.a"
)
