file(REMOVE_RECURSE
  "CMakeFiles/mlpwin_workloads.dir/kernels.cc.o"
  "CMakeFiles/mlpwin_workloads.dir/kernels.cc.o.d"
  "CMakeFiles/mlpwin_workloads.dir/suite.cc.o"
  "CMakeFiles/mlpwin_workloads.dir/suite.cc.o.d"
  "libmlpwin_workloads.a"
  "libmlpwin_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpwin_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
