# Empty dependencies file for mlpwin_resize.
# This may be replaced when dependencies are built.
