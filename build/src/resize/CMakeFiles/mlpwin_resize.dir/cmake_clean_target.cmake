file(REMOVE_RECURSE
  "libmlpwin_resize.a"
)
