file(REMOVE_RECURSE
  "CMakeFiles/mlpwin_resize.dir/controller.cc.o"
  "CMakeFiles/mlpwin_resize.dir/controller.cc.o.d"
  "libmlpwin_resize.a"
  "libmlpwin_resize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpwin_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
