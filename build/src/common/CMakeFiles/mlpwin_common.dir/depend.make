# Empty dependencies file for mlpwin_common.
# This may be replaced when dependencies are built.
