file(REMOVE_RECURSE
  "libmlpwin_common.a"
)
