file(REMOVE_RECURSE
  "CMakeFiles/mlpwin_common.dir/logging.cc.o"
  "CMakeFiles/mlpwin_common.dir/logging.cc.o.d"
  "CMakeFiles/mlpwin_common.dir/stats.cc.o"
  "CMakeFiles/mlpwin_common.dir/stats.cc.o.d"
  "libmlpwin_common.a"
  "libmlpwin_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpwin_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
