# Empty dependencies file for mlpwin.
# This may be replaced when dependencies are built.
