file(REMOVE_RECURSE
  "CMakeFiles/mlpwin.dir/mlpwin_cli.cc.o"
  "CMakeFiles/mlpwin.dir/mlpwin_cli.cc.o.d"
  "mlpwin"
  "mlpwin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpwin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
