/**
 * @file
 * Differential random-program fuzzer.
 *
 * Generates seeded, terminating programs biased toward the paper's
 * hazards (src/isa/fuzz_builder.hh), runs each under every model with
 * the lockstep checker enabled, and requires identical committed
 * instruction streams across all of them. On failure the program is
 * delta-debugged down to a minimal repro and written as a .mlpasm
 * file whose header echoes the seed and the one-line command that
 * reproduces the failure.
 *
 * Usage:
 *   mlpwin_fuzz --count 20                     # seeds 1..20
 *   mlpwin_fuzz --seed 42 --models base,runahead
 *   mlpwin_fuzz --seeds 3,17,99 --out results.jsonl
 *   mlpwin_fuzz --replay repro.mlpasm
 *   mlpwin_fuzz --seed 7 --save-programs corpus/
 *
 * Exit code 0 when every seed passes; 2 on a usage error; 3 when any
 * seed fails (repros written to --repro-dir).
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/differential.hh"
#include "check/minimize.hh"
#include "check/mlpasm.hh"
#include "common/parse.hh"
#include "isa/fuzz_builder.hh"
#include "vm/mmu_flags.hh"

using namespace mlpwin;

namespace
{

void
usage()
{
    std::fprintf(stderr,
        "usage: mlpwin_fuzz [options]\n"
        "  --seed N          first seed (default 1)\n"
        "  --count K         number of consecutive seeds (default 20)\n"
        "  --seeds LIST      explicit comma-separated seed list\n"
        "                    (overrides --seed/--count)\n"
        "  --models LIST     comma list of models to compare, e.g.\n"
        "                    base,fixed:3,runahead (default: all)\n"
        "  --insts N         per-model commit budget (default 2M)\n"
        "  --out FILE        append one JSON line per seed\n"
        "  --repro-dir DIR   where to write minimized repros\n"
        "                    (default .)\n"
        "  --save-programs DIR\n"
        "                    also write every generated program as\n"
        "                    DIR/seed<N>.mlpasm (corpus building)\n"
        "  --replay FILE     run one .mlpasm program instead of\n"
        "                    generating (no minimization)\n"
        "  --no-minimize     write failing programs unminimized\n"
        "  --blocks N        idiom blocks per outer iteration\n"
        "  --iters N         outer-loop iterations\n"
        "  --chase-nodes N   pointer-ring nodes (power of two)\n"
        "  --chase-spacing N bytes between ring nodes\n"
        "  --stride-bytes N  stride arena bytes (power of two)\n"
        "  --small-bytes N   hot arena bytes\n"
        "%s",
        vm::vmFlagsUsage());
}

std::uint64_t
numericFlag(const std::string &flag, const char *value)
{
    std::uint64_t v = 0;
    if (!parseU64(value, v)) {
        std::fprintf(stderr, "%s: not a number: '%s'\n", flag.c_str(),
                     value);
        std::exit(2);
    }
    return v;
}

std::string
jsonEscapeMin(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

/** One JSONL record per seed; the seed always leads the line. */
void
writeResultLine(std::ostream &os, std::uint64_t seed,
                const DiffOutcome &out, const std::string &reproPath,
                std::uint64_t minimizeTested)
{
    os << "{\"seed\":" << seed << ",\"status\":\""
       << diffStatusName(out.status) << '"';
    if (!out.models.empty() && out.status == DiffStatus::Pass) {
        os << ",\"commits\":" << out.models.front().commits
           << ",\"streamHash\":\"0x" << std::hex
           << out.models.front().streamHash << std::dec << '"';
    }
    if (!out.detail.empty())
        os << ",\"detail\":\"" << jsonEscapeMin(out.detail) << '"';
    if (!reproPath.empty())
        os << ",\"repro\":\"" << jsonEscapeMin(reproPath) << '"';
    if (minimizeTested)
        os << ",\"minimizeTested\":" << minimizeTested;
    os << ",\"models\":[";
    for (std::size_t i = 0; i < out.models.size(); ++i) {
        const DiffModelResult &m = out.models[i];
        if (i)
            os << ',';
        os << "{\"label\":\"" << m.label << "\",\"ran\":"
           << (m.ran ? "true" : "false")
           << ",\"halted\":" << (m.halted ? "true" : "false")
           << ",\"commits\":" << m.commits << ",\"cycles\":"
           << m.cycles;
        if (!m.error.empty())
            os << ",\"error\":\"" << jsonEscapeMin(m.error) << '"';
        os << '}';
    }
    os << "]}\n";
}

std::string
paramsComment(std::uint64_t seed, const FuzzParams &p,
              const DiffOutcome &out)
{
    std::ostringstream os;
    os << "seed " << seed << '\n'
       << "status " << diffStatusName(out.status) << ": " << out.detail
       << '\n'
       << "params: blocks=" << p.blocks << " iters=" << p.outerIters
       << " chase-nodes=" << p.chaseNodes
       << " chase-spacing=" << p.chaseSpacing
       << " stride-bytes=" << p.strideBytes
       << " small-bytes=" << p.smallBytes << '\n'
       << "reproduce: mlpwin_fuzz --seed " << seed << " --count 1"
       << " --blocks " << p.blocks << " --iters " << p.outerIters
       << " --chase-nodes " << p.chaseNodes << " --chase-spacing "
       << p.chaseSpacing << " --stride-bytes " << p.strideBytes
       << " --small-bytes " << p.smallBytes << '\n'
       << "or replay: mlpwin_fuzz --replay <this file>";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t first_seed = 1;
    std::uint64_t count = 20;
    std::vector<std::uint64_t> seeds;
    FuzzParams params;
    DifferentialConfig diff;
    std::string out_path;
    std::string repro_dir = ".";
    std::string save_dir;
    std::string replay_path;
    bool minimize = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };

        if (arg == "--seed") {
            first_seed = numericFlag(arg, next());
        } else if (arg == "--count") {
            count = numericFlag(arg, next());
        } else if (arg == "--seeds") {
            std::istringstream is(next());
            std::string tok;
            while (std::getline(is, tok, ',')) {
                if (tok.empty())
                    continue;
                seeds.push_back(numericFlag(arg, tok.c_str()));
            }
        } else if (arg == "--models") {
            std::string err;
            if (!parseDiffModels(next(), diff.models, &err)) {
                std::fprintf(stderr, "--models: %s\n", err.c_str());
                return 2;
            }
        } else if (arg == "--insts") {
            diff.maxInsts = numericFlag(arg, next());
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--repro-dir") {
            repro_dir = next();
        } else if (arg == "--save-programs") {
            save_dir = next();
        } else if (arg == "--replay") {
            replay_path = next();
        } else if (arg == "--no-minimize") {
            minimize = false;
        } else if (arg == "--blocks") {
            params.blocks =
                static_cast<unsigned>(numericFlag(arg, next()));
        } else if (arg == "--iters") {
            params.outerIters = numericFlag(arg, next());
        } else if (arg == "--chase-nodes") {
            params.chaseNodes =
                static_cast<unsigned>(numericFlag(arg, next()));
        } else if (arg == "--chase-spacing") {
            params.chaseSpacing = numericFlag(arg, next());
        } else if (arg == "--stride-bytes") {
            params.strideBytes = numericFlag(arg, next());
        } else if (arg == "--small-bytes") {
            params.smallBytes = numericFlag(arg, next());
        } else if (vm::isVmBoolFlag(arg) || vm::isVmValueFlag(arg)) {
            const char *value =
                vm::isVmValueFlag(arg) ? next() : nullptr;
            std::string err;
            if (!vm::applyVmFlag(arg, value, diff.base.vm, err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return 2;
            }
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    std::ofstream out_file;
    std::ostream *out = nullptr;
    if (!out_path.empty()) {
        out_file.open(out_path, std::ios::app);
        if (!out_file) {
            std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
            return 2;
        }
        out = &out_file;
    }

    // --- replay mode ----------------------------------------------------
    if (!replay_path.empty()) {
        Program prog;
        try {
            prog = loadMlpasm(replay_path);
        } catch (const SimError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
        DiffOutcome o = runDifferential(prog, diff);
        std::printf("%s: %s%s%s\n", replay_path.c_str(),
                    diffStatusName(o.status),
                    o.detail.empty() ? "" : " - ",
                    o.detail.c_str());
        for (const DiffModelResult &m : o.models) {
            if (!m.dumpJson.empty())
                std::fprintf(stderr, "%s dump: %s\n", m.label.c_str(),
                             m.dumpJson.c_str());
        }
        if (out)
            writeResultLine(*out, 0, o, "", 0);
        return o.status == DiffStatus::Pass ? 0 : 3;
    }

    // --- fuzz loop ------------------------------------------------------
    if (seeds.empty()) {
        for (std::uint64_t s = 0; s < count; ++s)
            seeds.push_back(first_seed + s);
    }
    if (!save_dir.empty())
        std::filesystem::create_directories(save_dir);

    unsigned failures = 0;
    for (std::uint64_t seed : seeds) {
        Program prog = generateFuzzProgram(seed, params);
        if (!save_dir.empty()) {
            std::string path =
                save_dir + "/seed" + std::to_string(seed) + ".mlpasm";
            std::ostringstream hdr;
            hdr << "fuzz corpus program, seed " << seed;
            Status s = saveMlpasm(path, prog, hdr.str());
            if (!s.ok())
                std::fprintf(stderr, "warning: %s\n",
                             s.message().c_str());
        }

        DiffOutcome o = runDifferential(prog, diff);
        std::string repro_path;
        MinimizeStats mstats;
        if (o.failed()) {
            ++failures;
            std::fprintf(stderr, "seed %llu FAILED (%s): %s\n",
                         static_cast<unsigned long long>(seed),
                         diffStatusName(o.status), o.detail.c_str());
            for (const DiffModelResult &m : o.models) {
                if (!m.dumpJson.empty())
                    std::fprintf(stderr, "  %s dump: %s\n",
                                 m.label.c_str(), m.dumpJson.c_str());
            }
            Program repro = prog;
            if (minimize) {
                repro = minimizeProgram(
                    prog,
                    [&](const Program &cand) {
                        return runDifferential(cand, diff).failed();
                    },
                    &mstats);
                std::fprintf(
                    stderr,
                    "  minimized to %zu live instructions "
                    "(%llu candidates tested)\n",
                    mstats.remaining,
                    static_cast<unsigned long long>(mstats.tested));
            }
            std::filesystem::create_directories(repro_dir);
            repro_path = repro_dir + "/seed" + std::to_string(seed) +
                         ".mlpasm";
            Status s = saveMlpasm(repro_path, repro,
                                  paramsComment(seed, params, o));
            if (!s.ok()) {
                std::fprintf(stderr, "warning: %s\n",
                             s.message().c_str());
                repro_path.clear();
            } else {
                std::fprintf(stderr, "  repro written to %s\n",
                             repro_path.c_str());
            }
        } else if (o.status == DiffStatus::Budget) {
            std::fprintf(stderr,
                         "seed %llu: budget exhausted (%s) — raise "
                         "--insts or shrink the program params\n",
                         static_cast<unsigned long long>(seed),
                         o.detail.c_str());
        } else {
            std::printf("seed %llu: pass (%llu commits, hash 0x%llx)\n",
                        static_cast<unsigned long long>(seed),
                        static_cast<unsigned long long>(
                            o.models.front().commits),
                        static_cast<unsigned long long>(
                            o.models.front().streamHash));
        }
        if (out)
            writeResultLine(*out, seed, o, repro_path, mstats.tested);
    }

    if (failures) {
        std::fprintf(stderr, "%u of %zu seeds failed\n", failures,
                     seeds.size());
        return 3;
    }
    return 0;
}
