/**
 * @file
 * Isolated batch worker process (exec'd by the supervisor; see
 * src/serve/worker.hh). Not meant to be run by hand: it speaks the
 * length-prefixed frame protocol on --in-fd/--out-fd.
 *
 * Usage (as the supervisor spawns it):
 *   mlpwin_worker --in-fd 3 --out-fd 4 --hb-interval 200 \
 *       [--inject SPEC]
 *
 * The fault-injection spec comes from --inject, falling back to the
 * MLPWIN_FAULT_SPEC environment variable (so CI can arm faults
 * without plumbing flags through every layer).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/parse.hh"
#include "serve/worker.hh"

using namespace mlpwin;

int
main(int argc, char **argv)
{
    serve::WorkerOptions opts;
    std::string inject;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "mlpwin_worker: missing value "
                             "for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        auto numeric = [&](unsigned &out) {
            const char *v = next();
            if (!parseUnsigned(v, out)) {
                std::fprintf(stderr,
                             "mlpwin_worker: %s: not a number: "
                             "'%s'\n",
                             arg.c_str(), v);
                std::exit(2);
            }
        };
        if (arg == "--in-fd") {
            unsigned fd = 0;
            numeric(fd);
            opts.inFd = static_cast<int>(fd);
        } else if (arg == "--out-fd") {
            unsigned fd = 0;
            numeric(fd);
            opts.outFd = static_cast<int>(fd);
        } else if (arg == "--hb-interval") {
            numeric(opts.heartbeatIntervalMs);
        } else if (arg == "--inject") {
            inject = next();
        } else {
            std::fprintf(stderr, "mlpwin_worker: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }

    if (inject.empty())
        if (const char *env = std::getenv("MLPWIN_FAULT_SPEC"))
            inject = env;
    if (!inject.empty()) {
        std::string err;
        if (!serve::parseFaultSpec(inject, opts.faults, &err)) {
            std::fprintf(stderr, "mlpwin_worker: bad fault spec: "
                         "%s\n", err.c_str());
            return 2;
        }
    }

    return serve::workerMain(opts);
}
