/**
 * @file
 * Compare two micro_simspeed BENCH json files and print per-metric
 * deltas, flagging regressions beyond a threshold.
 *
 * Usage:
 *   bench_diff OLD.json NEW.json [--threshold PCT]
 *
 * Throughput metrics (detailed_mips, functional_mips,
 * sampled_speedup, smt_detailed_mips) regress when NEW is slower;
 * the overhead metrics (profiler_overhead_pct,
 * isolate_overhead_pct, cache_miss_overhead_pct) regress when NEW's
 * overhead grows past the threshold (in absolute percentage
 * points). Exit code 0 when no metric regresses, 1 when one does, 2
 * on a usage or parse error.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/parse.hh"

using namespace mlpwin;

namespace
{

struct Metric
{
    const char *key;
    bool higherIsBetter;
};

constexpr Metric kMetrics[] = {
    {"detailed_mips", true},     {"functional_mips", true},
    {"sampled_speedup", true},   {"smt_detailed_mips", true},
    {"profiler_overhead_pct", false},
    {"isolate_overhead_pct", false},
    {"cache_miss_overhead_pct", false},
    {"vm_overhead_pct", false},
};

JsonValue
loadBench(const char *path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(2);
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    try {
        JsonValue v = parseJson(ss.str());
        if (v.kind != JsonValue::Kind::Object)
            throw std::runtime_error("top level is not an object");
        return v;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", path, e.what());
        std::exit(2);
    }
}

std::string
metaField(const JsonValue &v, const char *key)
{
    if (v.hasField("meta") && v.field("meta").hasField(key))
        return v.field("meta").field(key).asString();
    return "-";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<const char *> files;
    double threshold = 10.0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--threshold") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                return 2;
            }
            std::uint64_t pct = 0;
            if (!parseBoundedU64(argv[++i], 0, 1000, pct)) {
                std::fprintf(stderr,
                             "--threshold: expected an integer in "
                             "[0, 1000], got '%s'\n",
                             argv[i]);
                return 2;
            }
            threshold = static_cast<double>(pct);
        } else if (arg == "-h" || arg == "--help") {
            std::fprintf(stderr,
                         "usage: bench_diff OLD.json NEW.json "
                         "[--threshold PCT]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return 2;
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.size() != 2) {
        std::fprintf(stderr,
                     "usage: bench_diff OLD.json NEW.json "
                     "[--threshold PCT]\n");
        return 2;
    }

    JsonValue oldv = loadBench(files[0]);
    JsonValue newv = loadBench(files[1]);

    std::printf("old: %s  (git %s, %s)\n", files[0],
                metaField(oldv, "git_sha").c_str(),
                metaField(oldv, "date").c_str());
    std::printf("new: %s  (git %s, %s)\n", files[1],
                metaField(newv, "git_sha").c_str(),
                metaField(newv, "date").c_str());
    if (metaField(oldv, "config_fingerprint") != "-" &&
        metaField(oldv, "config_fingerprint") !=
            metaField(newv, "config_fingerprint"))
        std::printf("note: config fingerprints differ — the runs "
                    "measured different simulator configurations\n");
    std::printf("%-24s %12s %12s %9s\n", "metric", "old", "new",
                "delta");

    bool regressed = false;
    for (const Metric &m : kMetrics) {
        if (!oldv.hasField(m.key) || !newv.hasField(m.key))
            continue; // pre-meta BENCH files lack the newer metrics
        double a = oldv.field(m.key).asDouble();
        double b = newv.field(m.key).asDouble();
        bool bad;
        double delta;
        if (m.higherIsBetter) {
            delta = a != 0.0 ? (b / a - 1.0) * 100.0 : 0.0;
            bad = delta < -threshold;
        } else {
            // Overhead-style metric: compare in absolute points, so
            // a 0.1% -> 0.4% change doesn't read as a 300% blow-up.
            delta = b - a;
            bad = delta > threshold;
        }
        std::printf("%-24s %12.4f %12.4f %+8.1f%%%s\n", m.key, a, b,
                    delta, bad ? "  REGRESSED" : "");
        regressed |= bad;
    }
    return regressed ? 1 : 0;
}
