/**
 * @file
 * Architectural checkpoint tool: fast-forward a suite workload on the
 * functional emulator and save its complete architectural state, so
 * detailed or sampled runs (mlpwin --ckpt, mlpwin_batch --ckpt-dir)
 * can resume at the checkpointed instruction without re-executing the
 * prefix. Checkpoints are versioned and program-hash-stamped; see
 * sample/checkpoint.hh for the format and version policy.
 *
 * Usage:
 *   mlpwin_ckpt --workload mcf --insts 1000000 --out mcf.ckpt
 *   mlpwin_ckpt --all --insts 1000000 --out-dir ckpts/
 *   mlpwin_ckpt --info mcf.ckpt
 *
 * Exit code 0 on success; 2 on a usage error; 3 on an I/O or
 * checkpoint-format error.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/parse.hh"
#include "common/status.hh"
#include "mem/main_memory.hh"
#include "sample/checkpoint.hh"
#include "sample/fastforward.hh"
#include "workloads/suite.hh"

using namespace mlpwin;

namespace
{

void
usage()
{
    std::fprintf(stderr,
        "usage: mlpwin_ckpt [options]\n"
        "  -w, --workload NAME  workload to checkpoint\n"
        "      --all            checkpoint every suite workload\n"
        "      --insts N        instructions to fast-forward before\n"
        "                       the snapshot (default 1000000)\n"
        "      --iterations N   program-generator outer iterations\n"
        "                       (default 2^40, as the batch driver)\n"
        "      --out FILE       output file (with --workload)\n"
        "      --out-dir DIR    output directory (with --all;\n"
        "                       created if missing); files are\n"
        "                       DIR/<workload>.ckpt\n"
        "      --info FILE      print a checkpoint's header and exit\n"
        "      --list           list suite workloads and exit\n");
}

std::uint64_t
numericFlag(const std::string &flag, const char *value)
{
    std::uint64_t v = 0;
    if (!parseU64(value, v)) {
        std::fprintf(stderr, "%s: not a number: '%s'\n", flag.c_str(),
                     value);
        std::exit(2);
    }
    return v;
}

/** Fast-forward one workload and write its checkpoint. */
void
writeCheckpoint(const WorkloadSpec &spec, std::uint64_t insts,
                std::uint64_t iterations, const std::string &path)
{
    Program prog = spec.make(iterations);
    MainMemory mem;
    mem.loadProgram(prog);
    Emulator emu(mem, prog.entry());
    // No cache/predictor warming: a checkpoint is pure architectural
    // state, and the consumer re-warms microarchitecture per run.
    FastForwarder ff(emu, nullptr, nullptr);
    std::uint64_t done = ff.run(insts);
    if (done < insts)
        std::fprintf(stderr,
                     "%s: halted after %llu of %llu instructions; "
                     "checkpointing the halt state\n",
                     spec.name.c_str(),
                     static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(insts));
    ArchCheckpoint ck =
        ArchCheckpoint::capture(emu, spec.name, programHash(prog));
    ck.saveFile(path);
    std::printf("%-12s %10llu insts  %4zu pages  -> %s\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(ck.instCount()),
                ck.numPages(), path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string out_path;
    std::string out_dir;
    std::string info_path;
    bool all = false;
    std::uint64_t insts = 1000000;
    std::uint64_t iterations = 1ULL << 40;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };

        if (arg == "--list") {
            for (const WorkloadSpec &w : spec2006Suite())
                std::printf("%s\n", w.name.c_str());
            return 0;
        } else if (arg == "-w" || arg == "--workload") {
            workload = next();
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--insts") {
            insts = numericFlag(arg, next());
        } else if (arg == "--iterations") {
            iterations = numericFlag(arg, next());
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--out-dir") {
            out_dir = next();
        } else if (arg == "--info") {
            info_path = next();
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    try {
        if (!info_path.empty()) {
            ArchCheckpoint ck = ArchCheckpoint::loadFile(info_path);
            std::printf("workload      %s\n", ck.workload().c_str());
            std::printf("version       %u\n", ArchCheckpoint::kVersion);
            std::printf("program hash  %016llx\n",
                        static_cast<unsigned long long>(
                            ck.programHash()));
            std::printf("insts         %llu\n",
                        static_cast<unsigned long long>(
                            ck.instCount()));
            std::printf("pc            0x%llx\n",
                        static_cast<unsigned long long>(ck.pc()));
            std::printf("memory pages  %zu (%zu KiB)\n", ck.numPages(),
                        ck.numPages() * MainMemory::kPageBytes / 1024);
            return 0;
        }

        if (all) {
            if (out_dir.empty()) {
                std::fprintf(stderr, "--all requires --out-dir DIR\n");
                return 2;
            }
            std::filesystem::create_directories(out_dir);
            for (const WorkloadSpec &w : spec2006Suite())
                writeCheckpoint(w, insts, iterations,
                                out_dir + "/" + w.name + ".ckpt");
            return 0;
        }

        if (workload.empty() || out_path.empty()) {
            usage();
            return 2;
        }
        const WorkloadSpec *spec = tryFindWorkload(workload);
        if (!spec) {
            std::fprintf(stderr,
                         "unknown workload: %s\nvalid names: %s\n",
                         workload.c_str(),
                         suiteWorkloadNames().c_str());
            return 2;
        }
        writeCheckpoint(*spec, insts, iterations, out_path);
    } catch (const SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 3;
    }
    return 0;
}
