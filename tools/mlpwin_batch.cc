/**
 * @file
 * Parallel batch experiment driver: expand a (workloads x models)
 * run matrix, simulate every cell concurrently across host cores,
 * and emit machine-readable results (JSON Lines and/or CSV) in
 * deterministic submission order — byte-identical for any -j.
 *
 * Fault tolerance: each cell is contained — a wedged core is cut
 * short by the forward-progress watchdog, a crash or timeout is
 * recorded per cell while the rest of the batch completes, transient
 * I/O failures retry with backoff, and every finished cell is
 * checkpointed to <out>.ckpt so an interrupted batch resumes with
 * --resume (final output byte-identical to an uninterrupted run).
 * SIGINT/SIGTERM stop new cells and drain in-flight ones; a second
 * signal aborts in-flight simulations at their next watchdog poll.
 *
 * Usage:
 *   mlpwin_batch --workloads all --models base,resizing -j 8 \
 *       --out results.jsonl
 *   mlpwin_batch --workloads mem --models base,fixed:2,fixed:3 \
 *       --insts 100000 --csv results.csv
 *   mlpwin_batch --workloads all --models base,resizing \
 *       --out results.jsonl --resume   # after an interruption
 *
 * Exit codes: 0 success; 1 internal error; 2 usage error; 3 at least
 * one cell failed or timed out; 4 interrupted (cells skipped).
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cache/result_cache.hh"
#include "common/parse.hh"
#include "exp/experiment.hh"
#include "exp/result_writer.hh"
#include "serve/fault_inject.hh"
#include "serve/supervisor.hh"
#include "vm/mmu_flags.hh"
#include "workloads/suite.hh"

using namespace mlpwin;

namespace
{

/** Signals received so far; the handler only does atomic stores. */
volatile std::sig_atomic_t g_signals = 0;
/** Second signal: hard-abort in-flight simulations. */
std::atomic<bool> g_abort{false};

extern "C" void
onSignal(int)
{
    if (g_signals >= 1)
        g_abort.store(true);
    g_signals = g_signals + 1;
}

void
usage()
{
    std::fprintf(stderr,
        "usage: mlpwin_batch [options]\n"
        "  --list                list suite workloads and exit\n"
        "  --workloads LIST      all | mem | comp | comma list of\n"
        "                        names (default all); an entry may be\n"
        "                        a '+'-separated SMT co-schedule,\n"
        "                        e.g. mcf+gcc (needs --threads)\n"
        "  --threads N           hardware threads per cell, 1-4\n"
        "                        (default 1; >1 requires base model)\n"
        "  --fetch-policy K      rr|icount|predictive (default\n"
        "                        icount)\n"
        "  --partition K         static|shared|mlp (default static)\n"
        "  --models LIST         comma list of model[:level], e.g.\n"
        "                        base,resizing,fixed:3\n"
        "                        (default base,resizing)\n"
        "  -j, --jobs N          worker threads (default: one per\n"
        "                        hardware thread)\n"
        "  --out FILE            JSON Lines output ('-' = stdout;\n"
        "                        default -)\n"
        "  --csv FILE            also write CSV to FILE\n"
        "  --insts N             measured instructions per run\n"
        "                        (default 300000)\n"
        "  --warmup N            warm-up instructions (default "
        "100000)\n"
        "  --no-functional-warmup\n"
        "                        run warm-ups on the detailed core\n"
        "                        instead of the functional emulator\n"
        "  --ckpt-dir DIR        resume every cell from an\n"
        "                        architectural checkpoint\n"
        "                        DIR/<workload>.ckpt (see\n"
        "                        mlpwin_ckpt --all)\n"
        "  --cache-dir DIR       content-addressed result cache:\n"
        "                        cells already simulated (by any\n"
        "                        batch or daemon sharing DIR) adopt\n"
        "                        their verified cached result; fresh\n"
        "                        cells are stored back. Corrupt\n"
        "                        entries are quarantined and\n"
        "                        re-simulated (see mlpwin_cachectl)\n"
        "  --sample-interval N   enable SMARTS sampling: measure N\n"
        "                        instructions in detail per period\n"
        "  --sample-period N     sampling period (default 20000)\n"
        "  --detailed-warmup N   detailed pre-interval warm-up burst\n"
        "                        (default 1000)\n"
        "  --no-warm-caches      start with cold I/D caches\n"
        "  --check               run every cell with the lockstep\n"
        "                        architectural checker attached\n"
        "%s"
        "  --telemetry-dir DIR   per-job interval telemetry + event\n"
        "                        timeline files, written as\n"
        "                        DIR/<workload>.<model>.telemetry."
        "jsonl\n"
        "                        and DIR/<workload>.<model>.trace."
        "json\n"
        "  --telemetry-interval N\n"
        "                        sampling interval, cycles (default "
        "10000)\n"
        "  --resume              skip cells already completed in\n"
        "                        FILE.ckpt (requires --out FILE)\n"
        "  --retries N           attempts per cell for transient\n"
        "                        (I/O) failures (default 2)\n"
        "  --job-timeout SECS    wall-clock budget per cell\n"
        "                        (default 0 = unlimited)\n"
        "  --isolate             run every cell in a supervised\n"
        "                        worker process: a SIGSEGV, SIGKILL,\n"
        "                        or wedge in one cell cannot kill\n"
        "                        the batch (-j = worker processes)\n"
        "  --worker-bin PATH     worker binary (default:\n"
        "                        mlpwin_worker next to this "
        "executable)\n"
        "  --heartbeat-timeout SECS\n"
        "                        kill a worker silent for SECS while\n"
        "                        a cell is in flight (default 10)\n"
        "  --max-dispatch N      dispatches per cell before a\n"
        "                        worker-killing cell is quarantined\n"
        "                        (default 3)\n"
        "  --inject SPEC         fault-injection spec (tests/CI; see\n"
        "                        EXPERIMENTS.md), e.g. segv@0 or\n"
        "                        torn@1#*; worker kinds need\n"
        "                        --isolate, the cache kinds\n"
        "                        (bitflip/trunc/staleschema) need\n"
        "                        --cache-dir; env MLPWIN_FAULT_SPEC\n"
        "                        works too\n"
        "  --watchdog-cycles N   abort a cell after N cycles without\n"
        "                        a commit (default 0 = auto: 2 x\n"
        "                        memory latency x max ROB size)\n"
        "  --no-watchdog         disable the forward-progress\n"
        "                        watchdog\n"
        "  --quiet               suppress per-job progress on "
        "stderr\n",
        vm::vmFlagsUsage());
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

bool
resolveWorkloads(const std::string &arg, std::vector<std::string> &out)
{
    if (arg == "all" || arg.empty()) {
        for (const WorkloadSpec &w : spec2006Suite())
            out.push_back(w.name);
        return true;
    }
    if (arg == "mem" || arg == "comp") {
        bool want_mem = arg == "mem";
        for (const WorkloadSpec &w : spec2006Suite())
            if (w.memIntensive == want_mem)
                out.push_back(w.name);
        return true;
    }
    for (const std::string &name : splitList(arg)) {
        // SMT co-schedules validate per '+'-part.
        for (const std::string &part : splitWorkloadSpec(name)) {
            if (!tryFindWorkload(part)) {
                std::fprintf(stderr,
                             "unknown workload: %s\nvalid names: "
                             "%s\n",
                             part.c_str(),
                             suiteWorkloadNames().c_str());
                return false;
            }
        }
        out.push_back(name);
    }
    return true;
}

std::uint64_t
numericFlag(const std::string &flag, const char *value)
{
    std::uint64_t v = 0;
    if (!parseU64(value, v)) {
        std::fprintf(stderr, "%s: not a number: '%s'\n", flag.c_str(),
                     value);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workloads_arg = "all";
    std::string models_arg = "base,resizing";
    std::string out_path = "-";
    std::string csv_path;
    unsigned jobs = 0;
    bool quiet = false;
    bool resume = false;
    bool isolate = false;
    serve::SupervisorOptions sup_opts;

    exp::ExperimentSpec spec;
    spec.base.warmupInsts = kDefaultWarmupInsts;
    spec.base.functionalWarmup = true;
    spec.base.warmDataCaches = true;
    spec.base.maxInsts = 300000;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };

        if (arg == "--list") {
            for (const WorkloadSpec &w : spec2006Suite())
                std::printf("%-12s %5s  %s\n", w.name.c_str(),
                            w.isInt ? "int" : "fp",
                            w.memIntensive ? "memory-intensive"
                                           : "compute-intensive");
            return 0;
        } else if (arg == "--workloads") {
            workloads_arg = next();
        } else if (arg == "--models") {
            models_arg = next();
        } else if (arg == "-j" || arg == "--jobs") {
            const char *v = next();
            if (!parseUnsigned(v, jobs) || jobs == 0) {
                std::fprintf(stderr, "-j: not a positive number: "
                             "'%s'\n", v);
                return 2;
            }
        } else if (arg == "--threads") {
            const char *v = next();
            if (!parseBoundedUnsigned(v, 1, kMaxSmtThreads,
                                      spec.base.core.smt.nThreads)) {
                std::fprintf(stderr,
                             "--threads: expected an integer in "
                             "[1, %u], got '%s'\n",
                             kMaxSmtThreads, v);
                return 2;
            }
        } else if (arg == "--fetch-policy") {
            const char *v = next();
            if (!parseFetchPolicy(v,
                                  spec.base.core.smt.fetchPolicy)) {
                std::fprintf(stderr,
                             "--fetch-policy: unknown policy '%s' "
                             "(valid: %s)\n",
                             v, fetchPolicyNames().c_str());
                return 2;
            }
        } else if (arg == "--partition") {
            const char *v = next();
            if (!parsePartitionPolicy(
                    v, spec.base.core.smt.partitionPolicy)) {
                std::fprintf(stderr,
                             "--partition: unknown policy '%s' "
                             "(valid: %s)\n",
                             v, partitionPolicyNames().c_str());
                return 2;
            }
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--insts") {
            spec.base.maxInsts = numericFlag(arg, next());
        } else if (arg == "--warmup") {
            spec.base.warmupInsts = numericFlag(arg, next());
        } else if (arg == "--no-functional-warmup") {
            spec.base.functionalWarmup = false;
        } else if (arg == "--ckpt-dir") {
            spec.archCheckpointDir = next();
        } else if (arg == "--cache-dir") {
            spec.cacheDir = next();
        } else if (arg == "--sample-interval") {
            spec.base.sampling.enabled = true;
            spec.base.sampling.intervalInsts = numericFlag(arg, next());
        } else if (arg == "--sample-period") {
            spec.base.sampling.enabled = true;
            spec.base.sampling.periodInsts = numericFlag(arg, next());
        } else if (arg == "--detailed-warmup") {
            spec.base.sampling.detailedWarmupInsts =
                numericFlag(arg, next());
        } else if (arg == "--no-warm-caches") {
            spec.base.warmInstCaches = false;
            spec.base.warmDataCaches = false;
        } else if (vm::isVmBoolFlag(arg) || vm::isVmValueFlag(arg)) {
            const char *v = vm::isVmValueFlag(arg) ? next() : nullptr;
            std::string err;
            if (!vm::applyVmFlag(arg, v, spec.base.vm, err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return 2;
            }
        } else if (arg == "--check") {
            spec.base.lockstepCheck = true;
        } else if (arg == "--telemetry-dir") {
            spec.telemetryDir = next();
        } else if (arg == "--telemetry-interval") {
            const char *v = next();
            if (!parseBoundedU64(v, 1, UINT64_MAX,
                                 spec.telemetryInterval)) {
                std::fprintf(stderr,
                             "--telemetry-interval: expected an "
                             "integer >= 1, got '%s'\n",
                             v);
                return 2;
            }
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--retries") {
            spec.maxAttempts =
                static_cast<unsigned>(numericFlag(arg, next()));
            if (spec.maxAttempts == 0) {
                std::fprintf(stderr, "--retries: must be >= 1\n");
                return 2;
            }
        } else if (arg == "--job-timeout") {
            spec.jobTimeoutSeconds =
                static_cast<double>(numericFlag(arg, next()));
        } else if (arg == "--isolate") {
            isolate = true;
        } else if (arg == "--worker-bin") {
            sup_opts.workerBin = next();
        } else if (arg == "--heartbeat-timeout") {
            sup_opts.heartbeatTimeoutSeconds =
                static_cast<double>(numericFlag(arg, next()));
            if (sup_opts.heartbeatTimeoutSeconds <= 0) {
                std::fprintf(stderr,
                             "--heartbeat-timeout: must be >= 1\n");
                return 2;
            }
        } else if (arg == "--max-dispatch") {
            sup_opts.maxDispatch =
                static_cast<unsigned>(numericFlag(arg, next()));
            if (sup_opts.maxDispatch == 0) {
                std::fprintf(stderr, "--max-dispatch: must be >= 1\n");
                return 2;
            }
        } else if (arg == "--inject") {
            sup_opts.inject = next();
        } else if (arg == "--watchdog-cycles") {
            spec.base.watchdog.noCommitWindow =
                numericFlag(arg, next());
        } else if (arg == "--no-watchdog") {
            spec.base.watchdog.enabled = false;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    std::string vm_err = spec.base.vm.validate();
    if (!vm_err.empty()) {
        std::fprintf(stderr, "%s\n", vm_err.c_str());
        return 2;
    }
    if (!resolveWorkloads(workloads_arg, spec.workloads))
        return 2;
    for (const std::string &token : splitList(models_arg)) {
        exp::ModelSpec m;
        if (!exp::parseModelSpec(token, m)) {
            std::fprintf(stderr, "bad model spec: %s\n",
                         token.c_str());
            return 2;
        }
        spec.models.push_back(m);
    }
    if (spec.workloads.empty() || spec.models.empty()) {
        std::fprintf(stderr, "empty run matrix\n");
        return 2;
    }

    // Checkpointing rides alongside the final output file; stdout
    // output has no stable identity to resume against.
    if (out_path != "-")
        spec.checkpointPath = out_path + ".ckpt";
    if (resume && spec.checkpointPath.empty()) {
        std::fprintf(stderr,
                     "--resume requires --out FILE (the checkpoint "
                     "lives at FILE.ckpt)\n");
        return 2;
    }
    spec.resume = resume;

    // Worker fault kinds only make sense against isolated workers,
    // cache kinds against a cache; a typo in the spec should fail in
    // milliseconds, not after the batch ran fault-free.
    if (sup_opts.inject.empty())
        if (const char *env = std::getenv("MLPWIN_FAULT_SPEC"))
            sup_opts.inject = env;
    if (!sup_opts.inject.empty()) {
        serve::FaultSpec parsed;
        std::string err;
        if (!serve::parseFaultSpec(sup_opts.inject, parsed, &err)) {
            std::fprintf(stderr, "--inject: %s\n", err.c_str());
            return 2;
        }
        bool worker_kinds = false;
        bool cache_kinds = false;
        for (const serve::FaultClause &c : parsed.clauses) {
            if (serve::faultKindTargetsCache(c.kind))
                cache_kinds = true;
            else
                worker_kinds = true;
        }
        if (worker_kinds && !isolate) {
            std::fprintf(stderr,
                         "--inject requires --isolate (faults are "
                         "applied by worker processes)\n");
            return 2;
        }
        if (cache_kinds && spec.cacheDir.empty()) {
            std::fprintf(stderr,
                         "--inject: bitflip/trunc/staleschema "
                         "poison cache entries and require "
                         "--cache-dir\n");
            return 2;
        }
        if (cache_kinds) {
            spec.onCacheStored = [parsed](const std::string &path,
                                          std::size_t job,
                                          unsigned attempt) {
                using serve::FaultKind;
                if (parsed.match(FaultKind::Bitflip, job, attempt))
                    cache::ResultCache::corruptBitflip(path);
                if (parsed.match(FaultKind::Trunc, job, attempt))
                    cache::ResultCache::corruptTruncate(path);
                if (parsed.match(FaultKind::StaleSchema, job,
                                 attempt))
                    cache::ResultCache::corruptStaleSchema(path);
            };
        }
    }

    // First signal: stop launching cells, drain in-flight ones and
    // flush their checkpoints. Second signal: abort in-flight
    // simulations at their next watchdog poll.
    spec.cancelRequested = [] { return g_signals > 0; };
    spec.abortFlag = &g_abort;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    // Open every sink before burning simulation time, so a bad path
    // fails in milliseconds rather than after the whole batch.
    std::ofstream out_file;
    std::ostream *out = &std::cout;
    if (out_path != "-") {
        out_file.open(out_path);
        if (!out_file) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         out_path.c_str());
            return 2;
        }
        out = &out_file;
    }
    std::ofstream csv_file;
    if (!csv_path.empty()) {
        csv_file.open(csv_path);
        if (!csv_file) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         csv_path.c_str());
            return 2;
        }
    }

    exp::ExperimentRunner runner(jobs, !quiet);
    if (!quiet)
        std::fprintf(stderr,
                     "running %zu jobs (%zu workloads x %zu models) "
                     "on %u %s\n",
                     spec.jobCount(), spec.workloads.size(),
                     spec.models.size(), runner.jobs(),
                     isolate ? "worker processes" : "threads");

    sup_opts.workers = runner.jobs();
    serve::Supervisor supervisor(sup_opts);

    exp::BatchOutcome batch;
    try {
        batch = runner.runAll(spec, isolate ? &supervisor : nullptr);
    } catch (const SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return e.code() == ErrorCode::InvalidArgument ? 2 : 1;
    }

    if (batch.tornCheckpointLines > 0)
        std::fprintf(stderr,
                     "checkpoint: %zu torn line(s) skipped; the "
                     "affected cells were re-run\n",
                     batch.tornCheckpointLines);
    if (!spec.cacheDir.empty() &&
        (!quiet || batch.cacheQuarantined))
        std::fprintf(stderr,
                     "cache: %zu hit(s), %zu store(s), %zu "
                     "quarantined\n",
                     batch.cacheHits, batch.cacheStores,
                     batch.cacheQuarantined);
    if (isolate && !quiet) {
        const serve::SupervisorStats &st = supervisor.stats();
        if (st.workerDeaths || st.steals || st.quarantined)
            std::fprintf(
                stderr,
                "supervisor: %llu worker death(s), %llu "
                "redispatch(es), %llu quarantined, %llu steal(s), "
                "%llu respawn(s), %u slot(s) retired\n",
                static_cast<unsigned long long>(st.workerDeaths),
                static_cast<unsigned long long>(st.redispatches),
                static_cast<unsigned long long>(st.quarantined),
                static_cast<unsigned long long>(st.steals),
                static_cast<unsigned long long>(st.respawns),
                st.retiredSlots);
    }

    // Final outputs carry the ok cells only, in submission order;
    // failures are reported on stderr and in the exit code. On
    // resume, adopted results serialize byte-identically, so the
    // final file matches an uninterrupted run's.
    exp::ResultWriter jsonl(*out, exp::ResultWriter::Format::Jsonl);
    for (const exp::JobOutcome &o : batch.outcomes)
        if (o.state == exp::JobState::Ok)
            jsonl.write(o.result);
    out->flush();

    if (csv_file.is_open()) {
        exp::ResultWriter csv(csv_file,
                              exp::ResultWriter::Format::Csv);
        for (const exp::JobOutcome &o : batch.outcomes)
            if (o.state == exp::JobState::Ok)
                csv.write(o.result);
    }

    // Per-cell failure summary on stderr.
    std::size_t failed = batch.count(exp::JobState::Failed) +
                         batch.count(exp::JobState::Timeout);
    std::size_t skipped = batch.count(exp::JobState::Skipped);
    for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
        const exp::JobOutcome &o = batch.outcomes[i];
        if (o.state == exp::JobState::Ok)
            continue;
        std::fprintf(stderr, "%s: %s [%s] %s (attempts %u)\n",
                     jobKey(batch.jobs[i]).c_str(),
                     jobStateName(o.state), errorCodeName(o.error),
                     o.errorDetail.c_str(), o.attempts);
        if (!o.dumpJson.empty())
            std::fprintf(stderr, "  dump: %s\n", o.dumpJson.c_str());
    }
    if (!quiet || failed || skipped)
        std::fprintf(stderr,
                     "batch: %zu ok (%zu resumed), %zu failed, %zu "
                     "timeout, %zu skipped of %zu cells\n",
                     batch.count(exp::JobState::Ok),
                     [&] {
                         std::size_t n = 0;
                         for (const exp::JobOutcome &o :
                              batch.outcomes)
                             if (o.resumed)
                                 ++n;
                         return n;
                     }(),
                     batch.count(exp::JobState::Failed),
                     batch.count(exp::JobState::Timeout), skipped,
                     batch.jobs.size());

    if (g_signals > 0 || skipped)
        return 4;
    return failed ? 3 : 0;
}
