/**
 * @file
 * mlpwind: the long-lived experiment daemon and its submit client
 * (see src/serve/daemon.hh for the protocol and state layout).
 *
 * Server:
 *   mlpwind --socket /tmp/mlpwind.sock --state-dir state -j 4
 *
 * Client (reads the spec line from FILE, '-' = stdin, streams the
 * daemon's JSONL events to stdout, exits with the spec's exit code):
 *   echo '{"id":"fig07","workloads":["mcf"],"models":["base"]}' | \
 *       mlpwind --socket /tmp/mlpwind.sock --submit -
 *
 * A daemon killed mid-spec (even SIGKILL) loses nothing durable:
 * restart it and resubmit the same id — finished cells are adopted
 * from the state directory's checkpoint and the rest re-run, with
 * the final result file bit-identical to an uninterrupted run.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/parse.hh"
#include "serve/daemon.hh"

using namespace mlpwin;

namespace
{

std::atomic<bool> g_stop{false};

extern "C" void
onSignal(int)
{
    g_stop.store(true);
}

void
usage()
{
    std::fprintf(stderr,
        "usage: mlpwind --socket PATH [options]\n"
        "server options:\n"
        "  --state-dir DIR       checkpoint/result directory\n"
        "                        (default mlpwind-state)\n"
        "  -j, --jobs N          worker processes per spec\n"
        "                        (default: one per hardware thread)\n"
        "  --worker-bin PATH     worker binary (default: next to\n"
        "                        this executable)\n"
        "  --heartbeat-timeout SECS\n"
        "                        worker liveness deadline (default "
        "10)\n"
        "  --max-dispatch N      dispatches per cell before\n"
        "                        quarantine (default 3)\n"
        "  --cache-dir DIR       content-addressed result cache\n"
        "                        shared by every spec (and any\n"
        "                        mlpwin_batch --cache-dir DIR):\n"
        "                        repeated cells adopt their cached\n"
        "                        result instead of re-simulating\n"
        "  --no-isolate          execute in-process instead of in\n"
        "                        worker processes (debugging)\n"
        "  --progress            per-job progress on stderr\n"
        "client mode:\n"
        "  --submit FILE         read one spec line from FILE ('-' =\n"
        "                        stdin), submit it, stream the\n"
        "                        event lines to stdout, exit with\n"
        "                        the spec's exit code\n");
}

} // namespace

int
main(int argc, char **argv)
{
    serve::DaemonOptions opts;
    std::string submit_path;
    bool submit = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            opts.socketPath = next();
        } else if (arg == "--state-dir") {
            opts.stateDir = next();
        } else if (arg == "-j" || arg == "--jobs") {
            const char *v = next();
            if (!parseUnsigned(v, opts.workers)) {
                std::fprintf(stderr, "-j: not a number: '%s'\n", v);
                return 2;
            }
        } else if (arg == "--worker-bin") {
            opts.workerBin = next();
        } else if (arg == "--heartbeat-timeout") {
            unsigned secs = 0;
            if (!parseUnsigned(next(), secs) || secs == 0) {
                std::fprintf(stderr,
                             "--heartbeat-timeout: must be >= 1\n");
                return 2;
            }
            opts.heartbeatTimeoutSeconds = secs;
        } else if (arg == "--max-dispatch") {
            if (!parseUnsigned(next(), opts.maxDispatch) ||
                opts.maxDispatch == 0) {
                std::fprintf(stderr, "--max-dispatch: must be >= 1\n");
                return 2;
            }
        } else if (arg == "--cache-dir") {
            opts.cacheDir = next();
        } else if (arg == "--no-isolate") {
            opts.isolate = false;
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg == "--submit") {
            submit = true;
            submit_path = next();
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    if (opts.socketPath.empty()) {
        std::fprintf(stderr, "--socket is required\n");
        usage();
        return 2;
    }

    if (submit) {
        std::string spec_json;
        if (submit_path == "-") {
            std::getline(std::cin, spec_json);
        } else {
            std::ifstream in(submit_path);
            if (!in) {
                std::fprintf(stderr, "cannot read %s\n",
                             submit_path.c_str());
                return 2;
            }
            std::getline(in, spec_json);
        }
        if (spec_json.empty()) {
            std::fprintf(stderr, "empty spec\n");
            return 2;
        }
        return serve::submitSpec(opts.socketPath, spec_json,
                                 std::cout);
    }

    // Clean shutdown on the first signal (finishes the in-flight
    // spec; its supervisor drains via the spec checkpoint on the
    // next submit if the client gave up).
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    return serve::daemonMain(opts, &g_stop);
}
