/**
 * @file
 * Command-line simulator driver: run any suite workload under any
 * model with overridable parameters and print the result (and
 * optionally every internal statistic).
 *
 * Usage:
 *   mlpwin --list
 *   mlpwin --workload soplex --model resizing --insts 300000
 *   mlpwin -w gcc -m fixed --level 3 --stats
 *   mlpwin -w lbm -m resizing --mem-latency 500 --penalty 30
 *
 * Exit code 0 on success; 2 on a usage error; 3 if the run aborted
 * with a SimError (watchdog, invariant violation) — the diagnostic
 * dump is printed to stderr.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/parse.hh"
#include "cpu/tracer.hh"
#include "profile/profiler.hh"
#include "sim/simulator.hh"
#include "smt/metrics.hh"
#include "telemetry/export.hh"
#include "vm/mmu_flags.hh"
#include "workloads/suite.hh"

using namespace mlpwin;

namespace
{

void
usage()
{
    std::fprintf(stderr,
        "usage: mlpwin [options]\n"
        "  --list                 list suite workloads and exit\n"
        "  -w, --workload NAME    workload to run (required); on SMT\n"
        "                         runs a '+'-separated co-schedule,\n"
        "                         e.g. mcf+gcc (a single name is\n"
        "                         replicated onto every thread)\n"
        "  -m, --model NAME       base|fixed|ideal|resizing|runahead|"
        "occupancy (default base)\n"
        "      --threads N        hardware threads, 1-4 (default 1;\n"
        "                         >1 requires the base model)\n"
        "      --fetch-policy K   rr|icount|predictive (default\n"
        "                         icount)\n"
        "      --partition K      static|shared|mlp per-thread window\n"
        "                         partitioning (default static)\n"
        "      --fairness         also run every co-scheduled program\n"
        "                         alone (same budget) and report\n"
        "                         STP/ANTT/harmonic speedup\n"
        "      --level N          level for fixed/ideal models "
        "(default 3)\n"
        "      --insts N          measured instructions "
        "(default 300000)\n"
        "      --warmup N         warm-up instructions "
        "(default 100000)\n"
        "      --no-functional-warmup\n"
        "                         run the warm-up on the detailed\n"
        "                         core instead of the functional\n"
        "                         emulator (slower; pre-sampling\n"
        "                         behaviour)\n"
        "      --ckpt FILE        resume from an architectural\n"
        "                         checkpoint (see mlpwin_ckpt)\n"
        "      --sample-interval N\n"
        "                         enable SMARTS sampling: measure N\n"
        "                         instructions in detail per period\n"
        "      --sample-period N  sampling period (fast-forward +\n"
        "                         warm-up + interval; default 20000)\n"
        "      --detailed-warmup N\n"
        "                         detailed pre-interval warm-up burst\n"
        "                         (default 1000)\n"
        "      --no-warm-caches   start with cold I/D caches\n"
        "      --mem-latency N    DRAM minimum latency, cycles\n"
        "      --penalty N        level-transition penalty, cycles\n"
        "      --no-prefetch      disable the data prefetcher\n"
        "%s"
        "      --check            run the lockstep architectural\n"
        "                         checker alongside the core; abort\n"
        "                         with a divergence dump on the first\n"
        "                         mismatched commit\n"
        "      --prefetcher K     stride (default) or stream\n"
        "      --watchdog-cycles N\n"
        "                         abort after N cycles without a\n"
        "                         commit (default 0 = auto: 2 x\n"
        "                         memory latency x max ROB size)\n"
        "      --no-watchdog      disable the forward-progress\n"
        "                         watchdog\n"
        "      --debug-wedge-at N (testing) stall the commit stage\n"
        "                         from cycle N on, to exercise the\n"
        "                         watchdog\n"
        "      --stats            dump every internal statistic\n"
        "      --stats-json FILE  write every statistic as JSON\n"
        "      --telemetry FILE   write interval telemetry time\n"
        "                         series as JSON Lines\n"
        "      --telemetry-interval N\n"
        "                         sampling interval, cycles, >= 1\n"
        "                         (default 10000)\n"
        "      --profile          enable the host self-profiler:\n"
        "                         print a host-time table per span\n"
        "                         kind after the run and merge host\n"
        "                         spans into the --timeline trace\n"
        "                         (pid 1)\n"
        "      --timeline FILE    write resize/runahead/drain event\n"
        "                         timeline as Chrome trace_event\n"
        "                         JSON (chrome://tracing, Perfetto)\n"
        "      --trace CATS       pipeline trace to stderr; CATS is\n"
        "                         'all' or a comma list of fetch,\n"
        "                         dispatch,issue,complete,commit,\n"
        "                         squash,resize,runahead\n"
        "      --trace-start N    first cycle to trace (default 0)\n",
        vm::vmFlagsUsage());
}

/** Parse a numeric flag value strictly; usage-error exit on junk. */
std::uint64_t
numericFlag(const std::string &flag, const char *value)
{
    std::uint64_t v = 0;
    if (!parseU64(value, v)) {
        std::fprintf(stderr, "%s: not a number: '%s'\n", flag.c_str(),
                     value);
        std::exit(2);
    }
    return v;
}

bool
parseModel(const std::string &s, ModelKind &out)
{
    for (ModelKind m : {ModelKind::Base, ModelKind::Fixed,
                        ModelKind::Ideal, ModelKind::Resizing,
                        ModelKind::Runahead, ModelKind::Occupancy,
                        ModelKind::Wib}) {
        if (s == modelName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    SimConfig cfg;
    cfg.model = ModelKind::Base;
    cfg.fixedLevel = 3;
    cfg.warmupInsts = kDefaultWarmupInsts;
    cfg.functionalWarmup = true;
    cfg.warmDataCaches = true;
    cfg.maxInsts = 300000;
    bool dump_stats = false;
    bool fairness = false;
    bool profile = false;
    unsigned trace_mask = 0;
    Cycle trace_start = 0;
    std::string telemetry_path;
    std::string timeline_path;
    std::string stats_json_path;
    std::string ckpt_path;
    Cycle telemetry_interval = kDefaultTelemetryInterval;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };

        if (arg == "--list") {
            std::printf("%-12s %5s  %s\n", "name", "type", "category");
            for (const WorkloadSpec &w : spec2006Suite())
                std::printf("%-12s %5s  %s\n", w.name.c_str(),
                            w.isInt ? "int" : "fp",
                            w.memIntensive ? "memory-intensive"
                                           : "compute-intensive");
            return 0;
        } else if (arg == "-w" || arg == "--workload") {
            workload = next();
        } else if (arg == "-m" || arg == "--model") {
            std::string name = next();
            if (!parseModel(name, cfg.model)) {
                std::fprintf(stderr, "unknown model: %s\n",
                             name.c_str());
                return 2;
            }
        } else if (arg == "--threads") {
            const char *v = next();
            if (!parseBoundedUnsigned(v, 1, kMaxSmtThreads,
                                      cfg.core.smt.nThreads)) {
                std::fprintf(stderr,
                             "--threads: expected an integer in "
                             "[1, %u], got '%s'\n",
                             kMaxSmtThreads, v);
                return 2;
            }
        } else if (arg == "--fetch-policy") {
            const char *v = next();
            if (!parseFetchPolicy(v, cfg.core.smt.fetchPolicy)) {
                std::fprintf(stderr,
                             "--fetch-policy: unknown policy '%s' "
                             "(valid: %s)\n",
                             v, fetchPolicyNames().c_str());
                return 2;
            }
        } else if (arg == "--partition") {
            const char *v = next();
            if (!parsePartitionPolicy(
                    v, cfg.core.smt.partitionPolicy)) {
                std::fprintf(stderr,
                             "--partition: unknown policy '%s' "
                             "(valid: %s)\n",
                             v, partitionPolicyNames().c_str());
                return 2;
            }
        } else if (arg == "--fairness") {
            fairness = true;
        } else if (arg == "--level") {
            cfg.fixedLevel =
                static_cast<unsigned>(numericFlag(arg, next()));
        } else if (arg == "--insts") {
            cfg.maxInsts = numericFlag(arg, next());
        } else if (arg == "--warmup") {
            cfg.warmupInsts = numericFlag(arg, next());
        } else if (arg == "--no-functional-warmup") {
            cfg.functionalWarmup = false;
        } else if (arg == "--ckpt") {
            ckpt_path = next();
        } else if (arg == "--sample-interval") {
            cfg.sampling.enabled = true;
            cfg.sampling.intervalInsts = numericFlag(arg, next());
        } else if (arg == "--sample-period") {
            cfg.sampling.enabled = true;
            cfg.sampling.periodInsts = numericFlag(arg, next());
        } else if (arg == "--detailed-warmup") {
            cfg.sampling.detailedWarmupInsts = numericFlag(arg, next());
        } else if (arg == "--no-warm-caches") {
            cfg.warmInstCaches = false;
            cfg.warmDataCaches = false;
        } else if (arg == "--mem-latency") {
            unsigned lat =
                static_cast<unsigned>(numericFlag(arg, next()));
            cfg.mem.dram.minLatency = lat;
            cfg.mlp.memoryLatency = lat;
        } else if (arg == "--penalty") {
            cfg.mlp.transitionPenalty =
                static_cast<unsigned>(numericFlag(arg, next()));
        } else if (arg == "--no-prefetch") {
            cfg.mem.prefetcher.enabled = false;
        } else if (vm::isVmBoolFlag(arg) || vm::isVmValueFlag(arg)) {
            const char *v = vm::isVmValueFlag(arg) ? next() : nullptr;
            std::string err;
            if (!vm::applyVmFlag(arg, v, cfg.vm, err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return 2;
            }
        } else if (arg == "--check") {
            cfg.lockstepCheck = true;
        } else if (arg == "--watchdog-cycles") {
            cfg.watchdog.noCommitWindow = numericFlag(arg, next());
        } else if (arg == "--no-watchdog") {
            cfg.watchdog.enabled = false;
        } else if (arg == "--debug-wedge-at") {
            cfg.core.debugStallCommitAt = numericFlag(arg, next());
        } else if (arg == "--prefetcher") {
            std::string kind = next();
            if (kind == "stride") {
                cfg.mem.prefetcher.kind = PrefetcherKind::Stride;
            } else if (kind == "stream") {
                cfg.mem.prefetcher.kind = PrefetcherKind::Stream;
            } else {
                std::fprintf(stderr, "unknown prefetcher: %s\n",
                             kind.c_str());
                return 2;
            }
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--stats-json") {
            stats_json_path = next();
        } else if (arg == "--telemetry") {
            telemetry_path = next();
        } else if (arg == "--telemetry-interval") {
            const char *v = next();
            if (!parseBoundedU64(v, 1, UINT64_MAX,
                                 telemetry_interval)) {
                std::fprintf(stderr,
                             "--telemetry-interval: expected an "
                             "integer >= 1, got '%s'\n",
                             v);
                return 2;
            }
        } else if (arg == "--profile") {
            profile = true;
        } else if (arg == "--timeline") {
            timeline_path = next();
        } else if (arg == "--trace") {
            std::string err;
            trace_mask = parseTraceCategories(next(), &err);
            if (!err.empty()) {
                std::fprintf(stderr, "--trace: %s\n", err.c_str());
                return 2;
            }
        } else if (arg == "--trace-start") {
            trace_start = numericFlag(arg, next());
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    if (workload.empty()) {
        usage();
        return 2;
    }
    // Cross-field MMU constraints (entries divisible by assoc, ...)
    // are usage errors too, caught here rather than as a SimError
    // mid-construction.
    std::string vm_err = cfg.vm.validate();
    if (!vm_err.empty()) {
        std::fprintf(stderr, "%s\n", vm_err.c_str());
        return 2;
    }

    // Enable before any checkpoint load / construction so the coarse
    // host spans (CheckpointLoad, Warmup, ...) are captured too.
    if (profile)
        Profiler::instance().setEnabled(true);

    std::vector<std::string> parts = splitWorkloadSpec(workload);
    if (parts.size() == 1 && cfg.core.smt.nThreads > 1)
        parts.assign(cfg.core.smt.nThreads, parts[0]);
    if (parts.size() != cfg.core.smt.nThreads) {
        std::fprintf(stderr,
                     "--workload: '%s' names %zu programs but "
                     "--threads is %u\n",
                     workload.c_str(), parts.size(),
                     cfg.core.smt.nThreads);
        return 2;
    }
    std::vector<const WorkloadSpec *> specs;
    std::vector<Program> progs;
    for (const std::string &part : parts) {
        const WorkloadSpec *wspec = tryFindWorkload(part);
        if (!wspec) {
            std::fprintf(stderr,
                         "unknown workload: %s\nvalid names: %s\n",
                         part.c_str(), suiteWorkloadNames().c_str());
            return 2;
        }
        specs.push_back(wspec);
        progs.push_back(wspec->make(1ull << 40));
    }
    const WorkloadSpec &spec = *specs[0];
    std::unique_ptr<ArchCheckpoint> ckpt;
    if (!ckpt_path.empty()) {
        try {
            ckpt = std::make_unique<ArchCheckpoint>(
                ArchCheckpoint::loadFile(ckpt_path));
        } catch (const SimError &e) {
            std::fprintf(stderr, "--ckpt: %s\n", e.what());
            return 2;
        }
        cfg.startCheckpoint = ckpt.get();
    }
    std::unique_ptr<Simulator> simp;
    try {
        simp = std::make_unique<Simulator>(cfg, progs);
    } catch (const SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    Simulator &sim = *simp;
    std::unique_ptr<PipelineTracer> tracer;
    if (trace_mask) {
        tracer = std::make_unique<PipelineTracer>(std::cerr,
                                                  trace_mask,
                                                  trace_start);
        sim.setTracer(tracer.get());
    }
    std::unique_ptr<IntervalSampler> sampler;
    if (!telemetry_path.empty()) {
        sampler = std::make_unique<IntervalSampler>(telemetry_interval);
        sim.setSampler(sampler.get());
    }
    std::unique_ptr<EventTimeline> timeline;
    if (!timeline_path.empty()) {
        timeline = std::make_unique<EventTimeline>();
        sim.setTimeline(timeline.get());
    }
    SimResult r;
    try {
        r = sim.run();
    } catch (const SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        if (e.hasDump())
            std::fprintf(stderr, "diagnostic dump:\n%s",
                         e.dump().pretty().c_str());
        return 3;
    }

    // Fairness baselines: each co-scheduled program alone on the
    // single-thread core, same instruction budget.
    std::vector<double> alone_ipc;
    if (fairness && r.nThreads > 1) {
        SimConfig alone_cfg = cfg;
        alone_cfg.core.smt = SmtConfig{};
        for (std::size_t i = 0; i < parts.size(); ++i) {
            try {
                Simulator alone(alone_cfg,
                                specs[i]->make(1ull << 40));
                alone_ipc.push_back(alone.run().ipc);
            } catch (const SimError &e) {
                std::fprintf(stderr, "error (alone run %s): %s\n",
                             parts[i].c_str(), e.what());
                return 3;
            }
        }
        r.stp = stp(r.threadIpc, alone_ipc);
        r.antt = antt(r.threadIpc, alone_ipc);
        r.hmeanSpeedup = harmonicSpeedup(r.threadIpc, alone_ipc);
    }

    if (sampler) {
        std::ofstream os(telemetry_path);
        if (!os) {
            std::fprintf(stderr, "cannot open %s\n",
                         telemetry_path.c_str());
            return 1;
        }
        writeTelemetryJsonl(os, *sampler);
    }
    if (timeline) {
        std::ofstream os(timeline_path);
        if (!os) {
            std::fprintf(stderr, "cannot open %s\n",
                         timeline_path.c_str());
            return 1;
        }
        writeChromeTrace(os, *timeline,
                         workload + "." + modelName(cfg.model),
                         profile
                             ? Profiler::instance().traceEvents()
                             : std::vector<std::string>{});
    }
    if (!stats_json_path.empty()) {
        std::ofstream os(stats_json_path);
        if (!os) {
            std::fprintf(stderr, "cannot open %s\n",
                         stats_json_path.c_str());
            return 1;
        }
        sim.stats().dumpJson(os);
        os << '\n';
    }

    std::printf("workload            %s (%s)\n", r.workload.c_str(),
                spec.memIntensive ? "memory-intensive"
                                  : "compute-intensive");
    std::printf("model               %s", r.model.c_str());
    if (cfg.model == ModelKind::Fixed || cfg.model == ModelKind::Ideal)
        std::printf(" (level %u)", cfg.fixedLevel);
    std::printf("\n");
    if (r.nThreads > 1) {
        std::printf("SMT                 %u threads, fetch %s, "
                    "partition %s\n",
                    r.nThreads, r.fetchPolicy.c_str(),
                    r.partitionPolicy.c_str());
        for (std::size_t t = 0; t < r.threadIpc.size(); ++t)
            std::printf("  thread %zu          %-10s IPC %.4f "
                        "(%llu committed, MLP %.2f)\n",
                        t, parts[t].c_str(), r.threadIpc[t],
                        static_cast<unsigned long long>(
                            r.threadCommitted[t]),
                        r.threadObservedMlp[t]);
        if (!alone_ipc.empty())
            std::printf("fairness            STP %.3f  ANTT %.3f  "
                        "hmean speedup %.3f\n",
                        r.stp, r.antt, r.hmeanSpeedup);
    }
    std::printf("committed insts     %llu\n",
                static_cast<unsigned long long>(r.committed));
    std::printf("cycles              %llu\n",
                static_cast<unsigned long long>(r.cycles));
    if (r.sampled) {
        std::printf("IPC                 %.4f +/- %.4f (95%% CI, "
                    "%llu intervals)\n",
                    r.ipc, r.ipcCi95,
                    static_cast<unsigned long long>(r.sampleIntervals));
        std::printf("fast-forwarded      %llu insts (functional)\n",
                    static_cast<unsigned long long>(r.ffInsts));
    } else {
        std::printf("IPC                 %.4f\n", r.ipc);
    }
    std::printf("avg load latency    %.1f cycles\n", r.avgLoadLatency);
    std::printf("observed MLP        %.2f\n", r.observedMlp);
    std::printf("L2 demand misses    %llu\n",
                static_cast<unsigned long long>(r.l2DemandMisses));
    std::printf("branch mispredicts  %llu (1 per %.0f insts)\n",
                static_cast<unsigned long long>(r.committedMispredicts),
                r.instsPerMispredict());
    std::printf("squashed insts      %llu\n",
                static_cast<unsigned long long>(r.squashed));
    if (!r.cyclesAtLevel.empty()) {
        std::uint64_t total = 0;
        for (std::uint64_t c : r.cyclesAtLevel)
            total += c;
        std::printf("level residency    ");
        for (std::size_t l = 0; l < r.cyclesAtLevel.size(); ++l)
            std::printf(" L%zu %.1f%%", l + 1,
                        total ? 100.0 *
                                    static_cast<double>(
                                        r.cyclesAtLevel[l]) /
                                    static_cast<double>(total)
                              : 0.0);
        std::printf("\n");
    }
    if (cfg.model == ModelKind::Runahead)
        std::printf("runahead episodes   %llu (%llu useless)\n",
                    static_cast<unsigned long long>(r.runaheadEpisodes),
                    static_cast<unsigned long long>(r.runaheadUseless));
    std::printf("energy (model pJ)   %.3e   EDP %.3e\n", r.energyTotal,
                r.edp);

    // CPI stack: every measured cycle attributed to exactly one leaf,
    // so each thread's row sums to 100%.
    for (std::size_t t = 0; t < r.threadCpi.size(); ++t) {
        const CpiStack &cpi = r.threadCpi[t];
        std::uint64_t total = cpi.sum();
        if (r.threadCpi.size() > 1)
            std::printf("cpi stack (t%zu)     ", t);
        else
            std::printf("cpi stack          ");
        for (std::size_t i = 0; i < kNumCpiComponents; ++i) {
            if (!cpi.counts[i])
                continue;
            std::printf(" %s %.1f%%",
                        cpiComponentName(
                            static_cast<CpiComponent>(i)),
                        total ? 100.0 *
                                    static_cast<double>(
                                        cpi.counts[i]) /
                                    static_cast<double>(total)
                              : 0.0);
        }
        std::printf("\n");
    }

    if (profile) {
        const auto agg = Profiler::instance().aggregate();
        double total_ns = 0.0;
        for (const SpanAggregate &a : agg)
            total_ns += static_cast<double>(a.totalNs);
        std::printf("\n---- host self-profile ----\n");
        std::printf("%-16s %12s %14s %7s\n", "span", "count",
                    "total ms", "share");
        for (std::size_t i = 0; i < kNumSpanKinds; ++i) {
            if (!agg[i].count)
                continue;
            std::printf("%-16s %12llu %14.3f %6.1f%%\n",
                        spanKindName(static_cast<SpanKind>(i)),
                        static_cast<unsigned long long>(agg[i].count),
                        static_cast<double>(agg[i].totalNs) / 1e6,
                        total_ns
                            ? 100.0 *
                                  static_cast<double>(agg[i].totalNs) /
                                  total_ns
                            : 0.0);
        }
        if (Profiler::instance().droppedRecords())
            std::printf("(%llu span records dropped)\n",
                        static_cast<unsigned long long>(
                            Profiler::instance().droppedRecords()));
    }

    if (dump_stats) {
        std::printf("\n---- all statistics ----\n");
        sim.dumpStats(std::cout);
    }
    return 0;
}
