/**
 * @file
 * Offline maintenance for the content-addressed result cache
 * (src/cache): verify, enumerate, bound, or empty a cache directory
 * shared by mlpwin_batch --cache-dir and mlpwind --cache-dir.
 *
 * Usage:
 *   mlpwin_cachectl --dir DIR fsck          verify every entry;
 *                                           corrupt ones quarantine
 *   mlpwin_cachectl --dir DIR ls            one line per entry,
 *                                           oldest first
 *   mlpwin_cachectl --dir DIR gc --max-bytes N
 *                                           delete oldest entries
 *                                           until within N bytes
 *   mlpwin_cachectl --dir DIR gc --max-bytes N --dry-run
 *                                           print what gc would
 *                                           delete; remove nothing
 *   mlpwin_cachectl --dir DIR clear         remove everything
 *
 * fsck/gc/clear take the cache's exclusive flock, so they are safe
 * against concurrent batches (which block their stores briefly).
 *
 * Exit codes: 0 ok; 1 fsck quarantined at least one entry; 2 usage
 * error or unusable cache directory.
 */

#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>

#include "cache/result_cache.hh"
#include "common/parse.hh"

using namespace mlpwin;

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: mlpwin_cachectl --dir DIR "
                 "{fsck | ls | gc --max-bytes N [--dry-run] | "
                 "clear}\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir;
    std::string cmd;
    bool have_max = false;
    bool dry_run = false;
    std::uint64_t max_bytes = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--dir") {
            dir = next();
        } else if (arg == "--max-bytes") {
            if (!parseU64(next(), max_bytes)) {
                std::fprintf(stderr,
                             "--max-bytes: not a number: '%s'\n",
                             argv[i]);
                return 2;
            }
            have_max = true;
        } else if (arg == "--dry-run") {
            dry_run = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n",
                         arg.c_str());
            usage();
            return 2;
        } else if (cmd.empty()) {
            cmd = arg;
        } else {
            std::fprintf(stderr, "unexpected argument: %s\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }

    if (dir.empty() || cmd.empty()) {
        usage();
        return 2;
    }
    if (dry_run && cmd != "gc") {
        std::fprintf(stderr, "--dry-run only applies to gc\n");
        return 2;
    }

    cache::ResultCache rc(dir);
    if (!rc.enabled()) {
        std::fprintf(stderr, "cannot use cache directory %s\n",
                     dir.c_str());
        return 2;
    }

    if (cmd == "fsck") {
        cache::ResultCache::FsckReport rep = rc.fsck();
        std::printf("fsck: %zu entries scanned, %zu ok, %zu "
                    "quarantined\n",
                    rep.scanned, rep.ok, rep.quarantined);
        return rep.quarantined ? 1 : 0;
    }
    if (cmd == "ls") {
        for (const cache::ResultCache::EntryInfo &e : rc.list()) {
            char when[32] = "-";
            if (e.mtime) {
                std::time_t t = static_cast<std::time_t>(e.mtime);
                std::tm tm_buf{};
                if (gmtime_r(&t, &tm_buf))
                    std::strftime(when, sizeof(when),
                                  "%Y-%m-%dT%H:%M:%SZ", &tm_buf);
            }
            std::printf("%016llx %8llu %s %s/%s\n",
                        static_cast<unsigned long long>(e.key),
                        static_cast<unsigned long long>(e.bytes),
                        when,
                        e.workload.empty() ? "?"
                                           : e.workload.c_str(),
                        e.model.empty() ? "?" : e.model.c_str());
        }
        return 0;
    }
    if (cmd == "gc") {
        if (!have_max) {
            std::fprintf(stderr, "gc requires --max-bytes N\n");
            return 2;
        }
        std::vector<cache::ResultCache::EntryInfo> victims;
        cache::ResultCache::GcReport rep =
            rc.gc(max_bytes, dry_run, &victims);
        if (dry_run) {
            // One line per would-be eviction, in the order a real gc
            // would delete them (oldest first).
            for (const cache::ResultCache::EntryInfo &e : victims)
                std::printf("would remove %016llx %8llu %s/%s\n",
                            static_cast<unsigned long long>(e.key),
                            static_cast<unsigned long long>(e.bytes),
                            e.workload.empty() ? "?"
                                               : e.workload.c_str(),
                            e.model.empty() ? "?"
                                            : e.model.c_str());
        }
        std::printf("gc%s: %zu entries scanned, %zu %s, %llu -> "
                    "%llu bytes\n",
                    dry_run ? " (dry run)" : "", rep.scanned,
                    rep.removed,
                    dry_run ? "would be removed" : "removed",
                    static_cast<unsigned long long>(rep.bytesBefore),
                    static_cast<unsigned long long>(rep.bytesAfter));
        return 0;
    }
    if (cmd == "clear") {
        std::printf("clear: %zu file(s) removed\n", rc.clear());
        return 0;
    }

    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    usage();
    return 2;
}
