#include "controller.hh"

namespace mlpwin
{

MlpAwareController::MlpAwareController(const LevelTable &table,
                                       const MlpControllerConfig &cfg,
                                       StatSet *stats)
    : ResizeController(table), cfg_(cfg),
      enlargements_(stats, "resize.enlargements",
                    "level-up transitions"),
      shrinks_(stats, "resize.shrinks", "level-down transitions"),
      drainStallCycles_(stats, "resize.drain_stall_cycles",
                        "cycles allocation stopped to drain for shrink")
{
}

void
MlpAwareController::startTransition(Cycle now)
{
    if (cfg_.transitionPenalty > 0) {
        stallUntil_ = now + cfg_.transitionPenalty;
        inTransition_ = true;
    }
}

void
MlpAwareController::onL2DemandMiss(Cycle now)
{
    // Fig. 5 lines 7-10: enlarge, rearm the shrink timer, clear flag.
    if (level_ < table_.maxLevel()) {
        ++level_;
        ++ups_;
        ++enlargements_;
        startTransition(now);
        if (timeline_)
            timeline_->recordResize(now,
                                    now + cfg_.transitionPenalty,
                                    level_ - 1, level_);
    }
    shrinkTiming_ = now + cfg_.memoryLatency;
    doShrink_ = false;
    // The miss cancels any pending shrink, so a drain in progress
    // ends here.
    if (timeline_)
        timeline_->endDrainStall(now);
}

bool
MlpAwareController::isShrinkable(const WindowOccupancy &occ) const
{
    const ResourceLevel &target = table_.at(level_ - 1);
    return occ.rob <= target.robSize && occ.iq <= target.iqSize &&
           occ.lsq <= target.lsqSize;
}

void
MlpAwareController::tick(Cycle now, const WindowOccupancy &occ)
{
    recordResidency();

    if (inTransition_ && now >= stallUntil_)
        inTransition_ = false;

    // Fig. 5 lines 11-13.
    if (shrinkTiming_ != kNoCycle && now >= shrinkTiming_)
        doShrink_ = true;

    bool stop_alloc = false;

    // Fig. 5 lines 14-23.
    if (level_ > 1 && doShrink_) {
        if (isShrinkable(occ)) {
            --level_;
            ++downs_;
            ++shrinks_;
            shrinkTiming_ = now + cfg_.memoryLatency;
            doShrink_ = false;
            startTransition(now);
            if (timeline_) {
                timeline_->endDrainStall(now);
                timeline_->recordResize(
                    now, now + cfg_.transitionPenalty, level_ + 1,
                    level_);
            }
        } else {
            stop_alloc = true;
            ++drainStallCycles_;
            if (timeline_)
                timeline_->beginDrainStall(now);
        }
    }

    allocStopped_ = stop_alloc || inTransition_;
}

OccupancyController::OccupancyController(
        const LevelTable &table, const OccupancyControllerConfig &cfg,
        StatSet *stats)
    : ResizeController(table), cfg_(cfg),
      enlargements_(stats, "resize.occ_enlargements",
                    "occupancy-policy level-up transitions"),
      shrinks_(stats, "resize.occ_shrinks",
               "occupancy-policy level-down transitions")
{
}

void
OccupancyController::tick(Cycle now, const WindowOccupancy &occ)
{
    recordResidency();

    if (inTransition_ && now >= stallUntil_)
        inTransition_ = false;

    bool stop_alloc = false;

    if (pendingShrink_) {
        const ResourceLevel &target = table_.at(level_ - 1);
        if (occ.rob <= target.robSize && occ.iq <= target.iqSize &&
            occ.lsq <= target.lsqSize) {
            --level_;
            ++downs_;
            ++shrinks_;
            pendingShrink_ = false;
            if (cfg_.transitionPenalty > 0) {
                stallUntil_ = now + cfg_.transitionPenalty;
                inTransition_ = true;
            }
            if (timeline_) {
                timeline_->endDrainStall(now);
                timeline_->recordResize(
                    now, now + cfg_.transitionPenalty, level_ + 1,
                    level_);
            }
        } else {
            stop_alloc = true;
            if (timeline_)
                timeline_->beginDrainStall(now);
        }
    }

    ++periodCycles_;
    if (occ.allocStalledFull)
        ++periodStalls_;
    periodIqOccSum_ += occ.iq;

    if (periodCycles_ >= cfg_.samplePeriod) {
        double avg_iq = periodIqOccSum_ /
                        static_cast<double>(periodCycles_);
        if (periodStalls_ > cfg_.growStallThreshold &&
            level_ < table_.maxLevel()) {
            ++level_;
            ++ups_;
            ++enlargements_;
            pendingShrink_ = false;
            if (cfg_.transitionPenalty > 0) {
                stallUntil_ = now + cfg_.transitionPenalty;
                inTransition_ = true;
            }
            if (timeline_) {
                timeline_->endDrainStall(now);
                timeline_->recordResize(
                    now, now + cfg_.transitionPenalty, level_ - 1,
                    level_);
            }
        } else if (level_ > 1 && !pendingShrink_) {
            const ResourceLevel &target = table_.at(level_ - 1);
            if (avg_iq < target.iqSize * cfg_.shrinkHeadroom)
                pendingShrink_ = true;
        }
        periodCycles_ = 0;
        periodStalls_ = 0;
        periodIqOccSum_ = 0.0;
    }

    allocStopped_ = stop_alloc || inTransition_;
}

} // namespace mlpwin
