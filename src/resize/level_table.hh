/**
 * @file
 * Instruction-window resource levels (paper Table 2): per-level sizes
 * and pipeline depths for the IQ, ROB, and LSQ, plus the extra branch
 * misprediction penalty each level's deeper structures impose.
 */

#ifndef MLPWIN_RESIZE_LEVEL_TABLE_HH
#define MLPWIN_RESIZE_LEVEL_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace mlpwin
{

/** One instruction-window resource level = {size, pipeline depth}. */
struct ResourceLevel
{
    unsigned iqSize = 64;
    unsigned iqDepth = 1;
    unsigned robSize = 128;
    unsigned robDepth = 1;
    unsigned lsqSize = 64;
    unsigned lsqDepth = 1;

    /**
     * Extra branch misprediction penalty in cycles relative to the
     * base: one cycle per extra IQ pipeline stage (issue loop) plus
     * one cycle for the pipelined read of the enlarged ROB register
     * field (paper Sections 5.1, 5.3).
     */
    unsigned
    extraMispredictPenalty() const
    {
        unsigned extra = iqDepth - 1;
        if (robDepth > 1)
            extra += 1;
        return extra;
    }
};

/** The set of selectable levels, 1-based as in the paper. */
class LevelTable
{
  public:
    explicit LevelTable(std::vector<ResourceLevel> levels)
        : levels_(std::move(levels))
    {
        mlpwin_assert(!levels_.empty());
    }

    /** Paper Table 2: IQ 64/160/256, ROB 128/320/512, LSQ 64/160/256,
     *  depths 1/2/2. */
    static LevelTable
    paperDefault()
    {
        return LevelTable({
            ResourceLevel{64, 1, 128, 1, 64, 1},
            ResourceLevel{160, 2, 320, 2, 160, 2},
            ResourceLevel{256, 2, 512, 2, 256, 2},
        });
    }

    unsigned maxLevel() const
    {
        return static_cast<unsigned>(levels_.size());
    }

    /** Level numbers are 1-based (paper convention). */
    const ResourceLevel &
    at(unsigned level) const
    {
        mlpwin_assert(level >= 1 && level <= levels_.size());
        return levels_[level - 1];
    }

  private:
    std::vector<ResourceLevel> levels_;
};

} // namespace mlpwin

#endif // MLPWIN_RESIZE_LEVEL_TABLE_HH
