/**
 * @file
 * Instruction-window resize controllers.
 *
 * ResizeController is the interface the out-of-order core consults
 * every cycle; the three implementations are:
 *
 *  - FixedLevelController: the paper's "fixed size" and "ideal"
 *    models (a constant level, never transitions).
 *  - MlpAwareController: the paper's contribution (the Fig. 5
 *    algorithm). Each L2 demand miss enlarges the window one level;
 *    once a full memory latency passes without a miss, the window
 *    shrinks one level, waiting (with allocation stopped) until the
 *    occupancy fits the smaller size. Level transitions stall the
 *    core for a fixed penalty (10 cycles by default).
 *  - OccupancyController: a Ponomarev-style demand-driven policy
 *    (paper Section 6.2) used as an ablation baseline.
 */

#ifndef MLPWIN_RESIZE_CONTROLLER_HH
#define MLPWIN_RESIZE_CONTROLLER_HH

#include <algorithm>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "resize/level_table.hh"
#include "telemetry/timeline.hh"

namespace mlpwin
{

/** Occupancy snapshot the core passes to tick(). */
struct WindowOccupancy
{
    unsigned rob = 0;
    unsigned iq = 0;
    unsigned lsq = 0;
    /** Did the front-end stall this cycle because a queue was full? */
    bool allocStalledFull = false;
};

/** Per-level cycle residency, for the paper's Fig. 8. */
struct LevelResidency
{
    std::vector<std::uint64_t> cyclesAtLevel; // index 0 = level 1.
};

/** Interface consulted by the core each cycle; see file comment. */
class ResizeController
{
  public:
    explicit ResizeController(LevelTable table)
        : table_(std::move(table)),
          residency_{std::vector<std::uint64_t>(table_.maxLevel(), 0)}
    {}
    virtual ~ResizeController() = default;

    /** Called by the memory system on every L2 demand miss. */
    virtual void onL2DemandMiss(Cycle now) = 0;

    /**
     * Advance one cycle. Must be called exactly once per core cycle.
     * @param now Current cycle.
     * @param occ Current window occupancy.
     */
    virtual void tick(Cycle now, const WindowOccupancy &occ) = 0;

    /** Current level (1-based). */
    unsigned level() const { return level_; }

    /** Resource sizes/depths at the current level. */
    const ResourceLevel &current() const { return table_.at(level_); }

    const LevelTable &table() const { return table_; }

    /**
     * True if the front-end must not allocate window resources this
     * cycle (transition penalty in progress, or draining to shrink).
     */
    bool allocStopped() const { return allocStopped_; }

    /** True while a level transition penalty is being paid. */
    bool inTransition() const { return inTransition_; }

    const LevelResidency &residency() const { return residency_; }
    std::uint64_t upTransitions() const { return ups_; }
    std::uint64_t downTransitions() const { return downs_; }

    /**
     * Attach an event timeline recording grow/shrink transitions and
     * drain stalls (not owned; nullptr disables — one pointer test
     * per event site).
     */
    void setTimeline(EventTimeline *t) { timeline_ = t; }

    /** Zero residency/transition accounting (measurement-window start). */
    void
    resetMeasurement()
    {
        std::fill(residency_.cyclesAtLevel.begin(),
                  residency_.cyclesAtLevel.end(), 0);
        ups_ = 0;
        downs_ = 0;
    }

  protected:
    void
    recordResidency()
    {
        ++residency_.cyclesAtLevel[level_ - 1];
    }

    /** Owned: controllers outlive any caller-constructed table. */
    LevelTable table_;
    EventTimeline *timeline_ = nullptr;
    unsigned level_ = 1;
    bool allocStopped_ = false;
    bool inTransition_ = false;
    LevelResidency residency_;
    std::uint64_t ups_ = 0;
    std::uint64_t downs_ = 0;
};

/** Constant level; used by the fixed-size and ideal models. */
class FixedLevelController : public ResizeController
{
  public:
    FixedLevelController(const LevelTable &table, unsigned level)
        : ResizeController(table)
    {
        mlpwin_assert(level >= 1 && level <= table.maxLevel());
        level_ = level;
    }

    void onL2DemandMiss(Cycle) override {}

    void
    tick(Cycle, const WindowOccupancy &) override
    {
        recordResidency();
    }
};

/** Tunables of the MLP-aware controller. */
struct MlpControllerConfig
{
    /** Cycles without an L2 miss before shrinking (= memory latency). */
    unsigned memoryLatency = 300;
    /** Core stall cycles on each level transition (paper: 10). */
    unsigned transitionPenalty = 10;
};

/** The paper's Fig. 5 algorithm. */
class MlpAwareController : public ResizeController
{
  public:
    MlpAwareController(const LevelTable &table,
                       const MlpControllerConfig &cfg, StatSet *stats);

    void onL2DemandMiss(Cycle now) override;
    void tick(Cycle now, const WindowOccupancy &occ) override;

    /** True if shrinking to `level_ - 1` is possible at occupancy occ. */
    bool isShrinkable(const WindowOccupancy &occ) const;

    Cycle shrinkTiming() const { return shrinkTiming_; }

  private:
    void startTransition(Cycle now);

    MlpControllerConfig cfg_;
    Cycle shrinkTiming_ = kNoCycle;
    bool doShrink_ = false;
    Cycle stallUntil_ = 0;

    Counter enlargements_;
    Counter shrinks_;
    Counter drainStallCycles_;
};

/**
 * Ponomarev-style occupancy-driven resizing (paper Section 6.2):
 * grow when full-queue stalls exceed a threshold within a sample
 * period; shrink when average occupancy fits the next smaller level.
 * Deliberately MLP-blind — the ablation shows why that matters.
 */
struct OccupancyControllerConfig
{
    unsigned samplePeriod = 2048;
    /** Grow if full-stall cycles in the period exceed this. */
    unsigned growStallThreshold = 256;
    /** Shrink if avg IQ occupancy < smaller size * this factor. */
    double shrinkHeadroom = 0.9;
    unsigned transitionPenalty = 10;
};

/** See OccupancyControllerConfig. */
class OccupancyController : public ResizeController
{
  public:
    OccupancyController(const LevelTable &table,
                        const OccupancyControllerConfig &cfg,
                        StatSet *stats);

    void onL2DemandMiss(Cycle) override {}
    void tick(Cycle now, const WindowOccupancy &occ) override;

  private:
    OccupancyControllerConfig cfg_;
    Cycle stallUntil_ = 0;
    std::uint64_t periodCycles_ = 0;
    std::uint64_t periodStalls_ = 0;
    double periodIqOccSum_ = 0.0;
    bool pendingShrink_ = false;

    Counter enlargements_;
    Counter shrinks_;
};

} // namespace mlpwin

#endif // MLPWIN_RESIZE_CONTROLLER_HH
