/**
 * @file
 * Configuration for the virtual-memory subsystem: per-core L1
 * ITLB/DTLB geometry, the unified L2 TLB, page-table walk depth, and
 * the huge-page / fragmentation knobs of the per-workload page table.
 * Paging is off by default; a disabled MMU adds one branch per memory
 * access and leaves every simulated cycle bit-identical to a build
 * without the subsystem.
 */

#ifndef MLPWIN_VM_MMU_CONFIG_HH
#define MLPWIN_VM_MMU_CONFIG_HH

#include <cstdint>
#include <string>

namespace mlpwin
{
namespace vm
{

/** Base (small) page geometry: 4 KiB, matching MainMemory's pages. */
constexpr unsigned kPageShift = 12;
/** Huge-page geometry: 2 MiB (one whole last-level PT node). */
constexpr unsigned kHugePageShift = 21;
/** Radix fan-out per page-table level: 512 entries of 8 bytes. */
constexpr unsigned kPtIndexBits = 9;

/** Geometry and timing of one TLB. */
struct TlbConfig
{
    unsigned entries = 64;
    unsigned assoc = 4;
    /**
     * Cycles a hit adds to the access. The L1 TLBs default to 0
     * (looked up in parallel with the VIPT L1 cache index); the
     * unified L2 TLB adds its latency on every L1 TLB miss.
     */
    unsigned hitLatency = 0;
};

/** See file comment. */
struct MmuConfig
{
    /** Master switch; off preserves the pre-vm timing bit-exactly. */
    bool enabled = false;

    TlbConfig itlb{64, 4, 0};
    TlbConfig dtlb{64, 4, 0};
    TlbConfig stlb{1024, 8, 7};

    /**
     * Radix page-table depth for base (4 KiB) pages; huge pages stop
     * one level short. 4 matches x86-64's 4-level table.
     */
    unsigned walkLevels = 4;

    /** Back the workload with 2 MiB pages where not fragmented. */
    bool hugePages = false;

    /**
     * Physical-fragmentation knob: permille (0-1000) of huge-page
     * candidate regions demoted to 4 KiB pages. The demotion is a
     * deterministic hash of the region number, so a given workload
     * sees the same page layout on every run and host.
     */
    unsigned fragPermille = 0;

    /**
     * Opt-in resize trigger: report page-table-walk starts to the
     * window-resize controller exactly as L2 demand misses are
     * reported, so the window grows over walk stalls too.
     */
    bool resizeOnWalk = false;

    /**
     * Validate ranges; empty string when acceptable. The CLIs call
     * this after flag parsing and exit 2 on a non-empty answer.
     */
    std::string
    validate() const
    {
        auto checkTlb = [](const char *name, const TlbConfig &t)
            -> std::string {
            if (t.entries < 1 || t.entries > 1u << 20)
                return std::string(name) +
                       " entries must be in [1, 1048576]";
            if (t.assoc < 1 || t.assoc > t.entries)
                return std::string(name) +
                       " associativity must be in [1, entries]";
            if (t.entries % t.assoc != 0)
                return std::string(name) +
                       " entries must be a multiple of associativity";
            if (t.hitLatency > 100)
                return std::string(name) +
                       " hit latency must be <= 100 cycles";
            return "";
        };
        if (std::string e = checkTlb("itlb", itlb); !e.empty())
            return e;
        if (std::string e = checkTlb("dtlb", dtlb); !e.empty())
            return e;
        if (std::string e = checkTlb("stlb", stlb); !e.empty())
            return e;
        if (walkLevels < 2 || walkLevels > 5)
            return "walk levels must be in [2, 5]";
        if (fragPermille > 1000)
            return "fragmentation permille must be in [0, 1000]";
        return "";
    }
};

/**
 * End-of-run translation statistics mirrored into SimResult (the
 * live counters live in the owning StatSet as tlb.* / walk.*).
 */
struct VmStats
{
    std::uint64_t itlbAccesses = 0;
    std::uint64_t itlbMisses = 0;
    std::uint64_t dtlbAccesses = 0;
    std::uint64_t dtlbMisses = 0;
    std::uint64_t stlbAccesses = 0;
    std::uint64_t stlbMisses = 0;
    /** Page-table walks started (== stlbMisses; kept for clarity). */
    std::uint64_t walks = 0;
    /** Total cycles between walk start and last-level PTE arrival. */
    std::uint64_t walkCycles = 0;
    /** Individual PTE reads issued into the cache hierarchy. */
    std::uint64_t ptAccesses = 0;

    double
    avgWalkLatency() const
    {
        return walks ? static_cast<double>(walkCycles) /
                           static_cast<double>(walks)
                     : 0.0;
    }
};

} // namespace vm
} // namespace mlpwin

#endif // MLPWIN_VM_MMU_CONFIG_HH
