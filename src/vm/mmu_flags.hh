/**
 * @file
 * Shared command-line flag parsing for the vm subsystem, used by
 * mlpwin_cli and mlpwin_batch so both tools accept the identical
 * --paging / --tlb-* / --page-* / --resize-on-walk flag set with the
 * identical strict bounds (full-string numeric parse, usage-error
 * exit 2 on junk or out-of-range values, the parse.hh convention).
 */

#ifndef MLPWIN_VM_MMU_FLAGS_HH
#define MLPWIN_VM_MMU_FLAGS_HH

#include <string>

#include "common/parse.hh"
#include "vm/mmu_config.hh"

namespace mlpwin
{
namespace vm
{

/** Usage lines for the vm flag set (same wording in both tools). */
inline const char *
vmFlagsUsage()
{
    return
        "      --paging           simulate virtual memory: TLBs +\n"
        "                         hardware page-table walks through\n"
        "                         the cache hierarchy (default off)\n"
        "      --tlb-entries N    L1 I/D TLB entries, 1-1048576\n"
        "                         (default 64)\n"
        "      --tlb-assoc N      L1 I/D TLB associativity (default 4)\n"
        "      --tlb-stlb-entries N\n"
        "                         unified L2 TLB entries (default "
        "1024)\n"
        "      --tlb-stlb-assoc N L2 TLB associativity (default 8)\n"
        "      --tlb-stlb-latency N\n"
        "                         L2 TLB hit latency, cycles, 0-100\n"
        "                         (default 7)\n"
        "      --page-walk-levels N\n"
        "                         radix page-table depth, 2-5\n"
        "                         (default 4)\n"
        "      --page-huge        back the heap with 2 MiB pages\n"
        "                         (one fewer walk level)\n"
        "      --page-frag-permille N\n"
        "                         of those, N/1000 demoted to 4 KiB\n"
        "                         (fragmentation; 0-1000)\n"
        "      --resize-on-walk   let an outstanding TLB walk trigger\n"
        "                         window enlargement like an L2 miss\n";
}

/** True for vm flags that take no value. */
inline bool
isVmBoolFlag(const std::string &arg)
{
    return arg == "--paging" || arg == "--page-huge" ||
           arg == "--resize-on-walk";
}

/** True for vm flags that take one numeric value. */
inline bool
isVmValueFlag(const std::string &arg)
{
    return arg == "--tlb-entries" || arg == "--tlb-assoc" ||
           arg == "--tlb-stlb-entries" ||
           arg == "--tlb-stlb-assoc" ||
           arg == "--tlb-stlb-latency" ||
           arg == "--page-walk-levels" ||
           arg == "--page-frag-permille";
}

/**
 * Apply one vm flag to `vm`. For bool flags `value` is ignored.
 * @return False with a usage message in `err` when the value is junk
 *         or out of bounds; callers print it and exit 2.
 */
inline bool
applyVmFlag(const std::string &arg, const char *value, MmuConfig &vm,
            std::string &err)
{
    auto bounded = [&](unsigned lo, unsigned hi, unsigned &out) {
        if (!parseBoundedUnsigned(value, lo, hi, out)) {
            err = arg + ": expected an integer in [" +
                  std::to_string(lo) + ", " + std::to_string(hi) +
                  "], got '" + value + "'";
            return false;
        }
        return true;
    };

    if (arg == "--paging") {
        vm.enabled = true;
        return true;
    }
    if (arg == "--page-huge") {
        vm.hugePages = true;
        return true;
    }
    if (arg == "--resize-on-walk") {
        vm.resizeOnWalk = true;
        return true;
    }
    if (arg == "--tlb-entries") {
        if (!bounded(1, 1u << 20, vm.itlb.entries))
            return false;
        vm.dtlb.entries = vm.itlb.entries;
        return true;
    }
    if (arg == "--tlb-assoc") {
        if (!bounded(1, 1u << 20, vm.itlb.assoc))
            return false;
        vm.dtlb.assoc = vm.itlb.assoc;
        return true;
    }
    if (arg == "--tlb-stlb-entries")
        return bounded(1, 1u << 20, vm.stlb.entries);
    if (arg == "--tlb-stlb-assoc")
        return bounded(1, 1u << 20, vm.stlb.assoc);
    if (arg == "--tlb-stlb-latency")
        return bounded(0, 100, vm.stlb.hitLatency);
    if (arg == "--page-walk-levels")
        return bounded(2, 5, vm.walkLevels);
    if (arg == "--page-frag-permille")
        return bounded(0, 1000, vm.fragPermille);
    err = arg + ": not a vm flag";
    return false;
}

} // namespace vm
} // namespace mlpwin

#endif // MLPWIN_VM_MMU_FLAGS_HH
