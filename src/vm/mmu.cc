#include "vm/mmu.hh"

#include <algorithm>

namespace mlpwin
{
namespace vm
{

Mmu::Mmu(const MmuConfig &cfg, StatSet *stats)
    : cfg_(cfg),
      pt_(cfg),
      itlb_("tlb.itlb", cfg.itlb, stats),
      dtlb_("tlb.dtlb", cfg.dtlb, stats),
      stlb_("tlb.stlb", cfg.stlb, stats),
      walker_(pt_, stats)
{
}

TranslateResult
Mmu::translate(Tlb &l1, Addr va, Cycle now)
{
    const bool huge = pt_.isHuge(va);
    const std::uint64_t vpn =
        va >> (huge ? kHugePageShift : kPageShift);

    TlbLookup l1look = l1.lookup(vpn, huge, now);
    if (l1look.hit) {
        TranslateResult r;
        r.readyAt = l1look.readyAt;
        // A hit on an entry still waiting for its walk is a merge:
        // the access stalls behind the outstanding walk.
        if (l1look.readyAt > now)
            r.walkDoneAt = l1look.readyAt;
        return r;
    }

    TlbLookup l2look = stlb_.lookup(vpn, huge, now);
    if (l2look.hit) {
        Cycle ready =
            std::max(now + stlb_.hitLatency(), l2look.readyAt);
        l1.insert(vpn, huge, ready);
        TranslateResult r;
        r.readyAt = ready;
        if (l2look.readyAt > now + stlb_.hitLatency())
            r.walkDoneAt = ready; // Merged into an in-flight walk.
        return r;
    }

    // L2 TLB miss: start a hardware walk after the L2 TLB probe.
    if (listener_)
        listener_(va, now);
    Cycle done = walker_.walk(va, now + stlb_.hitLatency());
    stlb_.insert(vpn, huge, done);
    l1.insert(vpn, huge, done);
    TranslateResult r;
    r.readyAt = done;
    r.walkDoneAt = done;
    return r;
}

void
Mmu::warm(Tlb &l1, Addr va)
{
    const bool huge = pt_.isHuge(va);
    const std::uint64_t vpn =
        va >> (huge ? kHugePageShift : kPageShift);
    l1.warmTouch(vpn, huge);
    stlb_.warmTouch(vpn, huge);
}

VmStats
Mmu::stats() const
{
    VmStats s;
    s.itlbAccesses = itlb_.accesses();
    s.itlbMisses = itlb_.misses();
    s.dtlbAccesses = dtlb_.accesses();
    s.dtlbMisses = dtlb_.misses();
    s.stlbAccesses = stlb_.accesses();
    s.stlbMisses = stlb_.misses();
    s.walks = walker_.walks();
    s.walkCycles = walker_.walkCycles();
    s.ptAccesses = walker_.ptAccesses();
    return s;
}

} // namespace vm
} // namespace mlpwin
