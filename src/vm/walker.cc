#include "vm/walker.hh"

#include "common/logging.hh"

namespace mlpwin
{
namespace vm
{

PageWalker::PageWalker(const PageTable &pt, StatSet *stats)
    : pt_(pt),
      walks_(stats, "walk.walks", "page-table walks started"),
      walkCycles_(stats, "walk.cycles",
                  "total cycles from walk start to last PTE arrival"),
      ptAccesses_(stats, "walk.pt_accesses",
                  "PTE reads issued into the cache hierarchy")
{
}

Cycle
PageWalker::walk(Addr va, Cycle start)
{
    mlpwin_assert(issue_);
    PageWalkPath path = pt_.walkPath(va);
    Cycle t = start;
    for (unsigned level = 0; level < path.levels; ++level) {
        t = issue_(pt_.pteAddr(va, level), t);
        ++ptAccesses_;
    }
    ++walks_;
    walkCycles_ += t - start;
    return t;
}

} // namespace vm
} // namespace mlpwin
