/**
 * @file
 * The hardware page-table walker. A walk is a serialized chain of
 * PTE reads — each level's node address depends on the previous
 * level's entry — issued *through* the owning cache hierarchy via a
 * callback, so walk traffic occupies the L2 and the DRAM bus
 * alongside demand misses and prefetches. Upper-level nodes are hot
 * and hit in the L2 (a pocket of the real walker caches' benefit);
 * leaf PTEs of a pointer-chasing workload mostly go to DRAM, which is
 * exactly why TLB-miss-heavy phases show up as memory-level
 * parallelism the resize controller can act on.
 */

#ifndef MLPWIN_VM_WALKER_HH
#define MLPWIN_VM_WALKER_HH

#include <functional>

#include "common/stats.hh"
#include "common/types.hh"
#include "vm/page_table.hh"

namespace mlpwin
{
namespace vm
{

/**
 * Issues one PTE read into the memory system at cycle t and returns
 * the cycle its data arrives. Installed by the cache hierarchy.
 */
using PtIssueFn = std::function<Cycle(Addr addr, Cycle t)>;

/** See file comment. */
class PageWalker
{
  public:
    PageWalker(const PageTable &pt, StatSet *stats);

    void setIssuer(PtIssueFn fn) { issue_ = std::move(fn); }

    /**
     * Walk the table for the page containing va, starting at cycle
     * `start`. Serializes one PTE read per level.
     *
     * @return Cycle at which the translation is complete.
     */
    Cycle walk(Addr va, Cycle start);

    std::uint64_t walks() const { return walks_.value(); }
    std::uint64_t walkCycles() const { return walkCycles_.value(); }
    std::uint64_t ptAccesses() const { return ptAccesses_.value(); }

  private:
    const PageTable &pt_;
    PtIssueFn issue_;

    Counter walks_;
    Counter walkCycles_;
    Counter ptAccesses_;
};

} // namespace vm
} // namespace mlpwin

#endif // MLPWIN_VM_WALKER_HH
