#include "vm/tlb.hh"

#include <algorithm>

namespace mlpwin
{
namespace vm
{

Tlb::Tlb(const std::string &name, const TlbConfig &cfg, StatSet *stats)
    : assoc_(cfg.assoc),
      numSets_(cfg.entries / cfg.assoc),
      hitLatency_(cfg.hitLatency),
      entries_(static_cast<std::size_t>(cfg.entries)),
      accesses_(stats, name + ".accesses", "TLB probes"),
      misses_(stats, name + ".misses", "TLB probes that missed")
{
}

Tlb::Entry *
Tlb::find(std::uint64_t vpn, bool huge)
{
    std::size_t set = static_cast<std::size_t>(vpn) % numSets_;
    Entry *base = &entries_[set * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = base[w];
        if (e.valid && e.vpn == vpn && e.huge == huge)
            return &e;
    }
    return nullptr;
}

Tlb::Entry &
Tlb::victim(std::uint64_t vpn)
{
    std::size_t set = static_cast<std::size_t>(vpn) % numSets_;
    Entry *base = &entries_[set * assoc_];
    Entry *lru = base;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = base[w];
        if (!e.valid)
            return e;
        if (e.lruStamp < lru->lruStamp)
            lru = &e;
    }
    return *lru;
}

TlbLookup
Tlb::lookup(std::uint64_t vpn, bool huge, Cycle now)
{
    ++accesses_;
    if (Entry *e = find(vpn, huge)) {
        e->lruStamp = ++lruCounter_;
        return TlbLookup{true, std::max(e->ready, now)};
    }
    ++misses_;
    return TlbLookup{false, now};
}

void
Tlb::insert(std::uint64_t vpn, bool huge, Cycle ready_at)
{
    Entry &e = victim(vpn);
    e.vpn = vpn;
    e.valid = true;
    e.huge = huge;
    e.ready = ready_at;
    e.lruStamp = ++lruCounter_;
}

void
Tlb::warmTouch(std::uint64_t vpn, bool huge)
{
    if (Entry *e = find(vpn, huge)) {
        e->lruStamp = ++lruCounter_;
        return;
    }
    Entry &e = victim(vpn);
    e.vpn = vpn;
    e.valid = true;
    e.huge = huge;
    e.ready = 0;
    e.lruStamp = ++lruCounter_;
}

} // namespace vm
} // namespace mlpwin
