/**
 * @file
 * A set-associative, LRU translation lookaside buffer. Entries are
 * keyed by virtual page number and carry a readiness cycle so that a
 * page whose walk is still in flight behaves like a pending MSHR:
 * later accesses to the same page merge into the outstanding walk
 * instead of starting their own. Huge-page (2 MiB) translations live
 * in the same array, keyed by the huge-page number with a size flag.
 */

#ifndef MLPWIN_VM_TLB_HH
#define MLPWIN_VM_TLB_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "vm/mmu_config.hh"

namespace mlpwin
{
namespace vm
{

/** Result of a TLB probe. */
struct TlbLookup
{
    bool hit = false;
    /** Cycle at which the translation is usable (>= probe time for
     *  entries still waiting on their walk). */
    Cycle readyAt = 0;
};

/** See file comment. */
class Tlb
{
  public:
    /**
     * @param name Stat prefix, e.g. "tlb.dtlb".
     * @param cfg Geometry and timing (validated by the caller).
     * @param stats Owning stat set (may be nullptr).
     */
    Tlb(const std::string &name, const TlbConfig &cfg, StatSet *stats);

    unsigned hitLatency() const { return hitLatency_; }

    /**
     * Probe for a page translation and update LRU on hit.
     *
     * @param vpn Virtual page number (huge-page number for huge).
     * @param huge True when probing for a 2 MiB translation.
     * @param now Current cycle.
     */
    TlbLookup lookup(std::uint64_t vpn, bool huge, Cycle now);

    /**
     * Install a translation that becomes usable at ready_at (the walk
     * or L2-TLB fill time), evicting the set's LRU entry.
     */
    void insert(std::uint64_t vpn, bool huge, Cycle ready_at);

    /**
     * Functional-warming access: recency-update the entry if present,
     * install it ready-immediately if not. Counts no stats — the
     * access happens outside simulated time, mirroring
     * Cache::warmTouch during fast-forward.
     */
    void warmTouch(std::uint64_t vpn, bool huge);

    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    struct Entry
    {
        std::uint64_t vpn = 0;
        bool valid = false;
        bool huge = false;
        Cycle ready = 0;
        std::uint64_t lruStamp = 0;
    };

    Entry *find(std::uint64_t vpn, bool huge);
    Entry &victim(std::uint64_t vpn);

    unsigned assoc_;
    std::size_t numSets_;
    unsigned hitLatency_;
    std::uint64_t lruCounter_ = 0;

    std::vector<Entry> entries_; // numSets_ * assoc_, set-major.

    Counter accesses_;
    Counter misses_;
};

} // namespace vm
} // namespace mlpwin

#endif // MLPWIN_VM_TLB_HH
