/**
 * @file
 * The per-core MMU: L1 ITLB + DTLB, a unified L2 TLB, and the
 * hardware page-table walker, composed over the per-workload
 * PageTable. Translation is identity-preserving (PA == VA) — the MMU
 * only decides *when* a translation is available, never *what* it
 * maps to, so every functional structure (emulator, checker,
 * checkpoints, SMT address offsets) is untouched by paging.
 *
 * Latency model: an L1 TLB hit costs nothing extra (looked up in
 * parallel with the VIPT L1 cache index). An L1 miss that hits the
 * L2 TLB delays the access by the L2 TLB's latency. An L2 TLB miss
 * starts a page-table walk through the cache hierarchy; accesses to
 * a page whose walk is still outstanding merge into it, MSHR-style,
 * via the pending-ready L1 TLB entry installed at walk start.
 */

#ifndef MLPWIN_VM_MMU_HH
#define MLPWIN_VM_MMU_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "vm/mmu_config.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"
#include "vm/walker.hh"

namespace mlpwin
{
namespace vm
{

/** Outcome of one address translation. */
struct TranslateResult
{
    /** Cycle the translation is usable; the memory access begins
     *  here (== the request cycle on an L1 TLB hit). */
    Cycle readyAt = 0;
    /**
     * When the translation waits on a page-table walk (newly started
     * or merged into an outstanding one), the walk's completion
     * cycle; 0 otherwise. The core uses this to attribute head-stall
     * cycles to the tlb_walk CPI leaf.
     */
    Cycle walkDoneAt = 0;
};

/** Callback fired at each walk *start* (resize-on-walk trigger). */
using WalkListener = std::function<void(Addr, Cycle)>;

/** See file comment. */
class Mmu
{
  public:
    Mmu(const MmuConfig &cfg, StatSet *stats);

    bool enabled() const { return cfg_.enabled; }
    const MmuConfig &config() const { return cfg_; }

    /** Install the hierarchy's PTE-read issuer (required if enabled). */
    void setPtIssuer(PtIssueFn fn) { walker_.setIssuer(std::move(fn)); }

    /** Subscribe to walk starts (resize-on-walk; may be empty). */
    void setWalkListener(WalkListener fn) { listener_ = std::move(fn); }

    /** Translate a data access (load or store) requested at `now`. */
    TranslateResult
    translateData(Addr va, Cycle now)
    {
        return translate(dtlb_, va, now);
    }

    /** Translate an instruction fetch requested at `now`. */
    TranslateResult
    translateInst(Addr va, Cycle now)
    {
        return translate(itlb_, va, now);
    }

    /** Functional warming of the data-side TLBs (fast-forward). */
    void warmData(Addr va) { warm(dtlb_, va); }
    /** Functional warming of the instruction-side TLBs. */
    void warmInst(Addr va) { warm(itlb_, va); }

    /** End-of-run statistics snapshot for SimResult. */
    VmStats stats() const;

    const Tlb &itlb() const { return itlb_; }
    const Tlb &dtlb() const { return dtlb_; }
    const Tlb &stlb() const { return stlb_; }
    const PageTable &pageTable() const { return pt_; }

  private:
    TranslateResult translate(Tlb &l1, Addr va, Cycle now);
    void warm(Tlb &l1, Addr va);

    MmuConfig cfg_;
    PageTable pt_;
    Tlb itlb_;
    Tlb dtlb_;
    Tlb stlb_;
    PageWalker walker_;
    WalkListener listener_;
};

} // namespace vm
} // namespace mlpwin

#endif // MLPWIN_VM_MMU_HH
