#include "vm/page_table.hh"

namespace mlpwin
{
namespace vm
{

namespace
{

/** FNV-1a over two words; the deterministic node/demotion hash. */
std::uint64_t
hash2(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t v : {a, b}) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
    return h;
}

/** Node frames available in the reserved region (1 GiB of table). */
constexpr std::uint64_t kPtNodeMask = (1ULL << 18) - 1;

} // namespace

PageTable::PageTable(const MmuConfig &cfg)
    : walkLevels_(cfg.walkLevels),
      hugePages_(cfg.hugePages),
      fragPermille_(cfg.fragPermille)
{
}

bool
PageTable::isHuge(Addr va) const
{
    if (!hugePages_)
        return false;
    if (fragPermille_ == 0)
        return true;
    // Deterministic demotion: the same 2 MiB region fragments on
    // every run and host.
    std::uint64_t region = va >> kHugePageShift;
    return hash2(region, 0x9e3779b97f4a7c15ULL) % 1000 >=
           fragPermille_;
}

PageWalkPath
PageTable::walkPath(Addr va) const
{
    PageWalkPath p;
    p.huge = isHuge(va);
    p.levels = p.huge ? walkLevels_ - 1 : walkLevels_;
    return p;
}

Addr
PageTable::pteAddr(Addr va, unsigned level) const
{
    // The radix index path: level 0 consumes the most-significant
    // kPtIndexBits of the VPN, the last level the least-significant.
    std::uint64_t vpn = va >> kPageShift;
    unsigned shift = kPtIndexBits * (walkLevels_ - 1 - level);
    std::uint64_t prefix = vpn >> shift;
    // The node holding this entry is identified by its level and the
    // index path above it; its frame is a hash-scattered page in the
    // reserved region. Entry offset within the node is the radix
    // index at this level.
    std::uint64_t node = hash2(level, prefix >> kPtIndexBits);
    std::uint64_t index = prefix & ((1ULL << kPtIndexBits) - 1);
    return kPtRegionBase + ((node & kPtNodeMask) << kPageShift) +
           index * 8;
}

} // namespace vm
} // namespace mlpwin
