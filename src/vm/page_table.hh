/**
 * @file
 * The per-workload radix page table the hardware walker traverses.
 *
 * Translation is identity-preserving (physical address == virtual
 * address), mirroring how MainMemory demand-allocates its sparse
 * 4 KiB pages over the flat 64-bit space: a page "exists" the moment
 * it is touched, so the table conceptually maps every touched page
 * 1:1. What the timing model needs from the table is therefore not
 * the mapping itself but the *addresses of the page-table entries*
 * a hardware walk would read on the way to it. Those PTE addresses
 * are computed deterministically (an FNV hash of the node's position
 * in the radix tree) inside a reserved high region of the address
 * space that no workload or SMT thread offset can reach, and they are
 * only ever used for timing accesses through the cache hierarchy —
 * page-table contents are never written into functional memory, so
 * the lockstep checker's end-of-run memory diff, checkpoints, and the
 * fuzzer all see exactly the images they saw before paging existed.
 *
 * Huge pages: with hugePages enabled, each 2 MiB-aligned region is
 * backed by one huge page — walks stop one level early and the TLBs
 * cache one entry per region — unless the region is demoted to 4 KiB
 * pages by the fragmentation knob (a deterministic hash of the region
 * number against fragPermille), modeling a fragmented physical
 * memory that can no longer back every region with a huge page.
 */

#ifndef MLPWIN_VM_PAGE_TABLE_HH
#define MLPWIN_VM_PAGE_TABLE_HH

#include <cstdint>

#include "common/types.hh"
#include "vm/mmu_config.hh"

namespace mlpwin
{
namespace vm
{

/**
 * Base of the reserved page-table region. Workload addresses live
 * below 2^40 and SMT thread offsets add at most (nThreads-1) << 40
 * (smt_config.hh), so bit 62 is untouchable by any program address.
 */
constexpr Addr kPtRegionBase = 1ULL << 62;

/** Static description of one translation. */
struct PageWalkPath
{
    /** Number of PTE reads the walk performs (serialized). */
    unsigned levels = 0;
    /** True when the translation is a 2 MiB huge page. */
    bool huge = false;
};

/** See file comment. */
class PageTable
{
  public:
    explicit PageTable(const MmuConfig &cfg);

    /** True when va is backed by a (non-demoted) 2 MiB page. */
    bool isHuge(Addr va) const;

    /** The walk shape for the page containing va. */
    PageWalkPath walkPath(Addr va) const;

    /**
     * Address of the PTE read at walk depth `level` (0 = root) for
     * the page containing va. Distinct radix nodes map to distinct
     * (hash-scattered) page-aligned node frames in the reserved
     * region; the entry's offset within its node is the radix index,
     * so adjacent pages share node lines exactly as a real table's
     * locality would have them do.
     */
    Addr pteAddr(Addr va, unsigned level) const;

  private:
    unsigned walkLevels_;
    bool hugePages_;
    unsigned fragPermille_;
};

} // namespace vm
} // namespace mlpwin

#endif // MLPWIN_VM_PAGE_TABLE_HH
