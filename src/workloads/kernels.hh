/**
 * @file
 * Parameterized workload kernel generators.
 *
 * Each generator emits a small mini-ISA program (via the Assembler)
 * whose memory-access, dependence, and branch structure imitates one
 * class of SPEC CPU2006 behaviour (see DESIGN.md for the mapping):
 *
 *  - makeGather: independent irregular loads over a large table
 *    (abundant MLP for a large window; prefetcher-resistant).
 *  - makeChase: pointer chasing over K parallel linked lists
 *    (serial misses; MLP bounded by K regardless of window size).
 *  - makeStream: multi-stream sequential/strided sweeps (stride
 *    prefetcher territory; bandwidth-bound).
 *  - makeSpmv: CSR sparse matrix-vector product (bursty, clustered
 *    misses through the dense-vector gather).
 *  - makePhaseMix: alternating gather-heavy and compute-heavy phases
 *    (the omnetpp case where adaptivity beats any fixed size).
 *  - makeIntMix: integer compute with tunable branch hardness and an
 *    optional small cached table.
 *  - makeFpMix: floating-point compute with tunable ILP and long-
 *    latency op fraction.
 *  - makeMatmul: blocked cache-resident matrix multiply.
 *  - makeDispatch: indirect-jump interpreter dispatch loop.
 *
 * Every generator takes an iteration count; the emitted program
 * executes that many outer iterations and halts, so tests can run
 * tiny instances to completion while benchmarks run effectively
 * unbounded ones under an instruction budget.
 */

#ifndef MLPWIN_WORKLOADS_KERNELS_HH
#define MLPWIN_WORKLOADS_KERNELS_HH

#include <cstdint>
#include <string>

#include "isa/program.hh"

namespace mlpwin
{

/** Parameters for makeGather. */
struct GatherParams
{
    /** Size of the gathered table, in 8-byte words (power of two). */
    std::uint64_t tableWords = 1 << 21; // 16 MiB.
    /**
     * Second-level table words; 0 selects depth-1 gather. Depth 2
     * models hash-bucket probing (xalancbmk-like).
     */
    std::uint64_t table2Words = 0;
    /** Size of the sequential index array, words (power of two). */
    std::uint64_t idxWords = 1 << 16;
    /** Integer filler ops per element (controls insts per miss). */
    unsigned intOps = 10;
    /** FP filler ops per element. */
    unsigned fpOps = 0;
    /**
     * Emit one data-dependent (50/50) branch per element group on the
     * loaded value: models the value-dependent control of soplex /
     * sphinx3 / omnetpp (paper Table 5) and feeds wrong-path cache
     * traffic into the Fig. 11 study.
     */
    bool hardBranch = false;
    std::uint64_t seed = 1;
};

Program makeGather(const std::string &name, const GatherParams &p,
                   std::uint64_t iterations);

/** Parameters for makeChase. */
struct ChaseParams
{
    /** Number of independent chains walked in parallel (<= 4). */
    unsigned chains = 4;
    /** Nodes per chain; nodes are 64 B (one per cache line). */
    std::uint64_t nodesPerChain = 1 << 16;
    /** Integer filler ops per hop. */
    unsigned hopOps = 6;
    std::uint64_t seed = 2;
};

Program makeChase(const std::string &name, const ChaseParams &p,
                  std::uint64_t iterations);

/** Parameters for makeStream. */
struct StreamParams
{
    /** Number of concurrent streams (<= 4). */
    unsigned streams = 3;
    /** Words per stream (power of two). */
    std::uint64_t wordsPerStream = 1 << 21;
    /** Stride between consecutive accesses, in words. */
    unsigned strideWords = 8;
    /** FP ops per element (0 selects integer combining). */
    unsigned fpOps = 4;
    /** Emit a store per iteration to the first stream. */
    bool withStore = true;
    std::uint64_t seed = 3;
};

Program makeStream(const std::string &name, const StreamParams &p,
                   std::uint64_t iterations);

/** Parameters for makeSpmv. */
struct SpmvParams
{
    /** Dense vector words (power of two); gathered irregularly. */
    std::uint64_t xWords = 1 << 22; // 32 MiB.
    /** Nonzeros per row (unrolled inner loop). */
    unsigned nnzPerRow = 8;
    /** Column-index array words (power of two). */
    std::uint64_t colWords = 1 << 18;
    /** One data-dependent branch per row (see GatherParams). */
    bool hardBranch = false;
    std::uint64_t seed = 4;
};

Program makeSpmv(const std::string &name, const SpmvParams &p,
                 std::uint64_t iterations);

/** Parameters for makePhaseMix. */
struct PhaseMixParams
{
    GatherParams gather;
    /** Gather elements per memory phase. */
    unsigned gathersPerPhase = 48;
    /** Dependent integer ops per compute phase. */
    unsigned computeOpsPerPhase = 2400;
    /** Integer ops between compute-phase branches. */
    unsigned computeOpsPerBranch = 24;
};

Program makePhaseMix(const std::string &name, const PhaseMixParams &p,
                     std::uint64_t iterations);

/** Parameters for makeIntMix. */
struct IntMixParams
{
    /** Independent integer dependence chains (ILP), <= 4. */
    unsigned ilpChains = 3;
    /** Ops per chain per iteration. */
    unsigned opsPerChain = 6;
    /**
     * Data-dependent branch from a PRNG bit: probability the branch
     * is taken is hardTakenNum / hardTakenDen; 50/50 is maximally
     * hard for gshare. Set hardTakenDen = 0 to omit the hard branch.
     */
    unsigned hardTakenNum = 1;
    unsigned hardTakenDen = 2;
    /** Optional small table gathered per iteration (KiB, pow2; 0=off). */
    std::uint64_t tableKiB = 0;
    std::uint64_t seed = 5;
};

Program makeIntMix(const std::string &name, const IntMixParams &p,
                   std::uint64_t iterations);

/** Parameters for makeFpMix. */
struct FpMixParams
{
    /** Independent FP dependence chains (ILP), <= 6. */
    unsigned ilpChains = 4;
    /** fadd/fmul ops per chain per iteration. */
    unsigned opsPerChain = 4;
    /** Emit one fdiv per iteration. */
    bool withDiv = false;
    /** Emit one fsqrt per iteration. */
    bool withSqrt = false;
    /** Optional cache-resident stream (KiB, power of two; 0 = off). */
    std::uint64_t streamKiB = 0;
    std::uint64_t seed = 6;
};

Program makeFpMix(const std::string &name, const FpMixParams &p,
                  std::uint64_t iterations);

/** Parameters for makeMatmul. */
struct MatmulParams
{
    /** Matrix dimension; 3 n^2 doubles must fit in the L1/L2. */
    unsigned n = 24;
    std::uint64_t seed = 7;
};

Program makeMatmul(const std::string &name, const MatmulParams &p,
                   std::uint64_t iterations);

/** Parameters for makeTreeSearch. */
struct TreeSearchParams
{
    /** Sorted-array words (power of two; the implicit tree). */
    std::uint64_t arrayWords = 1 << 20; // 8 MiB.
    /** Independent searches advanced in lock-step (<= 4). */
    unsigned parallelSearches = 4;
    /** Integer filler ops per comparison step. */
    unsigned stepOps = 2;
    std::uint64_t seed = 9;
};

/**
 * Binary searches over a large sorted array: log-depth *dependent*
 * load chains (each probe's address depends on the previous
 * comparison), with MLP bounded by parallelSearches — a structure
 * between makeGather (fully independent) and makeChase (fully
 * serial).
 */
Program makeTreeSearch(const std::string &name,
                       const TreeSearchParams &p,
                       std::uint64_t iterations);

/** Parameters for makeButterfly. */
struct ButterflyParams
{
    /** Data words (power of two). */
    std::uint64_t words = 1 << 19; // 4 MiB.
    /** log2(words) butterfly stages are swept per outer iteration. */
    unsigned fpOpsPerPair = 4;
    std::uint64_t seed = 10;
};

/**
 * FFT-style butterfly sweeps: pairs at power-of-two distances are
 * loaded, combined, and stored back. Power-of-two strides antagonize
 * set-indexed caches and the stride prefetcher's spacing.
 */
Program makeButterfly(const std::string &name, const ButterflyParams &p,
                      std::uint64_t iterations);

/** Parameters for makeDispatch. */
struct DispatchParams
{
    /** Number of distinct handlers in the jump table (power of 2). */
    unsigned handlers = 8;
    /** Integer ops per handler body. */
    unsigned handlerOps = 12;
    /** Opcode-stream words (power of two). */
    std::uint64_t opstreamWords = 1 << 14;
    std::uint64_t seed = 8;
};

Program makeDispatch(const std::string &name, const DispatchParams &p,
                     std::uint64_t iterations);

} // namespace mlpwin

#endif // MLPWIN_WORKLOADS_KERNELS_HH
