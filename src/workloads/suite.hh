/**
 * @file
 * The SPEC CPU2006-like workload suite: 28 named programs (12 int +
 * 16 fp, wrf excluded, matching the paper's Table 3 list), each built
 * from a kernel generator parameterized to imitate the corresponding
 * program's memory/branch behaviour. See DESIGN.md for the mapping
 * rationale.
 */

#ifndef MLPWIN_WORKLOADS_SUITE_HH
#define MLPWIN_WORKLOADS_SUITE_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace mlpwin
{

/** One suite entry. */
struct WorkloadSpec
{
    std::string name;
    /** Expected category per the paper's Table 3 (load lat >= 10). */
    bool memIntensive = false;
    /** Integer (true) vs floating-point (false) suite half. */
    bool isInt = false;
    /**
     * Build the program with a given outer-iteration budget. Bench
     * runs pass a huge count and stop on an instruction budget;
     * tests pass small counts and run to Halt.
     */
    std::function<Program(std::uint64_t iterations)> make;
};

/** All 28 programs. Order matches the paper's Table 3. */
const std::vector<WorkloadSpec> &spec2006Suite();

/** Find a suite entry by name; nullptr if absent. */
const WorkloadSpec *tryFindWorkload(const std::string &name);

/** Comma-separated list of every suite name (error messages). */
std::string suiteWorkloadNames();

/**
 * Find a suite entry by name.
 *
 * @throws SimError{InvalidArgument} listing the valid names if
 *         absent, so one typo in a batch's workload list is a
 *         recoverable per-batch error, not process death.
 */
const WorkloadSpec &findWorkload(const std::string &name);

/** The 8 memory-intensive programs shown in the paper's Fig. 7. */
std::vector<std::string> selectedMemPrograms();

/** The 6 compute-intensive programs shown in the paper's Fig. 7. */
std::vector<std::string> selectedCompPrograms();

} // namespace mlpwin

#endif // MLPWIN_WORKLOADS_SUITE_HH
