#include "kernels.hh"

#include <bit>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/assembler.hh"

namespace mlpwin
{

namespace
{

constexpr RegId X0 = intReg(0);

/** Check n is a nonzero power of two. */
bool
pow2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/**
 * Emit n integer filler ops forming two interleaved dependence
 * chains on c1/c2, mixing in `mix` so the work is not trivially dead.
 */
void
emitIntFiller(Assembler &a, unsigned n, RegId c1, RegId c2, RegId mix)
{
    for (unsigned i = 0; i < n; ++i) {
        switch (i % 4) {
          case 0:
            a.addi(c1, c1, 13);
            break;
          case 1:
            a.xor_(c2, c2, mix);
            break;
          case 2:
            a.sub(c2, c2, c1);
            break;
          default:
            a.xor_(c1, c1, c2);
            break;
        }
    }
}

/** Emit n FP filler ops on chains f3/f4 using constants f1/f2. */
void
emitFpFiller(Assembler &a, unsigned n)
{
    const RegId f1 = fpReg(1), f2 = fpReg(2);
    const RegId f3 = fpReg(3), f4 = fpReg(4);
    for (unsigned i = 0; i < n; ++i) {
        switch (i % 4) {
          case 0:
            a.fadd(f3, f3, f1);
            break;
          case 1:
            a.fmul(f4, f4, f2);
            break;
          case 2:
            a.fsub(f3, f3, f2);
            break;
          default:
            a.fadd(f4, f4, f1);
            break;
        }
    }
}

/** Seed fp constant/chain registers f1..f4 from small integers. */
void
seedFpRegs(Assembler &a)
{
    a.addi(intReg(5), X0, 3);
    a.fcvt(fpReg(1), intReg(5));
    a.addi(intReg(5), X0, 2);
    a.fcvt(fpReg(2), intReg(5));
    a.fcvt(fpReg(3), intReg(5));
    a.fcvt(fpReg(4), intReg(5));
}

/** Emit the standard countdown epilogue: store acc, halt. */
void
emitEpilogue(Assembler &a, Addr sink, RegId acc)
{
    a.li(intReg(9), sink);
    a.st(acc, intReg(9), 0);
    a.halt();
}

} // namespace

Program
makeGather(const std::string &name, const GatherParams &p,
           std::uint64_t iterations)
{
    mlpwin_assert(pow2(p.tableWords) && pow2(p.idxWords));
    mlpwin_assert(p.table2Words == 0 || pow2(p.table2Words));

    Assembler a(name);
    Rng rng(p.seed);

    const bool depth2 = p.table2Words != 0;

    std::vector<std::uint64_t> idx(p.idxWords);
    for (auto &v : idx)
        v = rng.below(p.tableWords) * 8;
    Addr idx_base = a.allocData(idx, 64);

    Addr t1_base;
    if (depth2) {
        std::vector<std::uint64_t> t1(p.tableWords);
        for (auto &v : t1)
            v = rng.below(p.table2Words) * 8;
        t1_base = a.allocData(t1, 64);
    } else {
        // Initialized random payload: keeps the table pages resident
        // in functional memory and the accumulator value non-trivial.
        std::vector<std::uint64_t> t1(p.tableWords);
        for (auto &v : t1)
            v = rng.next();
        t1_base = a.allocData(t1, 64);
    }
    Addr t2_base = depth2 ? a.allocBss(p.table2Words * 8, 64) : 0;
    Addr sink = a.allocBss(8);

    const RegId idxb = intReg(10), t1b = intReg(11), t2b = intReg(12);
    const RegId cur = intReg(13), mask = intReg(14), ptr = intReg(15);
    const RegId acc = intReg(20), c1 = intReg(21), c2 = intReg(22);
    const RegId cnt = intReg(29);

    a.li(idxb, idx_base);
    a.li(t1b, t1_base);
    if (depth2)
        a.li(t2b, t2_base);
    a.li(cur, 0);
    a.li(mask, p.idxWords * 8 - 1);
    a.li(cnt, iterations);
    if (p.fpOps > 0)
        seedFpRegs(a);

    Label top = a.here();
    a.add(ptr, idxb, cur);
    for (unsigned u = 0; u < 4; ++u) {
        const RegId off = intReg(5), ea = intReg(16);
        const RegId val = intReg(17);
        a.ld(off, ptr, static_cast<std::int32_t>(u * 8));
        a.add(ea, t1b, off);
        a.ld(val, ea, 0);
        if (depth2) {
            const RegId ea2 = intReg(18), val2 = intReg(19);
            a.add(ea2, t2b, val);
            a.ld(val2, ea2, 0);
            a.add(acc, acc, val2);
        } else {
            a.add(acc, acc, val);
        }
        if (p.hardBranch && u == 0 && !depth2) {
            // 50/50 branch on the loaded value (random table data).
            Label skip = a.newLabel();
            a.andi(intReg(6), val, 1);
            a.beq(intReg(6), X0, skip);
            a.addi(acc, acc, 13);
            a.bind(skip);
        }
        emitIntFiller(a, p.intOps, c1, c2, acc);
        emitFpFiller(a, p.fpOps);
    }
    a.addi(cur, cur, 32);
    a.and_(cur, cur, mask);
    a.addi(cnt, cnt, -1);
    a.bne(cnt, X0, top);

    emitEpilogue(a, sink, acc);
    return a.finalize();
}

Program
makeChase(const std::string &name, const ChaseParams &p,
          std::uint64_t iterations)
{
    mlpwin_assert(p.chains >= 1 && p.chains <= 4);
    mlpwin_assert(p.nodesPerChain >= 2);

    Assembler a(name);
    Rng rng(p.seed);

    constexpr std::uint64_t kNodeBytes = 64;
    std::vector<Addr> chain_base(p.chains);

    for (unsigned c = 0; c < p.chains; ++c) {
        Addr base = a.allocBss(p.nodesPerChain * kNodeBytes, 64);
        chain_base[c] = base;

        // Random cyclic permutation: node perm[i] -> node perm[i+1].
        std::vector<std::uint64_t> perm(p.nodesPerChain);
        for (std::uint64_t i = 0; i < p.nodesPerChain; ++i)
            perm[i] = i;
        for (std::uint64_t i = p.nodesPerChain - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.below(i + 1)]);

        std::vector<std::uint64_t> mem(p.nodesPerChain * 8, 0);
        for (std::uint64_t i = 0; i < p.nodesPerChain; ++i) {
            std::uint64_t next = perm[(i + 1) % p.nodesPerChain];
            mem[perm[i] * 8] = base + next * kNodeBytes;
        }
        a.initData(base, mem);
    }

    Addr sink = a.allocBss(8);

    const RegId acc = intReg(20), c1 = intReg(21), c2 = intReg(22);
    const RegId cnt = intReg(29);

    for (unsigned c = 0; c < p.chains; ++c)
        a.li(intReg(10 + c), chain_base[c]);
    a.li(cnt, iterations);

    Label top = a.here();
    for (unsigned c = 0; c < p.chains; ++c)
        a.ld(intReg(10 + c), intReg(10 + c), 0); // Serial hop.
    emitIntFiller(a, p.hopOps * p.chains, c1, c2, acc);
    a.add(acc, acc, intReg(10));
    a.addi(cnt, cnt, -1);
    a.bne(cnt, X0, top);

    emitEpilogue(a, sink, acc);
    return a.finalize();
}

Program
makeStream(const std::string &name, const StreamParams &p,
           std::uint64_t iterations)
{
    mlpwin_assert(p.streams >= 1 && p.streams <= 4);
    mlpwin_assert(pow2(p.wordsPerStream));

    Assembler a(name);

    std::vector<Addr> base(p.streams);
    for (unsigned s = 0; s < p.streams; ++s)
        base[s] = a.allocBss(p.wordsPerStream * 8, 64);
    Addr sink = a.allocBss(8);

    const bool fp = p.fpOps > 0;
    const RegId cur = intReg(24), mask = intReg(25), ea = intReg(26);
    const RegId acc = intReg(20), c1 = intReg(21), c2 = intReg(22);
    const RegId cnt = intReg(29);
    const RegId facc = fpReg(10);

    for (unsigned s = 0; s < p.streams; ++s)
        a.li(intReg(10 + s), base[s]);
    a.li(cur, 0);
    a.li(mask, p.wordsPerStream * 8 - 1);
    a.li(cnt, iterations);
    if (fp) {
        seedFpRegs(a);
        a.fcvt(facc, X0);
    }

    Label top = a.here();
    RegId s0_ea = intReg(27);
    for (unsigned s = 0; s < p.streams; ++s) {
        a.add(ea, intReg(10 + s), cur);
        if (s == 0)
            a.mov(s0_ea, ea);
        if (fp) {
            a.fld(fpReg(20 + s), ea, 0);
            a.fadd(facc, facc, fpReg(20 + s));
        } else {
            a.ld(intReg(16 + s + 1), ea, 0);
            a.add(acc, acc, intReg(16 + s + 1));
        }
    }
    if (fp) {
        emitFpFiller(a, p.fpOps);
    } else {
        emitIntFiller(a, 4, c1, c2, acc);
        a.add(acc, acc, c1);
    }
    if (p.withStore) {
        if (fp)
            a.fst(facc, s0_ea, 0);
        else
            a.st(acc, s0_ea, 0);
    }
    a.addi(cur, cur, static_cast<std::int32_t>(p.strideWords * 8));
    a.and_(cur, cur, mask);
    a.addi(cnt, cnt, -1);
    a.bne(cnt, X0, top);

    emitEpilogue(a, sink, acc);
    return a.finalize();
}

Program
makeSpmv(const std::string &name, const SpmvParams &p,
         std::uint64_t iterations)
{
    mlpwin_assert(pow2(p.xWords) && pow2(p.colWords));
    mlpwin_assert(p.nnzPerRow >= 1 && p.nnzPerRow <= 16);

    Assembler a(name);
    Rng rng(p.seed);

    std::vector<std::uint64_t> col(p.colWords);
    for (auto &v : col)
        v = rng.below(p.xWords) * 8;
    Addr col_base = a.allocData(col, 64);
    // Dense vector and matrix values: small positive doubles, so the
    // row dot products are well-behaved and value-dependent control
    // (hardBranch) sees effectively random parities.
    auto random_doubles = [&rng](std::uint64_t n) {
        std::vector<std::uint64_t> words(n);
        for (auto &w : words) {
            double d = 1.0 + rng.real() * 14.0;
            w = std::bit_cast<std::uint64_t>(d);
        }
        return words;
    };
    Addr x_base = a.allocData(random_doubles(p.xWords), 64);
    Addr val_base = a.allocData(random_doubles(p.colWords), 64);
    Addr sink = a.allocBss(8);

    const RegId colb = intReg(10), xb = intReg(11), valb = intReg(12);
    const RegId cur = intReg(13), mask = intReg(14);
    const RegId cp = intReg(15), vp = intReg(16);
    const RegId acc = intReg(20);
    const RegId cnt = intReg(29);
    const RegId frow = fpReg(10);

    a.li(colb, col_base);
    a.li(xb, x_base);
    a.li(valb, val_base);
    a.li(cur, 0);
    a.li(mask, p.colWords * 8 - 1);
    a.li(cnt, iterations);
    seedFpRegs(a);

    Label top = a.here(); // One row per iteration.
    a.fcvt(frow, X0);     // Row accumulator = 0.
    a.add(cp, colb, cur);
    a.add(vp, valb, cur);
    for (unsigned u = 0; u < p.nnzPerRow; ++u) {
        const RegId off = intReg(5), ea = intReg(17);
        a.ld(off, cp, static_cast<std::int32_t>(u * 8));
        a.add(ea, xb, off);
        a.fld(fpReg(20), ea, 0);
        a.fld(fpReg(21), vp, static_cast<std::int32_t>(u * 8));
        a.fmul(fpReg(22), fpReg(20), fpReg(21));
        a.fadd(frow, frow, fpReg(22));
    }
    a.fcvti(intReg(18), frow);
    a.add(acc, acc, intReg(18));
    if (p.hardBranch) {
        // 50/50 branch on the row sum's parity.
        Label skip = a.newLabel();
        a.andi(intReg(19), intReg(18), 1);
        a.beq(intReg(19), X0, skip);
        a.addi(acc, acc, 7);
        a.bind(skip);
    }
    a.addi(cur, cur, static_cast<std::int32_t>(p.nnzPerRow * 8));
    a.and_(cur, cur, mask);
    a.addi(cnt, cnt, -1);
    a.bne(cnt, X0, top);

    emitEpilogue(a, sink, acc);
    return a.finalize();
}

Program
makePhaseMix(const std::string &name, const PhaseMixParams &p,
             std::uint64_t iterations)
{
    const GatherParams &g = p.gather;
    mlpwin_assert(pow2(g.tableWords) && pow2(g.idxWords));
    mlpwin_assert(p.gathersPerPhase % 4 == 0);
    mlpwin_assert(p.computeOpsPerBranch > 0);

    Assembler a(name);
    Rng rng(g.seed);

    std::vector<std::uint64_t> idx(g.idxWords);
    for (auto &v : idx)
        v = rng.below(g.tableWords) * 8;
    Addr idx_base = a.allocData(idx, 64);
    Addr t1_base = a.allocBss(g.tableWords * 8, 64);
    Addr sink = a.allocBss(8);

    const RegId idxb = intReg(10), t1b = intReg(11);
    const RegId cur = intReg(13), mask = intReg(14), ptr = intReg(15);
    const RegId acc = intReg(20), c1 = intReg(21), c2 = intReg(22);
    const RegId inner = intReg(28), cnt = intReg(29);

    a.li(idxb, idx_base);
    a.li(t1b, t1_base);
    a.li(cur, 0);
    a.li(mask, g.idxWords * 8 - 1);
    a.li(cnt, iterations);

    Label top = a.here();

    // --- memory phase: gathersPerPhase independent irregular loads.
    a.li(inner, p.gathersPerPhase / 4);
    Label mem_loop = a.here();
    a.add(ptr, idxb, cur);
    for (unsigned u = 0; u < 4; ++u) {
        const RegId off = intReg(5), ea = intReg(16);
        const RegId val = intReg(17);
        a.ld(off, ptr, static_cast<std::int32_t>(u * 8));
        a.add(ea, t1b, off);
        a.ld(val, ea, 0);
        a.add(acc, acc, val);
        emitIntFiller(a, g.intOps, c1, c2, acc);
    }
    a.addi(cur, cur, 32);
    a.and_(cur, cur, mask);
    a.addi(inner, inner, -1);
    a.bne(inner, X0, mem_loop);

    // --- compute phase: dependent integer work, no LLC misses.
    unsigned blocks = p.computeOpsPerPhase / p.computeOpsPerBranch;
    a.li(inner, blocks > 0 ? blocks : 1);
    Label comp_loop = a.here();
    emitIntFiller(a, p.computeOpsPerBranch, c1, c2, acc);
    a.addi(inner, inner, -1);
    a.bne(inner, X0, comp_loop);

    a.addi(cnt, cnt, -1);
    a.bne(cnt, X0, top);

    emitEpilogue(a, sink, acc);
    return a.finalize();
}

Program
makeIntMix(const std::string &name, const IntMixParams &p,
           std::uint64_t iterations)
{
    mlpwin_assert(p.ilpChains >= 1 && p.ilpChains <= 4);
    mlpwin_assert(p.hardTakenDen == 0 || pow2(p.hardTakenDen));
    mlpwin_assert(p.tableKiB == 0 || pow2(p.tableKiB));

    Assembler a(name);

    Addr table_base = 0;
    if (p.tableKiB > 0)
        table_base = a.allocBss(p.tableKiB * 1024, 64);
    Addr sink = a.allocBss(8);

    const RegId st = intReg(6), tmp = intReg(7), bit = intReg(8);
    const RegId tb = intReg(10);
    const RegId acc = intReg(20);
    const RegId cnt = intReg(29);

    a.li(st, 0x243f6a8885a308d3ULL ^ p.seed);
    if (p.tableKiB > 0)
        a.li(tb, table_base);
    a.li(cnt, iterations);

    auto chain_reg = [](unsigned c) { return intReg(21 + c); };

    Label top = a.here();

    // xorshift64 PRNG step (data-dependent control below).
    a.slli(tmp, st, 13);
    a.xor_(st, st, tmp);
    a.srli(tmp, st, 7);
    a.xor_(st, st, tmp);
    a.slli(tmp, st, 17);
    a.xor_(st, st, tmp);

    // ILP chains: opsPerChain dependent ops each, chains independent.
    for (unsigned o = 0; o < p.opsPerChain; ++o) {
        for (unsigned c = 0; c < p.ilpChains; ++c) {
            RegId r = chain_reg(c);
            if (o % 2 == 0)
                a.addi(r, r, static_cast<std::int32_t>(3 + c));
            else
                a.xor_(r, r, st);
        }
    }

    // Hard data-dependent branch.
    if (p.hardTakenDen > 0) {
        Label not_taken = a.newLabel();
        Label join = a.newLabel();
        a.andi(bit, st,
               static_cast<std::int32_t>(p.hardTakenDen - 1));
        a.slti(bit, bit, static_cast<std::int32_t>(p.hardTakenNum));
        a.beq(bit, X0, not_taken);
        a.addi(acc, acc, 17);
        a.xor_(acc, acc, chain_reg(0));
        a.j(join);
        a.bind(not_taken);
        a.sub(acc, acc, chain_reg(0));
        a.addi(acc, acc, 5);
        a.bind(join);
    }

    // Optional small cached-table access.
    if (p.tableKiB > 0) {
        const RegId off = intReg(16), ea = intReg(17);
        const RegId val = intReg(18);
        a.li(off, p.tableKiB * 1024 - 1);
        a.and_(off, off, st);
        a.andi(off, off, -8);
        a.add(ea, tb, off);
        a.ld(val, ea, 0);
        a.add(acc, acc, val);
        a.st(acc, ea, 0);
    }

    a.addi(cnt, cnt, -1);
    a.bne(cnt, X0, top);

    emitEpilogue(a, sink, acc);
    return a.finalize();
}

Program
makeFpMix(const std::string &name, const FpMixParams &p,
          std::uint64_t iterations)
{
    mlpwin_assert(p.ilpChains >= 1 && p.ilpChains <= 6);
    mlpwin_assert(p.streamKiB == 0 || pow2(p.streamKiB));

    Assembler a(name);

    Addr stream_base = 0;
    if (p.streamKiB > 0)
        stream_base = a.allocBss(p.streamKiB * 1024, 64);
    Addr sink = a.allocBss(8);

    const RegId sb = intReg(10), cur = intReg(13), mask = intReg(14);
    const RegId ea = intReg(15), acc = intReg(20), cnt = intReg(29);

    seedFpRegs(a);
    // Chain registers f20..f25; divisor close to 1 in f11.
    for (unsigned c = 0; c < p.ilpChains; ++c) {
        a.addi(intReg(5), X0, static_cast<std::int32_t>(c + 1));
        a.fcvt(fpReg(20 + c), intReg(5));
    }
    a.addi(intReg(5), X0, 1);
    a.fcvt(fpReg(11), intReg(5));
    if (p.streamKiB > 0) {
        a.li(sb, stream_base);
        a.li(cur, 0);
        a.li(mask, p.streamKiB * 1024 - 1);
    }
    a.li(cnt, iterations);

    Label top = a.here();
    for (unsigned o = 0; o < p.opsPerChain; ++o) {
        for (unsigned c = 0; c < p.ilpChains; ++c) {
            RegId r = fpReg(20 + c);
            if (o % 2 == 0)
                a.fadd(r, r, fpReg(1));
            else
                a.fmul(r, r, fpReg(2));
        }
    }
    if (p.withDiv)
        a.fdiv(fpReg(20), fpReg(20), fpReg(11));
    if (p.withSqrt)
        a.fsqrt(fpReg(21), fpReg(21));
    if (p.streamKiB > 0) {
        a.add(ea, sb, cur);
        a.fld(fpReg(26), ea, 0);
        a.fadd(fpReg(20), fpReg(20), fpReg(26));
        a.fst(fpReg(20), ea, 0);
        a.addi(cur, cur, 8);
        a.and_(cur, cur, mask);
    }
    a.fcvti(intReg(16), fpReg(20));
    a.add(acc, acc, intReg(16));
    a.addi(cnt, cnt, -1);
    a.bne(cnt, X0, top);

    emitEpilogue(a, sink, acc);
    return a.finalize();
}

Program
makeMatmul(const std::string &name, const MatmulParams &p,
           std::uint64_t iterations)
{
    mlpwin_assert(p.n >= 2);

    Assembler a(name);

    const std::uint64_t n = p.n;
    Addr a_base = a.allocBss(n * n * 8, 64);
    Addr b_base = a.allocBss(n * n * 8, 64);
    Addr c_base = a.allocBss(n * n * 8, 64);
    Addr sink = a.allocBss(8);

    const RegId ab = intReg(10), bb = intReg(11), cb = intReg(12);
    const RegId i = intReg(13), j = intReg(14), k = intReg(15);
    const RegId nn = intReg(16);
    const RegId arow = intReg(17), ap = intReg(18), bp = intReg(19);
    const RegId crow = intReg(23), cp = intReg(24), jb = intReg(25);
    const RegId acc = intReg(20), cnt = intReg(29);
    const RegId fa = fpReg(20), fb = fpReg(21), fm = fpReg(22);
    const RegId fs = fpReg(23);

    a.li(ab, a_base);
    a.li(bb, b_base);
    a.li(cb, c_base);
    a.li(nn, n);
    a.li(cnt, iterations);
    seedFpRegs(a);

    Label outer = a.here();
    a.li(i, 0);
    a.mov(arow, ab);
    a.mov(crow, cb);
    Label li_loop = a.here();
    {
        a.li(j, 0);
        a.li(jb, 0);
        Label lj_loop = a.here();
        {
            a.fcvt(fs, X0); // acc = 0
            a.li(k, 0);
            a.mov(ap, arow);
            a.add(bp, bb, jb);
            Label lk_loop = a.here();
            {
                a.fld(fa, ap, 0);
                a.fld(fb, bp, 0);
                a.fmul(fm, fa, fb);
                a.fadd(fs, fs, fm);
                a.addi(ap, ap, 8);
                a.addi(bp, bp, static_cast<std::int32_t>(n * 8));
                a.addi(k, k, 1);
                a.blt(k, nn, lk_loop);
            }
            a.add(cp, crow, jb);
            a.fst(fs, cp, 0);
            a.addi(j, j, 1);
            a.addi(jb, jb, 8);
            a.blt(j, nn, lj_loop);
        }
        a.addi(i, i, 1);
        a.addi(arow, arow, static_cast<std::int32_t>(n * 8));
        a.addi(crow, crow, static_cast<std::int32_t>(n * 8));
        a.blt(i, nn, li_loop);
    }
    a.addi(cnt, cnt, -1);
    a.bne(cnt, X0, outer);

    emitEpilogue(a, sink, acc);
    return a.finalize();
}

Program
makeTreeSearch(const std::string &name, const TreeSearchParams &p,
               std::uint64_t iterations)
{
    mlpwin_assert(pow2(p.arrayWords));
    mlpwin_assert(p.parallelSearches >= 1 && p.parallelSearches <= 4);

    Assembler a(name);

    // Sorted array: value[i] = 13 * i, so any key in [0, 13n) lands
    // on a well-defined slot.
    std::vector<std::uint64_t> arr(p.arrayWords);
    for (std::uint64_t i = 0; i < p.arrayWords; ++i)
        arr[i] = 13 * i;
    Addr arr_base = a.allocData(arr, 64);
    Addr sink = a.allocBss(8);

    const unsigned steps =
        static_cast<unsigned>(__builtin_ctzll(p.arrayWords));
    const RegId ab = intReg(9), st = intReg(6), tmp = intReg(7);
    const RegId acc = intReg(20), c1 = intReg(21), c2 = intReg(22);
    const RegId cnt = intReg(29);
    auto lo_reg = [](unsigned s) { return intReg(10 + s); };
    auto key_reg = [](unsigned s) { return intReg(14 + s); };
    const RegId half = intReg(8), keymask = intReg(19);

    a.li(ab, arr_base);
    a.li(st, 0x2545f4914f6cdd1dULL ^ p.seed);
    a.li(keymask, 13 * p.arrayWords - 1);
    a.li(cnt, iterations);

    Label top = a.here();
    // Fresh pseudo-random keys, searches restarted at the root.
    for (unsigned s = 0; s < p.parallelSearches; ++s) {
        a.slli(tmp, st, 13);
        a.xor_(st, st, tmp);
        a.srli(tmp, st, 7);
        a.xor_(st, st, tmp);
        a.and_(key_reg(s), st, keymask);
        a.li(lo_reg(s), 0);
    }
    a.li(half, (p.arrayWords / 2) * 8);

    // Branchless binary search, all searches in lock-step: each probe
    // address depends on the previous probe's comparison (a log-depth
    // dependent load chain per search).
    for (unsigned step = 0; step < steps; ++step) {
        for (unsigned s = 0; s < p.parallelSearches; ++s) {
            const RegId ea = intReg(5), v = intReg(18);
            const RegId take = intReg(4);
            a.add(ea, lo_reg(s), half);
            a.add(ea, ea, ab);
            a.ld(v, ea, 0);
            // lo += (v <= key) ? half : 0.
            a.slt(take, key_reg(s), v);
            a.xori(take, take, 1);
            a.mul(take, take, half);
            a.add(lo_reg(s), lo_reg(s), take);
            emitIntFiller(a, p.stepOps, c1, c2, acc);
        }
        a.srli(half, half, 1);
    }
    for (unsigned s = 0; s < p.parallelSearches; ++s)
        a.add(acc, acc, lo_reg(s));
    a.addi(cnt, cnt, -1);
    a.bne(cnt, X0, top);

    emitEpilogue(a, sink, acc);
    return a.finalize();
}

Program
makeButterfly(const std::string &name, const ButterflyParams &p,
              std::uint64_t iterations)
{
    mlpwin_assert(pow2(p.words) && p.words >= 4);

    Assembler a(name);
    Rng rng(p.seed);

    std::vector<std::uint64_t> data(p.words);
    for (auto &w : data)
        w = std::bit_cast<std::uint64_t>(1.0 + rng.real());
    Addr base = a.allocData(data, 64);
    Addr sink = a.allocBss(8);

    const RegId db = intReg(9), pos = intReg(10), dist = intReg(11);
    const RegId mask = intReg(12), ea1 = intReg(13), ea2 = intReg(14);
    const RegId cnt = intReg(29);
    const RegId fa = fpReg(5), fb = fpReg(6), fs = fpReg(7);
    const RegId fd = fpReg(8);

    a.li(db, base);
    a.li(pos, 0);
    a.li(dist, 8);
    a.li(mask, p.words * 8 - 1);
    a.li(cnt, iterations);
    seedFpRegs(a);

    Label top = a.here();
    // One butterfly: combine the pair at (pos, pos + dist) in place;
    // the partner index wraps around the array like an FFT's.
    a.add(ea1, db, pos);
    a.add(ea2, pos, dist);
    a.and_(ea2, ea2, mask);
    a.add(ea2, db, ea2);
    a.fld(fa, ea1, 0);
    a.fld(fb, ea2, 0);
    a.fadd(fs, fa, fb);
    a.fsub(fd, fa, fb);
    emitFpFiller(a, p.fpOpsPerPair);
    a.fst(fs, ea1, 0);
    a.fst(fd, ea2, 0);

    // Advance: pos += 2*dist (wrapping); double the distance on each
    // wrap so successive sweeps use the next power-of-two stride.
    a.slli(ea1, dist, 1);
    a.add(pos, pos, ea1);
    a.and_(pos, pos, mask);
    Label no_wrap = a.newLabel();
    a.bne(pos, X0, no_wrap);
    a.slli(dist, dist, 1);
    a.and_(dist, dist, mask);
    Label dist_ok = a.newLabel();
    a.bne(dist, X0, dist_ok);
    a.li(dist, 8);
    a.bind(dist_ok);
    a.bind(no_wrap);
    a.addi(cnt, cnt, -1);
    a.bne(cnt, X0, top);

    emitEpilogue(a, sink, intReg(20));
    return a.finalize();
}

Program
makeDispatch(const std::string &name, const DispatchParams &p,
             std::uint64_t iterations)
{
    mlpwin_assert(pow2(p.handlers) && pow2(p.opstreamWords));
    mlpwin_assert(p.handlerOps >= 2);

    Assembler a(name);
    Rng rng(p.seed);

    std::vector<std::uint64_t> ops(p.opstreamWords);
    for (auto &v : ops)
        v = rng.below(p.handlers);
    Addr ops_base = a.allocData(ops, 64);
    Addr sink = a.allocBss(8);

    const RegId opb = intReg(10), hb = intReg(11);
    const RegId cur = intReg(13), mask = intReg(14);
    const RegId idx = intReg(15), tgt = intReg(16), ea = intReg(17);
    const RegId acc = intReg(20), c1 = intReg(21), c2 = intReg(22);
    const RegId cnt = intReg(29);

    Label main = a.newLabel();
    a.j(main);

    // Handlers: contiguous, padded to a power-of-two byte stride so
    // the dispatch target is handlers_base + (idx << shift).
    unsigned shift = 0;
    while ((1u << shift) < (p.handlerOps + 1) * kInstBytes)
        ++shift;
    const unsigned stride_insts = (1u << shift) / kInstBytes;

    Addr handlers_base = a.nextPc();
    for (unsigned h = 0; h < p.handlers; ++h) {
        std::size_t before = a.numInsts();
        for (unsigned o = 0; o < p.handlerOps; ++o) {
            switch ((o + h) % 4) {
              case 0:
                a.addi(c1, c1, static_cast<std::int32_t>(h + 1));
                break;
              case 1:
                a.xor_(c2, c2, c1);
                break;
              case 2:
                a.add(acc, acc, c2);
                break;
              default:
                a.sub(c1, c1, acc);
                break;
            }
        }
        a.ret();
        while (a.numInsts() - before < stride_insts)
            a.nop();
        mlpwin_assert(a.numInsts() - before == stride_insts);
    }

    a.bind(main);
    a.li(opb, ops_base);
    a.li(hb, handlers_base);
    a.li(cur, 0);
    a.li(mask, p.opstreamWords * 8 - 1);
    a.li(cnt, iterations);

    Label top = a.here();
    a.add(ea, opb, cur);
    a.ld(idx, ea, 0);
    // target = handlers_base + idx * roundpow2(stride bytes).
    a.slli(tgt, idx, static_cast<std::int32_t>(shift));
    a.add(tgt, tgt, hb);
    a.jalr(intReg(1), tgt, 0); // Indirect call through jump table.
    a.addi(cur, cur, 8);
    a.and_(cur, cur, mask);
    a.addi(cnt, cnt, -1);
    a.bne(cnt, X0, top);

    emitEpilogue(a, sink, acc);
    return a.finalize();
}

} // namespace mlpwin
