#include "suite.hh"

#include "common/status.hh"
#include "workloads/kernels.hh"

namespace mlpwin
{

namespace
{

std::vector<WorkloadSpec>
buildSuite()
{
    std::vector<WorkloadSpec> suite;

    auto add = [&suite](std::string name, bool mem, bool is_int,
                        std::function<Program(std::uint64_t)> make) {
        suite.push_back(
            WorkloadSpec{std::move(name), mem, is_int, std::move(make)});
    };

    // ---- memory-intensive (paper Table 3, load latency >= 10) ------

    // hmmer: DP over L2-resident profile tables (L1-missing gather).
    add("hmmer", true, true, [](std::uint64_t it) {
        GatherParams p;
        p.tableWords = 1ULL << 17; // 1 MiB: L2-resident, misses L1.
        p.idxWords = 1 << 14;
        p.intOps = 8;
        p.seed = 11;
        return makeGather("hmmer", p, it);
    });

    // libquantum: state-vector sweeps; huge footprint, abundant MLP.
    add("libquantum", true, true, [](std::uint64_t it) {
        GatherParams p;
        p.tableWords = 1ULL << 23; // 64 MiB.
        p.idxWords = 1 << 16;
        p.intOps = 12;
        p.seed = 12;
        return makeGather("libquantum", p, it);
    });

    // mcf: network-simplex pointer chasing; serial misses.
    add("mcf", true, true, [](std::uint64_t it) {
        ChaseParams p;
        p.chains = 4;
        p.nodesPerChain = 1 << 16; // 4 MiB per chain.
        p.hopOps = 6;
        p.seed = 13;
        return makeChase("mcf", p, it);
    });

    // omnetpp: event simulation; mixed memory and compute phases.
    add("omnetpp", true, true, [](std::uint64_t it) {
        PhaseMixParams p;
        p.gather.tableWords = 1ULL << 21; // 16 MiB.
        p.gather.idxWords = 1 << 14;
        p.gather.intOps = 10;
        p.gather.hardBranch = true; // Paper Table 5: 1/178 insts.
        p.gather.seed = 14;
        p.gathersPerPhase = 48;
        p.computeOpsPerPhase = 2400;
        p.computeOpsPerBranch = 24;
        return makePhaseMix("omnetpp", p, it);
    });

    // xalancbmk: DOM/hash probing; two dependent irregular loads.
    add("xalancbmk", true, true, [](std::uint64_t it) {
        GatherParams p;
        p.tableWords = 1ULL << 20;  // 8 MiB bucket array.
        p.table2Words = 1ULL << 21; // 16 MiB node pool.
        p.idxWords = 1 << 14;
        p.intOps = 6;
        p.seed = 15;
        return makeGather("xalancbmk", p, it);
    });

    // GemsFDTD: 3D stencil sweeps over large grids. Dense-ish walk:
    // several accesses per line, so the line demand stays within the
    // memory bandwidth and the latency is set by miss overlap.
    add("GemsFDTD", true, false, [](std::uint64_t it) {
        StreamParams p;
        p.streams = 3;
        p.wordsPerStream = 1ULL << 21; // 16 MiB each.
        p.strideWords = 2;
        p.fpOps = 6;
        p.withStore = true;
        return makeStream("GemsFDTD", p, it);
    });

    // lbm: lattice-Boltzmann streaming with stores; densest walk of
    // the three stream programs (lowest per-load latency).
    add("lbm", true, false, [](std::uint64_t it) {
        StreamParams p;
        p.streams = 3;
        p.wordsPerStream = 1ULL << 21;
        p.strideWords = 1;
        p.fpOps = 4;
        p.withStore = true;
        return makeStream("lbm", p, it);
    });

    // leslie3d: multi-array stencil; sparser walk than GemsFDTD, so a
    // larger share of its loads open a fresh line (highest latency).
    add("leslie3d", true, false, [](std::uint64_t it) {
        StreamParams p;
        p.streams = 3;
        p.wordsPerStream = 1ULL << 20; // 8 MiB each.
        p.strideWords = 4;
        p.fpOps = 8;
        p.withStore = false;
        return makeStream("leslie3d", p, it);
    });

    // milc: SU(3) lattice QCD; indexed sites, heavy FP per site.
    add("milc", true, false, [](std::uint64_t it) {
        GatherParams p;
        p.tableWords = 1ULL << 21; // 16 MiB.
        p.idxWords = 1 << 14;
        p.intOps = 2;
        p.fpOps = 10;
        p.seed = 16;
        return makeGather("milc", p, it);
    });

    // soplex: simplex LP; sparse matrix-vector products.
    add("soplex", true, false, [](std::uint64_t it) {
        SpmvParams p;
        p.xWords = 1ULL << 22; // 32 MiB dense vector.
        p.nnzPerRow = 8;
        p.colWords = 1 << 18;
        p.hardBranch = true; // Paper Table 5: 1 mispredict/154 insts.
        p.seed = 17;
        return makeSpmv("soplex", p, it);
    });

    // sphinx3: acoustic scoring; medium tables, partial L2 residency.
    add("sphinx3", true, false, [](std::uint64_t it) {
        GatherParams p;
        p.tableWords = 1ULL << 19; // 4 MiB.
        p.idxWords = 1 << 14;
        p.intOps = 2;
        p.fpOps = 6;
        p.hardBranch = true; // Paper Table 5: 1 mispredict/327 insts.
        p.seed = 18;
        return makeGather("sphinx3", p, it);
    });

    // ---- compute-intensive ------------------------------------------

    // astar: path search; cached grid, data-dependent branches.
    add("astar", false, true, [](std::uint64_t it) {
        IntMixParams p;
        p.ilpChains = 2;
        p.opsPerChain = 6;
        p.hardTakenNum = 1;
        p.hardTakenDen = 4;
        p.tableKiB = 64;
        p.seed = 21;
        return makeIntMix("astar", p, it);
    });

    // bzip2: byte-stream transforms over cached buffers.
    add("bzip2", false, true, [](std::uint64_t it) {
        StreamParams p;
        p.streams = 1;
        p.wordsPerStream = 1 << 15; // 256 KiB.
        p.strideWords = 1;
        p.fpOps = 0;
        p.withStore = true;
        return makeStream("bzip2", p, it);
    });

    // gcc: integer work, mostly predictable branches, small tables.
    add("gcc", false, true, [](std::uint64_t it) {
        IntMixParams p;
        p.ilpChains = 3;
        p.opsPerChain = 8;
        p.hardTakenNum = 1;
        p.hardTakenDen = 16;
        p.tableKiB = 32;
        p.seed = 22;
        return makeIntMix("gcc", p, it);
    });

    // gobmk: Go engine; notoriously hard branches.
    add("gobmk", false, true, [](std::uint64_t it) {
        IntMixParams p;
        p.ilpChains = 2;
        p.opsPerChain = 5;
        p.hardTakenNum = 1;
        p.hardTakenDen = 2; // 50/50: unlearnable.
        p.tableKiB = 16;
        p.seed = 23;
        return makeIntMix("gobmk", p, it);
    });

    // h264ref: SAD-style integer streaming over cached frames.
    add("h264ref", false, true, [](std::uint64_t it) {
        StreamParams p;
        p.streams = 2;
        p.wordsPerStream = 1 << 15;
        p.strideWords = 1;
        p.fpOps = 0;
        p.withStore = true;
        return makeStream("h264ref", p, it);
    });

    // perlbench: interpreter dispatch through indirect calls.
    add("perlbench", false, true, [](std::uint64_t it) {
        DispatchParams p;
        p.handlers = 8;
        p.handlerOps = 12;
        p.opstreamWords = 1 << 14;
        p.seed = 24;
        return makeDispatch("perlbench", p, it);
    });

    // sjeng: chess search; medium-hard branches, bit fiddling.
    add("sjeng", false, true, [](std::uint64_t it) {
        IntMixParams p;
        p.ilpChains = 2;
        p.opsPerChain = 6;
        p.hardTakenNum = 1;
        p.hardTakenDen = 4;
        p.tableKiB = 16;
        p.seed = 25;
        return makeIntMix("sjeng", p, it);
    });

    // bwaves: blocked FP solver over cache-resident panels.
    add("bwaves", false, false, [](std::uint64_t it) {
        FpMixParams p;
        p.ilpChains = 4;
        p.opsPerChain = 6;
        p.streamKiB = 1024;
        p.seed = 26;
        return makeFpMix("bwaves", p, it);
    });

    // cactusADM: relativity kernels; FP with modest reuse.
    add("cactusADM", false, false, [](std::uint64_t it) {
        FpMixParams p;
        p.ilpChains = 3;
        p.opsPerChain = 8;
        p.streamKiB = 1024;
        p.seed = 27;
        return makeFpMix("cactusADM", p, it);
    });

    // calculix: FE kernels; small dense matrix multiplies.
    add("calculix", false, false, [](std::uint64_t it) {
        MatmulParams p;
        p.n = 20;
        return makeMatmul("calculix", p, it);
    });

    // dealII: FE library; small dense linear algebra.
    add("dealII", false, false, [](std::uint64_t it) {
        MatmulParams p;
        p.n = 16;
        return makeMatmul("dealII", p, it);
    });

    // gamess: quantum chemistry; pure FP compute, high ILP.
    add("gamess", false, false, [](std::uint64_t it) {
        FpMixParams p;
        p.ilpChains = 4;
        p.opsPerChain = 8;
        p.streamKiB = 0;
        p.seed = 28;
        return makeFpMix("gamess", p, it);
    });

    // gromacs: MD; FP with reciprocal square roots.
    add("gromacs", false, false, [](std::uint64_t it) {
        FpMixParams p;
        p.ilpChains = 3;
        p.opsPerChain = 6;
        p.withSqrt = true;
        p.streamKiB = 64;
        p.seed = 29;
        return makeFpMix("gromacs", p, it);
    });

    // namd: MD; wide independent FP chains.
    add("namd", false, false, [](std::uint64_t it) {
        FpMixParams p;
        p.ilpChains = 5;
        p.opsPerChain = 6;
        p.streamKiB = 256;
        p.seed = 30;
        return makeFpMix("namd", p, it);
    });

    // povray: ray tracing; long-latency divide/sqrt chains.
    add("povray", false, false, [](std::uint64_t it) {
        FpMixParams p;
        p.ilpChains = 2;
        p.opsPerChain = 4;
        p.withDiv = true;
        p.withSqrt = true;
        p.streamKiB = 0;
        p.seed = 31;
        return makeFpMix("povray", p, it);
    });

    // tonto: quantum crystallography; serial-ish FP chains.
    add("tonto", false, false, [](std::uint64_t it) {
        FpMixParams p;
        p.ilpChains = 2;
        p.opsPerChain = 8;
        p.streamKiB = 128;
        p.seed = 32;
        return makeFpMix("tonto", p, it);
    });

    // zeusmp: astrophysics CFD; dense L2-resident sweeps (most
    // accesses hit the L1 line brought by their predecessor).
    add("zeusmp", false, false, [](std::uint64_t it) {
        StreamParams p;
        p.streams = 2;
        p.wordsPerStream = 1 << 17; // 1 MiB each: L2-resident.
        p.strideWords = 1;
        p.fpOps = 6;
        p.withStore = true;
        return makeStream("zeusmp", p, it);
    });

    return suite;
}

} // namespace

const std::vector<WorkloadSpec> &
spec2006Suite()
{
    static const std::vector<WorkloadSpec> suite = buildSuite();
    return suite;
}

const WorkloadSpec *
tryFindWorkload(const std::string &name)
{
    for (const WorkloadSpec &w : spec2006Suite()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

std::string
suiteWorkloadNames()
{
    std::string names;
    for (const WorkloadSpec &w : spec2006Suite()) {
        if (!names.empty())
            names += ", ";
        names += w.name;
    }
    return names;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    if (const WorkloadSpec *w = tryFindWorkload(name))
        return *w;
    throw SimError(ErrorCode::InvalidArgument,
                   "unknown workload '" + name + "'; valid names: " +
                       suiteWorkloadNames());
}

std::vector<std::string>
selectedMemPrograms()
{
    return {"libquantum", "omnetpp", "GemsFDTD", "lbm",
            "leslie3d", "milc", "soplex", "sphinx3"};
}

std::vector<std::string>
selectedCompPrograms()
{
    return {"bwaves", "gcc", "gobmk", "sjeng", "dealII", "tonto"};
}

} // namespace mlpwin
