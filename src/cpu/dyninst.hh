/**
 * @file
 * The dynamic (in-flight) instruction record used by the out-of-order
 * core. One DynInst lives in the window (ROB) from dispatch to commit
 * or squash; fields cover the oracle/shadow functional results, the
 * branch prediction made for it, and its pipeline timing state.
 */

#ifndef MLPWIN_CPU_DYNINST_HH
#define MLPWIN_CPU_DYNINST_HH

#include "common/types.hh"
#include "emu/emulator.hh"
#include "isa/isa.hh"

namespace mlpwin
{

/** Sentinel producer meaning "value already architectural". */
constexpr InstSeqNum kNoProducer = 0;

/** See file comment. */
struct DynInst
{
    InstSeqNum seq = 0;
    StaticInst si;
    Addr pc = 0;
    /** Hardware thread that fetched this instruction (0-based). */
    std::uint8_t tid = 0;
    bool wrongPath = false;

    /** Functional record: oracle for correct path, shadow otherwise. */
    ExecRecord rec;

    // --- branch prediction state ---------------------------------------
    bool predTaken = false;
    Addr predTarget = 0;
    std::uint64_t histSnapshot = 0;
    /** Correct-path control inst whose prediction was wrong. */
    bool mispredicted = false;

    // --- dependences ----------------------------------------------------
    /** Source registers actually read (kNoReg when unused). */
    RegId srcReg[2] = {kNoReg, kNoReg};
    /** In-flight producers of the sources (kNoProducer if none). */
    InstSeqNum srcProducer[2] = {kNoProducer, kNoProducer};
    /** Memoized readiness: once true, a source stays ready. */
    bool srcDone[2] = {false, false};
    /** INV flag latched when the memoized source resolved. */
    bool srcInv[2] = {false, false};

    // --- pipeline state ---------------------------------------------------
    bool inIq = false;     ///< Occupies an IQ entry (until issue).
    bool inLsq = false;    ///< Occupies an LSQ entry (until commit).
    bool inWib = false;    ///< Parked in the WIB (WIB model only).
    /** Producer seq this WIB entry waits on (kNoProducer if none). */
    InstSeqNum wibBlockedOn = kNoProducer;
    bool issued = false;
    bool completed = false;
    /** Load/store effective address became known (at issue). */
    bool addrKnown = false;
    /** Load was sent to the cache / got its value via forwarding. */
    bool memDone = false;
    /** This access initiated or merged with an L2 demand miss. */
    bool l2Miss = false;
    /**
     * When the access waited on a page-table walk, the walk's
     * completion cycle; 0 otherwise. Drives the tlb_walk CPI leaf.
     */
    Cycle walkDoneAt = 0;
    /** Runahead INV: value is bogus; dependents must not use it. */
    bool invalid = false;

    Cycle fetchCycle = 0;
    Cycle dispatchCycle = 0;
    Cycle issueCycle = 0;
    /** Cycle execution finishes (data ready for completion). */
    Cycle completeAt = kNoCycle;
    /** Cycle dependents may issue (completeAt + IQ pipeline skew). */
    Cycle wakeupAt = kNoCycle;

    bool isLoad() const { return si.isLoad(); }
    bool isStore() const { return si.isStore(); }
    bool isControl() const { return si.isControl(); }

    /** Real (resolved) next PC: rec.nextPc for both oracle & shadow. */
    Addr actualNextPc() const { return rec.nextPc; }
};

} // namespace mlpwin

#endif // MLPWIN_CPU_DYNINST_HH
