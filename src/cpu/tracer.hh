/**
 * @file
 * A gem5-style pipeline event tracer: per-category text events for
 * every pipeline stage an instruction passes through, plus resize and
 * runahead control events. Tracing costs one pointer test per event
 * site when disabled; the Simulator owns the tracer and the CLI
 * exposes it via --trace.
 */

#ifndef MLPWIN_CPU_TRACER_HH
#define MLPWIN_CPU_TRACER_HH

#include <ostream>
#include <string>

#include "common/types.hh"
#include "cpu/dyninst.hh"
#include "isa/isa.hh"

namespace mlpwin
{

/** Trace categories, usable as a bitmask. */
enum class TraceCategory : unsigned
{
    Fetch = 1u << 0,
    Dispatch = 1u << 1,
    Issue = 1u << 2,
    Complete = 1u << 3,
    Commit = 1u << 4,
    Squash = 1u << 5,
    Resize = 1u << 6,
    Runahead = 1u << 7,
};

/** All categories enabled. */
constexpr unsigned kTraceAll = 0xff;

/**
 * Parse a comma-separated category list ("issue,commit,resize") into
 * a mask; "all" selects every category. An unknown name yields mask 0
 * and, if @p error is non-null, a diagnostic naming the offender and
 * listing every valid category.
 */
unsigned parseTraceCategories(const std::string &spec,
                              std::string *error = nullptr);

/** Comma-separated list of every valid category name (plus "all"). */
std::string traceCategoryNames();

/** Printable name of a single category. */
const char *traceCategoryName(TraceCategory c);

/** See file comment. */
class PipelineTracer
{
  public:
    /**
     * @param os Sink for trace lines (not owned).
     * @param mask Bitwise OR of TraceCategory values to emit.
     * @param start_cycle First cycle to trace (skip warm-up noise).
     */
    PipelineTracer(std::ostream &os, unsigned mask,
                   Cycle start_cycle = 0)
        : os_(os), mask_(mask), startCycle_(start_cycle)
    {}

    bool
    wants(TraceCategory c) const
    {
        return (mask_ & static_cast<unsigned>(c)) != 0;
    }

    /** Trace one instruction-stage event. */
    void event(Cycle cycle, TraceCategory cat, const DynInst &d);

    /** Trace a free-form control event (resize, runahead, squash). */
    void note(Cycle cycle, TraceCategory cat, const std::string &msg);

    std::uint64_t linesEmitted() const { return lines_; }

  private:
    std::ostream &os_;
    unsigned mask_;
    Cycle startCycle_;
    std::uint64_t lines_ = 0;
};

} // namespace mlpwin

#endif // MLPWIN_CPU_TRACER_HH
