/**
 * @file
 * Per-thread cycle-accounting CPI stack. Every measured cycle of
 * every hardware thread is attributed to exactly one leaf of a fixed
 * taxonomy, so the components sum to the measured cycle count by
 * construction (an exact invariant, checked at runtime by
 * Simulator::checkInvariants and pinned by tests, not a sampled
 * approximation).
 *
 * The attribution is priority-ordered: a cycle that commits is Base
 * no matter what else was stalled; otherwise the highest-priority
 * stall condition that holds claims the cycle. The full priority
 * order is documented in tools/TELEMETRY.md and implemented in
 * OooCore::classifyCycle.
 */

#ifndef MLPWIN_CPU_CPI_STACK_HH
#define MLPWIN_CPU_CPI_STACK_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace mlpwin
{

/**
 * Taxonomy leaves, one per possible cycle attribution. Declaration
 * order is also the export order (JSONL arrays, CSV columns), so new
 * leaves must be appended, never inserted.
 */
enum class CpiComponent : std::uint8_t
{
    /** Committed at least one instruction this cycle (useful work),
     *  or stalled purely on execution latency with a full pipe —
     *  the ILP-limit residue every other leaf is measured against. */
    Base = 0,
    /** Window empty and front-end unable to supply (icache busy,
     *  fetch queue drained, fetch halted). */
    IFetch,
    /** Squashed and waiting out a mispredict redirect, or fetch
     *  stopped at an unresolved low-confidence branch. */
    BranchMispredict,
    /** Head of window is a load waiting on the cache hierarchy
     *  (L1D/L2 latency, not a DRAM round trip). */
    CacheMiss,
    /** Head of window is a load waiting on an L2 demand miss to
     *  DRAM — the MLP-overlap target of the resize policy. */
    Dram,
    /** Dispatch blocked: reorder buffer at its level/partition cap. */
    RobFull,
    /** Dispatch blocked: issue queue at its level/partition cap. */
    IqFull,
    /** Dispatch blocked: load/store queue at its level/partition
     *  cap. */
    LsqFull,
    /** Allocation stopped while a shrink transition drains the
     *  doomed window region (resize_transition stall). */
    ResizeDrain,
    /** In runahead mode, or waiting out a runahead exit redirect:
     *  cycles that prefetch but retire nothing architecturally. */
    Runahead,
    /** SMT only: this thread was fetch-eligible but the shared fetch
     *  port was granted to a co-runner. */
    SmtFetchContention,
    /** Thread halted (or the whole core halted) — co-runner cycles
     *  after a short thread exits, and post-halt ticks. */
    Idle,
    /** Head of window is a load waiting on a hardware page-table
     *  walk (paging enabled only): translation stall cycles the
     *  resize-on-walk policy targets. */
    TlbWalk,
};

constexpr std::size_t kNumCpiComponents = 13;

/** Short stable name used in JSONL keys, CSV headers, and tables. */
inline const char *
cpiComponentName(CpiComponent c)
{
    switch (c) {
      case CpiComponent::Base: return "base";
      case CpiComponent::IFetch: return "ifetch";
      case CpiComponent::BranchMispredict: return "bmiss";
      case CpiComponent::CacheMiss: return "cache";
      case CpiComponent::Dram: return "dram";
      case CpiComponent::RobFull: return "rob_full";
      case CpiComponent::IqFull: return "iq_full";
      case CpiComponent::LsqFull: return "lsq_full";
      case CpiComponent::ResizeDrain: return "drain";
      case CpiComponent::Runahead: return "runahead";
      case CpiComponent::SmtFetchContention: return "smt_fetch";
      case CpiComponent::Idle: return "idle";
      case CpiComponent::TlbWalk: return "tlb_walk";
    }
    return "?";
}

/** One thread's accumulated stack: a counter per taxonomy leaf. */
struct CpiStack
{
    std::array<std::uint64_t, kNumCpiComponents> counts{};

    void
    add(CpiComponent c)
    {
        ++counts[static_cast<std::size_t>(c)];
    }

    std::uint64_t
    operator[](CpiComponent c) const
    {
        return counts[static_cast<std::size_t>(c)];
    }

    /** Sum over all leaves; equals measured cycles by invariant. */
    std::uint64_t
    sum() const
    {
        std::uint64_t s = 0;
        for (std::uint64_t v : counts)
            s += v;
        return s;
    }

    void
    reset()
    {
        counts.fill(0);
    }

    CpiStack &
    operator+=(const CpiStack &o)
    {
        for (std::size_t i = 0; i < kNumCpiComponents; ++i)
            counts[i] += o.counts[i];
        return *this;
    }
};

} // namespace mlpwin

#endif // MLPWIN_CPU_CPI_STACK_HH
