/**
 * @file
 * The out-of-order superscalar core.
 *
 * An execution-driven, cycle-stepped model of a P6-style 4-wide
 * out-of-order processor (paper Table 1): fetch with branch
 * prediction and wrong-path execution, rename/dispatch into resizable
 * ROB/IQ/LSQ windows, wakeup-select issue with a configurable IQ
 * pipeline depth (the paper's issue-loop penalty for enlarged,
 * pipelined queues), a load/store unit with store-to-load forwarding
 * and conservative disambiguation, and in-order commit.
 *
 * Functional execution is oracle-driven: a correct-path emulator runs
 * at fetch, so every dynamic instruction carries its real result,
 * memory address, and branch outcome. Wrong-path instructions after a
 * misprediction execute against a shadow register file (copied at the
 * divergence) and a local store overlay, so their (squashed) cache
 * traffic is realistic - this feeds the paper's Fig. 11 pollution
 * study. Runahead execution (paper Section 5.7) is modeled as a
 * pseudo-retiring episode with INV propagation and full architectural
 * rollback via per-instruction undo logs.
 *
 * The core runs 1-4 SMT hardware threads (cfg.smt.nThreads). All
 * per-thread state lives in smt/thread.hh ThreadContexts; fetch,
 * rename/dispatch, the LSQ, and commit are thread-indexed, while the
 * issue queue list, functional units, completion events, and the
 * cycle clock are shared. Single-thread cores consult a
 * ResizeController every cycle exactly as before (the MLP-aware
 * controller implements the paper's contribution); multi-thread
 * cores consult an SmtPartitionController that allocates level-table
 * entries per thread from the shared largest-level budget.
 */

#ifndef MLPWIN_CPU_CORE_HH
#define MLPWIN_CPU_CORE_HH

#include <deque>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "branch/predictor.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/core_config.hh"
#include "cpu/cpi_stack.hh"
#include "cpu/dyninst.hh"
#include "cpu/tracer.hh"
#include "emu/emulator.hh"
#include "mem/hierarchy.hh"
#include "mem/main_memory.hh"
#include "resize/controller.hh"
#include "runahead/runahead.hh"
#include "smt/fetch_policy.hh"
#include "smt/partition.hh"
#include "smt/thread.hh"

namespace mlpwin
{

class LockstepChecker;

/** One hardware thread's program and functional memory (not owned). */
struct SmtThreadSpec
{
    MainMemory *fmem = nullptr;
    const Program *prog = nullptr;
};

/** See file comment. */
class OooCore
{
  public:
    /**
     * Single-thread core (the original construction; behaviour is
     * bit-identical to the pre-SMT core).
     *
     * @param cfg Core widths/penalties.
     * @param resize Window-size controller (not owned).
     * @param mem Timing memory hierarchy (not owned).
     * @param fmem Functional memory, already loaded (not owned).
     * @param prog The program to run.
     * @param stats Stat registry (may be nullptr).
     * @param ra Runahead configuration (disabled by default).
     * @param bp_cfg Branch predictor configuration.
     */
    OooCore(const CoreConfig &cfg, ResizeController &resize,
            CacheHierarchy &mem, MainMemory &fmem, const Program &prog,
            StatSet *stats, const RunaheadConfig &ra = RunaheadConfig{},
            const BranchPredictorConfig &bp_cfg =
                BranchPredictorConfig{});

    /**
     * SMT-capable core. Exactly one of resize/partition must be
     * non-null: resize for cfg.smt.nThreads == 1, partition for
     * more. threads.size() must equal cfg.smt.nThreads.
     */
    OooCore(const CoreConfig &cfg, ResizeController *resize,
            SmtPartitionController *partition, CacheHierarchy &mem,
            const std::vector<SmtThreadSpec> &threads, StatSet *stats,
            const RunaheadConfig &ra = RunaheadConfig{},
            const BranchPredictorConfig &bp_cfg =
                BranchPredictorConfig{});

    /** Advance one clock cycle. */
    void tick();

    /**
     * Start the measurement window at the current cycle: zeroes the
     * core's non-Stat accumulators (MLP observation, energy size
     * integrals, per-thread commit counts) and rebases cycle-derived
     * rates. The Simulator calls this after the warm-up phase,
     * together with StatSet::resetAll().
     */
    void resetMeasurement();

    /** Cycles elapsed inside the measurement window. */
    Cycle
    measuredCycles() const
    {
        return cycle_ - measureStartCycle_;
    }

    /** True once every thread's Halt instruction has committed. */
    bool halted() const { return halted_; }

    Cycle cycle() const { return cycle_; }
    std::uint64_t committedInsts() const { return committed_.value(); }

    /** IPC over the measurement window (the whole run by default). */
    double
    ipc() const
    {
        Cycle c = measuredCycles();
        return c ? static_cast<double>(committed_.value()) / c : 0.0;
    }

    /** Mean latency of committed loads (issue to data return). */
    double avgLoadLatency() const { return loadLatency_.mean(); }

    std::uint64_t committedLoads() const
    {
        return committedLoads_.value();
    }
    std::uint64_t committedStores() const
    {
        return committedStores_.value();
    }
    std::uint64_t committedBranches() const
    {
        return committedBranches_.value();
    }
    std::uint64_t committedMispredicts() const
    {
        return committedMispredicts_.value();
    }
    std::uint64_t squashedInsts() const { return squashed_.value(); }
    std::uint64_t issuedInsts() const { return issuedCnt_.value(); }
    std::uint64_t fetchedInsts() const { return fetched_.value(); }
    std::uint64_t runaheadEpisodes() const
    {
        return raEpisodes_.value();
    }
    std::uint64_t runaheadUselessEpisodes() const
    {
        return raUseless_.value();
    }
    std::uint64_t wibMoves() const { return wibMoves_.value(); }
    std::uint64_t wibReinserts() const { return wibReinserts_.value(); }
    unsigned wibOccupancy() const
    {
        unsigned n = 0;
        for (const auto &t : threads_)
            n += t->wibOcc;
        return n;
    }

    /** Average # of in-flight L2-miss loads over miss-active cycles. */
    double
    observedMlp() const
    {
        return mlpActiveCycles_ ? mlpOverlapSum_ /
                                      static_cast<double>(
                                          mlpActiveCycles_)
                                : 0.0;
    }

    // --- CPI-stack cycle accounting ------------------------------------
    /**
     * Thread tid's CPI stack over the measurement window. Invariant
     * (checked by Simulator::checkInvariants): sum() ==
     * measuredCycles(), exactly — every measured cycle of every
     * thread lands in exactly one taxonomy leaf.
     */
    const CpiStack &
    cpiStack(unsigned tid) const
    {
        return threads_[tid]->cpi;
    }

    /** Leaf-wise sum of every thread's stack (whole-core view). */
    CpiStack
    cpiStackTotal() const
    {
        CpiStack total;
        for (const auto &t : threads_)
            total += t->cpi;
        return total;
    }

    /** Size-cycles integrals for the energy model (capacity * cycle). */
    std::uint64_t iqSizeCycles() const { return iqSizeCycles_; }
    std::uint64_t robSizeCycles() const { return robSizeCycles_; }
    std::uint64_t lsqSizeCycles() const { return lsqSizeCycles_; }

    const BranchPredictor &predictor() const { return threads_[0]->bp; }
    /** Single-thread only (SMT cores use a partition controller). */
    const ResizeController &resizer() const { return *resize_; }

    // --- SMT thread views ----------------------------------------------
    unsigned nThreads() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Read-only view of one thread's context. */
    const ThreadContext &thread(unsigned tid) const
    {
        return *threads_[tid];
    }

    /** Thread tid's current window level (1-based). */
    unsigned
    threadLevel(unsigned tid) const
    {
        return partition_ ? partition_->levelFor(tid)
                          : resize_->level();
    }

    /** Oracle view (for end-of-run architectural state checks). */
    const Emulator &oracle() const { return threads_[0]->oracle; }
    const Emulator &oracle(unsigned tid) const
    {
        return threads_[tid]->oracle;
    }

    // --- sampled-simulation support (see sample/) ---------------------
    /**
     * Mutable oracle access for the Simulator's functional
     * fast-forward. Only legal while the pipeline is drained
     * (readyForFastForward()): with nothing in flight, the oracle sits
     * exactly at the next instruction to fetch, so stepping it ahead
     * natively and then calling resumeAfterFastForward() is
     * architecturally seamless. Single-thread only.
     */
    Emulator &oracleForFastForward() { return threads_[0]->oracle; }

    /** Mutable predictor access for functional warming. */
    BranchPredictor &predictorForWarming() { return threads_[0]->bp; }

    /**
     * Stop (true) or re-allow (false) instruction fetch, so the
     * pipeline can be drained to an architectural boundary between a
     * measured interval and the next fast-forward.
     */
    void setFetchPaused(bool paused) { fetchPaused_ = paused; }

    /**
     * True when no speculative or in-flight state remains on any
     * thread: the oracles are exactly at the architectural boundary
     * and a functional fast-forward may run.
     */
    bool
    readyForFastForward() const
    {
        for (const auto &t : threads_) {
            if (!t->window.empty() || !t->fetchQueue.empty() ||
                !t->storeBuffer.empty() || t->inRunahead ||
                t->onWrongPath)
                return false;
        }
        return true;
    }

    /**
     * Re-sync the front end with the oracle after an external
     * functional fast-forward: fetch resumes at the oracle's PC, the
     * lifetime commit count adopts the oracle's instruction count
     * (instructions executed functionally are architecturally
     * committed), and stale fetch state is discarded. Pre:
     * readyForFastForward(); single-thread core.
     */
    void resumeAfterFastForward();

    /**
     * Adopt checkpointed architectural state before the first cycle:
     * oracle registers/PC/instruction count and the fetch PC. The
     * caller restores functional memory separately. Pre: the core has
     * never ticked; single-thread core.
     */
    void restoreArchState(const RegFile &regs, Addr pc,
                          std::uint64_t inst_count);

    /** Attach a pipeline tracer (not owned; nullptr disables). */
    void setTracer(PipelineTracer *t) { tracer_ = t; }

    /**
     * Attach an event timeline recording runahead episodes (not
     * owned; nullptr disables — one pointer test per event site).
     */
    void setTimeline(EventTimeline *t) { timeline_ = t; }

    /**
     * Attach a lockstep architectural checker to thread 0 (not
     * owned; nullptr disables). Same zero-overhead contract as the
     * tracer: one pointer test per committed instruction when
     * detached, and no effect whatsoever on timing state when
     * attached.
     */
    void setChecker(LockstepChecker *c) { threads_[0]->checker = c; }

    /** Attach a per-thread lockstep checker. */
    void setChecker(unsigned tid, LockstepChecker *c)
    {
        threads_[tid]->checker = c;
    }

    // --- telemetry occupancy accessors (summed over threads) ----------
    unsigned
    robOccupancy() const
    {
        unsigned n = 0;
        for (const auto &t : threads_)
            n += static_cast<unsigned>(t->window.size());
        return n;
    }
    unsigned
    iqOccupancy() const
    {
        unsigned n = 0;
        for (const auto &t : threads_)
            n += t->iqOcc;
        return n;
    }
    unsigned
    lsqOccupancy() const
    {
        unsigned n = 0;
        for (const auto &t : threads_)
            n += t->lsqOcc;
        return n;
    }
    /** # of loads currently waiting on an L2 miss (observed MLP). */
    unsigned
    outstandingL2Misses() const
    {
        unsigned n = 0;
        for (const auto &t : threads_)
            n += static_cast<unsigned>(t->activeMissDone.size());
        return n;
    }

    /** True once every thread's fetch has seen its Halt. */
    bool
    fetchHalted() const
    {
        for (const auto &t : threads_) {
            if (!t->fetchHalted)
                return false;
        }
        return true;
    }

    // --- ROB head view (watchdog diagnostic dumps; thread 0) ----------
    bool robEmpty() const { return threads_[0]->window.empty(); }
    InstSeqNum
    robHeadSeq() const
    {
        const auto &w = threads_[0]->window;
        return w.empty() ? 0 : w.front().seq;
    }
    Addr
    robHeadPc() const
    {
        const auto &w = threads_[0]->window;
        return w.empty() ? 0 : w.front().pc;
    }
    bool
    robHeadCompleted() const
    {
        const auto &w = threads_[0]->window;
        return !w.empty() && w.front().completed;
    }

  private:
    // --- pipeline stages (called in reverse order each tick) ----------
    /** The seven stage calls, in reverse pipeline order. */
    void runStages();
    /** runStages with each stage timed under a host-profiler span
     *  (taken on sampled cycles only; see tick()). */
    void runStagesProfiled();
    void commitStage();
    void completeStage();
    void lsuStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    // --- per-thread stage bodies ---------------------------------------
    void commitThread(ThreadContext &t, unsigned &budget);
    void lsuThread(ThreadContext &t, unsigned &ports);
    void dispatchThread(ThreadContext &t, unsigned &budget);
    void fetchThread(ThreadContext &t);

    // --- WIB (Lebeck et al. related-work model) -----------------------
    /**
     * If inst (not ready in the IQ) directly depends on an
     * outstanding L2-miss load or on a WIB-resident instruction, park
     * it in the WIB and free its IQ entry. @return true if moved.
     */
    bool maybeMoveToWib(ThreadContext &t, DynInst &inst);
    /** Wake WIB entries blocked on the just-completed instruction. */
    void wakeWibWaiters(ThreadContext &t, const DynInst &completed);
    /** Re-insert woken WIB entries into the IQ (bandwidth-limited). */
    void wibReinsertStage();

    // --- helpers -------------------------------------------------------
    DynInst *findInst(InstSeqNum seq);
    bool fetchOne(ThreadContext &t);
    void buildShadowRecord(ThreadContext &t, DynInst &d);
    void setupSources(DynInst &d);
    /**
     * True once source i's value is available (memoized in d); sets
     * inv if the value is a runahead INV.
     */
    bool srcReady(ThreadContext &t, DynInst &d, unsigned i, bool &inv);
    bool acquireFu(const StaticInst &si);
    /** Thread t's resource caps this cycle. */
    const ResourceLevel &
    levelFor(const ThreadContext &t) const
    {
        return partition_ ? partition_->currentFor(t.tid)
                          : resize_->current();
    }
    bool
    allocStoppedFor(const ThreadContext &t) const
    {
        return partition_ ? partition_->allocStoppedFor(t.tid)
                          : resize_->allocStopped();
    }
    unsigned iqDepthEff(const ThreadContext &t) const;
    unsigned mispredictRedirectPenalty(const ThreadContext &t) const;
    /**
     * SMT only: true if dispatching d would keep the summed
     * occupancies inside the shared largest-level budget. On failure
     * `which` names the exhausted structure (RobFull/IqFull/LsqFull)
     * for the CPI stack.
     */
    bool globalRoomFor(const DynInst &d, bool needs_iq,
                       CpiComponent &which) const;
    /** Attribute the current cycle to one CPI-stack leaf per thread
     *  (called once per tick, just before the clock advances). */
    void accountCpi();
    /** The taxonomy leaf thread t's current cycle belongs to; the
     *  priority order is documented in tools/TELEMETRY.md. */
    CpiComponent classifyCycle(const ThreadContext &t) const;
    bool allHalted() const;
    void resolveMispredict(DynInst &branch);
    void squashYoungerThan(ThreadContext &t, InstSeqNum seq);
    void rebuildAfterSquash(ThreadContext &t);
    bool storeBufferMatch(const ThreadContext &t, Addr addr) const;
    void retireHead(ThreadContext &t, bool pseudo);
    void maybeEnterRunahead(ThreadContext &t, DynInst &head);
    void exitRunahead(ThreadContext &t);
    void pseudoRetireLoop(ThreadContext &t);

    static std::vector<std::unique_ptr<ThreadContext>>
    makeThreads(const CoreConfig &cfg,
                const std::vector<SmtThreadSpec> &specs,
                StatSet *stats, const BranchPredictorConfig &bp_cfg);

    // --- configuration & shared structure references -------------------
    /** Emit a trace event if a tracer is attached. */
    void
    trace(TraceCategory cat, const DynInst &d) const
    {
        if (tracer_)
            tracer_->event(cycle_, cat, d);
    }

    void
    traceNote(TraceCategory cat, const std::string &msg) const
    {
        if (tracer_)
            tracer_->note(cycle_, cat, msg);
    }

    CoreConfig cfg_;
    /** Single-thread window controller (null on SMT cores). */
    ResizeController *resize_ = nullptr;
    /** SMT per-thread partition controller (null on 1-thread cores). */
    SmtPartitionController *partition_ = nullptr;
    CacheHierarchy &mem_;
    RunaheadConfig raCfg_;
    PipelineTracer *tracer_ = nullptr;
    EventTimeline *timeline_ = nullptr;

    /**
     * Thread contexts (declared before the Counters so thread 0's
     * branch predictor registers its stats first, exactly as the
     * pre-SMT member order did).
     */
    std::vector<std::unique_ptr<ThreadContext>> threads_;
    /** True for nThreads > 1: SMT arbitration paths engaged. */
    bool smtActive_ = false;
    FetchPolicyEngine fetchEngine_;
    /** Scratch for fetch arbitration / partition tick (no realloc). */
    std::vector<FetchThreadState> fetchStates_;
    std::vector<ThreadPartitionInput> partitionInputs_;

    // --- shared core state ----------------------------------------------
    Cycle cycle_ = 0;
    Cycle measureStartCycle_ = 0;
    InstSeqNum nextSeq_ = 1;
    bool halted_ = false;
    /** Fetch suspended while draining toward a fast-forward. */
    bool fetchPaused_ = false;

    /** O(1) seq -> window entry (all threads; pointer-stable deques). */
    std::unordered_map<InstSeqNum, DynInst *> seqMap_;
    /** IQ entries of every thread, dispatch-age order. */
    std::vector<DynInst *> iqList_;

    using CompletionEvent = std::pair<Cycle, InstSeqNum>;
    std::priority_queue<CompletionEvent,
                        std::vector<CompletionEvent>,
                        std::greater<CompletionEvent>>
        completions_;

    // --- functional-unit pools (shared) ----------------------------------
    unsigned aluUsed_ = 0;
    unsigned fpAluUsed_ = 0;
    unsigned aguUsed_ = 0;
    std::vector<Cycle> intMulDivFree_;
    std::vector<Cycle> fpMulDivFree_;
    unsigned issuedThisCycle_ = 0;

    // --- MLP observation (all threads) -----------------------------------
    double mlpOverlapSum_ = 0.0;
    std::uint64_t mlpActiveCycles_ = 0;

    // --- energy integrals ----------------------------------------------
    std::uint64_t iqSizeCycles_ = 0;
    std::uint64_t robSizeCycles_ = 0;
    std::uint64_t lsqSizeCycles_ = 0;

    // --- statistics -----------------------------------------------------
    Counter fetched_;
    Counter dispatched_;
    Counter issuedCnt_;
    Counter committed_;
    Counter committedLoads_;
    Counter committedStores_;
    Counter committedBranches_;
    Counter committedMispredicts_;
    Counter squashed_;
    Counter forwards_;
    Counter wpLoads_;
    Counter raEpisodes_;
    Counter raUseless_;
    Counter raPseudoRetired_;
    Counter wibMoves_;
    Counter wibReinserts_;
    Average loadLatency_;
};

} // namespace mlpwin

#endif // MLPWIN_CPU_CORE_HH
