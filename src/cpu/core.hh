/**
 * @file
 * The out-of-order superscalar core.
 *
 * An execution-driven, cycle-stepped model of a P6-style 4-wide
 * out-of-order processor (paper Table 1): fetch with branch
 * prediction and wrong-path execution, rename/dispatch into resizable
 * ROB/IQ/LSQ windows, wakeup-select issue with a configurable IQ
 * pipeline depth (the paper's issue-loop penalty for enlarged,
 * pipelined queues), a load/store unit with store-to-load forwarding
 * and conservative disambiguation, and in-order commit.
 *
 * Functional execution is oracle-driven: a correct-path emulator runs
 * at fetch, so every dynamic instruction carries its real result,
 * memory address, and branch outcome. Wrong-path instructions after a
 * misprediction execute against a shadow register file (copied at the
 * divergence) and a local store overlay, so their (squashed) cache
 * traffic is realistic - this feeds the paper's Fig. 11 pollution
 * study. Runahead execution (paper Section 5.7) is modeled as a
 * pseudo-retiring episode with INV propagation and full architectural
 * rollback via per-instruction undo logs.
 *
 * The window resources consult a ResizeController every cycle: the
 * MLP-aware controller implements the paper's contribution; fixed
 * controllers implement the baseline/ideal models.
 */

#ifndef MLPWIN_CPU_CORE_HH
#define MLPWIN_CPU_CORE_HH

#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

#include "branch/predictor.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/core_config.hh"
#include "cpu/dyninst.hh"
#include "cpu/tracer.hh"
#include "emu/emulator.hh"
#include "mem/hierarchy.hh"
#include "mem/main_memory.hh"
#include "resize/controller.hh"
#include "runahead/runahead.hh"

namespace mlpwin
{

class LockstepChecker;

/** See file comment. */
class OooCore
{
  public:
    /**
     * @param cfg Core widths/penalties.
     * @param resize Window-size controller (not owned).
     * @param mem Timing memory hierarchy (not owned).
     * @param fmem Functional memory, already loaded (not owned).
     * @param prog The program to run.
     * @param stats Stat registry (may be nullptr).
     * @param ra Runahead configuration (disabled by default).
     * @param bp_cfg Branch predictor configuration.
     */
    OooCore(const CoreConfig &cfg, ResizeController &resize,
            CacheHierarchy &mem, MainMemory &fmem, const Program &prog,
            StatSet *stats, const RunaheadConfig &ra = RunaheadConfig{},
            const BranchPredictorConfig &bp_cfg =
                BranchPredictorConfig{});

    /** Advance one clock cycle. */
    void tick();

    /**
     * Start the measurement window at the current cycle: zeroes the
     * core's non-Stat accumulators (MLP observation, energy size
     * integrals) and rebases cycle-derived rates. The Simulator calls
     * this after the warm-up phase, together with StatSet::resetAll().
     */
    void resetMeasurement();

    /** Cycles elapsed inside the measurement window. */
    Cycle
    measuredCycles() const
    {
        return cycle_ - measureStartCycle_;
    }

    /** True once the program's Halt instruction has committed. */
    bool halted() const { return halted_; }

    Cycle cycle() const { return cycle_; }
    std::uint64_t committedInsts() const { return committed_.value(); }

    /** IPC over the measurement window (the whole run by default). */
    double
    ipc() const
    {
        Cycle c = measuredCycles();
        return c ? static_cast<double>(committed_.value()) / c : 0.0;
    }

    /** Mean latency of committed loads (issue to data return). */
    double avgLoadLatency() const { return loadLatency_.mean(); }

    std::uint64_t committedLoads() const
    {
        return committedLoads_.value();
    }
    std::uint64_t committedStores() const
    {
        return committedStores_.value();
    }
    std::uint64_t committedBranches() const
    {
        return committedBranches_.value();
    }
    std::uint64_t committedMispredicts() const
    {
        return committedMispredicts_.value();
    }
    std::uint64_t squashedInsts() const { return squashed_.value(); }
    std::uint64_t issuedInsts() const { return issuedCnt_.value(); }
    std::uint64_t fetchedInsts() const { return fetched_.value(); }
    std::uint64_t runaheadEpisodes() const
    {
        return raEpisodes_.value();
    }
    std::uint64_t runaheadUselessEpisodes() const
    {
        return raUseless_.value();
    }
    std::uint64_t wibMoves() const { return wibMoves_.value(); }
    std::uint64_t wibReinserts() const { return wibReinserts_.value(); }
    unsigned wibOccupancy() const { return wibOcc_; }

    /** Average # of in-flight L2-miss loads over miss-active cycles. */
    double
    observedMlp() const
    {
        return mlpActiveCycles_ ? mlpOverlapSum_ /
                                      static_cast<double>(
                                          mlpActiveCycles_)
                                : 0.0;
    }

    /** Size-cycles integrals for the energy model (capacity * cycle). */
    std::uint64_t iqSizeCycles() const { return iqSizeCycles_; }
    std::uint64_t robSizeCycles() const { return robSizeCycles_; }
    std::uint64_t lsqSizeCycles() const { return lsqSizeCycles_; }

    const BranchPredictor &predictor() const { return bp_; }
    const ResizeController &resizer() const { return resize_; }

    /** Oracle view (for end-of-run architectural state checks). */
    const Emulator &oracle() const { return oracle_; }

    // --- sampled-simulation support (see sample/) ---------------------
    /**
     * Mutable oracle access for the Simulator's functional
     * fast-forward. Only legal while the pipeline is drained
     * (readyForFastForward()): with nothing in flight, the oracle sits
     * exactly at the next instruction to fetch, so stepping it ahead
     * natively and then calling resumeAfterFastForward() is
     * architecturally seamless.
     */
    Emulator &oracleForFastForward() { return oracle_; }

    /** Mutable predictor access for functional warming. */
    BranchPredictor &predictorForWarming() { return bp_; }

    /**
     * Stop (true) or re-allow (false) instruction fetch, so the
     * pipeline can be drained to an architectural boundary between a
     * measured interval and the next fast-forward.
     */
    void setFetchPaused(bool paused) { fetchPaused_ = paused; }

    /**
     * True when no speculative or in-flight state remains: the oracle
     * is exactly at the architectural boundary and a functional
     * fast-forward may run.
     */
    bool
    readyForFastForward() const
    {
        return window_.empty() && fetchQueue_.empty() &&
               storeBuffer_.empty() && !inRunahead_ && !onWrongPath_;
    }

    /**
     * Re-sync the front end with the oracle after an external
     * functional fast-forward: fetch resumes at the oracle's PC, the
     * lifetime commit count adopts the oracle's instruction count
     * (instructions executed functionally are architecturally
     * committed), and stale fetch state is discarded. Pre:
     * readyForFastForward().
     */
    void resumeAfterFastForward();

    /**
     * Adopt checkpointed architectural state before the first cycle:
     * oracle registers/PC/instruction count and the fetch PC. The
     * caller restores functional memory separately. Pre: the core has
     * never ticked.
     */
    void restoreArchState(const RegFile &regs, Addr pc,
                          std::uint64_t inst_count);

    /** Attach a pipeline tracer (not owned; nullptr disables). */
    void setTracer(PipelineTracer *t) { tracer_ = t; }

    /**
     * Attach an event timeline recording runahead episodes (not
     * owned; nullptr disables — one pointer test per event site).
     */
    void setTimeline(EventTimeline *t) { timeline_ = t; }

    /**
     * Attach a lockstep architectural checker (not owned; nullptr
     * disables). Same zero-overhead contract as the tracer: one
     * pointer test per committed instruction when detached, and no
     * effect whatsoever on timing state when attached.
     */
    void setChecker(LockstepChecker *c) { checker_ = c; }

    // --- telemetry occupancy accessors --------------------------------
    unsigned robOccupancy() const
    {
        return static_cast<unsigned>(window_.size());
    }
    unsigned iqOccupancy() const { return iqOcc_; }
    unsigned lsqOccupancy() const { return lsqOcc_; }
    /** # of loads currently waiting on an L2 miss (observed MLP). */
    unsigned outstandingL2Misses() const
    {
        return static_cast<unsigned>(activeMissDone_.size());
    }

    /** Committed instructions at which Halt was reached, if any. */
    bool fetchHalted() const { return fetchHalted_; }

    // --- ROB head view (watchdog diagnostic dumps) --------------------
    bool robEmpty() const { return window_.empty(); }
    InstSeqNum
    robHeadSeq() const
    {
        return window_.empty() ? 0 : window_.front().seq;
    }
    Addr
    robHeadPc() const
    {
        return window_.empty() ? 0 : window_.front().pc;
    }
    bool
    robHeadCompleted() const
    {
        return !window_.empty() && window_.front().completed;
    }

  private:
    // --- pipeline stages (called in reverse order each tick) ----------
    void commitStage();
    void completeStage();
    void lsuStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    // --- WIB (Lebeck et al. related-work model) -----------------------
    /**
     * If inst (not ready in the IQ) directly depends on an
     * outstanding L2-miss load or on a WIB-resident instruction, park
     * it in the WIB and free its IQ entry. @return true if moved.
     */
    bool maybeMoveToWib(DynInst &inst);
    /** Wake WIB entries blocked on the just-completed instruction. */
    void wakeWibWaiters(const DynInst &completed);
    /** Re-insert woken WIB entries into the IQ (bandwidth-limited). */
    void wibReinsertStage();

    // --- helpers -------------------------------------------------------
    DynInst *findInst(InstSeqNum seq);
    bool fetchOne();
    void buildShadowRecord(DynInst &d);
    void setupSources(DynInst &d);
    /**
     * True once source i's value is available (memoized in d); sets
     * inv if the value is a runahead INV.
     */
    bool srcReady(DynInst &d, unsigned i, bool &inv);
    bool acquireFu(const StaticInst &si);
    unsigned iqDepthEff() const;
    unsigned mispredictRedirectPenalty() const;
    void resolveMispredict(DynInst &branch);
    void squashYoungerThan(InstSeqNum seq);
    void rebuildAfterSquash();
    bool storeBufferMatch(Addr addr) const;
    void retireHead(bool pseudo);
    void maybeEnterRunahead(DynInst &head);
    void exitRunahead();
    void pseudoRetireLoop();

    // --- configuration & shared structure references -------------------
    /** Emit a trace event if a tracer is attached. */
    void
    trace(TraceCategory cat, const DynInst &d) const
    {
        if (tracer_)
            tracer_->event(cycle_, cat, d);
    }

    void
    traceNote(TraceCategory cat, const std::string &msg) const
    {
        if (tracer_)
            tracer_->note(cycle_, cat, msg);
    }

    CoreConfig cfg_;
    ResizeController &resize_;
    CacheHierarchy &mem_;
    MainMemory &fmem_;
    RunaheadConfig raCfg_;
    BranchPredictor bp_;
    Emulator oracle_;
    PipelineTracer *tracer_ = nullptr;
    EventTimeline *timeline_ = nullptr;
    LockstepChecker *checker_ = nullptr;

    // --- core state -----------------------------------------------------
    Cycle cycle_ = 0;
    Cycle measureStartCycle_ = 0;
    InstSeqNum nextSeq_ = 1;
    bool halted_ = false;
    /**
     * Lifetime count of real (non-pseudo) commits. Unlike the
     * committed_ Counter this is never reset by the measurement
     * window, so it must equal the oracle's instruction count
     * whenever the oracle sits at the next-to-commit instruction —
     * the structural invariant checked after runahead rollback.
     */
    std::uint64_t committedTotal_ = 0;

    /**
     * ROB, oldest at front. A std::deque keeps element addresses
     * stable under push_back/pop_front/pop_back, so the IQ/LSQ lists
     * below may hold raw pointers into it; every operation that
     * removes window entries (squash, runahead exit, retire) removes
     * the corresponding list entries in the same cycle.
     */
    std::deque<DynInst> window_;
    /** O(1) seq -> window entry (kept in sync with window_). */
    std::unordered_map<InstSeqNum, DynInst *> seqMap_;
    unsigned iqOcc_ = 0;
    unsigned lsqOcc_ = 0;
    std::vector<DynInst *> iqList_; ///< IQ entries, age order.
    std::deque<DynInst *> lsqList_; ///< LSQ entries, age order.
    std::array<InstSeqNum, kNumArchRegs> renameMap_{};

    std::deque<DynInst> fetchQueue_;

    // --- WIB state ------------------------------------------------------
    unsigned wibOcc_ = 0;
    /** Blocking seq -> WIB entries waiting on it. */
    std::unordered_map<InstSeqNum, std::vector<InstSeqNum>>
        wibWaiters_;
    /** (earliest re-insert cycle, seq) woken entries, FIFO. */
    std::deque<std::pair<Cycle, InstSeqNum>> wibReady_;

    using CompletionEvent = std::pair<Cycle, InstSeqNum>;
    std::priority_queue<CompletionEvent,
                        std::vector<CompletionEvent>,
                        std::greater<CompletionEvent>>
        completions_;

    struct PendingStore
    {
        Addr addr;
        RegVal data;
    };
    std::deque<PendingStore> storeBuffer_;

    // --- fetch state -----------------------------------------------------
    Addr fetchPc_ = 0;
    bool fetchHalted_ = false;
    /** Fetch suspended while draining toward a fast-forward. */
    bool fetchPaused_ = false;
    /** Fetch may not produce instructions before this cycle. */
    Cycle redirectAt_ = 0;
    Cycle icacheBusyUntil_ = 0;
    Addr lastFetchLine_ = kNoAddr;
    /** Waiting for a mispredicted branch (wrong-path exec disabled). */
    bool fetchWaitBranch_ = false;

    // --- wrong-path state ---------------------------------------------
    bool onWrongPath_ = false;
    RegFile shadowRegs_;
    std::unordered_map<Addr, RegVal> shadowStores_;

    // --- functional-unit pools --------------------------------------------
    unsigned aluUsed_ = 0;
    unsigned fpAluUsed_ = 0;
    unsigned aguUsed_ = 0;
    std::vector<Cycle> intMulDivFree_;
    std::vector<Cycle> fpMulDivFree_;
    unsigned issuedThisCycle_ = 0;

    // --- runahead state -----------------------------------------------
    bool inRunahead_ = false;
    Addr raTriggerPc_ = 0;
    Cycle raExitAt_ = 0;
    std::uint64_t raEpisodeMisses_ = 0;
    std::vector<ExecRecord> raUndoLog_;
    InvTracker inv_;
    RunaheadCauseStatusTable rcst_;

    // --- per-cycle scratch ------------------------------------------------
    bool allocStalledFull_ = false;

    // --- MLP observation ---------------------------------------------------
    std::vector<Cycle> activeMissDone_;
    double mlpOverlapSum_ = 0.0;
    std::uint64_t mlpActiveCycles_ = 0;

    // --- energy integrals ----------------------------------------------
    std::uint64_t iqSizeCycles_ = 0;
    std::uint64_t robSizeCycles_ = 0;
    std::uint64_t lsqSizeCycles_ = 0;

    // --- statistics -----------------------------------------------------
    Counter fetched_;
    Counter dispatched_;
    Counter issuedCnt_;
    Counter committed_;
    Counter committedLoads_;
    Counter committedStores_;
    Counter committedBranches_;
    Counter committedMispredicts_;
    Counter squashed_;
    Counter forwards_;
    Counter wpLoads_;
    Counter raEpisodes_;
    Counter raUseless_;
    Counter raPseudoRetired_;
    Counter wibMoves_;
    Counter wibReinserts_;
    Average loadLatency_;
};

} // namespace mlpwin

#endif // MLPWIN_CPU_CORE_HH
