/**
 * @file
 * Configuration of the out-of-order core (paper Table 1).
 */

#ifndef MLPWIN_CPU_CORE_CONFIG_HH
#define MLPWIN_CPU_CORE_CONFIG_HH

#include "common/types.hh"
#include "smt/smt_config.hh"

namespace mlpwin
{

/** Core parameters; defaults are the paper's base processor. */
struct CoreConfig
{
    /** SMT configuration (1 thread keeps the original core exactly). */
    SmtConfig smt;

    unsigned fetchWidth = 4;
    unsigned decodeWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;

    /** Base branch misprediction penalty in cycles (paper: 10). */
    unsigned mispredictPenalty = 10;

    unsigned fetchQueueSize = 16;
    unsigned storeBufferSize = 16;

    /** Functional-unit counts (paper Table 1). */
    unsigned numIntAlu = 4;
    unsigned numIntMulDiv = 2;
    unsigned numMemPorts = 2;
    unsigned numFpAlu = 4;
    unsigned numFpMulDiv = 2;

    /**
     * False selects the paper's "ideal model": enlarged window
     * resources are *not* pipelined, so there is no issue-loop delay
     * and no extra branch misprediction penalty at higher levels.
     */
    bool pipelinePenalties = true;

    /**
     * Model wrong-path fetch/execution after mispredictions (needed
     * for the Fig. 11 pollution study). Disabling it makes squashes
     * instantaneous refetch bubbles with no wrong-path memory traffic.
     */
    bool wrongPathExecution = true;

    // --- WIB model (Lebeck et al., ISCA'02; paper Section 6.3) -------

    /**
     * Enable the waiting instruction buffer: instructions whose
     * source hangs off an outstanding L2-miss load leave the (small)
     * IQ for the WIB and re-enter when the miss resolves. A
     * related-work alternative to enlarging the IQ; used by the
     * ModelKind::Wib comparison.
     */
    bool wibEnabled = false;
    /** WIB capacity in instructions. */
    unsigned wibSize = 512;
    /** Instructions re-insertable into the IQ per cycle. */
    unsigned wibReinsertWidth = 4;
    /** Cycles from the blocking miss's completion to re-insertion. */
    unsigned wibReinsertDelay = 2;

    /**
     * Test-only fault injection: once this cycle is reached the
     * commit stage stops retiring (a synthetic no-commit wedge in the
     * real commit path). Exercises the forward-progress watchdog and
     * the batch harness's failure containment; kNoCycle = never.
     */
    Cycle debugStallCommitAt = kNoCycle;

    /**
     * Test-only fault injection: corrupt the runahead rollback by
     * perturbing the trigger load's base register after the undo
     * walk, as if one undo record had been lost. The mutation test
     * uses this to prove the lockstep checker catches a rollback bug
     * at the exact divergent commit (field "memAddr", trigger PC).
     */
    bool debugCorruptUndo = false;
};

} // namespace mlpwin

#endif // MLPWIN_CPU_CORE_CONFIG_HH
