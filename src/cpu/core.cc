#include "core.hh"

#include <algorithm>

#include "check/lockstep.hh"
#include "common/logging.hh"
#include "common/status.hh"

namespace mlpwin
{

OooCore::OooCore(const CoreConfig &cfg, ResizeController &resize,
                 CacheHierarchy &mem, MainMemory &fmem,
                 const Program &prog, StatSet *stats,
                 const RunaheadConfig &ra,
                 const BranchPredictorConfig &bp_cfg)
    : cfg_(cfg), resize_(resize), mem_(mem), fmem_(fmem), raCfg_(ra),
      bp_(bp_cfg, stats),
      oracle_(fmem, prog.entry()),
      fetchPc_(prog.entry()),
      intMulDivFree_(cfg.numIntMulDiv, 0),
      fpMulDivFree_(cfg.numFpMulDiv, 0),
      fetched_(stats, "core.fetched", "instructions fetched"),
      dispatched_(stats, "core.dispatched", "instructions dispatched"),
      issuedCnt_(stats, "core.issued", "instructions issued"),
      committed_(stats, "core.committed", "instructions committed"),
      committedLoads_(stats, "core.committed_loads",
                      "loads committed"),
      committedStores_(stats, "core.committed_stores",
                       "stores committed"),
      committedBranches_(stats, "core.committed_branches",
                         "control insts committed"),
      committedMispredicts_(stats, "core.committed_mispredicts",
                            "committed mispredicted control insts"),
      squashed_(stats, "core.squashed", "instructions squashed"),
      forwards_(stats, "core.store_forwards",
                "loads satisfied by store forwarding"),
      wpLoads_(stats, "core.wrongpath_loads",
               "wrong-path loads sent to the caches"),
      raEpisodes_(stats, "core.runahead_episodes",
                  "runahead episodes entered"),
      raUseless_(stats, "core.runahead_useless",
                 "episodes that prefetched no L2 miss"),
      raPseudoRetired_(stats, "core.runahead_pseudo_retired",
                       "instructions pseudo-retired in runahead"),
      wibMoves_(stats, "core.wib_moves",
                "instructions parked in the WIB"),
      wibReinserts_(stats, "core.wib_reinserts",
                    "WIB entries re-inserted into the IQ"),
      loadLatency_(stats, "core.load_latency",
                   "committed load latency, issue to data (cycles)")
{
    renameMap_.fill(kNoProducer);
}

void
OooCore::resetMeasurement()
{
    measureStartCycle_ = cycle_;
    mlpOverlapSum_ = 0.0;
    mlpActiveCycles_ = 0;
    iqSizeCycles_ = 0;
    robSizeCycles_ = 0;
    lsqSizeCycles_ = 0;
}

void
OooCore::resumeAfterFastForward()
{
    mlpwin_assert(readyForFastForward());
    committedTotal_ = oracle_.instCount();
    fetchPc_ = oracle_.pc();
    if (oracle_.halted()) {
        // The program's Halt was consumed functionally; the run is
        // architecturally complete.
        halted_ = true;
        fetchHalted_ = true;
    }
    fetchWaitBranch_ = false;
    shadowStores_.clear();
    // The fast-forward is outside simulated time: the front end
    // starts the next interval clean, with no stale redirect or
    // I-cache busy window carried across the boundary.
    redirectAt_ = 0;
    icacheBusyUntil_ = 0;
    lastFetchLine_ = kNoAddr;
}

void
OooCore::restoreArchState(const RegFile &regs, Addr pc,
                          std::uint64_t inst_count)
{
    mlpwin_assert(cycle_ == 0 && window_.empty() &&
                  fetchQueue_.empty());
    oracle_.restoreState(regs, pc, inst_count);
    committedTotal_ = inst_count;
    fetchPc_ = pc;
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

DynInst *
OooCore::findInst(InstSeqNum seq)
{
    auto it = seqMap_.find(seq);
    return it != seqMap_.end() ? it->second : nullptr;
}

unsigned
OooCore::iqDepthEff() const
{
    return cfg_.pipelinePenalties ? resize_.current().iqDepth : 1;
}

unsigned
OooCore::mispredictRedirectPenalty() const
{
    unsigned extra = cfg_.pipelinePenalties
        ? resize_.current().extraMispredictPenalty() : 0;
    return cfg_.mispredictPenalty + extra;
}

void
OooCore::setupSources(DynInst &d)
{
    unsigned n = 0;
    for (RegId r : {d.si.rs1, d.si.rs2}) {
        if (r != kNoReg && r != intReg(0))
            d.srcReg[n++] = r;
        else
            ++n;
    }
}

bool
OooCore::srcReady(DynInst &d, unsigned i, bool &inv)
{
    if (d.srcDone[i]) {
        inv |= d.srcInv[i];
        return true;
    }
    RegId r = d.srcReg[i];
    bool src_inv = false;
    if (r != kNoReg) {
        InstSeqNum p = d.srcProducer[i];
        if (p != kNoProducer) {
            if (const DynInst *prod = findInst(p)) {
                if (prod->wakeupAt == kNoCycle ||
                    cycle_ < prod->wakeupAt) {
                    return false;
                }
                src_inv = prod->invalid;
            }
            // else: producer retired (committed or pseudo-retired);
            // the value is architectural.
        }
        if (!src_inv && inRunahead_ && inv_.regInv(r))
            src_inv = true;
    }
    d.srcDone[i] = true;
    d.srcInv[i] = src_inv;
    inv |= src_inv;
    return true;
}

// ---------------------------------------------------------------------
// WIB (waiting instruction buffer, Lebeck et al.)
// ---------------------------------------------------------------------

bool
OooCore::maybeMoveToWib(DynInst &inst)
{
    if (!cfg_.wibEnabled || wibOcc_ >= cfg_.wibSize)
        return false;

    for (unsigned i = 0; i < 2; ++i) {
        if (inst.srcDone[i] || inst.srcProducer[i] == kNoProducer)
            continue;
        DynInst *prod = findInst(inst.srcProducer[i]);
        if (!prod)
            continue;
        // Park only behind genuinely long waits: an outstanding
        // L2-miss load, or a producer that is itself parked.
        bool long_wait = prod->inWib ||
            (prod->isLoad() && prod->memDone && prod->l2Miss &&
             prod->completeAt != kNoCycle &&
             prod->completeAt > cycle_ + 20);
        if (!long_wait)
            continue;

        inst.inIq = false;
        --iqOcc_;
        inst.inWib = true;
        inst.wibBlockedOn = prod->seq;
        ++wibOcc_;
        wibWaiters_[prod->seq].push_back(inst.seq);
        ++wibMoves_;
        return true;
    }
    return false;
}

void
OooCore::wakeWibWaiters(const DynInst &completed)
{
    auto it = wibWaiters_.find(completed.seq);
    if (it == wibWaiters_.end())
        return;
    Cycle when = cycle_ + cfg_.wibReinsertDelay;
    for (InstSeqNum seq : it->second)
        wibReady_.push_back({when, seq});
    wibWaiters_.erase(it);
}

void
OooCore::wibReinsertStage()
{
    if (!cfg_.wibEnabled)
        return;
    unsigned n = 0;
    while (n < cfg_.wibReinsertWidth && !wibReady_.empty() &&
           wibReady_.front().first <= cycle_) {
        InstSeqNum seq = wibReady_.front().second;
        DynInst *inst = findInst(seq);
        if (!inst || !inst->inWib) {
            wibReady_.pop_front(); // Squashed or stale.
            continue;
        }
        if (iqOcc_ >= resize_.current().iqSize)
            break; // IQ full: retry next cycle.
        wibReady_.pop_front();
        inst->inWib = false;
        inst->wibBlockedOn = kNoProducer;
        --wibOcc_;
        inst->inIq = true;
        ++iqOcc_;
        iqList_.push_back(inst);
        ++wibReinserts_;
        ++n;
    }
}

bool
OooCore::acquireFu(const StaticInst &si)
{
    auto pool_acquire = [this](std::vector<Cycle> &pool,
                               Cycle busy_for) -> bool {
        for (Cycle &free_at : pool) {
            if (free_at <= cycle_) {
                free_at = cycle_ + busy_for;
                return true;
            }
        }
        return false;
    };

    switch (si.fuClass()) {
      case FuClass::None:
        return true;
      case FuClass::IntAlu:
        if (aluUsed_ < cfg_.numIntAlu) {
            ++aluUsed_;
            return true;
        }
        return false;
      case FuClass::MemPort:
        if (aguUsed_ < cfg_.numMemPorts) {
            ++aguUsed_;
            return true;
        }
        return false;
      case FuClass::FpAlu:
        if (fpAluUsed_ < cfg_.numFpAlu) {
            ++fpAluUsed_;
            return true;
        }
        return false;
      case FuClass::IntMul:
      case FuClass::IntDiv:
        return pool_acquire(intMulDivFree_,
                            si.fuPipelined() ? 1 : si.execLatency());
      case FuClass::FpMul:
      case FuClass::FpDiv:
      case FuClass::FpSqrt:
        return pool_acquire(fpMulDivFree_,
                            si.fuPipelined() ? 1 : si.execLatency());
    }
    return false;
}

bool
OooCore::storeBufferMatch(Addr addr) const
{
    Addr a8 = addr & ~Addr(7);
    for (const PendingStore &s : storeBuffer_) {
        if ((s.addr & ~Addr(7)) == a8)
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
OooCore::buildShadowRecord(DynInst &d)
{
    const StaticInst &si = d.si;
    ExecRecord rec;
    rec.inst = si;
    rec.pc = d.pc;
    rec.nextPc = d.pc + kInstBytes;

    RegVal a = shadowRegs_.read(si.rs1);
    RegVal b = shadowRegs_.read(si.rs2);

    if (si.isLoad()) {
        Addr addr = a + static_cast<std::int64_t>(si.imm);
        rec.memAddr = addr;
        auto it = shadowStores_.find(addr & ~Addr(7));
        RegVal v = it != shadowStores_.end() ? it->second
                                             : fmem_.readU64(addr);
        rec.result = v;
        shadowRegs_.write(si.rd, v);
    } else if (si.isStore()) {
        Addr addr = a + static_cast<std::int64_t>(si.imm);
        rec.memAddr = addr;
        rec.storeData = b;
        shadowStores_[addr & ~Addr(7)] = b;
    } else if (si.isControl()) {
        BranchPrediction pred = bp_.predict(d.pc, si);
        d.predTaken = pred.taken;
        d.predTarget = pred.target;
        d.histSnapshot = pred.historySnapshot;
        rec.taken = pred.taken;
        rec.nextPc = pred.taken ? pred.target : d.pc + kInstBytes;
        if (si.isJal() || si.isJalr()) {
            rec.result = d.pc + kInstBytes;
            shadowRegs_.write(si.rd, rec.result);
        }
    } else if (!si.isNop()) {
        rec.result = evalOp(si.op, a, b, si.imm);
        shadowRegs_.write(si.rd, rec.result);
    }

    d.rec = rec;
    fetchPc_ = rec.nextPc;
}

bool
OooCore::fetchOne()
{
    DynInst d;
    d.seq = nextSeq_++;
    d.fetchCycle = cycle_;
    d.wrongPath = onWrongPath_;
    bool keep_fetching = true;

    if (!onWrongPath_) {
        d.rec = oracle_.step();
        d.si = d.rec.inst;
        d.pc = d.rec.pc;

        if (d.si.isHalt()) {
            fetchHalted_ = true;
            keep_fetching = false;
        } else if (d.si.isControl()) {
            BranchPrediction pred = bp_.predict(d.pc, d.si);
            d.predTaken = pred.taken;
            d.predTarget = pred.target;
            d.histSnapshot = pred.historySnapshot;
            Addr pred_next = pred.taken ? pred.target
                                        : d.pc + kInstBytes;
            if (pred_next != d.rec.nextPc) {
                d.mispredicted = true;
                if (cfg_.wrongPathExecution) {
                    onWrongPath_ = true;
                    shadowRegs_ = oracle_.regs();
                    shadowStores_.clear();
                    fetchPc_ = pred_next;
                } else {
                    fetchWaitBranch_ = true;
                    keep_fetching = false;
                }
            } else {
                fetchPc_ = d.rec.nextPc;
            }
            if (pred.taken)
                keep_fetching = false; // Can't fetch past a taken br.
        } else {
            fetchPc_ = d.rec.nextPc;
        }
    } else {
        d.pc = fetchPc_;
        d.si = decodeInst(fmem_.readU64(fetchPc_));
        if (d.si.isHalt())
            d.si = StaticInst{}; // Wrong-path Halt flows as a Nop.
        buildShadowRecord(d);
        if (d.si.isControl() && d.predTaken)
            keep_fetching = false;
    }

    setupSources(d);
    ++fetched_;
    trace(TraceCategory::Fetch, d);
    fetchQueue_.push_back(std::move(d));
    return keep_fetching;
}

void
OooCore::fetchStage()
{
    if (halted_ || fetchHalted_ || fetchWaitBranch_ || fetchPaused_)
        return;
    if (cycle_ < redirectAt_ || icacheBusyUntil_ > cycle_)
        return;

    for (unsigned slot = 0; slot < cfg_.fetchWidth; ++slot) {
        if (fetchQueue_.size() >= cfg_.fetchQueueSize)
            break;

        Addr line = mem_.l1i().lineAddr(fetchPc_);
        if (line != lastFetchLine_) {
            Provenance prov = onWrongPath_ ? Provenance::WrongPath
                                           : Provenance::CorrPath;
            MemAccessResult res = mem_.ifetch(fetchPc_, cycle_, prov);
            if (!res.accepted)
                break;
            lastFetchLine_ = line;
            if (res.doneAt > cycle_ + mem_.l1i().hitLatency()) {
                icacheBusyUntil_ = res.doneAt;
                break;
            }
        }

        if (!fetchOne())
            break;
    }
}

// ---------------------------------------------------------------------
// Dispatch (rename + window allocation)
// ---------------------------------------------------------------------

void
OooCore::dispatchStage()
{
    unsigned n = 0;
    while (n < cfg_.decodeWidth && !fetchQueue_.empty()) {
        if (resize_.allocStopped())
            break;

        const ResourceLevel &level = resize_.current();
        DynInst &d = fetchQueue_.front();

        if (window_.size() >= level.robSize) {
            allocStalledFull_ = true;
            break;
        }
        bool needs_iq = !(d.si.isNop() || d.si.isHalt());
        if (needs_iq && iqOcc_ >= level.iqSize) {
            allocStalledFull_ = true;
            break;
        }
        if (d.si.isMem() && lsqOcc_ >= level.lsqSize) {
            allocStalledFull_ = true;
            break;
        }

        d.dispatchCycle = cycle_;
        for (unsigned i = 0; i < 2; ++i) {
            if (d.srcReg[i] != kNoReg)
                d.srcProducer[i] = renameMap_[d.srcReg[i]];
        }
        RegId dest = d.si.destReg();
        if (dest != kNoReg)
            renameMap_[dest] = d.seq;

        if (needs_iq) {
            d.inIq = true;
            ++iqOcc_;
        } else {
            d.completed = true;
            d.completeAt = cycle_;
            d.wakeupAt = cycle_;
        }
        if (d.si.isMem()) {
            d.inLsq = true;
            ++lsqOcc_;
        }

        window_.push_back(std::move(d));
        DynInst &back = window_.back();
        trace(TraceCategory::Dispatch, back);
        seqMap_.emplace(back.seq, &back);
        if (back.inIq)
            iqList_.push_back(&back);
        if (back.inLsq)
            lsqList_.push_back(&back);
        fetchQueue_.pop_front();
        ++n;
        ++dispatched_;
    }
}

// ---------------------------------------------------------------------
// Issue (wakeup-select)
// ---------------------------------------------------------------------

void
OooCore::issueStage()
{
    aluUsed_ = 0;
    fpAluUsed_ = 0;
    aguUsed_ = 0;
    issuedThisCycle_ = 0;

    std::vector<DynInst *> surviving;
    surviving.reserve(iqList_.size());

    for (DynInst *inst : iqList_) {
        if (!inst->inIq)
            continue; // Issued earlier this scan.

        if (issuedThisCycle_ >= cfg_.issueWidth) {
            surviving.push_back(inst);
            continue;
        }

        bool inv = false;
        bool ready = true;
        for (unsigned i = 0; i < 2 && ready; ++i)
            ready = srcReady(*inst, i, inv);
        if (!ready) {
            if (!maybeMoveToWib(*inst))
                surviving.push_back(inst);
            continue;
        }

        if (inv) {
            // Runahead INV instruction: drop through the pipeline
            // without using an FU or touching memory.
            inst->invalid = true;
            inst->inIq = false;
            --iqOcc_;
            inst->issued = true;
            inst->issueCycle = cycle_;
            inst->completeAt = cycle_ + 1;
            inst->wakeupAt = cycle_ + 1;
            inst->memDone = true;
            completions_.push({inst->completeAt, inst->seq});
            ++issuedThisCycle_;
            continue;
        }

        if (!acquireFu(inst->si)) {
            surviving.push_back(inst);
            continue;
        }

        inst->issued = true;
        inst->inIq = false;
        --iqOcc_;
        inst->issueCycle = cycle_;
        ++issuedThisCycle_;
        ++issuedCnt_;
        trace(TraceCategory::Issue, *inst);

        if (inst->si.isMem()) {
            inst->addrKnown = true;
            if (inst->isStore()) {
                inst->completeAt = cycle_ + 1;
                inst->wakeupAt = cycle_ + 1;
                inst->memDone = true;
                completions_.push({inst->completeAt, inst->seq});
            }
            // Loads: the LSU schedules the cache access.
        } else {
            unsigned lat = inst->si.execLatency();
            inst->completeAt = cycle_ + lat;
            inst->wakeupAt = inst->completeAt + (iqDepthEff() - 1);
            completions_.push({inst->completeAt, inst->seq});
        }
    }

    iqList_ = std::move(surviving);
}

// ---------------------------------------------------------------------
// Load/store unit
// ---------------------------------------------------------------------

void
OooCore::lsuStage()
{
    unsigned ports = cfg_.numMemPorts;
    bool older_store_unknown = false;
    std::unordered_map<Addr, const DynInst *> last_store;

    for (DynInst *inst : lsqList_) {
        if (ports == 0)
            break;
        mlpwin_assert(inst->inLsq);

        if (inst->isStore()) {
            if (inst->invalid)
                continue; // INV store: no architectural effect here.
            // Store addresses resolve as soon as the base register is
            // ready, ahead of the (possibly much later) data operand;
            // younger loads to other addresses may then proceed.
            if (!inst->addrKnown) {
                bool inv = false;
                if (srcReady(*inst, 0, inv) && !inv)
                    inst->addrKnown = true;
            }
            if (inst->addrKnown)
                last_store[inst->rec.memAddr & ~Addr(7)] = inst;
            else
                older_store_unknown = true;
            continue;
        }

        // Load.
        if (inst->memDone || inst->invalid || !inst->addrKnown)
            continue;

        Addr a8 = inst->rec.memAddr & ~Addr(7);

        auto schedule_forward = [&]() {
            --ports;
            inst->memDone = true;
            inst->completeAt = cycle_ + 1;
            inst->wakeupAt = inst->completeAt + (iqDepthEff() - 1);
            completions_.push({inst->completeAt, inst->seq});
            ++forwards_;
        };

        auto it = last_store.find(a8);
        if (it != last_store.end()) {
            const DynInst *st = it->second;
            if (st->completeAt != kNoCycle && st->completeAt <= cycle_)
                schedule_forward();
            // else: wait for the store's data.
            continue;
        }
        if (older_store_unknown)
            continue; // Conservative disambiguation.
        if (storeBufferMatch(inst->rec.memAddr)) {
            schedule_forward();
            continue;
        }

        Provenance prov = inst->wrongPath ? Provenance::WrongPath
                                          : Provenance::CorrPath;
        MemAccessResult res =
            mem_.load(inst->rec.memAddr, inst->pc, cycle_, prov);
        --ports;
        if (!res.accepted)
            continue; // MSHRs busy; retry next cycle.

        inst->memDone = true;
        inst->completeAt = res.doneAt;
        inst->wakeupAt = res.doneAt + (iqDepthEff() - 1);
        inst->l2Miss = res.l2DemandMiss;
        completions_.push({inst->completeAt, inst->seq});
        if (inst->wrongPath)
            ++wpLoads_;
        if (res.l2DemandMiss) {
            activeMissDone_.push_back(res.doneAt);
            if (inRunahead_ && !inst->wrongPath)
                ++raEpisodeMisses_;
        }
    }

    // Drain one committed store per spare port.
    if (ports > 0 && !storeBuffer_.empty()) {
        MemAccessResult res = mem_.store(storeBuffer_.front().addr,
                                         cycle_, Provenance::CorrPath);
        if (res.accepted)
            storeBuffer_.pop_front();
    }
}

// ---------------------------------------------------------------------
// Completion / branch resolution / squash
// ---------------------------------------------------------------------

void
OooCore::completeStage()
{
    while (!completions_.empty() &&
           completions_.top().first <= cycle_) {
        auto [c, seq] = completions_.top();
        completions_.pop();
        DynInst *inst = findInst(seq);
        if (!inst || inst->completed || inst->completeAt != c)
            continue; // Stale event (squashed or rescheduled).
        inst->completed = true;
        trace(TraceCategory::Complete, *inst);
        if (cfg_.wibEnabled)
            wakeWibWaiters(*inst);
        if (inst->mispredicted && !inst->wrongPath)
            resolveMispredict(*inst);
    }
}

void
OooCore::resolveMispredict(DynInst &branch)
{
    squashYoungerThan(branch.seq);
    bp_.restoreHistory(branch.histSnapshot, branch.rec.taken);
    redirectAt_ = cycle_ + mispredictRedirectPenalty();
    fetchPc_ = branch.rec.nextPc;
    fetchWaitBranch_ = false;
    lastFetchLine_ = kNoAddr;
    icacheBusyUntil_ = 0;
    // The oracle stopped exactly at the divergence point. A promoted
    // structural invariant (not an assert): release builds report the
    // corruption through the SimError path with a diagnostic dump
    // instead of aborting the whole batch.
    if (oracle_.pc() != branch.rec.nextPc) {
        throw SimError(
            ErrorCode::InvariantViolation,
            "squash recovery: oracle pc 0x" +
                std::to_string(oracle_.pc()) +
                " does not match resolved branch target 0x" +
                std::to_string(branch.rec.nextPc) + " (branch pc 0x" +
                std::to_string(branch.pc) + ")");
    }
}

void
OooCore::squashYoungerThan(InstSeqNum seq)
{
    if (tracer_) {
        traceNote(TraceCategory::Squash,
                  "squash younger than sn" + std::to_string(seq));
    }
    while (!window_.empty() && window_.back().seq > seq) {
        DynInst &b = window_.back();
        mlpwin_assert(b.wrongPath);
        if (b.inIq)
            --iqOcc_;
        if (b.inLsq)
            --lsqOcc_;
        if (b.inWib)
            --wibOcc_;
        ++squashed_;
        seqMap_.erase(b.seq);
        window_.pop_back();
    }
    squashed_ += fetchQueue_.size();
    fetchQueue_.clear();
    onWrongPath_ = false;
    shadowStores_.clear();
    rebuildAfterSquash();
}

void
OooCore::rebuildAfterSquash()
{
    renameMap_.fill(kNoProducer);
    iqList_.clear();
    lsqList_.clear();
    wibWaiters_.clear();
    for (DynInst &d : window_) {
        RegId dest = d.si.destReg();
        if (dest != kNoReg)
            renameMap_[dest] = d.seq;
        if (d.inIq)
            iqList_.push_back(&d);
        if (d.inLsq)
            lsqList_.push_back(&d);
        if (d.inWib) {
            // Re-register the waiter; if its blocking producer has
            // already completed (or retired), wake it now instead —
            // its wake event fired before the squash rebuilt us.
            DynInst *prod = findInst(d.wibBlockedOn);
            if (prod && !prod->completed)
                wibWaiters_[prod->seq].push_back(d.seq);
            else
                wibReady_.push_back({cycle_ + 1, d.seq});
        }
    }
}

// ---------------------------------------------------------------------
// Commit / runahead
// ---------------------------------------------------------------------

void
OooCore::retireHead(bool pseudo)
{
    DynInst &head = window_.front();
    mlpwin_assert(!head.wrongPath);
    mlpwin_assert(!head.inIq && !head.inWib);

    if (head.inLsq) {
        --lsqOcc_;
        mlpwin_assert(!lsqList_.empty() && lsqList_.front() == &head);
        lsqList_.pop_front();
    }
    RegId dest = head.si.destReg();
    if (dest != kNoReg && renameMap_[dest] == head.seq)
        renameMap_[dest] = kNoProducer;

    if (pseudo) {
        raUndoLog_.push_back(head.rec);
        if (dest != kNoReg)
            inv_.setRegInv(dest, head.invalid);
        if (head.isStore() && head.invalid && head.addrKnown)
            inv_.setAddrInv(head.rec.memAddr);
        ++raPseudoRetired_;
    } else {
        if (head.isStore()) {
            storeBuffer_.push_back(
                PendingStore{head.rec.memAddr, head.rec.storeData});
            ++committedStores_;
        }
        if (head.isControl()) {
            bp_.update(head.pc, head.si, head.rec.taken,
                       head.rec.nextPc, head.histSnapshot);
            ++committedBranches_;
            if (head.mispredicted)
                ++committedMispredicts_;
        }
        if (head.isLoad()) {
            loadLatency_.sample(static_cast<double>(
                head.completeAt - head.issueCycle));
            ++committedLoads_;
        }
        ++committed_;
        ++committedTotal_;
        if (checker_)
            checker_->onCommit(head.rec);
    }

    trace(pseudo ? TraceCategory::Runahead : TraceCategory::Commit,
          head);
    seqMap_.erase(head.seq);
    window_.pop_front();
}

void
OooCore::maybeEnterRunahead(DynInst &head)
{
    if (!raCfg_.enabled || inRunahead_)
        return;
    if (!head.isLoad() || !head.memDone || head.completed)
        return;
    // Only long (L2-miss) stalls are worth running ahead of.
    if (head.completeAt == kNoCycle || head.completeAt <= cycle_ + 20)
        return;
    if (raCfg_.useRcst && !rcst_.predictUseful(head.pc))
        return;

    inRunahead_ = true;
    raTriggerPc_ = head.pc;
    raExitAt_ = head.completeAt;
    raEpisodeMisses_ = 0;
    raUndoLog_.clear();
    inv_.reset();
    ++raEpisodes_;
    if (timeline_)
        timeline_->beginRunahead(cycle_, raTriggerPc_);
    traceNote(TraceCategory::Runahead,
              "enter runahead (trigger pc 0x" +
                  std::to_string(raTriggerPc_) + ")");

    head.invalid = true; // Trigger load pseudo-retires INV.
}

void
OooCore::exitRunahead()
{
    // Roll the oracle back to the trigger, youngest effect first.
    for (auto it = fetchQueue_.rbegin(); it != fetchQueue_.rend();
         ++it) {
        if (!it->wrongPath)
            oracle_.undo(it->rec);
    }
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
        if (!it->wrongPath)
            oracle_.undo(it->rec);
    }
    for (auto it = raUndoLog_.rbegin(); it != raUndoLog_.rend(); ++it)
        oracle_.undo(*it);

    // Promoted structural invariants over the rollback: the oracle
    // must be back at the trigger, both in PC and in instruction
    // count (one count per real commit). Violations report through
    // the SimError path with a dump instead of aborting.
    if (oracle_.pc() != raTriggerPc_) {
        throw SimError(
            ErrorCode::InvariantViolation,
            "runahead rollback: oracle pc 0x" +
                std::to_string(oracle_.pc()) +
                " does not match trigger pc 0x" +
                std::to_string(raTriggerPc_));
    }
    if (oracle_.instCount() != committedTotal_) {
        throw SimError(
            ErrorCode::InvariantViolation,
            "runahead rollback: oracle instruction count " +
                std::to_string(oracle_.instCount()) +
                " does not match committed count " +
                std::to_string(committedTotal_) +
                " (undo log incomplete?)");
    }

    // Test-only fault injection: emulate a lost undo record by
    // perturbing the trigger load's base register after an otherwise
    // clean rollback. The lockstep checker must flag the trigger's
    // re-commit with a "memAddr" divergence. Bit 3 keeps the address
    // inside the trigger's own (just-fetched) cache line, so the
    // corrupted re-fetch hits and reaches commit instead of missing
    // again and re-entering runahead.
    if (cfg_.debugCorruptUndo) {
        StaticInst trigger = decodeInst(fmem_.readU64(raTriggerPc_));
        if (trigger.rs1 != kNoReg && trigger.rs1 != intReg(0)) {
            RegVal v = oracle_.regs().read(trigger.rs1);
            oracle_.regs().write(trigger.rs1, v ^ 0x8);
        }
    }

    rcst_.train(raTriggerPc_, raEpisodeMisses_ > 0);
    if (raEpisodeMisses_ == 0)
        ++raUseless_;

    squashed_ += window_.size() + fetchQueue_.size();
    window_.clear();
    seqMap_.clear();
    fetchQueue_.clear();
    iqOcc_ = 0;
    lsqOcc_ = 0;
    wibOcc_ = 0;
    iqList_.clear();
    lsqList_.clear();
    wibWaiters_.clear();
    wibReady_.clear();
    renameMap_.fill(kNoProducer);
    raUndoLog_.clear();
    inv_.reset();
    inRunahead_ = false;
    onWrongPath_ = false;
    shadowStores_.clear();
    fetchHalted_ = false;
    fetchWaitBranch_ = false;

    if (timeline_)
        timeline_->endRunahead(cycle_, raEpisodeMisses_);
    traceNote(TraceCategory::Runahead, "exit runahead");
    redirectAt_ = cycle_ + 1 + raCfg_.exitPenalty;
    // Refetch from the trigger; the invariant above already proved
    // oracle_.pc() == raTriggerPc_.
    fetchPc_ = raTriggerPc_;
    lastFetchLine_ = kNoAddr;
    icacheBusyUntil_ = 0;
}

void
OooCore::pseudoRetireLoop()
{
    for (unsigned n = 0; n < cfg_.commitWidth && !window_.empty();
         ++n) {
        DynInst &head = window_.front();
        if (head.wrongPath)
            break; // An unresolved branch precedes it; wait.
        if (head.completed) {
            retireHead(true);
            continue;
        }
        if (head.invalid || (head.isLoad() && head.memDone)) {
            // Pending-miss load (or already-INV inst): retire INV.
            head.invalid = true;
            retireHead(true);
            continue;
        }
        break; // Wait for short-latency execution to finish.
    }
}

void
OooCore::commitStage()
{
    if (halted_)
        return;

    // Synthetic no-commit wedge for watchdog/fault-tolerance tests.
    if (cycle_ >= cfg_.debugStallCommitAt)
        return;

    if (inRunahead_) {
        if (cycle_ >= raExitAt_) {
            exitRunahead();
            return;
        }
        pseudoRetireLoop();
        return;
    }

    for (unsigned n = 0; n < cfg_.commitWidth && !window_.empty();
         ++n) {
        DynInst &head = window_.front();

        if (!head.completed) {
            maybeEnterRunahead(head);
            if (inRunahead_)
                pseudoRetireLoop();
            break;
        }
        if (head.si.isHalt()) {
            retireHead(false);
            halted_ = true;
            break;
        }
        if (head.isStore() &&
            storeBuffer_.size() >= cfg_.storeBufferSize) {
            break;
        }
        retireHead(false);
    }
}

// ---------------------------------------------------------------------
// Tick
// ---------------------------------------------------------------------

void
OooCore::tick()
{
    allocStalledFull_ = false;

    commitStage();
    completeStage();
    lsuStage();
    issueStage();
    wibReinsertStage();
    dispatchStage();
    fetchStage();

    WindowOccupancy occ;
    occ.rob = static_cast<unsigned>(window_.size());
    occ.iq = iqOcc_;
    occ.lsq = lsqOcc_;
    occ.allocStalledFull = allocStalledFull_;
    resize_.tick(cycle_, occ);

    const ResourceLevel &lvl = resize_.current();
    iqSizeCycles_ += lvl.iqSize;
    robSizeCycles_ += lvl.robSize;
    lsqSizeCycles_ += lvl.lsqSize;

    std::erase_if(activeMissDone_,
                  [this](Cycle c) { return c <= cycle_; });
    if (!activeMissDone_.empty()) {
        mlpOverlapSum_ += static_cast<double>(activeMissDone_.size());
        ++mlpActiveCycles_;
    }

    ++cycle_;
}

} // namespace mlpwin
