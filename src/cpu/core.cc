#include "core.hh"

#include <algorithm>

#include "check/lockstep.hh"
#include "common/logging.hh"
#include "common/status.hh"
#include "profile/profiler.hh"

namespace mlpwin
{

std::vector<std::unique_ptr<ThreadContext>>
OooCore::makeThreads(const CoreConfig &cfg,
                     const std::vector<SmtThreadSpec> &specs,
                     StatSet *stats,
                     const BranchPredictorConfig &bp_cfg)
{
    mlpwin_assert(!specs.empty() &&
                  specs.size() <= kMaxSmtThreads &&
                  specs.size() == cfg.smt.nThreads);
    std::vector<std::unique_ptr<ThreadContext>> threads;
    threads.reserve(specs.size());
    for (unsigned tid = 0; tid < specs.size(); ++tid) {
        mlpwin_assert(specs[tid].fmem && specs[tid].prog);
        // Stat names are per-core, so only thread 0's branch
        // predictor registers; co-runner predictors are private but
        // unregistered.
        threads.push_back(std::make_unique<ThreadContext>(
            tid, *specs[tid].fmem, *specs[tid].prog, cfg.smt,
            tid == 0 ? stats : nullptr, bp_cfg));
    }
    return threads;
}

OooCore::OooCore(const CoreConfig &cfg, ResizeController &resize,
                 CacheHierarchy &mem, MainMemory &fmem,
                 const Program &prog, StatSet *stats,
                 const RunaheadConfig &ra,
                 const BranchPredictorConfig &bp_cfg)
    : OooCore(cfg, &resize, nullptr, mem,
              std::vector<SmtThreadSpec>{{&fmem, &prog}}, stats, ra,
              bp_cfg)
{
}

OooCore::OooCore(const CoreConfig &cfg, ResizeController *resize,
                 SmtPartitionController *partition,
                 CacheHierarchy &mem,
                 const std::vector<SmtThreadSpec> &specs,
                 StatSet *stats, const RunaheadConfig &ra,
                 const BranchPredictorConfig &bp_cfg)
    : cfg_(cfg), resize_(resize), partition_(partition), mem_(mem),
      raCfg_(ra),
      threads_(makeThreads(cfg_, specs, stats, bp_cfg)),
      smtActive_(threads_.size() > 1),
      fetchEngine_(cfg_.smt),
      intMulDivFree_(cfg.numIntMulDiv, 0),
      fpMulDivFree_(cfg.numFpMulDiv, 0),
      fetched_(stats, "core.fetched", "instructions fetched"),
      dispatched_(stats, "core.dispatched", "instructions dispatched"),
      issuedCnt_(stats, "core.issued", "instructions issued"),
      committed_(stats, "core.committed", "instructions committed"),
      committedLoads_(stats, "core.committed_loads",
                      "loads committed"),
      committedStores_(stats, "core.committed_stores",
                       "stores committed"),
      committedBranches_(stats, "core.committed_branches",
                         "control insts committed"),
      committedMispredicts_(stats, "core.committed_mispredicts",
                            "committed mispredicted control insts"),
      squashed_(stats, "core.squashed", "instructions squashed"),
      forwards_(stats, "core.store_forwards",
                "loads satisfied by store forwarding"),
      wpLoads_(stats, "core.wrongpath_loads",
               "wrong-path loads sent to the caches"),
      raEpisodes_(stats, "core.runahead_episodes",
                  "runahead episodes entered"),
      raUseless_(stats, "core.runahead_useless",
                 "episodes that prefetched no L2 miss"),
      raPseudoRetired_(stats, "core.runahead_pseudo_retired",
                       "instructions pseudo-retired in runahead"),
      wibMoves_(stats, "core.wib_moves",
                "instructions parked in the WIB"),
      wibReinserts_(stats, "core.wib_reinserts",
                    "WIB entries re-inserted into the IQ"),
      loadLatency_(stats, "core.load_latency",
                   "committed load latency, issue to data (cycles)")
{
    // Exactly one controller: resize for single thread, partition for
    // SMT (it owns the per-thread level state and the shared budget).
    mlpwin_assert(smtActive_ ? (partition_ && !resize_)
                             : (resize_ && !partition_));
    if (partition_)
        mlpwin_assert(partition_->nThreads() == threads_.size());
    fetchStates_.resize(threads_.size());
    partitionInputs_.resize(threads_.size());
}

void
OooCore::resetMeasurement()
{
    measureStartCycle_ = cycle_;
    mlpOverlapSum_ = 0.0;
    mlpActiveCycles_ = 0;
    iqSizeCycles_ = 0;
    robSizeCycles_ = 0;
    lsqSizeCycles_ = 0;
    for (auto &t : threads_) {
        t->committedMeasured = 0;
        t->mlpOverlapSum = 0.0;
        t->mlpActiveCycles = 0;
        t->cpi.reset();
    }
}

void
OooCore::resumeAfterFastForward()
{
    mlpwin_assert(!smtActive_);
    mlpwin_assert(readyForFastForward());
    ThreadContext &t = *threads_[0];
    t.committedTotal = t.oracle.instCount();
    t.fetchPc = t.oracle.pc();
    if (t.oracle.halted()) {
        // The program's Halt was consumed functionally; the run is
        // architecturally complete.
        t.halted = true;
        halted_ = true;
        t.fetchHalted = true;
    }
    t.fetchWaitBranch = false;
    t.shadowStores.clear();
    // The fast-forward is outside simulated time: the front end
    // starts the next interval clean, with no stale redirect or
    // I-cache busy window carried across the boundary.
    t.redirectAt = 0;
    t.icacheBusyUntil = 0;
    t.lastFetchLine = kNoAddr;
}

void
OooCore::restoreArchState(const RegFile &regs, Addr pc,
                          std::uint64_t inst_count)
{
    mlpwin_assert(!smtActive_);
    ThreadContext &t = *threads_[0];
    mlpwin_assert(cycle_ == 0 && t.window.empty() &&
                  t.fetchQueue.empty());
    t.oracle.restoreState(regs, pc, inst_count);
    t.committedTotal = inst_count;
    t.fetchPc = pc;
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

DynInst *
OooCore::findInst(InstSeqNum seq)
{
    auto it = seqMap_.find(seq);
    return it != seqMap_.end() ? it->second : nullptr;
}

unsigned
OooCore::iqDepthEff(const ThreadContext &t) const
{
    return cfg_.pipelinePenalties ? levelFor(t).iqDepth : 1;
}

unsigned
OooCore::mispredictRedirectPenalty(const ThreadContext &t) const
{
    unsigned extra = cfg_.pipelinePenalties
        ? levelFor(t).extraMispredictPenalty() : 0;
    return cfg_.mispredictPenalty + extra;
}

bool
OooCore::allHalted() const
{
    for (const auto &t : threads_) {
        if (!t->halted)
            return false;
    }
    return true;
}

bool
OooCore::globalRoomFor(const DynInst &d, bool needs_iq,
                       CpiComponent &which) const
{
    const ResourceLevel &cap = partition_->budget();
    unsigned rob = 0, iq = 0, lsq = 0;
    for (const auto &t : threads_) {
        rob += static_cast<unsigned>(t->window.size());
        iq += t->iqOcc;
        lsq += t->lsqOcc;
    }
    if (rob >= cap.robSize) {
        which = CpiComponent::RobFull;
        return false;
    }
    if (needs_iq && iq >= cap.iqSize) {
        which = CpiComponent::IqFull;
        return false;
    }
    if (d.si.isMem() && lsq >= cap.lsqSize) {
        which = CpiComponent::LsqFull;
        return false;
    }
    return true;
}

void
OooCore::setupSources(DynInst &d)
{
    unsigned n = 0;
    for (RegId r : {d.si.rs1, d.si.rs2}) {
        if (r != kNoReg && r != intReg(0))
            d.srcReg[n++] = r;
        else
            ++n;
    }
}

bool
OooCore::srcReady(ThreadContext &t, DynInst &d, unsigned i, bool &inv)
{
    if (d.srcDone[i]) {
        inv |= d.srcInv[i];
        return true;
    }
    RegId r = d.srcReg[i];
    bool src_inv = false;
    if (r != kNoReg) {
        InstSeqNum p = d.srcProducer[i];
        if (p != kNoProducer) {
            if (const DynInst *prod = findInst(p)) {
                if (prod->wakeupAt == kNoCycle ||
                    cycle_ < prod->wakeupAt) {
                    return false;
                }
                src_inv = prod->invalid;
            }
            // else: producer retired (committed or pseudo-retired);
            // the value is architectural.
        }
        if (!src_inv && t.inRunahead && t.inv.regInv(r))
            src_inv = true;
    }
    d.srcDone[i] = true;
    d.srcInv[i] = src_inv;
    inv |= src_inv;
    return true;
}

// ---------------------------------------------------------------------
// WIB (waiting instruction buffer, Lebeck et al.)
// ---------------------------------------------------------------------

bool
OooCore::maybeMoveToWib(ThreadContext &t, DynInst &inst)
{
    if (!cfg_.wibEnabled || t.wibOcc >= cfg_.wibSize)
        return false;

    for (unsigned i = 0; i < 2; ++i) {
        if (inst.srcDone[i] || inst.srcProducer[i] == kNoProducer)
            continue;
        DynInst *prod = findInst(inst.srcProducer[i]);
        if (!prod)
            continue;
        // Park only behind genuinely long waits: an outstanding
        // L2-miss load, or a producer that is itself parked.
        bool long_wait = prod->inWib ||
            (prod->isLoad() && prod->memDone && prod->l2Miss &&
             prod->completeAt != kNoCycle &&
             prod->completeAt > cycle_ + 20);
        if (!long_wait)
            continue;

        inst.inIq = false;
        --t.iqOcc;
        inst.inWib = true;
        inst.wibBlockedOn = prod->seq;
        ++t.wibOcc;
        t.wibWaiters[prod->seq].push_back(inst.seq);
        ++wibMoves_;
        return true;
    }
    return false;
}

void
OooCore::wakeWibWaiters(ThreadContext &t, const DynInst &completed)
{
    auto it = t.wibWaiters.find(completed.seq);
    if (it == t.wibWaiters.end())
        return;
    Cycle when = cycle_ + cfg_.wibReinsertDelay;
    for (InstSeqNum seq : it->second)
        t.wibReady.push_back({when, seq});
    t.wibWaiters.erase(it);
}

void
OooCore::wibReinsertStage()
{
    if (!cfg_.wibEnabled)
        return;
    unsigned nt = nThreads();
    for (unsigned k = 0; k < nt; ++k) {
        ThreadContext &t = *threads_[(cycle_ + k) % nt];
        unsigned n = 0;
        while (n < cfg_.wibReinsertWidth && !t.wibReady.empty() &&
               t.wibReady.front().first <= cycle_) {
            InstSeqNum seq = t.wibReady.front().second;
            DynInst *inst = findInst(seq);
            if (!inst || !inst->inWib) {
                t.wibReady.pop_front(); // Squashed or stale.
                continue;
            }
            if (t.iqOcc >= levelFor(t).iqSize)
                break; // IQ full: retry next cycle.
            t.wibReady.pop_front();
            inst->inWib = false;
            inst->wibBlockedOn = kNoProducer;
            --t.wibOcc;
            inst->inIq = true;
            ++t.iqOcc;
            iqList_.push_back(inst);
            ++wibReinserts_;
            ++n;
        }
    }
}

bool
OooCore::acquireFu(const StaticInst &si)
{
    auto pool_acquire = [this](std::vector<Cycle> &pool,
                               Cycle busy_for) -> bool {
        for (Cycle &free_at : pool) {
            if (free_at <= cycle_) {
                free_at = cycle_ + busy_for;
                return true;
            }
        }
        return false;
    };

    switch (si.fuClass()) {
      case FuClass::None:
        return true;
      case FuClass::IntAlu:
        if (aluUsed_ < cfg_.numIntAlu) {
            ++aluUsed_;
            return true;
        }
        return false;
      case FuClass::MemPort:
        if (aguUsed_ < cfg_.numMemPorts) {
            ++aguUsed_;
            return true;
        }
        return false;
      case FuClass::FpAlu:
        if (fpAluUsed_ < cfg_.numFpAlu) {
            ++fpAluUsed_;
            return true;
        }
        return false;
      case FuClass::IntMul:
      case FuClass::IntDiv:
        return pool_acquire(intMulDivFree_,
                            si.fuPipelined() ? 1 : si.execLatency());
      case FuClass::FpMul:
      case FuClass::FpDiv:
      case FuClass::FpSqrt:
        return pool_acquire(fpMulDivFree_,
                            si.fuPipelined() ? 1 : si.execLatency());
    }
    return false;
}

bool
OooCore::storeBufferMatch(const ThreadContext &t, Addr addr) const
{
    Addr a8 = addr & ~Addr(7);
    for (const PendingStore &s : t.storeBuffer) {
        if ((s.addr & ~Addr(7)) == a8)
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
OooCore::buildShadowRecord(ThreadContext &t, DynInst &d)
{
    const StaticInst &si = d.si;
    ExecRecord rec;
    rec.inst = si;
    rec.pc = d.pc;
    rec.nextPc = d.pc + kInstBytes;

    RegVal a = t.shadowRegs.read(si.rs1);
    RegVal b = t.shadowRegs.read(si.rs2);

    if (si.isLoad()) {
        Addr addr = a + static_cast<std::int64_t>(si.imm);
        rec.memAddr = addr;
        auto it = t.shadowStores.find(addr & ~Addr(7));
        RegVal v = it != t.shadowStores.end() ? it->second
                                              : t.fmem.readU64(addr);
        rec.result = v;
        t.shadowRegs.write(si.rd, v);
    } else if (si.isStore()) {
        Addr addr = a + static_cast<std::int64_t>(si.imm);
        rec.memAddr = addr;
        rec.storeData = b;
        t.shadowStores[addr & ~Addr(7)] = b;
    } else if (si.isControl()) {
        BranchPrediction pred = t.bp.predict(d.pc, si);
        d.predTaken = pred.taken;
        d.predTarget = pred.target;
        d.histSnapshot = pred.historySnapshot;
        rec.taken = pred.taken;
        rec.nextPc = pred.taken ? pred.target : d.pc + kInstBytes;
        if (si.isJal() || si.isJalr()) {
            rec.result = d.pc + kInstBytes;
            t.shadowRegs.write(si.rd, rec.result);
        }
    } else if (!si.isNop()) {
        rec.result = evalOp(si.op, a, b, si.imm);
        t.shadowRegs.write(si.rd, rec.result);
    }

    d.rec = rec;
    t.fetchPc = rec.nextPc;
}

bool
OooCore::fetchOne(ThreadContext &t)
{
    DynInst d;
    d.seq = nextSeq_++;
    d.tid = static_cast<std::uint8_t>(t.tid);
    d.fetchCycle = cycle_;
    d.wrongPath = t.onWrongPath;
    bool keep_fetching = true;

    if (!t.onWrongPath) {
        d.rec = t.oracle.step();
        d.si = d.rec.inst;
        d.pc = d.rec.pc;

        if (d.si.isHalt()) {
            t.fetchHalted = true;
            keep_fetching = false;
        } else if (d.si.isControl()) {
            BranchPrediction pred = t.bp.predict(d.pc, d.si);
            d.predTaken = pred.taken;
            d.predTarget = pred.target;
            d.histSnapshot = pred.historySnapshot;
            Addr pred_next = pred.taken ? pred.target
                                        : d.pc + kInstBytes;
            if (pred_next != d.rec.nextPc) {
                d.mispredicted = true;
                if (cfg_.wrongPathExecution) {
                    t.onWrongPath = true;
                    t.shadowRegs = t.oracle.regs();
                    t.shadowStores.clear();
                    t.fetchPc = pred_next;
                } else {
                    t.fetchWaitBranch = true;
                    keep_fetching = false;
                }
            } else {
                t.fetchPc = d.rec.nextPc;
            }
            if (pred.taken)
                keep_fetching = false; // Can't fetch past a taken br.
        } else {
            t.fetchPc = d.rec.nextPc;
        }
    } else {
        d.pc = t.fetchPc;
        d.si = decodeInst(t.fmem.readU64(t.fetchPc));
        if (d.si.isHalt())
            d.si = StaticInst{}; // Wrong-path Halt flows as a Nop.
        buildShadowRecord(t, d);
        if (d.si.isControl() && d.predTaken)
            keep_fetching = false;
    }

    setupSources(d);
    ++fetched_;
    trace(TraceCategory::Fetch, d);
    t.fetchQueue.push_back(std::move(d));
    return keep_fetching;
}

void
OooCore::fetchThread(ThreadContext &t)
{
    for (unsigned slot = 0; slot < cfg_.fetchWidth; ++slot) {
        if (t.fetchQueue.size() >= cfg_.fetchQueueSize)
            break;

        Addr line = mem_.l1i().lineAddr(t.addrBase + t.fetchPc);
        if (line != t.lastFetchLine) {
            Provenance prov = t.onWrongPath ? Provenance::WrongPath
                                            : Provenance::CorrPath;
            MemAccessResult res =
                mem_.ifetch(t.addrBase + t.fetchPc, cycle_, prov);
            if (!res.accepted)
                break;
            t.lastFetchLine = line;
            if (res.doneAt > cycle_ + mem_.l1i().hitLatency()) {
                t.icacheBusyUntil = res.doneAt;
                break;
            }
        }

        if (!fetchOne(t))
            break;
    }
}

void
OooCore::fetchStage()
{
    if (halted_ || fetchPaused_)
        return;

    auto eligible = [this](const ThreadContext &t) {
        return !t.halted && !t.fetchHalted && !t.fetchWaitBranch &&
               cycle_ >= t.redirectAt && t.icacheBusyUntil <= cycle_ &&
               t.fetchQueue.size() < cfg_.fetchQueueSize;
    };

    if (!smtActive_) {
        ThreadContext &t = *threads_[0];
        if (!eligible(t))
            return;
        fetchThread(t);
        return;
    }

    // SMT: the fetch policy picks one thread per cycle.
    for (unsigned tid = 0; tid < threads_.size(); ++tid) {
        const ThreadContext &t = *threads_[tid];
        FetchThreadState &s = fetchStates_[tid];
        s.eligible = eligible(t);
        s.frontEndCount =
            static_cast<unsigned>(t.fetchQueue.size()) + t.iqOcc;
        s.outstandingMisses =
            static_cast<unsigned>(t.activeMissDone.size());
        s.mlpEstimate = t.predictor.mlpEstimate();
    }
    int pick = fetchEngine_.pick(fetchStates_);
    if (pick >= 0) {
        // Eligible threads that lost the shared fetch port this
        // cycle record the denial for the CPI stack.
        for (unsigned tid = 0; tid < threads_.size(); ++tid) {
            if (fetchStates_[tid].eligible &&
                tid != static_cast<unsigned>(pick))
                threads_[tid]->fetchDenied = true;
        }
        fetchThread(*threads_[pick]);
    }
}

// ---------------------------------------------------------------------
// Dispatch (rename + window allocation)
// ---------------------------------------------------------------------

void
OooCore::dispatchThread(ThreadContext &t, unsigned &budget)
{
    while (budget > 0 && !t.fetchQueue.empty()) {
        if (allocStoppedFor(t))
            break;

        const ResourceLevel &level = levelFor(t);
        DynInst &d = t.fetchQueue.front();

        auto block = [&t](CpiComponent which) {
            t.allocStalledFull = true;
            t.dispatchBlock = static_cast<std::uint8_t>(which);
        };
        if (t.window.size() >= level.robSize) {
            block(CpiComponent::RobFull);
            break;
        }
        bool needs_iq = !(d.si.isNop() || d.si.isHalt());
        if (needs_iq && t.iqOcc >= level.iqSize) {
            block(CpiComponent::IqFull);
            break;
        }
        if (d.si.isMem() && t.lsqOcc >= level.lsqSize) {
            block(CpiComponent::LsqFull);
            break;
        }
        // SMT: per-thread levels may transiently over-commit the
        // shared physical windows; the dispatch gate enforces the
        // hard budget.
        CpiComponent which = CpiComponent::RobFull;
        if (smtActive_ && !globalRoomFor(d, needs_iq, which)) {
            block(which);
            break;
        }

        d.dispatchCycle = cycle_;
        for (unsigned i = 0; i < 2; ++i) {
            if (d.srcReg[i] != kNoReg)
                d.srcProducer[i] = t.renameMap[d.srcReg[i]];
        }
        RegId dest = d.si.destReg();
        if (dest != kNoReg)
            t.renameMap[dest] = d.seq;

        if (needs_iq) {
            d.inIq = true;
            ++t.iqOcc;
        } else {
            d.completed = true;
            d.completeAt = cycle_;
            d.wakeupAt = cycle_;
        }
        if (d.si.isMem()) {
            d.inLsq = true;
            ++t.lsqOcc;
        }

        t.window.push_back(std::move(d));
        DynInst &back = t.window.back();
        trace(TraceCategory::Dispatch, back);
        seqMap_.emplace(back.seq, &back);
        if (back.inIq)
            iqList_.push_back(&back);
        if (back.inLsq)
            t.lsqList.push_back(&back);
        t.fetchQueue.pop_front();
        --budget;
        ++dispatched_;
    }
}

void
OooCore::dispatchStage()
{
    unsigned budget = cfg_.decodeWidth;
    unsigned nt = nThreads();
    for (unsigned k = 0; k < nt && budget > 0; ++k)
        dispatchThread(*threads_[(cycle_ + k) % nt], budget);
}

// ---------------------------------------------------------------------
// Issue (wakeup-select)
// ---------------------------------------------------------------------

void
OooCore::issueStage()
{
    aluUsed_ = 0;
    fpAluUsed_ = 0;
    aguUsed_ = 0;
    issuedThisCycle_ = 0;

    std::vector<DynInst *> surviving;
    surviving.reserve(iqList_.size());

    for (DynInst *inst : iqList_) {
        if (!inst->inIq)
            continue; // Issued earlier this scan.

        if (issuedThisCycle_ >= cfg_.issueWidth) {
            surviving.push_back(inst);
            continue;
        }

        ThreadContext &t = *threads_[inst->tid];

        bool inv = false;
        bool ready = true;
        for (unsigned i = 0; i < 2 && ready; ++i)
            ready = srcReady(t, *inst, i, inv);
        if (!ready) {
            if (!maybeMoveToWib(t, *inst))
                surviving.push_back(inst);
            continue;
        }

        if (inv) {
            // Runahead INV instruction: drop through the pipeline
            // without using an FU or touching memory.
            inst->invalid = true;
            inst->inIq = false;
            --t.iqOcc;
            inst->issued = true;
            inst->issueCycle = cycle_;
            inst->completeAt = cycle_ + 1;
            inst->wakeupAt = cycle_ + 1;
            inst->memDone = true;
            completions_.push({inst->completeAt, inst->seq});
            ++issuedThisCycle_;
            ++t.issuedThisCycle;
            continue;
        }

        if (!acquireFu(inst->si)) {
            surviving.push_back(inst);
            continue;
        }

        inst->issued = true;
        inst->inIq = false;
        --t.iqOcc;
        inst->issueCycle = cycle_;
        ++issuedThisCycle_;
        ++t.issuedThisCycle;
        ++issuedCnt_;
        trace(TraceCategory::Issue, *inst);

        if (inst->si.isMem()) {
            inst->addrKnown = true;
            if (inst->isStore()) {
                inst->completeAt = cycle_ + 1;
                inst->wakeupAt = cycle_ + 1;
                inst->memDone = true;
                completions_.push({inst->completeAt, inst->seq});
            }
            // Loads: the LSU schedules the cache access.
        } else {
            unsigned lat = inst->si.execLatency();
            inst->completeAt = cycle_ + lat;
            inst->wakeupAt = inst->completeAt + (iqDepthEff(t) - 1);
            completions_.push({inst->completeAt, inst->seq});
        }
    }

    iqList_ = std::move(surviving);
}

// ---------------------------------------------------------------------
// Load/store unit
// ---------------------------------------------------------------------

void
OooCore::lsuThread(ThreadContext &t, unsigned &ports)
{
    bool older_store_unknown = false;
    std::unordered_map<Addr, const DynInst *> last_store;

    for (DynInst *inst : t.lsqList) {
        if (ports == 0)
            break;
        mlpwin_assert(inst->inLsq);

        if (inst->isStore()) {
            if (inst->invalid)
                continue; // INV store: no architectural effect here.
            // Store addresses resolve as soon as the base register is
            // ready, ahead of the (possibly much later) data operand;
            // younger loads to other addresses may then proceed.
            if (!inst->addrKnown) {
                bool inv = false;
                if (srcReady(t, *inst, 0, inv) && !inv)
                    inst->addrKnown = true;
            }
            if (inst->addrKnown)
                last_store[inst->rec.memAddr & ~Addr(7)] = inst;
            else
                older_store_unknown = true;
            continue;
        }

        // Load.
        if (inst->memDone || inst->invalid || !inst->addrKnown)
            continue;

        Addr a8 = inst->rec.memAddr & ~Addr(7);

        auto schedule_forward = [&]() {
            --ports;
            inst->memDone = true;
            inst->completeAt = cycle_ + 1;
            inst->wakeupAt = inst->completeAt + (iqDepthEff(t) - 1);
            completions_.push({inst->completeAt, inst->seq});
            ++forwards_;
        };

        auto it = last_store.find(a8);
        if (it != last_store.end()) {
            const DynInst *st = it->second;
            if (st->completeAt != kNoCycle && st->completeAt <= cycle_)
                schedule_forward();
            // else: wait for the store's data.
            continue;
        }
        if (older_store_unknown)
            continue; // Conservative disambiguation.
        if (storeBufferMatch(t, inst->rec.memAddr)) {
            schedule_forward();
            continue;
        }

        Provenance prov = inst->wrongPath ? Provenance::WrongPath
                                          : Provenance::CorrPath;
        MemAccessResult res =
            mem_.load(t.addrBase + inst->rec.memAddr,
                      t.addrBase + inst->pc, cycle_, prov);
        --ports;
        if (!res.accepted)
            continue; // MSHRs busy; retry next cycle.

        inst->memDone = true;
        inst->completeAt = res.doneAt;
        inst->wakeupAt = res.doneAt + (iqDepthEff(t) - 1);
        inst->l2Miss = res.l2DemandMiss;
        inst->walkDoneAt = res.walkDoneAt;
        completions_.push({inst->completeAt, inst->seq});
        if (inst->wrongPath)
            ++wpLoads_;
        if (res.l2DemandMiss) {
            t.activeMissDone.push_back(res.doneAt);
            if (t.inRunahead && !inst->wrongPath)
                ++t.raEpisodeMisses;
        }
    }
}

void
OooCore::lsuStage()
{
    unsigned ports = cfg_.numMemPorts;
    unsigned nt = nThreads();

    for (unsigned k = 0; k < nt && ports > 0; ++k)
        lsuThread(*threads_[(cycle_ + k) % nt], ports);

    // Drain one committed store per thread per spare port.
    for (unsigned k = 0; k < nt && ports > 0; ++k) {
        ThreadContext &t = *threads_[(cycle_ + k) % nt];
        if (t.storeBuffer.empty())
            continue;
        MemAccessResult res =
            mem_.store(t.addrBase + t.storeBuffer.front().addr, cycle_,
                       Provenance::CorrPath);
        if (res.accepted)
            t.storeBuffer.pop_front();
        --ports;
    }
}

// ---------------------------------------------------------------------
// Completion / branch resolution / squash
// ---------------------------------------------------------------------

void
OooCore::completeStage()
{
    while (!completions_.empty() &&
           completions_.top().first <= cycle_) {
        auto [c, seq] = completions_.top();
        completions_.pop();
        DynInst *inst = findInst(seq);
        if (!inst || inst->completed || inst->completeAt != c)
            continue; // Stale event (squashed or rescheduled).
        inst->completed = true;
        trace(TraceCategory::Complete, *inst);
        if (cfg_.wibEnabled)
            wakeWibWaiters(*threads_[inst->tid], *inst);
        if (inst->mispredicted && !inst->wrongPath)
            resolveMispredict(*inst);
    }
}

void
OooCore::resolveMispredict(DynInst &branch)
{
    ThreadContext &t = *threads_[branch.tid];
    squashYoungerThan(t, branch.seq);
    t.bp.restoreHistory(branch.histSnapshot, branch.rec.taken);
    t.redirectAt = cycle_ + mispredictRedirectPenalty(t);
    t.redirectIsRunahead = false;
    t.fetchPc = branch.rec.nextPc;
    t.fetchWaitBranch = false;
    t.lastFetchLine = kNoAddr;
    t.icacheBusyUntil = 0;
    // The oracle stopped exactly at the divergence point. A promoted
    // structural invariant (not an assert): release builds report the
    // corruption through the SimError path with a diagnostic dump
    // instead of aborting the whole batch.
    if (t.oracle.pc() != branch.rec.nextPc) {
        throw SimError(
            ErrorCode::InvariantViolation,
            "squash recovery: oracle pc 0x" +
                std::to_string(t.oracle.pc()) +
                " does not match resolved branch target 0x" +
                std::to_string(branch.rec.nextPc) + " (branch pc 0x" +
                std::to_string(branch.pc) + ", thread " +
                std::to_string(t.tid) + ")");
    }
}

void
OooCore::squashYoungerThan(ThreadContext &t, InstSeqNum seq)
{
    if (tracer_) {
        traceNote(TraceCategory::Squash,
                  "squash younger than sn" + std::to_string(seq));
    }
    // Drop this thread's IQ entries while the window entries they
    // point at are still alive; the pop loop below frees them.
    // Co-runner entries keep their relative age order.
    std::erase_if(iqList_, [&t](const DynInst *p) {
        return p->tid == t.tid;
    });
    while (!t.window.empty() && t.window.back().seq > seq) {
        DynInst &b = t.window.back();
        mlpwin_assert(b.wrongPath);
        if (b.inIq)
            --t.iqOcc;
        if (b.inLsq)
            --t.lsqOcc;
        if (b.inWib)
            --t.wibOcc;
        ++squashed_;
        seqMap_.erase(b.seq);
        t.window.pop_back();
    }
    squashed_ += t.fetchQueue.size();
    t.fetchQueue.clear();
    t.onWrongPath = false;
    t.shadowStores.clear();
    rebuildAfterSquash(t);
}

void
OooCore::rebuildAfterSquash(ThreadContext &t)
{
    t.renameMap.fill(kNoProducer);
    // The caller already removed this thread's IQ entries; survivors
    // re-enter below in window (age) order.
    t.lsqList.clear();
    t.wibWaiters.clear();
    for (DynInst &d : t.window) {
        RegId dest = d.si.destReg();
        if (dest != kNoReg)
            t.renameMap[dest] = d.seq;
        if (d.inIq)
            iqList_.push_back(&d);
        if (d.inLsq)
            t.lsqList.push_back(&d);
        if (d.inWib) {
            // Re-register the waiter; if its blocking producer has
            // already completed (or retired), wake it now instead —
            // its wake event fired before the squash rebuilt us.
            DynInst *prod = findInst(d.wibBlockedOn);
            if (prod && !prod->completed)
                t.wibWaiters[prod->seq].push_back(d.seq);
            else
                t.wibReady.push_back({cycle_ + 1, d.seq});
        }
    }
}

// ---------------------------------------------------------------------
// Commit / runahead
// ---------------------------------------------------------------------

void
OooCore::retireHead(ThreadContext &t, bool pseudo)
{
    DynInst &head = t.window.front();
    mlpwin_assert(!head.wrongPath);
    mlpwin_assert(!head.inIq && !head.inWib);

    if (head.inLsq) {
        --t.lsqOcc;
        mlpwin_assert(!t.lsqList.empty() &&
                      t.lsqList.front() == &head);
        t.lsqList.pop_front();
    }
    RegId dest = head.si.destReg();
    if (dest != kNoReg && t.renameMap[dest] == head.seq)
        t.renameMap[dest] = kNoProducer;

    if (pseudo) {
        t.raUndoLog.push_back(head.rec);
        if (dest != kNoReg)
            t.inv.setRegInv(dest, head.invalid);
        if (head.isStore() && head.invalid && head.addrKnown)
            t.inv.setAddrInv(head.rec.memAddr);
        ++raPseudoRetired_;
    } else {
        if (head.isStore()) {
            t.storeBuffer.push_back(
                PendingStore{head.rec.memAddr, head.rec.storeData});
            ++committedStores_;
        }
        if (head.isControl()) {
            t.bp.update(head.pc, head.si, head.rec.taken,
                        head.rec.nextPc, head.histSnapshot);
            ++committedBranches_;
            if (head.mispredicted)
                ++committedMispredicts_;
        }
        if (head.isLoad()) {
            loadLatency_.sample(static_cast<double>(
                head.completeAt - head.issueCycle));
            ++committedLoads_;
        }
        ++committed_;
        ++t.committedTotal;
        ++t.committedMeasured;
        ++t.commitsThisCycle;
        if (t.checker)
            t.checker->onCommit(head.rec);
    }

    trace(pseudo ? TraceCategory::Runahead : TraceCategory::Commit,
          head);
    seqMap_.erase(head.seq);
    t.window.pop_front();
}

void
OooCore::maybeEnterRunahead(ThreadContext &t, DynInst &head)
{
    if (!raCfg_.enabled || t.inRunahead)
        return;
    if (!head.isLoad() || !head.memDone || head.completed)
        return;
    // Only long (L2-miss) stalls are worth running ahead of.
    if (head.completeAt == kNoCycle || head.completeAt <= cycle_ + 20)
        return;
    if (raCfg_.useRcst && !t.rcst.predictUseful(head.pc))
        return;

    t.inRunahead = true;
    t.raTriggerPc = head.pc;
    t.raExitAt = head.completeAt;
    t.raEpisodeMisses = 0;
    t.raUndoLog.clear();
    t.inv.reset();
    ++raEpisodes_;
    if (timeline_)
        timeline_->beginRunahead(cycle_, t.raTriggerPc);
    traceNote(TraceCategory::Runahead,
              "enter runahead (trigger pc 0x" +
                  std::to_string(t.raTriggerPc) + ")");

    head.invalid = true; // Trigger load pseudo-retires INV.
}

void
OooCore::exitRunahead(ThreadContext &t)
{
    // Roll the oracle back to the trigger, youngest effect first.
    for (auto it = t.fetchQueue.rbegin(); it != t.fetchQueue.rend();
         ++it) {
        if (!it->wrongPath)
            t.oracle.undo(it->rec);
    }
    for (auto it = t.window.rbegin(); it != t.window.rend(); ++it) {
        if (!it->wrongPath)
            t.oracle.undo(it->rec);
    }
    for (auto it = t.raUndoLog.rbegin(); it != t.raUndoLog.rend();
         ++it)
        t.oracle.undo(*it);

    // Promoted structural invariants over the rollback: the oracle
    // must be back at the trigger, both in PC and in instruction
    // count (one count per real commit). Violations report through
    // the SimError path with a dump instead of aborting.
    if (t.oracle.pc() != t.raTriggerPc) {
        throw SimError(
            ErrorCode::InvariantViolation,
            "runahead rollback: oracle pc 0x" +
                std::to_string(t.oracle.pc()) +
                " does not match trigger pc 0x" +
                std::to_string(t.raTriggerPc));
    }
    if (t.oracle.instCount() != t.committedTotal) {
        throw SimError(
            ErrorCode::InvariantViolation,
            "runahead rollback: oracle instruction count " +
                std::to_string(t.oracle.instCount()) +
                " does not match committed count " +
                std::to_string(t.committedTotal) +
                " (undo log incomplete?)");
    }

    // Test-only fault injection: emulate a lost undo record by
    // perturbing the trigger load's base register after an otherwise
    // clean rollback. The lockstep checker must flag the trigger's
    // re-commit with a "memAddr" divergence. Bit 3 keeps the address
    // inside the trigger's own (just-fetched) cache line, so the
    // corrupted re-fetch hits and reaches commit instead of missing
    // again and re-entering runahead.
    if (cfg_.debugCorruptUndo) {
        StaticInst trigger =
            decodeInst(t.fmem.readU64(t.raTriggerPc));
        if (trigger.rs1 != kNoReg && trigger.rs1 != intReg(0)) {
            RegVal v = t.oracle.regs().read(trigger.rs1);
            t.oracle.regs().write(trigger.rs1, v ^ 0x8);
        }
    }

    t.rcst.train(t.raTriggerPc, t.raEpisodeMisses > 0);
    if (t.raEpisodeMisses == 0)
        ++raUseless_;

    squashed_ += t.window.size() + t.fetchQueue.size();
    for (const DynInst &d : t.window)
        seqMap_.erase(d.seq);
    // Drop the shared-IQ entries before the window frees the
    // instructions they point at.
    std::erase_if(iqList_, [&t](const DynInst *p) {
        return p->tid == t.tid;
    });
    t.window.clear();
    t.fetchQueue.clear();
    t.iqOcc = 0;
    t.lsqOcc = 0;
    t.wibOcc = 0;
    t.lsqList.clear();
    t.wibWaiters.clear();
    t.wibReady.clear();
    t.renameMap.fill(kNoProducer);
    t.raUndoLog.clear();
    t.inv.reset();
    t.inRunahead = false;
    t.onWrongPath = false;
    t.shadowStores.clear();
    t.fetchHalted = false;
    t.fetchWaitBranch = false;

    if (timeline_)
        timeline_->endRunahead(cycle_, t.raEpisodeMisses);
    traceNote(TraceCategory::Runahead, "exit runahead");
    t.redirectAt = cycle_ + 1 + raCfg_.exitPenalty;
    t.redirectIsRunahead = true;
    // Refetch from the trigger; the invariant above already proved
    // the oracle is at raTriggerPc.
    t.fetchPc = t.raTriggerPc;
    t.lastFetchLine = kNoAddr;
    t.icacheBusyUntil = 0;
}

void
OooCore::pseudoRetireLoop(ThreadContext &t)
{
    for (unsigned n = 0; n < cfg_.commitWidth && !t.window.empty();
         ++n) {
        DynInst &head = t.window.front();
        if (head.wrongPath)
            break; // An unresolved branch precedes it; wait.
        if (head.completed) {
            retireHead(t, true);
            continue;
        }
        if (head.invalid || (head.isLoad() && head.memDone)) {
            // Pending-miss load (or already-INV inst): retire INV.
            head.invalid = true;
            retireHead(t, true);
            continue;
        }
        break; // Wait for short-latency execution to finish.
    }
}

void
OooCore::commitThread(ThreadContext &t, unsigned &budget)
{
    if (t.inRunahead) {
        if (cycle_ >= t.raExitAt) {
            exitRunahead(t);
            return;
        }
        pseudoRetireLoop(t);
        return;
    }

    while (budget > 0 && !t.window.empty()) {
        DynInst &head = t.window.front();

        if (!head.completed) {
            maybeEnterRunahead(t, head);
            if (t.inRunahead)
                pseudoRetireLoop(t);
            break;
        }
        if (head.si.isHalt()) {
            retireHead(t, false);
            --budget;
            t.halted = true;
            if (allHalted())
                halted_ = true;
            break;
        }
        if (head.isStore() &&
            t.storeBuffer.size() >= cfg_.storeBufferSize) {
            break;
        }
        retireHead(t, false);
        --budget;
    }
}

void
OooCore::commitStage()
{
    if (halted_)
        return;

    // Synthetic no-commit wedge for watchdog/fault-tolerance tests.
    if (cycle_ >= cfg_.debugStallCommitAt)
        return;

    unsigned budget = cfg_.commitWidth;
    unsigned nt = nThreads();
    for (unsigned k = 0; k < nt && budget > 0; ++k) {
        ThreadContext &t = *threads_[(cycle_ + k) % nt];
        if (t.halted)
            continue;
        commitThread(t, budget);
        if (halted_)
            return;
    }
}

// ---------------------------------------------------------------------
// CPI-stack cycle accounting
// ---------------------------------------------------------------------

CpiComponent
OooCore::classifyCycle(const ThreadContext &t) const
{
    // Priority-ordered attribution (see tools/TELEMETRY.md): a cycle
    // that commits is useful work regardless of what else stalled;
    // below that, the oldest-in-the-machine condition wins.
    if (t.commitsThisCycle > 0)
        return CpiComponent::Base;
    if (t.halted || halted_)
        return CpiComponent::Idle;
    if (t.inRunahead)
        return CpiComponent::Runahead;
    // Resize transitions outrank the memory-stall leaves: a shrink
    // drain usually waits on an in-flight miss, and attributing those
    // cycles to dram would hide exactly the reconfiguration overhead
    // this leaf exists to expose.
    if (allocStoppedFor(t))
        return CpiComponent::ResizeDrain;
    if (!t.window.empty()) {
        const DynInst &head = t.window.front();
        if (head.isLoad() && head.memDone && !head.completed) {
            // Still inside the page-table walk: the translation, not
            // the data access, is the bottleneck. Outranks dram/cache
            // so resize-on-walk's target is visible in the stack.
            if (head.walkDoneAt > cycle_)
                return CpiComponent::TlbWalk;
            return head.l2Miss ? CpiComponent::Dram
                               : CpiComponent::CacheMiss;
        }
    }
    if (t.dispatchBlock != ThreadContext::kNoDispatchBlock)
        return static_cast<CpiComponent>(t.dispatchBlock);
    if (cycle_ < t.redirectAt) {
        return t.redirectIsRunahead ? CpiComponent::Runahead
                                    : CpiComponent::BranchMispredict;
    }
    if (t.fetchWaitBranch)
        return CpiComponent::BranchMispredict;
    if (t.fetchDenied)
        return CpiComponent::SmtFetchContention;
    if (t.window.empty())
        return CpiComponent::IFetch;
    // Window occupied, head executing at short latency: the ILP
    // residue (includes store-buffer back-pressure at the head).
    return CpiComponent::Base;
}

void
OooCore::accountCpi()
{
    for (auto &tp : threads_)
        tp->cpi.add(classifyCycle(*tp));
}

// ---------------------------------------------------------------------
// Tick
// ---------------------------------------------------------------------

void
OooCore::runStages()
{
    commitStage();
    completeStage();
    lsuStage();
    issueStage();
    wibReinsertStage();
    dispatchStage();
    fetchStage();
}

void
OooCore::runStagesProfiled()
{
    { ScopedSpan s(SpanKind::Commit); commitStage(); }
    { ScopedSpan s(SpanKind::Complete); completeStage(); }
    { ScopedSpan s(SpanKind::Lsu); lsuStage(); }
    { ScopedSpan s(SpanKind::Issue); issueStage(); }
    { ScopedSpan s(SpanKind::WibReinsert); wibReinsertStage(); }
    { ScopedSpan s(SpanKind::Dispatch); dispatchStage(); }
    { ScopedSpan s(SpanKind::Fetch); fetchStage(); }
}

void
OooCore::tick()
{
    for (auto &tp : threads_) {
        tp->allocStalledFull = false;
        tp->issuedThisCycle = 0;
        tp->commitsThisCycle = 0;
        tp->dispatchBlock = ThreadContext::kNoDispatchBlock;
        tp->fetchDenied = false;
    }

    // Stage timing is sampled (every 64th cycle) so the profiler's
    // clock reads stay far below the cost of the stages themselves;
    // when the profiler is disabled this is one relaxed atomic load.
    if (Profiler::instance().enabled() && (cycle_ & 63) == 0)
        runStagesProfiled();
    else
        runStages();

    if (!smtActive_) {
        ThreadContext &t = *threads_[0];
        WindowOccupancy occ;
        occ.rob = static_cast<unsigned>(t.window.size());
        occ.iq = t.iqOcc;
        occ.lsq = t.lsqOcc;
        occ.allocStalledFull = t.allocStalledFull;
        resize_->tick(cycle_, occ);

        const ResourceLevel &lvl = resize_->current();
        iqSizeCycles_ += lvl.iqSize;
        robSizeCycles_ += lvl.robSize;
        lsqSizeCycles_ += lvl.lsqSize;
    } else {
        for (unsigned tid = 0; tid < threads_.size(); ++tid) {
            ThreadContext &t = *threads_[tid];
            ThreadPartitionInput &in = partitionInputs_[tid];
            in.occ.rob = static_cast<unsigned>(t.window.size());
            in.occ.iq = t.iqOcc;
            in.occ.lsq = t.lsqOcc;
            in.occ.allocStalledFull = t.allocStalledFull;
            in.halted = t.halted;
        }
        partition_->tick(cycle_, partitionInputs_);

        for (unsigned tid = 0; tid < threads_.size(); ++tid) {
            if (threads_[tid]->halted)
                continue;
            const ResourceLevel &lvl = partition_->currentFor(tid);
            iqSizeCycles_ += lvl.iqSize;
            robSizeCycles_ += lvl.robSize;
            lsqSizeCycles_ += lvl.lsqSize;
        }
    }

    unsigned total_active = 0;
    for (auto &tp : threads_) {
        ThreadContext &t = *tp;
        std::erase_if(t.activeMissDone,
                      [this](Cycle c) { return c <= cycle_; });
        auto sz = static_cast<unsigned>(t.activeMissDone.size());
        total_active += sz;
        if (sz > 0) {
            t.mlpOverlapSum += static_cast<double>(sz);
            ++t.mlpActiveCycles;
        }
    }
    if (total_active > 0) {
        mlpOverlapSum_ += static_cast<double>(total_active);
        ++mlpActiveCycles_;
    }

    if (smtActive_) {
        for (auto &tp : threads_) {
            tp->predictor.tick(
                static_cast<unsigned>(tp->activeMissDone.size()),
                tp->issuedThisCycle);
        }
    }

    accountCpi();
    ++cycle_;
}

} // namespace mlpwin
