#include "tracer.hh"

#include <cstdio>

namespace mlpwin
{

const char *
traceCategoryName(TraceCategory c)
{
    switch (c) {
      case TraceCategory::Fetch:
        return "fetch";
      case TraceCategory::Dispatch:
        return "dispatch";
      case TraceCategory::Issue:
        return "issue";
      case TraceCategory::Complete:
        return "complete";
      case TraceCategory::Commit:
        return "commit";
      case TraceCategory::Squash:
        return "squash";
      case TraceCategory::Resize:
        return "resize";
      case TraceCategory::Runahead:
        return "runahead";
    }
    return "?";
}

std::string
traceCategoryNames()
{
    std::string names;
    for (unsigned bit = 1; bit <= 0x80u; bit <<= 1) {
        if (!names.empty())
            names += ", ";
        names += traceCategoryName(static_cast<TraceCategory>(bit));
    }
    names += ", all";
    return names;
}

unsigned
parseTraceCategories(const std::string &spec, std::string *error)
{
    if (error)
        error->clear();
    if (spec == "all")
        return kTraceAll;
    unsigned mask = 0;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string name = spec.substr(pos, comma - pos);
        bool known = name.empty(); // Empty segments are harmless.
        for (unsigned bit = 1; bit <= 0x80u; bit <<= 1) {
            auto c = static_cast<TraceCategory>(bit);
            if (name == traceCategoryName(c)) {
                mask |= bit;
                known = true;
            }
        }
        if (!known) {
            if (error)
                *error = "unknown trace category '" + name +
                         "' (valid: " + traceCategoryNames() + ")";
            return 0;
        }
        pos = comma + 1;
    }
    return mask;
}

void
PipelineTracer::event(Cycle cycle, TraceCategory cat, const DynInst &d)
{
    if (!wants(cat) || cycle < startCycle_)
        return;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%10llu %-8s sn%-8llu 0x%08llx %s%s",
                  static_cast<unsigned long long>(cycle),
                  traceCategoryName(cat),
                  static_cast<unsigned long long>(d.seq),
                  static_cast<unsigned long long>(d.pc),
                  disassemble(d.si).c_str(),
                  d.wrongPath ? "  [wrong-path]" : "");
    os_ << buf << '\n';
    ++lines_;
}

void
PipelineTracer::note(Cycle cycle, TraceCategory cat,
                     const std::string &msg)
{
    if (!wants(cat) || cycle < startCycle_)
        return;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%10llu %-8s ",
                  static_cast<unsigned long long>(cycle),
                  traceCategoryName(cat));
    os_ << buf << msg << '\n';
    ++lines_;
}

} // namespace mlpwin
