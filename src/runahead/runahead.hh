/**
 * @file
 * Support structures for runahead execution (Mutlu et al., HPCA'03),
 * the comparison scheme of the paper's Section 5.7.
 *
 * The runahead *episode control* lives in the out-of-order core (it
 * reuses the core's fetch/issue machinery with pseudo-retirement);
 * this module provides the pieces that are runahead-specific:
 *
 *  - RunaheadConfig: trigger and exit tunables.
 *  - InvTracker: INV (bogus-value) propagation across pseudo-retired
 *    instructions, plus the runahead cache's INV-address set. Loads
 *    whose sources are INV must not access memory (a pointer-chasing
 *    load dependent on the miss cannot prefetch in real runahead).
 *  - RunaheadCauseStatusTable (RCST): predicts useless runahead
 *    episodes from past per-PC usefulness, as in the paper's Section
 *    5.7 discussion of milc.
 */

#ifndef MLPWIN_RUNAHEAD_RUNAHEAD_HH
#define MLPWIN_RUNAHEAD_RUNAHEAD_HH

#include <bitset>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace mlpwin
{

/** Tunables of the runahead mechanism. */
struct RunaheadConfig
{
    bool enabled = false;
    /** Use the RCST to suppress predicted-useless episodes. */
    bool useRcst = true;
    /** Runahead cache size in 8-byte words (paper: 512 bytes). */
    unsigned runaheadCacheWords = 64;
    /** Extra cycles to resume normal mode after exit (paper: 0). */
    unsigned exitPenalty = 0;
};

/** INV propagation state for one runahead episode. */
class InvTracker
{
  public:
    void
    reset()
    {
        invRegs_.reset();
        invAddrs_.clear();
    }

    /** Mark an architectural register INV (or valid again). */
    void
    setRegInv(RegId r, bool inv)
    {
        if (r == kNoReg || r == intReg(0))
            return;
        invRegs_.set(r, inv);
    }

    bool
    regInv(RegId r) const
    {
        if (r == kNoReg || r == intReg(0))
            return false;
        return invRegs_.test(r);
    }

    /** Mark a runahead-cache word INV (store with INV data/address). */
    void
    setAddrInv(Addr addr)
    {
        if (invAddrs_.size() < kMaxInvAddrs)
            invAddrs_.insert(addr & ~Addr(7));
    }

    bool
    addrInv(Addr addr) const
    {
        return invAddrs_.count(addr & ~Addr(7)) != 0;
    }

  private:
    /** Bound matching a small runahead cache; beyond it we saturate. */
    static constexpr std::size_t kMaxInvAddrs = 4096;

    std::bitset<kNumArchRegs> invRegs_;
    std::unordered_set<Addr> invAddrs_;
};

/**
 * Runahead cause status table: a small direct-mapped table of 2-bit
 * usefulness counters indexed by the triggering load's PC.
 */
class RunaheadCauseStatusTable
{
  public:
    explicit RunaheadCauseStatusTable(std::size_t entries = 64)
        : counters_(entries, 2) // Weakly useful: allow first episodes.
    {
    }

    /** Should a runahead episode be entered for this trigger PC? */
    bool
    predictUseful(Addr pc) const
    {
        return counters_[index(pc)] >= 2;
    }

    /** Train with the measured usefulness of a finished episode. */
    void
    train(Addr pc, bool was_useful)
    {
        std::uint8_t &ctr = counters_[index(pc)];
        if (was_useful) {
            if (ctr < 3)
                ++ctr;
        } else {
            if (ctr > 0)
                --ctr;
        }
    }

  private:
    std::size_t
    index(Addr pc) const
    {
        return (pc / kInstBytes) % counters_.size();
    }

    std::vector<std::uint8_t> counters_;
};

} // namespace mlpwin

#endif // MLPWIN_RUNAHEAD_RUNAHEAD_HH
