#include "sampling.hh"

#include <cmath>

namespace mlpwin
{

SamplingController::SamplingController(const SamplingConfig &cfg,
                                       StatSet *stats)
    : cfg_(cfg),
      intervalsStat_(stats, "sample.intervals",
                     "fully measured sampling intervals"),
      ffInstsStat_(stats, "sample.ff_insts",
                   "instructions fast-forwarded functionally"),
      detailedInstsStat_(stats, "sample.detailed_insts",
                         "instructions measured in detail"),
      intervalLenStat_(stats, "sample.interval_insts",
                       "configured measured-interval length (U)"),
      periodLenStat_(stats, "sample.period_insts",
                     "configured sampling period (W)"),
      ipcMeanStat_(stats, "sample.ipc_mean",
                   "sampled whole-run IPC estimate"),
      ipcCi95Stat_(stats, "sample.ipc_ci95",
                   "95% confidence half-width on the IPC estimate"),
      ipcStddevStat_(stats, "sample.ipc_stddev",
                     "per-interval IPC sample standard deviation")
{
    intervalLenStat_.set(static_cast<double>(cfg.intervalInsts));
    periodLenStat_.set(static_cast<double>(cfg.periodInsts));
}

void
SamplingController::recordInterval(std::uint64_t insts, Cycle cycles)
{
    if (cycles == 0)
        return;
    ipcSamples_.push_back(static_cast<double>(insts) /
                          static_cast<double>(cycles));
    ++intervalsStat_;
    detailedInstsStat_ += insts;
}

double
SamplingController::ipcMean() const
{
    if (ipcSamples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : ipcSamples_)
        sum += v;
    return sum / static_cast<double>(ipcSamples_.size());
}

double
SamplingController::ipcStddev() const
{
    std::size_t n = ipcSamples_.size();
    if (n < 2)
        return 0.0;
    double mean = ipcMean();
    double ss = 0.0;
    for (double v : ipcSamples_)
        ss += (v - mean) * (v - mean);
    return std::sqrt(ss / static_cast<double>(n - 1));
}

double
SamplingController::ipcCi95() const
{
    std::size_t n = ipcSamples_.size();
    if (n < 2)
        return 0.0;
    return 1.96 * ipcStddev() / std::sqrt(static_cast<double>(n));
}

void
SamplingController::finalize()
{
    // The configured lengths are re-published here as well: a
    // measurement-window stats reset zeroes every stat, gauges
    // included.
    intervalLenStat_.set(static_cast<double>(cfg_.intervalInsts));
    periodLenStat_.set(static_cast<double>(cfg_.periodInsts));
    ipcMeanStat_.set(ipcMean());
    ipcCi95Stat_.set(ipcCi95());
    ipcStddevStat_.set(ipcStddev());
}

} // namespace mlpwin
