/**
 * @file
 * SMARTS-style systematic-sampling estimator. The Simulator records
 * one (instructions, cycles) pair per fully measured interval; the
 * controller turns those into a whole-run IPC estimate with a CLT
 * 95% confidence interval, and surfaces everything through the stats
 * JSON (sample.* names) so batch pipelines can audit the sampling
 * regime of every result.
 */

#ifndef MLPWIN_SAMPLE_SAMPLING_HH
#define MLPWIN_SAMPLE_SAMPLING_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "sample/sample_config.hh"

namespace mlpwin
{

/** See file comment. */
class SamplingController
{
  public:
    /**
     * @param cfg Sampling regime (validated by the Simulator).
     * @param stats Stat registry for the sample.* gauges/counters
     *        (may be nullptr).
     */
    SamplingController(const SamplingConfig &cfg, StatSet *stats);

    /** Record one fully measured interval. */
    void recordInterval(std::uint64_t insts, Cycle cycles);

    /** Account instructions fast-forwarded between intervals. */
    void
    recordFastForward(std::uint64_t insts)
    {
        ffInsts_ += insts;
        ffInstsStat_ += insts;
    }

    std::uint64_t intervals() const { return ipcSamples_.size(); }
    std::uint64_t ffInsts() const { return ffInsts_; }

    /** Mean of the per-interval IPCs (the whole-run estimate). */
    double ipcMean() const;
    /** Sample standard deviation of the per-interval IPCs. */
    double ipcStddev() const;
    /**
     * Half-width of the CLT 95% confidence interval on the mean IPC
     * (1.96 * s / sqrt(n)); 0 with fewer than two intervals, where
     * no spread is observable.
     */
    double ipcCi95() const;

    /** Publish the estimate into the sample.* gauges. */
    void finalize();

  private:
    SamplingConfig cfg_;
    std::vector<double> ipcSamples_;
    std::uint64_t ffInsts_ = 0;

    Counter intervalsStat_;
    Counter ffInstsStat_;
    Counter detailedInstsStat_;
    Gauge intervalLenStat_;
    Gauge periodLenStat_;
    Gauge ipcMeanStat_;
    Gauge ipcCi95Stat_;
    Gauge ipcStddevStat_;
};

} // namespace mlpwin

#endif // MLPWIN_SAMPLE_SAMPLING_HH
