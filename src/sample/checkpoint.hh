/**
 * @file
 * Architectural checkpoints: a versioned binary serialization of the
 * complete architectural state of a workload at some instruction
 * count — all 64 registers, the PC, the instruction count, and every
 * touched page of the sparse functional memory — plus a program
 * identity hash so a checkpoint can never silently resume the wrong
 * binary.
 *
 * Checkpoints are created once per workload (tools/mlpwin_ckpt) by
 * fast-forwarding the functional emulator, then reused across every
 * cell of a sweep matrix: the Simulator restores memory, core, and
 * (when attached) the lockstep checker from the image and begins
 * detailed or sampled execution at the checkpointed instruction.
 *
 * File format (version 1, little-endian):
 *   u64  magic "MLPWCKPT"
 *   u32  version
 *   u32  workload-name length, followed by that many bytes
 *   u64  program identity hash (programHash())
 *   u64  instruction count
 *   u64  pc
 *   u64  regs[kNumArchRegs]
 *   u64  page count, then per page: u64 base + kPageBytes raw bytes
 *
 * Version policy: the loader rejects any file whose magic or version
 * does not match exactly. Field additions bump the version; there is
 * no in-place migration — checkpoints are cheap to regenerate from
 * the deterministic program generators, so stale files are simply
 * rebuilt with mlpwin_ckpt.
 */

#ifndef MLPWIN_SAMPLE_CHECKPOINT_HH
#define MLPWIN_SAMPLE_CHECKPOINT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "mem/main_memory.hh"

namespace mlpwin
{

/**
 * FNV-1a fingerprint of a program's identity: code words, initialized
 * data segments, entry point, and data extent. Two programs with
 * equal hashes load identical initial memory images, so a checkpoint
 * taken under one resumes correctly under the other.
 */
std::uint64_t programHash(const Program &prog);

/** See file comment. */
class ArchCheckpoint
{
  public:
    static constexpr std::uint64_t kMagic = 0x54504b4357504c4dULL;
    static constexpr std::uint32_t kVersion = 1;

    ArchCheckpoint() = default;

    /**
     * Snapshot the emulator's architectural state (registers, PC,
     * instruction count, and its full sparse memory image).
     *
     * @param emu The emulator to snapshot.
     * @param workload Suite workload name recorded in the file.
     * @param program_hash Identity hash of the program being run.
     */
    static ArchCheckpoint capture(const Emulator &emu,
                                  const std::string &workload,
                                  std::uint64_t program_hash);

    /** Serialize to a binary stream. @throws SimError{Io} */
    void save(std::ostream &os) const;
    /** Write to a file via save(). @throws SimError{Io} */
    void saveFile(const std::string &path) const;

    /**
     * Deserialize from a binary stream.
     * @throws SimError{InvalidArgument} on bad magic/version/layout,
     *         SimError{Io} on read failure.
     */
    static ArchCheckpoint load(std::istream &is);
    /** Read a file via load(). @throws SimError{Io,InvalidArgument} */
    static ArchCheckpoint loadFile(const std::string &path);

    /**
     * Install the checkpointed memory image into mem. Pages are
     * copied on top of whatever mem already holds; the image is a
     * superset of the loaded program (the capture-time memory was
     * itself program-loaded), so the result is exactly the
     * checkpoint-time image.
     */
    void restoreMemory(MainMemory &mem) const;

    const std::string &workload() const { return workload_; }
    std::uint64_t programHash() const { return programHash_; }
    std::uint64_t instCount() const { return instCount_; }
    Addr pc() const { return pc_; }
    const RegFile &regs() const { return regs_; }
    std::size_t numPages() const { return pages_.size(); }

  private:
    struct PageImage
    {
        Addr base = 0;
        std::vector<std::uint8_t> bytes;
    };

    std::string workload_;
    std::uint64_t programHash_ = 0;
    std::uint64_t instCount_ = 0;
    Addr pc_ = 0;
    RegFile regs_;
    std::vector<PageImage> pages_;
};

} // namespace mlpwin

#endif // MLPWIN_SAMPLE_CHECKPOINT_HH
