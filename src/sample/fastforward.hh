/**
 * @file
 * Functional fast-forward with functional warming: drives an Emulator
 * at native speed (no pipeline, no timing) while feeding each
 * committed load/store line into the data caches, each fetched line
 * into the instruction cache, and each control instruction into the
 * branch predictor. At the end of a fast-forward the architectural
 * state is exact and the cache/predictor state is warm — the
 * precondition for SMARTS-style sampled measurement and for the
 * functional replacement of the old detailed-mode warmupInsts path.
 */

#ifndef MLPWIN_SAMPLE_FASTFORWARD_HH
#define MLPWIN_SAMPLE_FASTFORWARD_HH

#include <cstdint>

#include "branch/predictor.hh"
#include "common/types.hh"
#include "emu/emulator.hh"
#include "mem/hierarchy.hh"

namespace mlpwin
{

/** See file comment. */
class FastForwarder
{
  public:
    /**
     * @param emu Emulator to drive (architectural state advances).
     * @param mem Hierarchy to warm; nullptr skips cache warming.
     * @param bp Predictor to warm; nullptr skips predictor warming.
     */
    FastForwarder(Emulator &emu, CacheHierarchy *mem,
                  BranchPredictor *bp)
        : emu_(emu), mem_(mem), bp_(bp)
    {}

    /**
     * Execute up to n instructions, stopping early at Halt.
     *
     * @return Instructions actually executed.
     */
    std::uint64_t run(std::uint64_t n);

    /** Total instructions executed across all run() calls. */
    std::uint64_t executed() const { return executed_; }

  private:
    Emulator &emu_;
    CacheHierarchy *mem_;
    BranchPredictor *bp_;
    std::uint64_t executed_ = 0;
    /** Last I-line touched (skip redundant per-inst L1I touches). */
    Addr lastFetchLine_ = kNoAddr;
};

} // namespace mlpwin

#endif // MLPWIN_SAMPLE_FASTFORWARD_HH
