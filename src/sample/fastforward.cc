#include "fastforward.hh"

namespace mlpwin
{

std::uint64_t
FastForwarder::run(std::uint64_t n)
{
    std::uint64_t done = 0;
    while (done < n && !emu_.halted()) {
        ExecRecord rec = emu_.step();
        ++done;
        if (mem_) {
            Addr line = mem_->l1i().lineAddr(rec.pc);
            if (line != lastFetchLine_) {
                mem_->warmFetchLine(rec.pc);
                lastFetchLine_ = line;
            }
            if (rec.inst.isMem())
                mem_->warmDemandAccess(rec.memAddr,
                                       rec.inst.isStore());
        }
        if (bp_ && rec.inst.isControl())
            bp_->warm(rec.pc, rec.inst, rec.taken, rec.nextPc);
    }
    executed_ += done;
    return done;
}

} // namespace mlpwin
