/**
 * @file
 * Configuration for the sampled-simulation subsystem: SMARTS-style
 * systematic sampling parameters, plus the single shared definition
 * of the default warm-up budget that the CLI tools and the benchmark
 * harness previously each hard-coded.
 */

#ifndef MLPWIN_SAMPLE_SAMPLE_CONFIG_HH
#define MLPWIN_SAMPLE_SAMPLE_CONFIG_HH

#include <cstdint>
#include <string>

namespace mlpwin
{

/**
 * Instructions executed before the measurement window opens, shared
 * by mlpwin_cli, mlpwin_batch, and the benchmark harness. With the
 * sampling subsystem this warm-up runs functionally (native-speed
 * emulation with cache/predictor warming) instead of on the detailed
 * core.
 */
constexpr std::uint64_t kDefaultWarmupInsts = 100000;

/**
 * Systematic (SMARTS-style) sampling: every `periodInsts` committed
 * instructions, the simulator runs `detailedWarmupInsts` on the
 * detailed core unmeasured (to re-warm pipeline-local state after a
 * functional fast-forward), then measures `intervalInsts` in detail;
 * the rest of the period executes on the functional emulator with
 * cache and branch-predictor warming. The per-interval IPCs form the
 * whole-run estimate with a CLT confidence interval.
 */
struct SamplingConfig
{
    bool enabled = false;

    /** U: committed instructions measured in detail per period. */
    std::uint64_t intervalInsts = 1000;

    /**
     * W: total committed instructions per sampling period (fast
     * forward + detailed warm-up + measured interval). The defaults
     * give a 10% detailed fraction — roughly an order of magnitude
     * of speedup at <2% typical IPC error on the suite.
     */
    std::uint64_t periodInsts = 20000;

    /**
     * Detailed-mode (unmeasured) instructions run immediately before
     * each measured interval, so ROB/IQ/MSHR occupancy and in-flight
     * misses are realistic when measurement starts. Functional
     * warming covers caches and the predictor; this burst covers the
     * state functional warming cannot reconstruct.
     */
    std::uint64_t detailedWarmupInsts = 1000;

    /** Instructions fast-forwarded functionally per period. */
    std::uint64_t
    ffInstsPerPeriod() const
    {
        std::uint64_t detailed = intervalInsts + detailedWarmupInsts;
        return periodInsts > detailed ? periodInsts - detailed : 0;
    }

    /**
     * Empty when the configuration is usable; otherwise a message
     * naming the problem.
     */
    std::string
    validate() const
    {
        if (!enabled)
            return "";
        if (intervalInsts == 0)
            return "sampling interval must be > 0 instructions";
        if (periodInsts < intervalInsts + detailedWarmupInsts)
            return "sampling period must cover the detailed warm-up "
                   "burst plus the measured interval";
        return "";
    }
};

} // namespace mlpwin

#endif // MLPWIN_SAMPLE_SAMPLE_CONFIG_HH
