#include "checkpoint.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/status.hh"
#include "profile/profiler.hh"

namespace mlpwin
{

namespace
{

void
fnv(std::uint64_t &hash, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        hash ^= (v >> (8 * i)) & 0xff;
        hash *= 0x100000001b3ULL;
    }
}

void
putU32(std::ostream &os, std::uint32_t v)
{
    std::uint8_t b[4];
    for (unsigned i = 0; i < 4; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(b), 4);
}

void
putU64(std::ostream &os, std::uint64_t v)
{
    std::uint8_t b[8];
    for (unsigned i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(b), 8);
}

std::uint32_t
getU32(std::istream &is)
{
    std::uint8_t b[4];
    is.read(reinterpret_cast<char *>(b), 4);
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(std::istream &is)
{
    std::uint8_t b[8];
    is.read(reinterpret_cast<char *>(b), 8);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
}

} // namespace

std::uint64_t
programHash(const Program &prog)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    fnv(hash, prog.codeBase());
    fnv(hash, prog.entry());
    fnv(hash, prog.dataEnd());
    fnv(hash, prog.code().size());
    for (std::uint64_t word : prog.code())
        fnv(hash, word);
    for (const DataSegment &seg : prog.data()) {
        fnv(hash, seg.base);
        fnv(hash, seg.bytes.size());
        for (std::uint8_t b : seg.bytes) {
            hash ^= b;
            hash *= 0x100000001b3ULL;
        }
    }
    return hash;
}

ArchCheckpoint
ArchCheckpoint::capture(const Emulator &emu,
                        const std::string &workload,
                        std::uint64_t program_hash)
{
    ArchCheckpoint ck;
    ck.workload_ = workload;
    ck.programHash_ = program_hash;
    ck.instCount_ = emu.instCount();
    ck.pc_ = emu.pc();
    ck.regs_ = emu.regs();

    const MainMemory &mem = emu.memory();
    for (Addr base : mem.pageBases()) {
        const std::uint8_t *data = mem.pageData(base);
        PageImage page;
        page.base = base;
        page.bytes.assign(data, data + MainMemory::kPageBytes);
        ck.pages_.push_back(std::move(page));
    }
    return ck;
}

void
ArchCheckpoint::save(std::ostream &os) const
{
    putU64(os, kMagic);
    putU32(os, kVersion);
    putU32(os, static_cast<std::uint32_t>(workload_.size()));
    os.write(workload_.data(),
             static_cast<std::streamsize>(workload_.size()));
    putU64(os, programHash_);
    putU64(os, instCount_);
    putU64(os, pc_);
    for (unsigned r = 0; r < kNumArchRegs; ++r)
        putU64(os, regs_.read(static_cast<RegId>(r)));
    putU64(os, pages_.size());
    for (const PageImage &page : pages_) {
        putU64(os, page.base);
        os.write(reinterpret_cast<const char *>(page.bytes.data()),
                 static_cast<std::streamsize>(page.bytes.size()));
    }
    if (!os)
        throw SimError(ErrorCode::Io, "checkpoint write failed");
}

void
ArchCheckpoint::saveFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw SimError(ErrorCode::Io,
                       "cannot create checkpoint file " + path);
    save(os);
    os.flush();
    if (!os)
        throw SimError(ErrorCode::Io,
                       "cannot write checkpoint file " + path);
}

ArchCheckpoint
ArchCheckpoint::load(std::istream &is)
{
    std::uint64_t magic = getU64(is);
    if (!is || magic != kMagic)
        throw SimError(ErrorCode::InvalidArgument,
                       "not a checkpoint file (bad magic)");
    std::uint32_t version = getU32(is);
    if (!is || version != kVersion)
        throw SimError(ErrorCode::InvalidArgument,
                       "unsupported checkpoint version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kVersion) + ")");

    ArchCheckpoint ck;
    std::uint32_t name_len = getU32(is);
    // A name longer than any plausible workload means a corrupt or
    // truncated header; refuse before allocating from it.
    if (!is || name_len > 4096)
        throw SimError(ErrorCode::InvalidArgument,
                       "corrupt checkpoint header (name length)");
    ck.workload_.resize(name_len);
    is.read(ck.workload_.data(), name_len);

    ck.programHash_ = getU64(is);
    ck.instCount_ = getU64(is);
    ck.pc_ = getU64(is);
    for (unsigned r = 0; r < kNumArchRegs; ++r)
        ck.regs_.write(static_cast<RegId>(r), getU64(is));
    std::uint64_t num_pages = getU64(is);
    if (!is)
        throw SimError(ErrorCode::Io, "truncated checkpoint header");
    for (std::uint64_t i = 0; i < num_pages; ++i) {
        PageImage page;
        page.base = getU64(is);
        if ((page.base & (MainMemory::kPageBytes - 1)) != 0)
            throw SimError(ErrorCode::InvalidArgument,
                           "corrupt checkpoint (unaligned page base)");
        page.bytes.resize(MainMemory::kPageBytes);
        is.read(reinterpret_cast<char *>(page.bytes.data()),
                MainMemory::kPageBytes);
        if (!is)
            throw SimError(ErrorCode::Io,
                           "truncated checkpoint page data");
        ck.pages_.push_back(std::move(page));
    }
    return ck;
}

ArchCheckpoint
ArchCheckpoint::loadFile(const std::string &path)
{
    ScopedSpan span(SpanKind::CheckpointLoad, path);
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw SimError(ErrorCode::Io,
                       "cannot open checkpoint file " + path);
    return load(is);
}

void
ArchCheckpoint::restoreMemory(MainMemory &mem) const
{
    for (const PageImage &page : pages_)
        mem.installPage(page.base, page.bytes.data());
}

} // namespace mlpwin
