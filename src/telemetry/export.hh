/**
 * @file
 * Telemetry exporters: the interval time series as JSON Lines (one
 * object per sample, plotting-friendly; schema in tools/TELEMETRY.md)
 * and the event timeline in Chrome trace_event format, loadable
 * directly in chrome://tracing and Perfetto. Both formats are
 * documented in tools/TELEMETRY.md.
 */

#ifndef MLPWIN_TELEMETRY_EXPORT_HH
#define MLPWIN_TELEMETRY_EXPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/sampler.hh"
#include "telemetry/timeline.hh"

namespace mlpwin
{

/** Serialize one interval sample as a single-line JSON object. */
std::string intervalSampleToJson(const IntervalSample &s);

/** Write the whole series as JSON Lines (one sample per line). */
void writeTelemetryJsonl(std::ostream &os, const IntervalSampler &s);

/**
 * Write the timeline as a Chrome trace_event JSON document:
 * complete ("X") duration events on per-kind tracks plus a
 * "window level" counter track sampled at every resize.
 *
 * Cycle numbers are emitted as the microsecond timestamps the format
 * requires, so 1 us in the viewer = 1 core cycle.
 *
 * @param process_name Label for the process track (e.g.
 *        "soplex/resizing").
 * @param extra_events Additional pre-serialized trace_event objects
 *        appended verbatim after the guest events — the host
 *        profiler's Profiler::traceEvents() output merges here, so
 *        one document shows guest timeline (pid 0) and host spans
 *        (pid 1) side by side. Default keeps the guest-only format
 *        byte-identical.
 */
void writeChromeTrace(std::ostream &os, const EventTimeline &t,
                      const std::string &process_name = "mlpwin",
                      const std::vector<std::string> &extra_events =
                          {});

} // namespace mlpwin

#endif // MLPWIN_TELEMETRY_EXPORT_HH
