/**
 * @file
 * The EventTimeline records every discrete control episode the
 * resize/runahead machinery goes through — window grow and shrink
 * transitions (with their stall penalty as the event duration),
 * drain stalls while waiting to shrink, and runahead episodes — as
 * begin/end cycle pairs. The ResizeController and OooCore carry a
 * nullable pointer to it (one pointer test per site when disabled,
 * same discipline as the PipelineTracer); the Chrome trace_event
 * exporter turns the result into a file chrome://tracing and
 * Perfetto open directly.
 */

#ifndef MLPWIN_TELEMETRY_TIMELINE_HH
#define MLPWIN_TELEMETRY_TIMELINE_HH

#include <cstdint>
#include <deque>

#include "common/types.hh"

namespace mlpwin
{

/** Episode kinds recorded on the timeline. */
enum class TimelineEventKind
{
    Grow,       ///< Window level up-transition (+ stall penalty).
    Shrink,     ///< Window level down-transition (+ stall penalty).
    DrainStall, ///< Allocation stopped, draining to fit the
                ///< smaller level.
    Runahead,   ///< Runahead episode, enter to exit.
};

/** Printable kind name ("grow", "shrink", ...). */
const char *timelineEventKindName(TimelineEventKind k);

/** One closed episode; begin <= end always holds. */
struct TimelineEvent
{
    TimelineEventKind kind = TimelineEventKind::Grow;
    Cycle begin = 0;
    Cycle end = 0;
    /** Grow/Shrink: levels before/after the transition. */
    unsigned fromLevel = 0;
    unsigned toLevel = 0;
    /** Runahead: PC of the triggering load. */
    std::uint64_t triggerPc = 0;
    /** Runahead: L2 misses generated during the episode. */
    std::uint64_t misses = 0;
};

/** See file comment. */
class EventTimeline
{
  public:
    /** Ring capacity bounding memory on very long runs. */
    static constexpr std::size_t kDefaultCapacity = 1u << 20;

    explicit EventTimeline(std::size_t capacity = kDefaultCapacity);

    /** A level transition paying its stall penalty over [begin,end]. */
    void recordResize(Cycle begin, Cycle end, unsigned from,
                      unsigned to);

    /** Open a drain-stall episode (no-op while one is open). */
    void beginDrainStall(Cycle now);
    /** Close the open drain-stall episode (no-op when none is). */
    void endDrainStall(Cycle now);
    bool drainStallOpen() const { return drainOpen_; }

    /** Open a runahead episode (no-op while one is open). */
    void beginRunahead(Cycle now, std::uint64_t trigger_pc);
    /** Close the open runahead episode (no-op when none is). */
    void endRunahead(Cycle now, std::uint64_t misses);
    bool runaheadOpen() const { return raOpen_; }

    /** Close any episode still open at end-of-run cycle `now`. */
    void finish(Cycle now);

    const std::deque<TimelineEvent> &events() const
    {
        return events_;
    }

    /** Events discarded because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

  private:
    void push(const TimelineEvent &e);

    std::size_t capacity_;
    std::deque<TimelineEvent> events_;
    std::uint64_t dropped_ = 0;

    bool drainOpen_ = false;
    Cycle drainBegin_ = 0;
    bool raOpen_ = false;
    Cycle raBegin_ = 0;
    std::uint64_t raPc_ = 0;
};

} // namespace mlpwin

#endif // MLPWIN_TELEMETRY_TIMELINE_HH
