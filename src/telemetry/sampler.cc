#include "sampler.hh"

#include "common/logging.hh"

namespace mlpwin
{

IntervalSampler::IntervalSampler(Cycle interval, std::size_t capacity)
    : interval_(interval), next_(interval), capacity_(capacity)
{
    mlpwin_assert(interval > 0);
    mlpwin_assert(capacity > 0);
}

void
IntervalSampler::push(const IntervalSnapshot &snap)
{
    IntervalSample s;
    s.cycleBegin = prevCycle_;
    s.cycleEnd = snap.cycle;

    // Cumulative counters restart from zero at the measurement-window
    // reset; a snapshot below the baseline means notifyReset was not
    // seen (direct tick() driving) — fall back to the absolute value.
    s.committed = snap.committed >= prevCommitted_
        ? snap.committed - prevCommitted_ : snap.committed;
    s.l2Misses = snap.l2DemandMisses >= prevMisses_
        ? snap.l2DemandMisses - prevMisses_ : snap.l2DemandMisses;

    Cycle dt = snap.cycle - prevCycle_;
    s.ipc = dt ? static_cast<double>(s.committed) /
                     static_cast<double>(dt)
               : 0.0;
    s.l2Mpki = s.committed
        ? 1000.0 * static_cast<double>(s.l2Misses) /
              static_cast<double>(s.committed)
        : 0.0;

    s.level = snap.level;
    s.robOcc = snap.robOcc;
    s.iqOcc = snap.iqOcc;
    s.lsqOcc = snap.lsqOcc;
    s.outstandingMisses = snap.outstandingMisses;
    s.dramBacklog = snap.dramBacklog;

    // CPI stacks difference leaf-wise, with the same below-baseline
    // fallback as the scalar counters.
    auto cpi_delta = [](const CpiStack &now, const CpiStack &prev,
                        std::array<std::uint64_t,
                                   kNumCpiComponents> &out) {
        for (std::size_t i = 0; i < kNumCpiComponents; ++i) {
            out[i] = now.counts[i] >= prev.counts[i]
                ? now.counts[i] - prev.counts[i] : now.counts[i];
        }
    };
    s.hasCpi = snap.hasCpi;
    if (snap.hasCpi)
        cpi_delta(snap.cpi, prevCpi_, s.cpi);

    s.hasVm = snap.hasVm;
    if (snap.hasVm) {
        s.tlbWalks = snap.tlbWalks >= prevWalks_
            ? snap.tlbWalks - prevWalks_ : snap.tlbWalks;
        s.walkCycles = snap.walkCycles >= prevWalkCycles_
            ? snap.walkCycles - prevWalkCycles_ : snap.walkCycles;
    }

    // Per-thread slices carry a thread-local commit delta; only
    // multi-thread runs produce them.
    if (snap.threads.size() > 1) {
        prevThreadCommitted_.resize(snap.threads.size(), 0);
        prevThreadCpi_.resize(snap.threads.size());
        s.threads.resize(snap.threads.size());
        for (std::size_t i = 0; i < snap.threads.size(); ++i) {
            const ThreadSnapshot &tsnap = snap.threads[i];
            ThreadSample &t = s.threads[i];
            t.committed = tsnap.committed >= prevThreadCommitted_[i]
                ? tsnap.committed - prevThreadCommitted_[i]
                : tsnap.committed;
            t.ipc = dt ? static_cast<double>(t.committed) /
                             static_cast<double>(dt)
                       : 0.0;
            t.level = tsnap.level;
            t.robOcc = tsnap.robOcc;
            t.outstandingMisses = tsnap.outstandingMisses;
            if (snap.hasCpi)
                cpi_delta(tsnap.cpi, prevThreadCpi_[i], t.cpi);
            prevThreadCommitted_[i] = tsnap.committed;
            prevThreadCpi_[i] = tsnap.cpi;
        }
    }

    if (samples_.size() >= capacity_) {
        samples_.pop_front();
        ++dropped_;
    }
    samples_.push_back(s);

    prevCycle_ = snap.cycle;
    prevCommitted_ = snap.committed;
    prevMisses_ = snap.l2DemandMisses;
    prevWalks_ = snap.tlbWalks;
    prevWalkCycles_ = snap.walkCycles;
    prevCpi_ = snap.cpi;
}

void
IntervalSampler::record(const IntervalSnapshot &snap)
{
    push(snap);
    next_ = snap.cycle + interval_;
}

void
IntervalSampler::finish(const IntervalSnapshot &snap)
{
    if (snap.cycle > prevCycle_)
        push(snap);
}

void
IntervalSampler::notifyReset(Cycle now)
{
    prevCycle_ = now;
    prevCommitted_ = 0;
    prevMisses_ = 0;
    prevWalks_ = 0;
    prevWalkCycles_ = 0;
    prevThreadCommitted_.clear();
    prevCpi_.reset();
    prevThreadCpi_.clear();
}

} // namespace mlpwin
