/**
 * @file
 * Interval telemetry: the IntervalSampler turns a running simulation
 * into a phase-level time series. Every N cycles (configurable,
 * default 10K) the Simulator snapshots IPC, the current window
 * level, ROB/IQ/LSQ occupancy, L2 demand misses (and MPKI), the
 * outstanding-miss count (observed MLP), and the DRAM bus backlog
 * into a ring-buffered series — the data behind the paper's
 * level-vs-time plots (Figs. 3-4, 8) that end-of-run aggregates
 * erase. Disabled telemetry costs the simulation one pointer test
 * per cycle, same discipline as the PipelineTracer.
 */

#ifndef MLPWIN_TELEMETRY_SAMPLER_HH
#define MLPWIN_TELEMETRY_SAMPLER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "cpu/cpi_stack.hh"

namespace mlpwin
{

/** Default sampling interval, in cycles. */
constexpr Cycle kDefaultTelemetryInterval = 10000;

/**
 * Per-hardware-thread slice of a sampling point (SMT runs). Commit
 * counts are cumulative, like the core-wide ones.
 */
struct ThreadSnapshot
{
    std::uint64_t committed = 0;
    /** This thread's window level (1-based, partition-assigned). */
    unsigned level = 0;
    unsigned robOcc = 0;
    unsigned outstandingMisses = 0;
    /** Cumulative CPI stack (leaf counts sum to measured cycles). */
    CpiStack cpi;
};

/**
 * Absolute state captured at one sampling point. Committed/miss
 * counts are cumulative; the sampler differences consecutive
 * snapshots into per-interval rates.
 */
struct IntervalSnapshot
{
    Cycle cycle = 0;
    std::uint64_t committed = 0;
    std::uint64_t l2DemandMisses = 0;
    /** Current window level (1-based). */
    unsigned level = 0;
    unsigned robOcc = 0;
    unsigned iqOcc = 0;
    unsigned lsqOcc = 0;
    /** In-flight L2-miss loads this cycle (instantaneous MLP). */
    unsigned outstandingMisses = 0;
    /** Cycles until the DRAM data bus is free (queue backlog). */
    std::uint64_t dramBacklog = 0;
    /** Cumulative whole-core CPI stack (leaf-wise thread sum). */
    CpiStack cpi;
    /** True when the snapshot source fills the CPI stacks (keeps
     *  pre-CPI drivers and hand-built snapshots emitting the old
     *  schema). */
    bool hasCpi = false;
    /** Cumulative page-table walks started (paging on only). */
    std::uint64_t tlbWalks = 0;
    /** Cumulative cycles spent in page-table walks. */
    std::uint64_t walkCycles = 0;
    /** True when the run simulates paging (gates vm export). */
    bool hasVm = false;
    /** One entry per hardware thread; may be empty (plain drivers). */
    std::vector<ThreadSnapshot> threads;
};

/** Per-thread slice of one interval record. */
struct ThreadSample
{
    /** Instructions this thread committed within the interval. */
    std::uint64_t committed = 0;
    /** Thread IPC over the interval. */
    double ipc = 0.0;
    unsigned level = 0;
    unsigned robOcc = 0;
    unsigned outstandingMisses = 0;
    /** Per-leaf cycle counts within the interval (sum == interval
     *  length when the source provides CPI stacks). */
    std::array<std::uint64_t, kNumCpiComponents> cpi{};
};

/** One per-interval record derived from consecutive snapshots. */
struct IntervalSample
{
    Cycle cycleBegin = 0;
    Cycle cycleEnd = 0;
    /** Instructions committed within [cycleBegin, cycleEnd). */
    std::uint64_t committed = 0;
    /** committed / (cycleEnd - cycleBegin). */
    double ipc = 0.0;
    unsigned level = 0;
    unsigned robOcc = 0;
    unsigned iqOcc = 0;
    unsigned lsqOcc = 0;
    /** L2 demand misses within the interval. */
    std::uint64_t l2Misses = 0;
    /** Interval misses per 1000 interval-committed instructions. */
    double l2Mpki = 0.0;
    unsigned outstandingMisses = 0;
    std::uint64_t dramBacklog = 0;
    /** Whole-core per-leaf cycle counts within the interval. */
    std::array<std::uint64_t, kNumCpiComponents> cpi{};
    /** True when the snapshots carried CPI stacks (gates export). */
    bool hasCpi = false;
    /** Page-table walks started within the interval. */
    std::uint64_t tlbWalks = 0;
    /** Walk cycles accumulated within the interval. */
    std::uint64_t walkCycles = 0;
    /** True when the snapshots carried vm counters (gates export). */
    bool hasVm = false;
    /** Per-thread slices; populated only on multi-thread runs. */
    std::vector<ThreadSample> threads;
};

/** See file comment. */
class IntervalSampler
{
  public:
    /** Ring capacity bounding memory on very long runs. */
    static constexpr std::size_t kDefaultCapacity = 1u << 20;

    /**
     * @param interval Cycles between samples (> 0).
     * @param capacity Ring size; the oldest samples are dropped
     *        (and counted) once the series exceeds it.
     */
    explicit IntervalSampler(
        Cycle interval = kDefaultTelemetryInterval,
        std::size_t capacity = kDefaultCapacity);

    Cycle interval() const { return interval_; }

    /** True when the next sample is due; tested every cycle. */
    bool due(Cycle now) const { return now >= next_; }

    /** Record one snapshot and schedule the next sample. */
    void record(const IntervalSnapshot &snap);

    /**
     * Flush a final partial interval at end of run (no-op when no
     * cycle has elapsed since the last sample).
     */
    void finish(const IntervalSnapshot &snap);

    /**
     * Rebase the delta baseline after the cumulative counters were
     * zeroed (the Simulator's measurement-window reset).
     */
    void notifyReset(Cycle now);

    const std::deque<IntervalSample> &samples() const
    {
        return samples_;
    }

    /** Samples discarded because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

  private:
    void push(const IntervalSnapshot &snap);

    Cycle interval_;
    Cycle next_;
    std::size_t capacity_;

    Cycle prevCycle_ = 0;
    std::uint64_t prevCommitted_ = 0;
    std::uint64_t prevMisses_ = 0;
    std::uint64_t prevWalks_ = 0;
    std::uint64_t prevWalkCycles_ = 0;
    std::vector<std::uint64_t> prevThreadCommitted_;
    CpiStack prevCpi_;
    std::vector<CpiStack> prevThreadCpi_;

    std::deque<IntervalSample> samples_;
    std::uint64_t dropped_ = 0;
};

} // namespace mlpwin

#endif // MLPWIN_TELEMETRY_SAMPLER_HH
