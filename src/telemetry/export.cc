#include "export.hh"

#include "common/json.hh"

namespace mlpwin
{

namespace
{

/** {"base":N,"ifetch":N,...} keyed by cpiComponentName, leaf order. */
std::string
cpiToJson(const std::array<std::uint64_t, kNumCpiComponents> &cpi)
{
    std::string out = "{";
    for (std::size_t i = 0; i < kNumCpiComponents; ++i) {
        if (i)
            out += ',';
        out += '"';
        out += cpiComponentName(static_cast<CpiComponent>(i));
        out += "\":" + fmtU64(cpi[i]);
    }
    out += "}";
    return out;
}

} // namespace

std::string
intervalSampleToJson(const IntervalSample &s)
{
    std::string out = "{";
    out += "\"cycle\":" + fmtU64(s.cycleEnd);
    out += ",\"cycle_begin\":" + fmtU64(s.cycleBegin);
    out += ",\"committed\":" + fmtU64(s.committed);
    out += ",\"ipc\":" + fmtDouble(s.ipc);
    out += ",\"level\":" + fmtU64(s.level);
    out += ",\"rob\":" + fmtU64(s.robOcc);
    out += ",\"iq\":" + fmtU64(s.iqOcc);
    out += ",\"lsq\":" + fmtU64(s.lsqOcc);
    out += ",\"l2_misses\":" + fmtU64(s.l2Misses);
    out += ",\"l2_mpki\":" + fmtDouble(s.l2Mpki);
    out += ",\"outstanding_misses\":" + fmtU64(s.outstandingMisses);
    out += ",\"dram_backlog\":" + fmtU64(s.dramBacklog);
    // The CPI stack appears only when the driver provides one (the
    // Simulator does; hand-built snapshots keep the old schema).
    if (s.hasCpi)
        out += ",\"cpi\":" + cpiToJson(s.cpi);
    // vm counters appear only on paging-enabled runs, keeping the
    // paging-off schema (and its goldens) unchanged.
    if (s.hasVm) {
        out += ",\"tlb_walks\":" + fmtU64(s.tlbWalks);
        out += ",\"walk_cycles\":" + fmtU64(s.walkCycles);
    }
    // Per-thread slices appear only on multi-thread runs, keeping the
    // single-thread schema (and its consumers) unchanged.
    if (!s.threads.empty()) {
        out += ",\"threads\":[";
        for (std::size_t i = 0; i < s.threads.size(); ++i) {
            const ThreadSample &t = s.threads[i];
            if (i)
                out += ',';
            out += "{\"committed\":" + fmtU64(t.committed);
            out += ",\"ipc\":" + fmtDouble(t.ipc);
            out += ",\"level\":" + fmtU64(t.level);
            out += ",\"rob\":" + fmtU64(t.robOcc);
            out += ",\"outstanding_misses\":" +
                   fmtU64(t.outstandingMisses);
            if (s.hasCpi)
                out += ",\"cpi\":" + cpiToJson(t.cpi);
            out += "}";
        }
        out += "]";
    }
    out += "}";
    return out;
}

void
writeTelemetryJsonl(std::ostream &os, const IntervalSampler &s)
{
    for (const IntervalSample &sample : s.samples())
        os << intervalSampleToJson(sample) << '\n';
}

namespace
{

/** Thread tracks of the exported trace (tid values). */
enum : unsigned
{
    kTidResize = 0,
    kTidDrain = 1,
    kTidRunahead = 2,
};

std::string
metaEvent(const char *name, unsigned tid, const std::string &value,
          bool process_scope)
{
    std::string e = "{\"name\":\"";
    e += name;
    e += "\",\"ph\":\"M\",\"pid\":0";
    if (!process_scope)
        e += ",\"tid\":" + fmtU64(tid);
    e += ",\"args\":{\"name\":\"" + jsonEscape(value) + "\"}}";
    return e;
}

std::string
counterEvent(Cycle ts, unsigned level)
{
    return "{\"name\":\"window level\",\"ph\":\"C\",\"ts\":" +
           fmtU64(ts) + ",\"pid\":0,\"args\":{\"level\":" +
           fmtU64(level) + "}}";
}

std::string
eventToTrace(const TimelineEvent &e)
{
    const char *kind = timelineEventKindName(e.kind);
    std::string out = "{\"name\":\"";
    if (e.kind == TimelineEventKind::Grow ||
        e.kind == TimelineEventKind::Shrink) {
        out += std::string(kind) + " L" +
               fmtU64(e.fromLevel) + "-L" + fmtU64(e.toLevel);
    } else {
        out += kind;
    }
    out += "\",\"cat\":\"";
    out += kind;
    out += "\"";

    switch (e.kind) {
      case TimelineEventKind::Grow:
      case TimelineEventKind::Shrink:
        // Transitions may overlap in time when misses arrive inside
        // a pending stall penalty, and overlapping "X" slices on one
        // track are rejected by strict importers — emit transitions
        // as instant events and carry the stall window in args.
        out += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + fmtU64(e.begin);
        out += ",\"pid\":0,\"tid\":" + fmtU64(kTidResize);
        out += ",\"args\":{\"from\":" + fmtU64(e.fromLevel) +
               ",\"to\":" + fmtU64(e.toLevel) +
               ",\"stall_end\":" + fmtU64(e.end) + "}";
        break;
      case TimelineEventKind::DrainStall:
        out += ",\"ph\":\"X\",\"ts\":" + fmtU64(e.begin);
        out += ",\"dur\":" + fmtU64(e.end - e.begin);
        out += ",\"pid\":0,\"tid\":" + fmtU64(kTidDrain);
        out += ",\"args\":{}";
        break;
      case TimelineEventKind::Runahead:
        out += ",\"ph\":\"X\",\"ts\":" + fmtU64(e.begin);
        out += ",\"dur\":" + fmtU64(e.end - e.begin);
        out += ",\"pid\":0,\"tid\":" + fmtU64(kTidRunahead);
        out += ",\"args\":{\"trigger_pc\":" + fmtU64(e.triggerPc) +
               ",\"episode_misses\":" + fmtU64(e.misses) + "}";
        break;
    }
    out += "}";
    return out;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const EventTimeline &t,
                 const std::string &process_name,
                 const std::vector<std::string> &extra_events)
{
    os << "{\"traceEvents\":[\n";
    os << metaEvent("process_name", 0, process_name, true) << ",\n";
    os << metaEvent("thread_name", kTidResize, "resize", false)
       << ",\n";
    os << metaEvent("thread_name", kTidDrain, "drain", false)
       << ",\n";
    os << metaEvent("thread_name", kTidRunahead, "runahead", false);

    // Seed the level counter track with the pre-transition level so
    // the first step renders from the right baseline.
    bool seeded = false;
    for (const TimelineEvent &e : t.events()) {
        if (e.kind == TimelineEventKind::Grow ||
            e.kind == TimelineEventKind::Shrink) {
            if (!seeded && e.begin > 0) {
                os << ",\n" << counterEvent(0, e.fromLevel);
                seeded = true;
            }
            os << ",\n" << counterEvent(e.begin, e.toLevel);
        }
        os << ",\n" << eventToTrace(e);
    }

    for (const std::string &e : extra_events)
        os << ",\n" << e;

    os << "\n]}\n";
}

} // namespace mlpwin
