#include "timeline.hh"

#include "common/logging.hh"

namespace mlpwin
{

const char *
timelineEventKindName(TimelineEventKind k)
{
    switch (k) {
      case TimelineEventKind::Grow:
        return "grow";
      case TimelineEventKind::Shrink:
        return "shrink";
      case TimelineEventKind::DrainStall:
        return "drain-stall";
      case TimelineEventKind::Runahead:
        return "runahead";
    }
    return "?";
}

EventTimeline::EventTimeline(std::size_t capacity)
    : capacity_(capacity)
{
    mlpwin_assert(capacity > 0);
}

void
EventTimeline::push(const TimelineEvent &e)
{
    mlpwin_assert(e.begin <= e.end);
    if (events_.size() >= capacity_) {
        events_.pop_front();
        ++dropped_;
    }
    events_.push_back(e);
}

void
EventTimeline::recordResize(Cycle begin, Cycle end, unsigned from,
                            unsigned to)
{
    TimelineEvent e;
    e.kind = to > from ? TimelineEventKind::Grow
                       : TimelineEventKind::Shrink;
    e.begin = begin;
    e.end = end;
    e.fromLevel = from;
    e.toLevel = to;
    push(e);
}

void
EventTimeline::beginDrainStall(Cycle now)
{
    if (drainOpen_)
        return;
    drainOpen_ = true;
    drainBegin_ = now;
}

void
EventTimeline::endDrainStall(Cycle now)
{
    if (!drainOpen_)
        return;
    drainOpen_ = false;
    TimelineEvent e;
    e.kind = TimelineEventKind::DrainStall;
    e.begin = drainBegin_;
    e.end = now;
    push(e);
}

void
EventTimeline::beginRunahead(Cycle now, std::uint64_t trigger_pc)
{
    if (raOpen_)
        return;
    raOpen_ = true;
    raBegin_ = now;
    raPc_ = trigger_pc;
}

void
EventTimeline::endRunahead(Cycle now, std::uint64_t misses)
{
    if (!raOpen_)
        return;
    raOpen_ = false;
    TimelineEvent e;
    e.kind = TimelineEventKind::Runahead;
    e.begin = raBegin_;
    e.end = now;
    e.triggerPc = raPc_;
    e.misses = misses;
    push(e);
}

void
EventTimeline::finish(Cycle now)
{
    endDrainStall(now);
    endRunahead(now, 0);
}

} // namespace mlpwin
