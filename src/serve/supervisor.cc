#include "serve/supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <memory>

#include <poll.h>
#include <unistd.h>

#include "common/logging.hh"
#include "exp/result_writer.hh"
#include "exp/thread_pool.hh"
#include "serve/worker_process.hh"

namespace mlpwin
{
namespace serve
{

namespace
{

using Clock = std::chrono::steady_clock;
using exp::JobOutcome;
using exp::JobState;

/** Per-worker-slot supervisor state; see supervisor.hh. */
struct Slot
{
    std::unique_ptr<WorkerProcess> proc;
    std::deque<std::size_t> queue;
    /** In-flight job index, or -1. */
    long long inflight = -1;
    /** Dispatch count sent with the in-flight job. */
    unsigned dispatchAttempt = 0;
    Clock::time_point lastBeat{};
    /** Consecutive crashes (reset by a delivered result). */
    unsigned crashes = 0;
    Clock::time_point respawnAt{};
    bool retired = false;
};

/** Mirror of the in-process executor's SimError classification. */
JobState
stateForError(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Timeout:
        return JobState::Timeout;
      case ErrorCode::Interrupted:
        return JobState::Skipped;
      default:
        return JobState::Failed;
    }
}

/** Synthesized dump for a job whose worker died (no sim state). */
std::string
workerDeathDump(const exp::ExperimentJob &job,
                const std::string &detail, unsigned dispatches)
{
    DiagnosticDump d;
    d.workload = job.workload;
    d.model = job.model.displayLabel();
    d.recentEvents.push_back(detail);
    d.recentEvents.push_back("job dispatched " +
                             std::to_string(dispatches) + " time(s)");
    return d.toJson();
}

} // namespace

std::string
defaultWorkerBin()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "mlpwin_worker";
    buf[n] = '\0';
    std::string self(buf);
    std::size_t slash = self.rfind('/');
    if (slash == std::string::npos)
        return "mlpwin_worker";
    return self.substr(0, slash + 1) + "mlpwin_worker";
}

Supervisor::Supervisor(SupervisorOptions opts) : opts_(std::move(opts))
{
}

void
Supervisor::execute(
    const exp::ExperimentSpec &spec,
    const std::vector<exp::ExperimentJob> &jobs,
    const std::vector<std::size_t> &pending,
    const std::function<void(std::size_t, exp::JobOutcome &&)>
        &settle)
{
    stats_ = SupervisorStats{};
    if (spec.executor)
        throw SimError(ErrorCode::InvalidArgument,
                       "the in-process executor test seam cannot "
                       "cross a process boundary; run without "
                       "isolation");
    if (pending.empty())
        return;

    // A worker dying with frames still in our pipe must not kill the
    // supervisor with SIGPIPE on the next dispatch.
    std::signal(SIGPIPE, SIG_IGN);

    SpawnOptions sopts;
    sopts.workerBin =
        opts_.workerBin.empty() ? defaultWorkerBin() : opts_.workerBin;
    sopts.inject = opts_.inject;
    sopts.heartbeatIntervalMs = opts_.heartbeatIntervalMs;

    unsigned n = opts_.workers ? opts_.workers
                               : exp::ThreadPool::resolveThreads(0);
    n = static_cast<unsigned>(std::min<std::size_t>(n,
                                                    pending.size()));
    n = std::max(1u, n);

    const auto hb_timeout = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(opts_.heartbeatTimeoutSeconds));

    std::vector<Slot> slots(n);
    std::deque<std::size_t> orphans;
    std::vector<unsigned> dispatches(jobs.size(), 0);
    std::size_t unsettled = pending.size();
    bool draining = false;
    bool aborted = false;

    // Round-robin initial shard; stealing rebalances from there.
    for (std::size_t i = 0; i < pending.size(); ++i)
        slots[i % n].queue.push_back(pending[i]);

    auto settleJob = [&](std::size_t idx, JobOutcome &&o) {
        settle(idx, std::move(o));
        --unsettled;
    };

    auto spawn = [&](Slot &s) {
        try {
            s.proc = std::make_unique<WorkerProcess>(sopts);
            ++stats_.spawns;
            s.lastBeat = Clock::now();
            return true;
        } catch (const SimError &e) {
            mlpwin_warn("worker spawn failed: %s",
                        e.message().c_str());
            return false;
        }
    };

    auto retire = [&](Slot &s) {
        s.retired = true;
        ++stats_.retiredSlots;
        mlpwin_warn("worker slot retired after %u consecutive "
                    "crashes; pool degraded to %u live slot(s)",
                    s.crashes,
                    static_cast<unsigned>(std::count_if(
                        slots.begin(), slots.end(),
                        [](const Slot &x) { return !x.retired; })));
    };

    /** Take the next job for `self`: own queue, orphans, then steal. */
    auto takeWork = [&](Slot &self) -> long long {
        if (draining)
            return -1;
        if (!self.queue.empty()) {
            std::size_t idx = self.queue.front();
            self.queue.pop_front();
            return static_cast<long long>(idx);
        }
        if (!orphans.empty()) {
            std::size_t idx = orphans.front();
            orphans.pop_front();
            return static_cast<long long>(idx);
        }
        Slot *victim = nullptr;
        for (Slot &s : slots)
            if (&s != &self &&
                (!victim || s.queue.size() > victim->queue.size()))
                victim = &s;
        if (victim && !victim->queue.empty()) {
            std::size_t idx = victim->queue.back();
            victim->queue.pop_back();
            ++stats_.steals;
            return static_cast<long long>(idx);
        }
        return -1;
    };

    // Declared before dispatch, defined after: a dispatch can
    // discover a broken pipe and must hand the slot to handleDeath.
    std::function<void(Slot &, ErrorCode, std::string)> handleDeath;

    auto dispatch = [&](Slot &s) {
        while (s.proc && s.inflight < 0) {
            long long idx = takeWork(s);
            if (idx < 0)
                return;
            unsigned attempt = ++dispatches[idx];
            s.inflight = idx;
            s.dispatchAttempt = attempt;
            s.lastBeat = Clock::now();
            if (!s.proc->sendFrame(
                    jobToJson(spec, jobs[idx], attempt))) {
                handleDeath(s, ErrorCode::WorkerCrash,
                            "job dispatch failed (broken pipe)");
                return;
            }
        }
    };

    handleDeath = [&](Slot &s, ErrorCode code, std::string how) {
        ++stats_.workerDeaths;
        s.proc->kill(SIGKILL);
        int status = s.proc->reap();
        std::string detail = how.empty()
                                 ? WorkerProcess::describeStatus(status)
                                 : how + "; " +
                                       WorkerProcess::describeStatus(
                                           status);

        if (s.inflight >= 0) {
            std::size_t idx = static_cast<std::size_t>(s.inflight);
            s.inflight = -1;
            if (dispatches[idx] < opts_.maxDispatch && !draining) {
                // The crash may have been the worker's fault, not
                // the job's: try again (front of the orphan queue,
                // so it re-runs promptly).
                ++stats_.redispatches;
                orphans.push_front(idx);
            } else {
                JobOutcome o;
                o.state = stateForError(code);
                o.error = code;
                o.attempts = dispatches[idx];
                if (dispatches[idx] >= opts_.maxDispatch &&
                    opts_.maxDispatch > 1) {
                    ++stats_.quarantined;
                    o.errorDetail =
                        "poison job quarantined after " +
                        std::to_string(dispatches[idx]) +
                        " dispatches: " + detail;
                } else {
                    o.errorDetail = detail;
                }
                o.dumpJson = workerDeathDump(jobs[idx], detail,
                                             dispatches[idx]);
                settleJob(idx, std::move(o));
            }
        }
        // The rest of the dead worker's queue is unaffected work.
        while (!s.queue.empty()) {
            orphans.push_back(s.queue.front());
            s.queue.pop_front();
        }
        s.proc.reset();
        ++s.crashes;
        if (s.crashes >= opts_.maxRespawns) {
            retire(s);
        } else {
            s.respawnAt =
                Clock::now() +
                std::chrono::milliseconds(
                    opts_.respawnBackoffMs
                    << (s.crashes > 0 ? s.crashes - 1 : 0));
        }
        mlpwin_warn("[%s] %s", errorCodeName(code), detail.c_str());
    };

    /** Drain one readable worker pipe; false once the slot is dead. */
    auto drainFd = [&](Slot &s) {
        char buf[65536];
        for (;;) {
            ssize_t r = ::read(s.proc->readFd(), buf, sizeof(buf));
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                return; // EAGAIN: drained for now.
            }
            if (r == 0) {
                // EOF. A worker must not exit while the batch still
                // runs; classify by how it left the stream.
                handleDeath(s, ErrorCode::WorkerCrash,
                            s.proc->frames().midFrame()
                                ? "torn result stream (EOF "
                                  "mid-frame)"
                                : "");
                return;
            }
            s.proc->frames().feed(buf, static_cast<std::size_t>(r));
            std::string payload;
            try {
                while (s.proc->frames().next(payload)) {
                    WorkerMessage m = parseWorkerMessage(payload);
                    s.lastBeat = Clock::now();
                    switch (m.kind) {
                      case WorkerMessage::Kind::Hello:
                      case WorkerMessage::Kind::Heartbeat:
                        break;
                      case WorkerMessage::Kind::Result: {
                        if (s.inflight < 0)
                            throw SimError(ErrorCode::WorkerCrash,
                                           "result frame with no "
                                           "job in flight");
                        JobOutcome o;
                        o.state = JobState::Ok;
                        o.result = exp::resultFromJson(m.resultJson);
                        o.attempts =
                            (s.dispatchAttempt - 1) + m.attempts;
                        o.wallSeconds = m.wallSeconds;
                        std::size_t idx =
                            static_cast<std::size_t>(s.inflight);
                        s.inflight = -1;
                        s.crashes = 0;
                        settleJob(idx, std::move(o));
                        break;
                      }
                      case WorkerMessage::Kind::Error: {
                        if (s.inflight < 0)
                            throw SimError(ErrorCode::WorkerCrash,
                                           "error frame with no "
                                           "job in flight");
                        JobOutcome o;
                        o.state = stateForError(m.error);
                        o.error = m.error;
                        o.errorDetail = m.detail;
                        o.dumpJson = m.dumpJson;
                        o.attempts =
                            (s.dispatchAttempt - 1) + m.attempts;
                        o.wallSeconds = m.wallSeconds;
                        std::size_t idx =
                            static_cast<std::size_t>(s.inflight);
                        s.inflight = -1;
                        s.crashes = 0;
                        settleJob(idx, std::move(o));
                        break;
                      }
                    }
                }
            } catch (const std::exception &e) {
                handleDeath(s, ErrorCode::WorkerCrash, e.what());
                return;
            }
            if (!s.proc)
                return;
        }
    };

    for (Slot &s : slots) {
        if (!spawn(s)) {
            s.crashes = opts_.maxRespawns;
            retire(s);
            while (!s.queue.empty()) {
                orphans.push_back(s.queue.front());
                s.queue.pop_front();
            }
        }
    }

    while (unsettled > 0) {
        auto now = Clock::now();

        // --- cancellation / abort --------------------------------
        if (!draining && spec.cancelRequested &&
            spec.cancelRequested()) {
            draining = true;
            auto skipQueued = [&](std::deque<std::size_t> &q) {
                while (!q.empty()) {
                    JobOutcome o;
                    o.state = JobState::Skipped;
                    o.error = ErrorCode::Interrupted;
                    o.errorDetail = "cancelled before start";
                    settleJob(q.front(), std::move(o));
                    q.pop_front();
                }
            };
            for (Slot &s : slots)
                skipQueued(s.queue);
            skipQueued(orphans);
        }
        if (!aborted && spec.abortFlag && spec.abortFlag->load()) {
            aborted = true;
            for (Slot &s : slots)
                if (s.proc && s.inflight >= 0)
                    s.proc->kill(SIGTERM);
        }
        if (unsettled == 0)
            break;

        // --- respawns / pool exhaustion --------------------------
        std::size_t inflight_count = 0;
        for (Slot &s : slots)
            if (s.inflight >= 0)
                ++inflight_count;
        bool work_waiting = unsettled > inflight_count;
        for (Slot &s : slots) {
            if (s.retired || s.proc || !work_waiting)
                continue;
            if (now < s.respawnAt)
                continue;
            ++stats_.respawns;
            if (!spawn(s)) {
                ++s.crashes;
                if (s.crashes >= opts_.maxRespawns)
                    retire(s);
                else
                    s.respawnAt =
                        now + std::chrono::milliseconds(
                                  opts_.respawnBackoffMs
                                  << (s.crashes - 1));
            }
        }
        if (std::all_of(slots.begin(), slots.end(),
                        [](const Slot &s) { return s.retired; })) {
            // Every slot is gone; fail what's left rather than hang.
            auto failQueued = [&](std::deque<std::size_t> &q) {
                while (!q.empty()) {
                    std::size_t idx = q.front();
                    q.pop_front();
                    JobOutcome o;
                    o.state = JobState::Failed;
                    o.error = ErrorCode::WorkerCrash;
                    o.attempts = dispatches[idx];
                    o.errorDetail =
                        "worker pool exhausted (all " +
                        std::to_string(n) + " slot(s) retired)";
                    settleJob(idx, std::move(o));
                }
            };
            for (Slot &s : slots)
                failQueued(s.queue);
            failQueued(orphans);
            break;
        }

        // --- dispatch --------------------------------------------
        for (Slot &s : slots)
            if (s.proc && s.inflight < 0)
                dispatch(s);
        if (unsettled == 0)
            break;

        // --- wait for events -------------------------------------
        std::vector<pollfd> fds;
        std::vector<Slot *> fd_slots;
        for (Slot &s : slots) {
            if (!s.proc)
                continue;
            fds.push_back({s.proc->readFd(), POLLIN, 0});
            fd_slots.push_back(&s);
        }
        int timeout_ms = 200; // cancel/abort poll ceiling
        now = Clock::now();
        for (Slot &s : slots) {
            Clock::time_point deadline{};
            if (s.proc && s.inflight >= 0)
                deadline = s.lastBeat + hb_timeout;
            else if (!s.retired && !s.proc)
                deadline = s.respawnAt;
            else
                continue;
            auto ms = std::chrono::duration_cast<
                          std::chrono::milliseconds>(deadline - now)
                          .count();
            timeout_ms = static_cast<int>(std::clamp<long long>(
                ms, 0, timeout_ms));
        }
        ::poll(fds.data(), fds.size(), timeout_ms);
        for (std::size_t i = 0; i < fds.size(); ++i)
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
                if (fd_slots[i]->proc)
                    drainFd(*fd_slots[i]);

        // --- heartbeat deadlines ---------------------------------
        now = Clock::now();
        for (Slot &s : slots) {
            if (!s.proc || s.inflight < 0)
                continue;
            if (now - s.lastBeat > hb_timeout) {
                handleDeath(
                    s, ErrorCode::WorkerUnresponsive,
                    "heartbeat missed for " +
                        std::to_string(
                            std::chrono::duration_cast<
                                std::chrono::milliseconds>(
                                now - s.lastBeat)
                                .count()) +
                        " ms; killed");
            }
        }
    }

    // Shutdown: EOF is the request; workers exit after their current
    // frame. Give them a moment, then force.
    for (Slot &s : slots)
        if (s.proc)
            s.proc->closeIn();
    for (Slot &s : slots)
        s.proc.reset(); // dtor reaps (SIGKILL if still running)
}

} // namespace serve
} // namespace mlpwin
