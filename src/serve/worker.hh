/**
 * @file
 * The isolated batch worker's main loop (the mlpwin_worker tool is a
 * thin argv wrapper around workerMain).
 *
 * A worker reads length-prefixed job frames from `inFd`, executes
 * each with exp::runJob — the same execution path the in-process
 * thread executor uses, so results are bit-identical — and streams a
 * result or error frame back on `outFd`. While a job runs, a
 * heartbeat thread emits a beat every heartbeatIntervalMs so the
 * supervisor can tell "slow simulation" from "wedged in a way even
 * the in-sim watchdog cannot catch" (e.g. stuck in a syscall or a
 * runaway loop outside the simulator).
 *
 * Signal semantics:
 *  - SIGINT is ignored: a terminal ^C reaches the whole foreground
 *    process group, and drain semantics (finish the current job,
 *    checkpoint it, then stop) require that only the supervisor act
 *    on it.
 *  - SIGTERM requests a cooperative abort: the in-flight simulation
 *    stops at its next watchdog poll and reports Interrupted. The
 *    supervisor sends it when the batch is hard-aborted (second ^C).
 *
 * Fault injection (see fault_inject.hh) is applied here, on job
 * receipt, keyed by (kind, job index, dispatch attempt).
 */

#ifndef MLPWIN_SERVE_WORKER_HH
#define MLPWIN_SERVE_WORKER_HH

#include "serve/fault_inject.hh"

namespace mlpwin
{
namespace serve
{

struct WorkerOptions
{
    int inFd = 0;
    int outFd = 1;
    unsigned heartbeatIntervalMs = 200;
    FaultSpec faults;
};

/**
 * Run the worker loop until EOF on inFd (the supervisor closing its
 * end is the shutdown request).
 *
 * @return Process exit code: 0 on a clean shutdown, 1 on a protocol
 *         or write error (supervisor gone).
 */
int workerMain(const WorkerOptions &opts);

} // namespace serve
} // namespace mlpwin

#endif // MLPWIN_SERVE_WORKER_HH
