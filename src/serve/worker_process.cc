#include "serve/worker_process.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

namespace mlpwin
{
namespace serve
{

namespace
{

[[noreturn]] void
childExec(const SpawnOptions &opts, int in_fd, int out_fd)
{
    // Move the pipe ends onto the fixed protocol fds. dup2 clears
    // CLOEXEC on the duplicate; if a source already sits on its
    // target, clear the flag explicitly instead. Shift a source out
    // of the way first if it occupies the *other* target.
    if (in_fd == kWorkerOutFd)
        in_fd = ::fcntl(in_fd, F_DUPFD, kWorkerOutFd + 1);
    if (out_fd == kWorkerInFd)
        out_fd = ::fcntl(out_fd, F_DUPFD, kWorkerOutFd + 1);
    if (in_fd == kWorkerInFd)
        ::fcntl(in_fd, F_SETFD, 0);
    else
        ::dup2(in_fd, kWorkerInFd);
    if (out_fd == kWorkerOutFd)
        ::fcntl(out_fd, F_SETFD, 0);
    else
        ::dup2(out_fd, kWorkerOutFd);

    std::string hb = std::to_string(opts.heartbeatIntervalMs);
    std::vector<const char *> argv = {
        opts.workerBin.c_str(),
        "--in-fd",  "3",
        "--out-fd", "4",
        "--hb-interval", hb.c_str(),
    };
    if (!opts.inject.empty()) {
        argv.push_back("--inject");
        argv.push_back(opts.inject.c_str());
    }
    argv.push_back(nullptr);
    ::execv(opts.workerBin.c_str(),
            const_cast<char *const *>(argv.data()));
    // Exec failed; 127 mirrors the shell convention and shows up in
    // the supervisor's death classification.
    ::_exit(127);
}

} // namespace

WorkerProcess::WorkerProcess(const SpawnOptions &opts)
{
    int to_child[2];   // supervisor writes -> worker reads
    int from_child[2]; // worker writes -> supervisor reads
    if (::pipe2(to_child, O_CLOEXEC) != 0)
        throw SimError(ErrorCode::Internal,
                       std::string("pipe2: ") + std::strerror(errno));
    if (::pipe2(from_child, O_CLOEXEC) != 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        throw SimError(ErrorCode::Internal,
                       std::string("pipe2: ") + std::strerror(errno));
    }

    pid_ = ::fork();
    if (pid_ < 0) {
        for (int fd : {to_child[0], to_child[1], from_child[0],
                       from_child[1]})
            ::close(fd);
        throw SimError(ErrorCode::Internal,
                       std::string("fork: ") + std::strerror(errno));
    }
    if (pid_ == 0)
        childExec(opts, to_child[0], from_child[1]);

    ::close(to_child[0]);
    ::close(from_child[1]);
    in_ = to_child[1];
    out_ = from_child[0];
    // The poll loop drains reads without blocking.
    ::fcntl(out_, F_SETFL,
            ::fcntl(out_, F_GETFL, 0) | O_NONBLOCK);
}

WorkerProcess::~WorkerProcess()
{
    closeIn();
    if (out_ >= 0) {
        ::close(out_);
        out_ = -1;
    }
    if (!reaped_) {
        kill(SIGKILL);
        reap();
    }
}

bool
WorkerProcess::sendFrame(const std::string &payload)
{
    if (in_ < 0)
        return false;
    return writeAll(in_, frameEncode(payload));
}

void
WorkerProcess::closeIn()
{
    if (in_ >= 0) {
        ::close(in_);
        in_ = -1;
    }
}

void
WorkerProcess::kill(int sig)
{
    if (!reaped_ && pid_ > 0)
        ::kill(pid_, sig);
}

int
WorkerProcess::reap()
{
    if (reaped_)
        return status_;
    while (::waitpid(pid_, &status_, 0) < 0) {
        if (errno != EINTR) {
            status_ = 0;
            break;
        }
    }
    reaped_ = true;
    return status_;
}

std::string
WorkerProcess::describeStatus(int status)
{
    if (WIFEXITED(status)) {
        int code = WEXITSTATUS(status);
        if (code == 0)
            return "worker exited cleanly";
        return "worker exited with status " + std::to_string(code);
    }
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        const char *name = ::strsignal(sig);
        return "worker killed by signal " + std::to_string(sig) +
               " (" + (name ? name : "?") + ")";
    }
    return "worker died (status " + std::to_string(status) + ")";
}

} // namespace serve
} // namespace mlpwin
