/**
 * @file
 * Wire protocol between the batch supervisor and its isolated worker
 * processes (and the framing shared with the mlpwind daemon tests).
 *
 * Framing: every message is one length-prefixed JSON document,
 *
 *     <decimal payload byte count> '\n' <payload bytes> '\n'
 *
 * chosen over bare JSONL so the receiver can tell a *torn* message (a
 * worker killed mid-write) from a complete one without trusting the
 * payload to be well-formed: EOF with bytes still buffered, a length
 * prefix that is not a number, or a missing terminator all classify
 * the stream as torn, and the supervisor records the worker death as
 * ErrorCode::WorkerCrash instead of consuming a half-written result.
 *
 * Message schemas (all single-line JSON objects):
 *
 *  supervisor -> worker:
 *    {"type":"job", "index":N, "attempt":K, "workload":..., model and
 *     spec fields, "cfg":{wire subset of SimConfig}}
 *
 *  worker -> supervisor:
 *    {"type":"hello","pid":N}
 *    {"type":"hb","job":N}
 *    {"type":"result","index":N,"attempts":K,"wallSeconds":S,
 *     "result":{...}}          // "result" is by construction LAST
 *    {"type":"error","index":N,"attempts":K,"wallSeconds":S,
 *     "error":"code","detail":"...","dump":{...}}   // "dump" LAST
 *
 * The result/dump objects are sliced out of the line textually (they
 * are the final field) and re-parsed with resultFromJson, so a result
 * that crossed the process boundary is bit-identical to one computed
 * in-process — the same %.17g round-trip guarantee the resume
 * checkpoints rely on.
 *
 * The config carried by a job frame is the subset of SimConfig the
 * batch tools can set (model/level, warm-up, sampling, lockstep
 * check, instruction/cycle budgets, watchdog, SMT, and the
 * debugStallCommitAt test hook). A spec `configure` hook runs in the
 * supervisor before serialization, so hooks that touch wire fields
 * work under isolation; hooks touching anything else are in-process
 * only (documented in EXPERIMENTS.md).
 */

#ifndef MLPWIN_SERVE_PROTOCOL_HH
#define MLPWIN_SERVE_PROTOCOL_HH

#include <cstddef>
#include <string>

#include "common/status.hh"
#include "exp/experiment.hh"
#include "sim/simulator.hh"

namespace mlpwin
{
namespace serve
{

/** Hard ceiling on one frame's payload (corrupt-length guard). */
constexpr std::size_t kMaxFramePayload = 64u << 20;

/** Wrap a payload in the length-prefixed framing. */
std::string frameEncode(const std::string &payload);

/**
 * Write all of `data` to `fd`, retrying short writes and EINTR.
 * @return false on a write error (e.g. EPIPE to a dead peer).
 */
bool writeAll(int fd, const std::string &data);

/**
 * Incremental frame decoder: feed() raw bytes as they arrive, next()
 * extracts complete frames. See the file comment for how torn and
 * malformed streams are detected.
 */
class FrameBuffer
{
  public:
    /** Buffer `n` raw bytes. */
    void feed(const char *data, std::size_t n);

    /**
     * Extract the next complete frame's payload.
     *
     * @return false when more bytes are needed.
     * @throws SimError{WorkerCrash} on a malformed stream (non-numeric
     *         or oversized length prefix, missing terminator).
     */
    bool next(std::string &payload);

    /**
     * True when bytes of an incomplete frame are buffered — at EOF
     * this means the peer died mid-write (a torn message).
     */
    bool midFrame() const { return !buf_.empty(); }

  private:
    std::string buf_;
};

// --- supervisor -> worker ----------------------------------------------

/**
 * Serialize one job assignment. `attempt` is the supervisor's
 * dispatch count for this job (1-based), echoed back in results and
 * used by the fault-injection matcher.
 */
std::string jobToJson(const exp::ExperimentSpec &spec,
                      const exp::ExperimentJob &job, unsigned attempt);

/**
 * Worker side: rebuild the job and the spec fields that matter to
 * execution (telemetry, arch-checkpoint dir, retry policy, timeout).
 *
 * @throws SimError{InvalidArgument} on a malformed or unknown-name
 *         frame.
 */
void jobFromJson(const std::string &json, exp::ExperimentSpec &spec,
                 exp::ExperimentJob &job, unsigned &attempt);

// --- worker -> supervisor ----------------------------------------------

std::string helloMessage();
std::string heartbeatMessage(std::size_t job_index);
std::string resultMessage(std::size_t index, unsigned attempts,
                          double wall_seconds, const SimResult &r);
std::string errorMessage(std::size_t index, unsigned attempts,
                         double wall_seconds, ErrorCode code,
                         const std::string &detail,
                         const std::string &dump_json);

/** A parsed worker->supervisor message. */
struct WorkerMessage
{
    enum class Kind
    {
        Hello,
        Heartbeat,
        Result,
        Error,
    };

    Kind kind = Kind::Hello;
    std::size_t index = 0; ///< Job index (Heartbeat/Result/Error).
    unsigned attempts = 0;
    double wallSeconds = 0.0;
    /** Result: the raw result JSON, sliced byte-exact. */
    std::string resultJson;
    /** Error: classification + detail + optional dump JSON. */
    ErrorCode error = ErrorCode::Internal;
    std::string detail;
    std::string dumpJson;
};

/** @throws SimError{WorkerCrash} on a malformed message. */
WorkerMessage parseWorkerMessage(const std::string &json);

} // namespace serve
} // namespace mlpwin

#endif // MLPWIN_SERVE_PROTOCOL_HH
