#include "serve/worker.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "common/logging.hh"
#include "exp/experiment.hh"
#include "sample/checkpoint.hh"
#include "serve/protocol.hh"

namespace mlpwin
{
namespace serve
{

namespace
{

/** SIGTERM = cooperative abort; wired to the sim's abort flag. */
std::atomic<bool> g_abort{false};

void
onSigterm(int)
{
    g_abort.store(true);
}

/**
 * Heartbeat emitter for one in-flight job. Writes on the shared out
 * fd under the caller's mutex; stops promptly when asked.
 */
class Heartbeat
{
  public:
    Heartbeat(int fd, std::mutex &write_mutex, std::size_t job,
              unsigned interval_ms, unsigned extra_delay_ms)
        : fd_(fd), writeMutex_(write_mutex), job_(job),
          intervalMs_(interval_ms + extra_delay_ms)
    {
        thread_ = std::thread([this] { run(); });
    }

    ~Heartbeat()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    void
    run()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stop_) {
            if (cv_.wait_for(lock,
                             std::chrono::milliseconds(intervalMs_),
                             [this] { return stop_; }))
                return;
            std::lock_guard<std::mutex> wl(writeMutex_);
            writeAll(fd_, frameEncode(heartbeatMessage(job_)));
        }
    }

    int fd_;
    std::mutex &writeMutex_;
    std::size_t job_;
    unsigned intervalMs_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

/** Apply a crash-class fault on job receipt. Does not return. */
[[noreturn]] void
crashNow(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Segv: {
        volatile int *p = nullptr;
        *p = 1; // NOLINT: the whole point
        break;
      }
      case FaultKind::Kill:
        ::raise(SIGKILL);
        break;
      case FaultKind::Abort:
        std::abort();
      default:
        break;
    }
    // SIGSEGV/SIGKILL delivery is not instant from the compiler's
    // point of view; make [[noreturn]] honest.
    for (;;)
        ::pause();
}

bool
readChunk(int fd, FrameBuffer &frames)
{
    char buf[4096];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF: supervisor closed our input.
        frames.feed(buf, static_cast<std::size_t>(n));
        return true;
    }
}

} // namespace

int
workerMain(const WorkerOptions &opts)
{
    // See worker.hh for the signal contract.
    std::signal(SIGINT, SIG_IGN);
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGTERM, onSigterm);

    std::mutex write_mutex;
    auto send = [&](const std::string &payload) {
        std::lock_guard<std::mutex> lock(write_mutex);
        return writeAll(opts.outFd, frameEncode(payload));
    };

    if (!send(helloMessage()))
        return 1;

    // Arch checkpoints are immutable per workload; cache them so a
    // worker executing many cells of one workload loads each once,
    // exactly like the in-process runner's preload map.
    std::map<std::string, ArchCheckpoint> arch_ckpts;

    FrameBuffer frames;
    std::string payload;
    for (;;) {
        try {
            if (!frames.next(payload)) {
                if (!readChunk(opts.inFd, frames))
                    return frames.midFrame() ? 1 : 0;
                continue;
            }
        } catch (const SimError &e) {
            mlpwin_warn("worker %d: %s", static_cast<int>(::getpid()),
                        e.message().c_str());
            return 1;
        }

        exp::ExperimentSpec spec;
        exp::ExperimentJob job;
        unsigned attempt = 1;
        try {
            jobFromJson(payload, spec, job, attempt);
        } catch (const SimError &e) {
            mlpwin_warn("worker %d: %s", static_cast<int>(::getpid()),
                        e.message().c_str());
            return 1;
        }

        // --- fault injection (see fault_inject.hh) -----------------
        if (const FaultClause *c = opts.faults.match(
                FaultKind::Segv, job.index, attempt))
            crashNow(c->kind);
        if (const FaultClause *c = opts.faults.match(
                FaultKind::Kill, job.index, attempt))
            crashNow(c->kind);
        if (const FaultClause *c = opts.faults.match(
                FaultKind::Abort, job.index, attempt))
            crashNow(c->kind);
        if (opts.faults.match(FaultKind::Hang, job.index, attempt)) {
            // Deliberately no heartbeat: the supervisor must notice
            // the missed deadline and SIGKILL us.
            for (;;)
                ::pause();
        }
        if (const FaultClause *c = opts.faults.match(
                FaultKind::Wedge, job.index, attempt))
            job.cfg.core.debugStallCommitAt = c->arg ? c->arg : 500;
        unsigned hb_delay = 0;
        if (const FaultClause *c = opts.faults.match(
                FaultKind::HbDelay, job.index, attempt))
            hb_delay = static_cast<unsigned>(c->arg);
        bool tear_result =
            opts.faults.match(FaultKind::Torn, job.index, attempt) !=
            nullptr;

        spec.abortFlag = &g_abort;

        const ArchCheckpoint *arch = nullptr;
        std::string message;
        {
            Heartbeat hb(opts.outFd, write_mutex, job.index,
                         opts.heartbeatIntervalMs, hb_delay);

            auto started = std::chrono::steady_clock::now();
            auto wall = [&] {
                return std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - started)
                    .count();
            };

            // Same transient-retry policy as the in-process
            // executor; the worker owns exactly one job, so blocking
            // through the backoff stalls nobody else.
            unsigned attempts = 0;
            for (;;) {
                ++attempts;
                try {
                    if (!spec.archCheckpointDir.empty() && !arch) {
                        auto it = arch_ckpts.find(job.workload);
                        if (it == arch_ckpts.end())
                            it = arch_ckpts
                                     .emplace(
                                         job.workload,
                                         ArchCheckpoint::loadFile(
                                             spec.archCheckpointDir +
                                             "/" + job.workload +
                                             ".ckpt"))
                                     .first;
                        arch = &it->second;
                    }
                    SimResult r = exp::runJob(spec, job, arch);
                    message = resultMessage(job.index, attempts,
                                            wall(), r);
                    break;
                } catch (const SimError &e) {
                    if (e.transient() &&
                        attempts < spec.maxAttempts &&
                        !g_abort.load()) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(
                                spec.retryBackoffMs * attempts));
                        continue;
                    }
                    message = errorMessage(
                        job.index, attempts, wall(), e.code(),
                        e.message(),
                        e.hasDump() ? e.dump().toJson() : "");
                    break;
                } catch (const std::exception &e) {
                    message = errorMessage(job.index, attempts,
                                           wall(),
                                           ErrorCode::Internal,
                                           e.what(), "");
                    break;
                }
            }
        } // heartbeat stops before the result is written

        if (tear_result) {
            std::string frame = frameEncode(message);
            std::lock_guard<std::mutex> lock(write_mutex);
            writeAll(opts.outFd, frame.substr(0, frame.size() / 2));
            ::_exit(1);
        }
        if (!send(message))
            return 1;
    }
}

} // namespace serve
} // namespace mlpwin
