/**
 * @file
 * Process-isolated batch execution: a Supervisor implements the
 * exp::JobExecutorBackend seam by sharding the pending jobs across N
 * forked worker processes (see worker_process.hh / worker.hh).
 *
 * Why processes: the in-process executor contains *recoverable*
 * failures (SimError, timeouts) per job, but a genuine crash — a
 * SIGSEGV in a buggy model, a stuck syscall, heap corruption — takes
 * the whole batch with it. Under the supervisor, any single job can
 * die arbitrarily and the batch still completes: the death is
 * classified onto the ErrorCode taxonomy, the victim's queue is
 * redistributed, and the worker slot is respawned.
 *
 * Scheduling: each slot owns a deque seeded round-robin; an idle
 * worker first drains its own queue, then the orphan queue left by
 * dead workers, then *steals* from the back of the longest sibling
 * queue — so one slow workload cannot strand jobs behind it.
 *
 * Failure handling:
 *  - A dead worker's in-flight job is re-dispatched (the crash may
 *    have been the worker's, not the job's) up to maxDispatch total
 *    dispatches; a job that keeps killing workers is quarantined as
 *    Failed/WorkerCrash with a synthesized DiagnosticDump naming the
 *    death, so one poison cell cannot grind the pool through
 *    endless respawns.
 *  - Death classification: signal / nonzero exit / torn result
 *    stream / protocol corruption -> WorkerCrash; a missed heartbeat
 *    deadline -> the supervisor SIGKILLs the worker and records
 *    WorkerUnresponsive.
 *  - A slot that crashes repeatedly respawns with exponential
 *    backoff and retires after maxRespawns consecutive crashes,
 *    degrading the pool; if every slot retires, the remaining jobs
 *    settle as Failed ("worker pool exhausted") instead of hanging.
 *
 * Cancellation mirrors the in-process executor: cancelRequested
 * drains (queued jobs settle Skipped, in-flight jobs finish and
 * checkpoint), and abortFlag forwards SIGTERM so in-flight
 * simulations cut short cooperatively.
 */

#ifndef MLPWIN_SERVE_SUPERVISOR_HH
#define MLPWIN_SERVE_SUPERVISOR_HH

#include <cstdint>
#include <string>

#include "exp/experiment.hh"

namespace mlpwin
{
namespace serve
{

struct SupervisorOptions
{
    /** Worker processes; 0 = one per hardware thread. */
    unsigned workers = 0;
    /** Worker binary; "" = defaultWorkerBin(). */
    std::string workerBin;
    /** Fault spec forwarded to every worker (tests/CI only). */
    std::string inject;
    unsigned heartbeatIntervalMs = 200;
    /**
     * SIGKILL a worker whose in-flight job has not beaten for this
     * long. Generous by default: a heartbeat comes from a dedicated
     * thread, so only a truly stuck process misses it.
     */
    double heartbeatTimeoutSeconds = 10.0;
    /** Total dispatches per job before quarantine. */
    unsigned maxDispatch = 3;
    /** Consecutive crashes before a worker slot retires. */
    unsigned maxRespawns = 3;
    /** Respawn backoff doubles from this base per consecutive crash. */
    unsigned respawnBackoffMs = 100;
};

/** Counters exposed for tests and the batch summary. */
struct SupervisorStats
{
    std::uint64_t spawns = 0;
    std::uint64_t workerDeaths = 0;
    /** Jobs re-queued after their worker died mid-flight. */
    std::uint64_t redispatches = 0;
    std::uint64_t steals = 0;
    std::uint64_t respawns = 0;
    std::uint64_t quarantined = 0;
    unsigned retiredSlots = 0;
};

/**
 * The mlpwin_worker binary expected next to the running executable
 * (/proc/self/exe), the layout the build tree and an installed
 * prefix both produce.
 */
std::string defaultWorkerBin();

/** See file comment. */
class Supervisor : public exp::JobExecutorBackend
{
  public:
    explicit Supervisor(SupervisorOptions opts);

    /**
     * @throws SimError{InvalidArgument} if the spec carries the
     *         in-process `executor` test seam (a std::function
     *         cannot cross a process boundary), or {Internal} if no
     *         worker can be spawned at all.
     */
    void execute(const exp::ExperimentSpec &spec,
                 const std::vector<exp::ExperimentJob> &jobs,
                 const std::vector<std::size_t> &pending,
                 const std::function<void(std::size_t,
                                          exp::JobOutcome &&)>
                     &settle) override;

    /** Counters from the most recent execute(). */
    const SupervisorStats &stats() const { return stats_; }

  private:
    SupervisorOptions opts_;
    SupervisorStats stats_;
};

} // namespace serve
} // namespace mlpwin

#endif // MLPWIN_SERVE_SUPERVISOR_HH
