#include "serve/fault_inject.hh"

#include <cstdlib>
#include <sstream>

namespace mlpwin
{
namespace serve
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Segv:
        return "segv";
      case FaultKind::Kill:
        return "kill";
      case FaultKind::Abort:
        return "abort";
      case FaultKind::Wedge:
        return "wedge";
      case FaultKind::Torn:
        return "torn";
      case FaultKind::Hang:
        return "hang";
      case FaultKind::HbDelay:
        return "hbdelay";
      case FaultKind::Bitflip:
        return "bitflip";
      case FaultKind::Trunc:
        return "trunc";
      case FaultKind::StaleSchema:
        return "staleschema";
    }
    return "?";
}

bool
faultKindTargetsCache(FaultKind kind)
{
    return kind == FaultKind::Bitflip || kind == FaultKind::Trunc ||
           kind == FaultKind::StaleSchema;
}

const FaultClause *
FaultSpec::match(FaultKind kind, std::uint64_t job,
                 unsigned attempt) const
{
    for (const FaultClause &c : clauses)
        if (c.kind == kind && c.matches(job, attempt))
            return &c;
    return nullptr;
}

std::string
FaultSpec::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < clauses.size(); ++i) {
        const FaultClause &c = clauses[i];
        if (i)
            os << ',';
        os << faultKindName(c.kind) << '@';
        if (c.anyJob)
            os << '*';
        else
            os << c.job;
        if (c.anyAttempt)
            os << "#*";
        else if (c.attempt != 1)
            os << '#' << c.attempt;
        if (c.arg)
            os << ':' << c.arg;
    }
    return os.str();
}

namespace
{

bool
parseKind(const std::string &name, FaultKind &out)
{
    for (FaultKind k :
         {FaultKind::Segv, FaultKind::Kill, FaultKind::Abort,
          FaultKind::Wedge, FaultKind::Torn, FaultKind::Hang,
          FaultKind::HbDelay, FaultKind::Bitflip, FaultKind::Trunc,
          FaultKind::StaleSchema}) {
        if (name == faultKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (*end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseClause(const std::string &text, FaultClause &out,
            std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = "clause \"" + text + "\": " + why;
        return false;
    };

    std::size_t at = text.find('@');
    if (at == std::string::npos)
        return fail("missing '@job'");
    if (!parseKind(text.substr(0, at), out.kind))
        return fail("unknown fault kind");

    std::string rest = text.substr(at + 1);
    // Strip :arg first (rightmost), then #attempt.
    if (std::size_t colon = rest.find(':');
        colon != std::string::npos) {
        if (!parseU64(rest.substr(colon + 1), out.arg))
            return fail("bad argument after ':'");
        rest = rest.substr(0, colon);
    }
    if (std::size_t hash = rest.find('#');
        hash != std::string::npos) {
        std::string a = rest.substr(hash + 1);
        if (a == "*") {
            out.anyAttempt = true;
        } else {
            std::uint64_t v = 0;
            if (!parseU64(a, v) || v == 0)
                return fail("bad attempt after '#'");
            out.attempt = static_cast<unsigned>(v);
        }
        rest = rest.substr(0, hash);
    }
    if (rest == "*") {
        out.anyJob = true;
    } else if (!parseU64(rest, out.job)) {
        return fail("bad job index");
    }
    return true;
}

} // namespace

bool
parseFaultSpec(const std::string &s, FaultSpec &out, std::string *err)
{
    FaultSpec spec;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        std::string clause = s.substr(pos, comma - pos);
        if (!clause.empty()) {
            FaultClause c;
            if (!parseClause(clause, c, err))
                return false;
            spec.clauses.push_back(c);
        }
        pos = comma + 1;
    }
    out = std::move(spec);
    return true;
}

} // namespace serve
} // namespace mlpwin
