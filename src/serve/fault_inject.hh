/**
 * @file
 * Deterministic fault injection for the process-isolation harness.
 *
 * A fault spec is a comma-separated list of clauses,
 *
 *     <kind>@<job>[#<attempt>][:<arg>]
 *
 * where <kind> is one of
 *
 *     segv     dereference null (SIGSEGV) on job receipt
 *     kill     raise(SIGKILL) on job receipt
 *     abort    std::abort() on job receipt
 *     wedge    stall commit at cycle <arg> (default 500) via the
 *              debugStallCommitAt hook, so the real watchdog fires
 *              and its DiagnosticDump streams back
 *     torn     write only half of the result frame, then _exit(1)
 *     hang     stop heartbeating and sleep (supervisor must classify
 *              WorkerUnresponsive and SIGKILL the worker)
 *     hbdelay  delay every heartbeat of this job by <arg> ms
 *
 * plus three cache-poisoning kinds applied host-side (by the batch
 * driver's onCacheStored hook, not by workers) right after the job's
 * result lands in the content-addressed result cache:
 *
 *     bitflip     flip one payload bit (checksum must catch it)
 *     trunc       truncate the entry mid-payload (torn write)
 *     staleschema rewrite the header's result-schema version
 *
 * <job> is the job's submission-order index, or '*' for any job.
 * <attempt> is the supervisor dispatch count (1-based) the clause
 * arms on; it defaults to 1 — so a default clause fires on the first
 * dispatch and the re-dispatched attempt succeeds — and '*' arms it
 * on every dispatch (the poison-job case that must end in
 * quarantine).
 *
 * Examples:
 *
 *     segv@3                SIGSEGV the worker on job 3's first try
 *     wedge@0:800,kill@2    wedge job 0 at cycle 800; SIGKILL job 2
 *     torn@1#*              tear job 1's result on EVERY dispatch
 *     hbdelay@*#1:2000      first try of every job beats 2s late
 *
 * Faults are applied by the worker (src/serve/worker.cc), keyed only
 * on (kind, job index, attempt) — fully deterministic, no randomness
 * — so a CI failure under injection reproduces exactly.
 */

#ifndef MLPWIN_SERVE_FAULT_INJECT_HH
#define MLPWIN_SERVE_FAULT_INJECT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mlpwin
{
namespace serve
{

enum class FaultKind
{
    Segv,
    Kill,
    Abort,
    Wedge,
    Torn,
    Hang,
    HbDelay,
    Bitflip,
    Trunc,
    StaleSchema,
};

/** True for the cache-poisoning kinds (bitflip/trunc/staleschema),
 *  which are applied host-side after a cache store rather than by
 *  worker processes. */
bool faultKindTargetsCache(FaultKind kind);

/** Printable kind name ("segv", "kill", ...). */
const char *faultKindName(FaultKind kind);

/** One parsed clause; see file comment for semantics. */
struct FaultClause
{
    FaultKind kind = FaultKind::Segv;
    bool anyJob = false;
    std::uint64_t job = 0;
    bool anyAttempt = false;
    unsigned attempt = 1;
    /** Wedge: stall cycle (0 = default 500). HbDelay: milliseconds. */
    std::uint64_t arg = 0;

    bool
    matches(std::uint64_t j, unsigned a) const
    {
        return (anyJob || job == j) && (anyAttempt || attempt == a);
    }
};

/** A whole parsed spec. */
struct FaultSpec
{
    std::vector<FaultClause> clauses;

    bool empty() const { return clauses.empty(); }

    /** First clause of `kind` armed for (job, attempt), or nullptr. */
    const FaultClause *match(FaultKind kind, std::uint64_t job,
                             unsigned attempt) const;

    /** Canonical text form (parse/print round-trips). */
    std::string toString() const;
};

/**
 * Parse the grammar above.
 *
 * @param err If non-null, receives a description of the first
 *        offending clause on failure.
 * @return false (out untouched) on a malformed spec. The empty
 *         string parses to an empty spec.
 */
bool parseFaultSpec(const std::string &s, FaultSpec &out,
                    std::string *err = nullptr);

} // namespace serve
} // namespace mlpwin

#endif // MLPWIN_SERVE_FAULT_INJECT_HH
