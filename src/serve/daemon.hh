/**
 * @file
 * mlpwind: a long-lived experiment daemon. Clients submit experiment
 * specs as single-line JSON over a Unix-domain socket and get a JSONL
 * event stream back; results and resume checkpoints live in the
 * daemon's state directory, so a daemon killed mid-spec (even with
 * SIGKILL) resumes the interrupted spec from its checkpoint when the
 * client resubmits the same id after a restart — the final result
 * set is bit-identical to an uninterrupted run (PR 3's checkpoint
 * guarantee).
 *
 * Protocol (all single-line JSON; '\n'-terminated):
 *
 *  client -> daemon (one line, then shutdown(write)):
 *    {"id":"fig07", "workloads":["mcf","gcc"], "models":["base",
 *     "resizing"], "insts":300000, "warmup":200000, "threads":1,
 *     "fetch_policy":"icount", "partition":"static", "check":false,
 *     "sample_interval":0, "sample_period":0, "job_timeout":0}
 *    Only "id" and "workloads" are required ("workloads":"all" is
 *    accepted); everything else defaults to the mlpwin_batch
 *    defaults. "id" must match [A-Za-z0-9._-]+ (it names state
 *    files).
 *
 *  daemon -> client:
 *    {"type":"hello","version":1,"resumed":N,"jobs":N}
 *    {"type":"job","key":"mcf/resizing","state":"ok","error":"ok",
 *     "detail":"","attempts":1,"resumed":false,
 *     "cached":false}                             (one per job)
 *    {"type":"done","ok":N,"failed":N,"timeout":N,"skipped":N,
 *     "results":"<state-dir>/<id>.jsonl","exit":0}
 *    {"type":"error","detail":"..."}              (bad spec)
 *
 * A client that disconnects mid-spec does not tear down the run: the
 * daemon detects POLLHUP/EPIPE, stops streaming, and lets the spec
 * run to its durable checkpoint — resubmitting the id adopts every
 * finished cell. With a cache directory configured, repeated cells
 * across *different* spec ids are adopted from the content-addressed
 * result cache the same way ("cached":true in the job event).
 *
 * State files per spec id:
 *    <state-dir>/<id>.ckpt   resume checkpoint (JSONL, exp/checkpoint)
 *    <state-dir>/<id>.jsonl  final ordered results (rewritten when
 *                            the spec completes)
 */

#ifndef MLPWIN_SERVE_DAEMON_HH
#define MLPWIN_SERVE_DAEMON_HH

#include <atomic>
#include <ostream>
#include <string>

#include "exp/experiment.hh"

namespace mlpwin
{
namespace serve
{

struct DaemonOptions
{
    /** Unix-domain socket path (unlinked and rebound on start). */
    std::string socketPath;
    /** Directory for per-spec checkpoint/result files. */
    std::string stateDir = "mlpwind-state";
    /** Worker processes per spec; 0 = one per hardware thread. */
    unsigned workers = 0;
    /** Worker binary; "" = next to this executable. */
    std::string workerBin;
    double heartbeatTimeoutSeconds = 10.0;
    unsigned maxDispatch = 3;
    /**
     * Execute specs in isolated worker processes (the default and
     * the point of the daemon); false = in-process, for debugging.
     */
    bool isolate = true;
    /** Per-job progress on stderr. */
    bool progress = false;
    /**
     * If non-empty, every spec shares this content-addressed result
     * cache (see cache/result_cache.hh): cells already simulated by
     * any batch or spec are adopted instead of re-run.
     */
    std::string cacheDir;
};

/**
 * Accept loop: serve one client connection at a time until *stop
 * (poll granularity ~200 ms).
 *
 * @return 0 on a clean shutdown, 1 if the socket cannot be bound.
 */
int daemonMain(const DaemonOptions &opts,
               const std::atomic<bool> *stop);

/**
 * Client side: submit one spec line, stream every response line to
 * `out`.
 *
 * @return the "exit" field of the daemon's done line (0 all-ok,
 *         3 failures, 4 interrupted — mlpwin_batch's convention), 2
 *         if the daemon rejected the spec, or 1 if the socket
 *         cannot be reached.
 */
int submitSpec(const std::string &socket_path,
               const std::string &spec_json, std::ostream &out);

/**
 * Parse a client spec line (schema above) into an ExperimentSpec.
 *
 * @param err Receives a diagnostic on failure.
 * @return false on a malformed spec.
 */
bool parseDaemonSpec(const std::string &json, std::string &id,
                     exp::ExperimentSpec &spec, std::string &err);

} // namespace serve
} // namespace mlpwin

#endif // MLPWIN_SERVE_DAEMON_HH
