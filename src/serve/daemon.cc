#include "serve/daemon.hh"

#include <cerrno>
#include <cctype>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "exp/result_writer.hh"
#include "sample/sample_config.hh"
#include "serve/protocol.hh"
#include "serve/supervisor.hh"
#include "smt/smt_config.hh"
#include "workloads/suite.hh"

namespace mlpwin
{
namespace serve
{

namespace
{

bool
validId(const std::string &id)
{
    if (id.empty() || id.size() > 128)
        return false;
    for (char c : id)
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '.' && c != '_' && c != '-')
            return false;
    return true;
}

/** Read one '\n'-terminated line from a socket (blocking). */
bool
readLine(int fd, std::string &line)
{
    line.clear();
    char c;
    for (;;) {
        ssize_t n = ::read(fd, &c, 1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return !line.empty();
        if (c == '\n')
            return true;
        line += c;
        if (line.size() > (1u << 20))
            return false;
    }
}

int
bindSocket(const std::string &path)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
        mlpwin_warn("socket path too long: %s", path.c_str());
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    ::unlink(path.c_str()); // stale socket from a killed daemon
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 4) != 0) {
        mlpwin_warn("cannot bind %s: %s", path.c_str(),
                    std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

std::string
jobEventLine(const exp::ExperimentJob &job,
             const exp::JobOutcome &out)
{
    std::ostringstream os;
    os << "{\"type\":\"job\",\"key\":\""
       << jsonEscape(exp::jobKey(job)) << '"' << ",\"state\":\""
       << exp::jobStateName(out.state) << '"' << ",\"error\":\""
       << errorCodeName(out.error) << '"' << ",\"detail\":\""
       << jsonEscape(out.errorDetail) << '"'
       << ",\"attempts\":" << out.attempts << ",\"resumed\":"
       << (out.resumed ? "true" : "false") << ",\"cached\":"
       << (out.cacheHit ? "true" : "false") << '}';
    return os.str();
}

/** Serve one accepted connection; see daemon.hh for the protocol. */
void
serveConnection(const DaemonOptions &opts, int fd)
{
    // A client that disconnects mid-spec — POLLHUP seen before a
    // write, or EPIPE during one — must not tear down the run: the
    // spec keeps executing to its durable checkpoint, so a
    // resubmission of the same id adopts every finished cell. The
    // first failed send flips client_gone; later sends are no-ops.
    std::atomic<bool> client_gone{false};
    auto sendLine = [&](const std::string &line) {
        if (client_gone.load())
            return false;
        pollfd p{fd, 0, 0};
        bool hup = ::poll(&p, 1, 0) > 0 &&
                   (p.revents & (POLLERR | POLLHUP)) != 0;
        if (hup || !writeAll(fd, line + "\n")) {
            if (!client_gone.exchange(true))
                mlpwin_warn(
                    "client disconnected mid-spec (%s); the spec "
                    "continues to its durable checkpoint",
                    hup ? "POLLHUP" : "write failed");
            return false;
        }
        return true;
    };

    std::string line;
    if (!readLine(fd, line))
        return;

    std::string id, err;
    exp::ExperimentSpec spec;
    if (!parseDaemonSpec(line, id, spec, err)) {
        sendLine("{\"type\":\"error\",\"detail\":\"" +
                 jsonEscape(err) + "\"}");
        return;
    }

    spec.checkpointPath = opts.stateDir + "/" + id + ".ckpt";
    spec.resume = true;
    spec.cacheDir = opts.cacheDir;

    // Stream job events as they settle. The write lock matters only
    // for the in-process fallback (concurrent settles); under the
    // supervisor the control loop is single-threaded.
    std::mutex write_mutex;
    std::size_t resumed = 0;
    spec.onJobSettled = [&](const exp::ExperimentJob &job,
                            const exp::JobOutcome &out) {
        std::lock_guard<std::mutex> lock(write_mutex);
        if (out.resumed)
            ++resumed;
        sendLine(jobEventLine(job, out));
    };

    exp::BatchOutcome batch;
    try {
        sendLine("{\"type\":\"hello\",\"version\":1,\"jobs\":" +
                 std::to_string(spec.jobCount()) + "}");
        exp::ExperimentRunner runner(opts.workers, opts.progress);
        if (opts.isolate) {
            SupervisorOptions sup;
            sup.workers = opts.workers;
            sup.workerBin = opts.workerBin;
            sup.heartbeatTimeoutSeconds =
                opts.heartbeatTimeoutSeconds;
            sup.maxDispatch = opts.maxDispatch;
            Supervisor supervisor(sup);
            batch = runner.runAll(spec, &supervisor);
        } else {
            batch = runner.runAll(spec);
        }
    } catch (const SimError &e) {
        sendLine("{\"type\":\"error\",\"detail\":\"" +
                 jsonEscape(e.message()) + "\"}");
        return;
    }

    // Ordered final results for this spec id, rewritten whole so the
    // file is complete iff the spec completed.
    std::string results_path = opts.stateDir + "/" + id + ".jsonl";
    {
        std::ofstream os(results_path, std::ios::trunc);
        exp::ResultWriter writer(os,
                                 exp::ResultWriter::Format::Jsonl);
        for (const exp::JobOutcome &o : batch.outcomes)
            if (o.state == exp::JobState::Ok)
                writer.write(o.result);
    }

    std::size_t failed = batch.count(exp::JobState::Failed) +
                         batch.count(exp::JobState::Timeout);
    std::size_t skipped = batch.count(exp::JobState::Skipped);
    int exit_code = skipped ? 4 : (failed ? 3 : 0);
    std::ostringstream done;
    done << "{\"type\":\"done\",\"ok\":"
         << batch.count(exp::JobState::Ok)
         << ",\"resumed\":" << resumed
         << ",\"cached\":" << batch.cacheHits
         << ",\"failed\":" << failed
         << ",\"timeout\":" << batch.count(exp::JobState::Timeout)
         << ",\"skipped\":" << skipped << ",\"tornLines\":"
         << batch.tornCheckpointLines << ",\"results\":\""
         << jsonEscape(results_path) << "\",\"exit\":" << exit_code
         << '}';
    sendLine(done.str());
}

} // namespace

bool
parseDaemonSpec(const std::string &json, std::string &id,
                exp::ExperimentSpec &spec, std::string &err)
{
    JsonValue v;
    try {
        v = parseJson(json);
    } catch (const std::exception &e) {
        err = std::string("malformed spec JSON: ") + e.what();
        return false;
    }

    try {
        if (!v.hasField("id")) {
            err = "spec is missing \"id\"";
            return false;
        }
        id = v.field("id").asString();
        if (!validId(id)) {
            err = "bad id (want [A-Za-z0-9._-]+): " + id;
            return false;
        }

        spec = exp::ExperimentSpec{};
        // mlpwin_batch's defaults.
        spec.base.warmupInsts = kDefaultWarmupInsts;
        spec.base.functionalWarmup = true;
        spec.base.warmDataCaches = true;
        spec.base.maxInsts = 300000;

        if (!v.hasField("workloads")) {
            err = "spec is missing \"workloads\"";
            return false;
        }
        const JsonValue &w = v.field("workloads");
        if (w.kind == JsonValue::Kind::String) {
            const std::string &name = w.asString();
            bool mem_only = name == "mem";
            bool comp_only = name == "comp";
            if (name != "all" && !mem_only && !comp_only) {
                err = "workloads must be an array or one of "
                      "all/mem/comp";
                return false;
            }
            for (const WorkloadSpec &ws : spec2006Suite()) {
                if ((mem_only && !ws.memIntensive) ||
                    (comp_only && ws.memIntensive))
                    continue;
                spec.workloads.push_back(ws.name);
            }
        } else {
            for (const JsonValue &e : w.array) {
                for (const std::string &part :
                     splitWorkloadSpec(e.asString())) {
                    if (!tryFindWorkload(part)) {
                        err = "unknown workload: " + part;
                        return false;
                    }
                }
                spec.workloads.push_back(e.asString());
            }
        }
        if (spec.workloads.empty()) {
            err = "empty workload list";
            return false;
        }

        if (v.hasField("models")) {
            for (const JsonValue &e : v.field("models").array) {
                exp::ModelSpec ms;
                if (!exp::parseModelSpec(e.asString(), ms)) {
                    err = "unknown model: " + e.asString();
                    return false;
                }
                spec.models.push_back(ms);
            }
        }
        if (spec.models.empty())
            spec.models = {exp::ModelSpec{},
                           exp::ModelSpec{ModelKind::Resizing, 1, ""}};

        if (v.hasField("insts"))
            spec.base.maxInsts = v.field("insts").asU64();
        if (v.hasField("warmup"))
            spec.base.warmupInsts = v.field("warmup").asU64();
        if (v.hasField("check"))
            spec.base.lockstepCheck = v.field("check").asBool();
        if (v.hasField("threads"))
            spec.base.core.smt.nThreads = static_cast<unsigned>(
                v.field("threads").asU64());
        if (v.hasField("fetch_policy") &&
            !parseFetchPolicy(
                v.field("fetch_policy").asString().c_str(),
                spec.base.core.smt.fetchPolicy)) {
            err = "unknown fetch_policy";
            return false;
        }
        if (v.hasField("partition") &&
            !parsePartitionPolicy(
                v.field("partition").asString().c_str(),
                spec.base.core.smt.partitionPolicy)) {
            err = "unknown partition";
            return false;
        }
        if (v.hasField("sample_interval") &&
            v.field("sample_interval").asU64() > 0) {
            spec.base.sampling.enabled = true;
            spec.base.sampling.intervalInsts =
                v.field("sample_interval").asU64();
        }
        if (v.hasField("sample_period"))
            spec.base.sampling.periodInsts =
                v.field("sample_period").asU64();
        if (v.hasField("job_timeout"))
            spec.jobTimeoutSeconds =
                v.field("job_timeout").asDouble();
        return true;
    } catch (const std::exception &e) {
        err = std::string("bad spec field: ") + e.what();
        return false;
    }
}

int
daemonMain(const DaemonOptions &opts, const std::atomic<bool> *stop)
{
    std::signal(SIGPIPE, SIG_IGN);
    std::filesystem::create_directories(opts.stateDir);

    int listen_fd = bindSocket(opts.socketPath);
    if (listen_fd < 0)
        return 1;
    mlpwin_inform("mlpwind listening on %s (state in %s)",
                  opts.socketPath.c_str(), opts.stateDir.c_str());

    while (!stop || !stop->load()) {
        pollfd pfd{listen_fd, POLLIN, 0};
        int r = ::poll(&pfd, 1, 200);
        if (r <= 0)
            continue;
        int fd = ::accept4(listen_fd, nullptr, nullptr,
                           SOCK_CLOEXEC);
        if (fd < 0)
            continue;
        serveConnection(opts, fd);
        ::close(fd);
    }

    ::close(listen_fd);
    ::unlink(opts.socketPath.c_str());
    return 0;
}

int
submitSpec(const std::string &socket_path,
           const std::string &spec_json, std::ostream &out)
{
    std::signal(SIGPIPE, SIG_IGN);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return 1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return 1;
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        mlpwin_warn("cannot connect to %s: %s", socket_path.c_str(),
                    std::strerror(errno));
        ::close(fd);
        return 1;
    }
    if (!writeAll(fd, spec_json + "\n")) {
        ::close(fd);
        return 1;
    }
    ::shutdown(fd, SHUT_WR);

    int exit_code = 1;
    std::string line;
    while (readLine(fd, line)) {
        out << line << '\n';
        out.flush();
        try {
            JsonValue v = parseJson(line);
            const std::string &type = v.field("type").asString();
            if (type == "done")
                exit_code =
                    static_cast<int>(v.field("exit").asU64());
            else if (type == "error")
                exit_code = 2;
        } catch (const std::exception &) {
            // Keep streaming; the done line decides the exit code.
        }
    }
    ::close(fd);
    return exit_code;
}

} // namespace serve
} // namespace mlpwin
