#include "serve/protocol.hh"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <unistd.h>

#include "common/json.hh"
#include "exp/result_writer.hh"
#include "smt/smt_config.hh"

namespace mlpwin
{
namespace serve
{

std::string
frameEncode(const std::string &payload)
{
    std::string out = std::to_string(payload.size());
    out += '\n';
    out += payload;
    out += '\n';
    return out;
}

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void
FrameBuffer::feed(const char *data, std::size_t n)
{
    buf_.append(data, n);
}

bool
FrameBuffer::next(std::string &payload)
{
    std::size_t nl = buf_.find('\n');
    if (nl == std::string::npos) {
        // An implausibly long length prefix is corruption, not a
        // frame still in flight.
        if (buf_.size() > 32)
            throw SimError(ErrorCode::WorkerCrash,
                           "malformed frame: unterminated length "
                           "prefix");
        return false;
    }
    if (nl == 0)
        throw SimError(ErrorCode::WorkerCrash,
                       "malformed frame: empty length prefix");
    std::size_t len = 0;
    for (std::size_t i = 0; i < nl; ++i) {
        char c = buf_[i];
        if (c < '0' || c > '9')
            throw SimError(ErrorCode::WorkerCrash,
                           "malformed frame: non-numeric length "
                           "prefix");
        len = len * 10 + static_cast<std::size_t>(c - '0');
        if (len > kMaxFramePayload)
            throw SimError(ErrorCode::WorkerCrash,
                           "malformed frame: oversized payload "
                           "length");
    }
    // length '\n' payload '\n'
    if (buf_.size() < nl + 1 + len + 1)
        return false;
    if (buf_[nl + 1 + len] != '\n')
        throw SimError(ErrorCode::WorkerCrash,
                       "malformed frame: missing terminator");
    payload = buf_.substr(nl + 1, len);
    buf_.erase(0, nl + 1 + len + 1);
    return true;
}

// --- job serialization --------------------------------------------------

std::string
jobToJson(const exp::ExperimentSpec &spec,
          const exp::ExperimentJob &job, unsigned attempt)
{
    const SimConfig &c = job.cfg;
    std::ostringstream os;
    os << "{\"type\":\"job\""
       << ",\"index\":" << job.index << ",\"attempt\":" << attempt
       << ",\"workload\":\"" << jsonEscape(job.workload) << '"'
       << ",\"model\":\"" << modelName(job.model.model) << '"'
       << ",\"level\":" << job.model.level << ",\"label\":\""
       << jsonEscape(job.model.label) << '"'
       << ",\"iterations\":" << fmtU64(spec.iterations)
       << ",\"jobTimeoutSeconds\":" << fmtDouble(spec.jobTimeoutSeconds)
       << ",\"maxAttempts\":" << spec.maxAttempts
       << ",\"retryBackoffMs\":" << spec.retryBackoffMs
       << ",\"archCheckpointDir\":\""
       << jsonEscape(spec.archCheckpointDir) << '"'
       << ",\"telemetryDir\":\"" << jsonEscape(spec.telemetryDir)
       << '"' << ",\"telemetryInterval\":"
       << fmtU64(spec.telemetryInterval)
       << ",\"cfg\":{"
       << "\"model\":\"" << modelName(c.model) << '"'
       << ",\"fixedLevel\":" << c.fixedLevel
       << ",\"warmInstCaches\":" << (c.warmInstCaches ? "true" : "false")
       << ",\"warmDataCaches\":" << (c.warmDataCaches ? "true" : "false")
       << ",\"warmupInsts\":" << fmtU64(c.warmupInsts)
       << ",\"functionalWarmup\":"
       << (c.functionalWarmup ? "true" : "false")
       << ",\"lockstepCheck\":" << (c.lockstepCheck ? "true" : "false")
       << ",\"maxInsts\":" << fmtU64(c.maxInsts)
       << ",\"maxCycles\":" << fmtU64(c.maxCycles)
       << ",\"samplingEnabled\":"
       << (c.sampling.enabled ? "true" : "false")
       << ",\"sampleInterval\":" << fmtU64(c.sampling.intervalInsts)
       << ",\"samplePeriod\":" << fmtU64(c.sampling.periodInsts)
       << ",\"sampleDetailedWarmup\":"
       << fmtU64(c.sampling.detailedWarmupInsts)
       << ",\"watchdogEnabled\":"
       << (c.watchdog.enabled ? "true" : "false")
       << ",\"watchdogWindow\":" << fmtU64(c.watchdog.noCommitWindow)
       << ",\"watchdogInterval\":" << fmtU64(c.watchdog.checkInterval)
       << ",\"smtThreads\":" << c.core.smt.nThreads
       << ",\"fetchPolicy\":\""
       << fetchPolicyName(c.core.smt.fetchPolicy) << '"'
       << ",\"partitionPolicy\":\""
       << partitionPolicyName(c.core.smt.partitionPolicy) << '"'
       << ",\"stallCommitAt\":" << fmtU64(c.core.debugStallCommitAt)
       << ",\"vmEnabled\":" << (c.vm.enabled ? "true" : "false")
       << ",\"vmItlbEntries\":" << c.vm.itlb.entries
       << ",\"vmItlbAssoc\":" << c.vm.itlb.assoc
       << ",\"vmDtlbEntries\":" << c.vm.dtlb.entries
       << ",\"vmDtlbAssoc\":" << c.vm.dtlb.assoc
       << ",\"vmStlbEntries\":" << c.vm.stlb.entries
       << ",\"vmStlbAssoc\":" << c.vm.stlb.assoc
       << ",\"vmStlbLatency\":" << c.vm.stlb.hitLatency
       << ",\"vmWalkLevels\":" << c.vm.walkLevels
       << ",\"vmHugePages\":" << (c.vm.hugePages ? "true" : "false")
       << ",\"vmFragPermille\":" << c.vm.fragPermille
       << ",\"vmResizeOnWalk\":"
       << (c.vm.resizeOnWalk ? "true" : "false")
       << "}}";
    return os.str();
}

namespace
{

[[noreturn]] void
badJob(const std::string &why)
{
    throw SimError(ErrorCode::InvalidArgument,
                   "malformed job frame: " + why);
}

} // namespace

void
jobFromJson(const std::string &json, exp::ExperimentSpec &spec,
            exp::ExperimentJob &job, unsigned &attempt)
{
    JsonValue v;
    try {
        v = parseJson(json);
    } catch (const std::exception &e) {
        badJob(e.what());
    }
    if (!v.hasField("type") || v.field("type").asString() != "job")
        badJob("not a job message");

    job = exp::ExperimentJob{};
    spec = exp::ExperimentSpec{};

    job.index = v.field("index").asU64();
    attempt = static_cast<unsigned>(v.field("attempt").asU64());
    job.workload = v.field("workload").asString();

    exp::ModelSpec ms;
    if (!exp::parseModelSpec(v.field("model").asString(), ms))
        badJob("unknown model " + v.field("model").asString());
    ms.level = static_cast<unsigned>(v.field("level").asU64());
    ms.label = v.field("label").asString();
    job.model = ms;

    spec.iterations = v.field("iterations").asU64();
    spec.jobTimeoutSeconds = v.field("jobTimeoutSeconds").asDouble();
    spec.maxAttempts =
        static_cast<unsigned>(v.field("maxAttempts").asU64());
    spec.retryBackoffMs =
        static_cast<unsigned>(v.field("retryBackoffMs").asU64());
    spec.archCheckpointDir = v.field("archCheckpointDir").asString();
    spec.telemetryDir = v.field("telemetryDir").asString();
    spec.telemetryInterval = v.field("telemetryInterval").asU64();

    const JsonValue &cv = v.field("cfg");
    SimConfig c;
    exp::ModelSpec cm;
    if (!exp::parseModelSpec(cv.field("model").asString(), cm))
        badJob("unknown cfg model");
    c.model = cm.model;
    c.fixedLevel =
        static_cast<unsigned>(cv.field("fixedLevel").asU64());
    c.warmInstCaches = cv.field("warmInstCaches").asBool();
    c.warmDataCaches = cv.field("warmDataCaches").asBool();
    c.warmupInsts = cv.field("warmupInsts").asU64();
    c.functionalWarmup = cv.field("functionalWarmup").asBool();
    c.lockstepCheck = cv.field("lockstepCheck").asBool();
    c.maxInsts = cv.field("maxInsts").asU64();
    c.maxCycles = cv.field("maxCycles").asU64();
    c.sampling.enabled = cv.field("samplingEnabled").asBool();
    c.sampling.intervalInsts = cv.field("sampleInterval").asU64();
    c.sampling.periodInsts = cv.field("samplePeriod").asU64();
    c.sampling.detailedWarmupInsts =
        cv.field("sampleDetailedWarmup").asU64();
    c.watchdog.enabled = cv.field("watchdogEnabled").asBool();
    c.watchdog.noCommitWindow = cv.field("watchdogWindow").asU64();
    c.watchdog.checkInterval = cv.field("watchdogInterval").asU64();
    c.core.smt.nThreads =
        static_cast<unsigned>(cv.field("smtThreads").asU64());
    if (!parseFetchPolicy(cv.field("fetchPolicy").asString().c_str(),
                          c.core.smt.fetchPolicy))
        badJob("unknown fetch policy");
    if (!parsePartitionPolicy(
            cv.field("partitionPolicy").asString().c_str(),
            c.core.smt.partitionPolicy))
        badJob("unknown partition policy");
    c.core.debugStallCommitAt = cv.field("stallCommitAt").asU64();
    // vm fields postdate the original frame schema; a frame from an
    // older peer loads with paging off (the old behaviour).
    if (cv.hasField("vmEnabled")) {
        auto u = [&cv](const char *k) {
            return static_cast<unsigned>(cv.field(k).asU64());
        };
        c.vm.enabled = cv.field("vmEnabled").asBool();
        c.vm.itlb.entries = u("vmItlbEntries");
        c.vm.itlb.assoc = u("vmItlbAssoc");
        c.vm.dtlb.entries = u("vmDtlbEntries");
        c.vm.dtlb.assoc = u("vmDtlbAssoc");
        c.vm.stlb.entries = u("vmStlbEntries");
        c.vm.stlb.assoc = u("vmStlbAssoc");
        c.vm.stlb.hitLatency = u("vmStlbLatency");
        c.vm.walkLevels = u("vmWalkLevels");
        c.vm.hugePages = cv.field("vmHugePages").asBool();
        c.vm.fragPermille = u("vmFragPermille");
        c.vm.resizeOnWalk = cv.field("vmResizeOnWalk").asBool();
    }
    job.cfg = c;

    // The worker runs exactly one job; the spec's matrix fields are
    // not used by runJob but keep jobCount() honest for debugging.
    spec.workloads = {job.workload};
    spec.models = {job.model};
}

// --- worker messages ----------------------------------------------------

std::string
helloMessage()
{
    return "{\"type\":\"hello\",\"pid\":" +
           std::to_string(::getpid()) + "}";
}

std::string
heartbeatMessage(std::size_t job_index)
{
    return "{\"type\":\"hb\",\"job\":" + std::to_string(job_index) +
           "}";
}

std::string
resultMessage(std::size_t index, unsigned attempts,
              double wall_seconds, const SimResult &r)
{
    std::ostringstream os;
    os << "{\"type\":\"result\",\"index\":" << index
       << ",\"attempts\":" << attempts
       << ",\"wallSeconds\":" << fmtDouble(wall_seconds)
       << ",\"result\":" << exp::resultToJson(r) << '}';
    return os.str();
}

std::string
errorMessage(std::size_t index, unsigned attempts, double wall_seconds,
             ErrorCode code, const std::string &detail,
             const std::string &dump_json)
{
    std::ostringstream os;
    os << "{\"type\":\"error\",\"index\":" << index
       << ",\"attempts\":" << attempts
       << ",\"wallSeconds\":" << fmtDouble(wall_seconds)
       << ",\"error\":\"" << errorCodeName(code) << '"'
       << ",\"detail\":\"" << jsonEscape(detail) << '"';
    if (!dump_json.empty())
        os << ",\"dump\":" << dump_json;
    os << '}';
    return os.str();
}

WorkerMessage
parseWorkerMessage(const std::string &json)
{
    WorkerMessage m;
    JsonValue v;
    try {
        v = parseJson(json);
        const std::string &type = v.field("type").asString();
        if (type == "hello") {
            m.kind = WorkerMessage::Kind::Hello;
            return m;
        }
        if (type == "hb") {
            m.kind = WorkerMessage::Kind::Heartbeat;
            m.index = v.field("job").asU64();
            return m;
        }
        if (type == "result" || type == "error") {
            m.index = v.field("index").asU64();
            m.attempts =
                static_cast<unsigned>(v.field("attempts").asU64());
            m.wallSeconds = v.field("wallSeconds").asDouble();
        }
        if (type == "result") {
            m.kind = WorkerMessage::Kind::Result;
            // "result" is the last field: slice it byte-exact (see
            // file comment).
            const std::string marker = "\"result\":";
            std::size_t pos = json.find(marker);
            if (pos == std::string::npos)
                throw std::runtime_error("result message without "
                                         "result");
            m.resultJson =
                json.substr(pos + marker.size(),
                            json.size() - (pos + marker.size()) - 1);
            return m;
        }
        if (type == "error") {
            m.kind = WorkerMessage::Kind::Error;
            if (!parseErrorCode(v.field("error").asString(), m.error))
                m.error = ErrorCode::Internal;
            m.detail = v.field("detail").asString();
            if (v.hasField("dump")) {
                const std::string marker = "\"dump\":";
                std::size_t pos = json.find(marker);
                m.dumpJson = json.substr(
                    pos + marker.size(),
                    json.size() - (pos + marker.size()) - 1);
            }
            return m;
        }
        throw std::runtime_error("unknown message type " + type);
    } catch (const SimError &) {
        throw;
    } catch (const std::exception &e) {
        throw SimError(ErrorCode::WorkerCrash,
                       std::string("malformed worker message: ") +
                           e.what());
    }
}

} // namespace serve
} // namespace mlpwin
