/**
 * @file
 * Supervisor-side handle on one forked worker: spawn (fork/exec of
 * the mlpwin_worker binary with the protocol pipes dup'd onto fixed
 * fds 3/4, leaving stdout/stderr free for the simulator's own
 * logging), frame I/O, kill, and reap.
 */

#ifndef MLPWIN_SERVE_WORKER_PROCESS_HH
#define MLPWIN_SERVE_WORKER_PROCESS_HH

#include <string>

#include <sys/types.h>

#include "serve/protocol.hh"

namespace mlpwin
{
namespace serve
{

/** Fixed fds the worker binary is exec'd with. */
constexpr int kWorkerInFd = 3;
constexpr int kWorkerOutFd = 4;

struct SpawnOptions
{
    /** Path to the mlpwin_worker binary. */
    std::string workerBin;
    /** Fault spec forwarded verbatim via --inject ("" = none). */
    std::string inject;
    unsigned heartbeatIntervalMs = 200;
};

/** See file comment. */
class WorkerProcess
{
  public:
    /** @throws SimError{Internal} if fork or the pipes fail. */
    explicit WorkerProcess(const SpawnOptions &opts);

    /** Kills (SIGKILL) and reaps if still alive. */
    ~WorkerProcess();

    WorkerProcess(const WorkerProcess &) = delete;
    WorkerProcess &operator=(const WorkerProcess &) = delete;

    pid_t pid() const { return pid_; }

    /** Supervisor's read end (non-blocking) for the poll loop. */
    int readFd() const { return out_; }

    /** Send one framed payload. @return false on a broken pipe. */
    bool sendFrame(const std::string &payload);

    /** Half-close: EOF on the worker's input = shutdown request. */
    void closeIn();

    void kill(int sig);

    /**
     * Blocking waitpid (prompt after a SIGKILL); caches the status.
     * @return the raw waitpid status.
     */
    int reap();

    bool reaped() const { return reaped_; }

    /** Human description of a waitpid status. */
    static std::string describeStatus(int status);

    FrameBuffer &frames() { return frames_; }

  private:
    pid_t pid_ = -1;
    int in_ = -1;  ///< Supervisor writes job frames here.
    int out_ = -1; ///< Supervisor reads worker frames here.
    bool reaped_ = false;
    int status_ = 0;
    FrameBuffer frames_;
};

} // namespace serve
} // namespace mlpwin

#endif // MLPWIN_SERVE_WORKER_PROCESS_HH
