#include "energy_model.hh"

namespace mlpwin
{

EnergyBreakdown
EnergyModel::evaluate(const EnergyInputs &in) const
{
    const EnergyParams &p = params_;
    EnergyBreakdown e;

    e.frontend = p.fetchPerInst * static_cast<double>(in.fetched) +
                 p.dispatchPerInst * static_cast<double>(in.dispatched);

    double avg_iq = in.cycles
        ? static_cast<double>(in.iqSizeCycles) /
              static_cast<double>(in.cycles)
        : 0.0;
    double avg_lsq = in.cycles
        ? static_cast<double>(in.lsqSizeCycles) /
              static_cast<double>(in.cycles)
        : 0.0;

    // Wakeup broadcasts sweep every active IQ entry; LSQ searches
    // sweep every active LSQ entry; ROB is accessed at dispatch
    // (allocate) and commit (retire/register read).
    e.window =
        p.iqWakeupPerEntry * static_cast<double>(in.issued) * avg_iq +
        p.lsqSearchPerEntry *
            static_cast<double>(in.loads + in.stores) * avg_lsq +
        p.robAccess * static_cast<double>(in.dispatched + in.committed);

    e.execute = p.aluPerIssue * static_cast<double>(in.issued);

    e.caches =
        p.l1Access * static_cast<double>(in.l1iAccesses +
                                         in.l1dAccesses) +
        p.l2Access * static_cast<double>(in.l2Accesses);

    e.dram = p.dramAccess * static_cast<double>(in.dramAccesses);

    e.leakage =
        p.iqLeakPerEntryCycle * static_cast<double>(in.iqSizeCycles) +
        p.robLeakPerEntryCycle *
            static_cast<double>(in.robSizeCycles) +
        p.lsqLeakPerEntryCycle *
            static_cast<double>(in.lsqSizeCycles) +
        p.staticPerCycle * static_cast<double>(in.cycles);

    return e;
}

} // namespace mlpwin
