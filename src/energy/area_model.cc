#include "area_model.hh"

#include <cmath>

namespace mlpwin
{

double
AreaModel::pollackSpeedup(double extra_area, double base_area)
{
    return std::sqrt(1.0 + extra_area / base_area) - 1.0;
}

} // namespace mlpwin
