/**
 * @file
 * Analytical area model standing in for McPAT/CACTI (paper Section
 * 5.5, Table 4). Per-entry area constants are calibrated so that the
 * base core is ~25 mm^2, the 2MB 4-way L2 is ~8.6 mm^2, and enlarging
 * the window to level 3 adds ~1.6 mm^2 — the paper's reported values
 * at 32nm.
 */

#ifndef MLPWIN_ENERGY_AREA_MODEL_HH
#define MLPWIN_ENERGY_AREA_MODEL_HH

#include <cstdint>

#include "resize/level_table.hh"

namespace mlpwin
{

/** See file comment. All areas in mm^2 (32nm). */
class AreaModel
{
  public:
    /** Paper's base core including its 2MB L2. */
    static constexpr double kBaseCoreArea = 25.0;
    /** Intel Sandy Bridge single core (256KB L2 slice). */
    static constexpr double kSandyBridgeCoreArea = 19.0;
    /** Entire 4-core Sandy Bridge chip. */
    static constexpr double kSandyBridgeChipArea = 216.0;
    /** Number of cores the chip-level comparison assumes. */
    static constexpr unsigned kChipCores = 4;

    /** CAM-style IQ entry (wakeup + payload), mm^2 per entry. */
    static constexpr double kIqEntryArea = 0.0020;
    /** ROB entry including its physical register field. */
    static constexpr double kRobEntryArea = 0.0022;
    /** LSQ entry (address CAM + data). */
    static constexpr double kLsqEntryArea = 0.0020;

    /** L2 area per byte, calibrated: 2 MiB 4-way ~ 8.6 mm^2. */
    static constexpr double kL2AreaPerByte = 8.6 / (2.0 * 1024 * 1024);

    /** Area of the window structures at a given level. */
    static double
    windowArea(const ResourceLevel &level)
    {
        return kIqEntryArea * level.iqSize +
               kRobEntryArea * level.robSize +
               kLsqEntryArea * level.lsqSize;
    }

    /**
     * Additional area of providing the table's largest level relative
     * to its smallest (the paper's "additional cost": ~1.6 mm^2).
     */
    static double
    extraWindowArea(const LevelTable &table)
    {
        return windowArea(table.at(table.maxLevel())) -
               windowArea(table.at(1));
    }

    /** Area of an L2 cache of the given capacity. */
    static double
    l2Area(std::uint64_t size_bytes)
    {
        return kL2AreaPerByte * static_cast<double>(size_bytes);
    }

    /**
     * Pollack's-law speedup estimate for an area increase: perf
     * scales with sqrt(area), so speedup = sqrt(1 + delta/base) - 1.
     */
    static double pollackSpeedup(double extra_area, double base_area);
};

} // namespace mlpwin

#endif // MLPWIN_ENERGY_AREA_MODEL_HH
