/**
 * @file
 * Analytical energy model standing in for McPAT (paper Section 5.4).
 *
 * Energy is accounted as per-event dynamic energies plus per-cycle
 * leakage that scales with the *active* (non-clock-gated) size of the
 * window structures — the paper gates signals and precharge in the
 * unused region, so a shrunken window leaks less. Absolute joules are
 * not the target; the paper's EDP *shapes* are. Unit constants are
 * picojoule-flavoured values in 32nm.
 */

#ifndef MLPWIN_ENERGY_ENERGY_MODEL_HH
#define MLPWIN_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

namespace mlpwin
{

/** Event counts and size-cycle integrals of one finished run. */
struct EnergyInputs
{
    std::uint64_t cycles = 0;
    std::uint64_t fetched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;
    std::uint64_t committed = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t dramAccesses = 0;
    /** Integrals of active capacity over time (entries x cycles). */
    std::uint64_t iqSizeCycles = 0;
    std::uint64_t robSizeCycles = 0;
    std::uint64_t lsqSizeCycles = 0;
};

/** Unit energies (pJ) and leakage densities (pJ/entry-cycle). */
struct EnergyParams
{
    double fetchPerInst = 15.0;
    double dispatchPerInst = 10.0;
    double aluPerIssue = 8.0;
    /** Wakeup broadcast: per issued inst per active IQ entry. */
    double iqWakeupPerEntry = 0.15;
    double robAccess = 6.0;
    double lsqSearchPerEntry = 0.10;
    double l1Access = 20.0;
    double l2Access = 100.0;
    double dramAccess = 2000.0;
    double iqLeakPerEntryCycle = 0.012;
    double robLeakPerEntryCycle = 0.008;
    double lsqLeakPerEntryCycle = 0.012;
    /** Static power of the rest of the core, per cycle. */
    double staticPerCycle = 40.0;
};

/** Per-component energy totals in pJ. */
struct EnergyBreakdown
{
    double frontend = 0.0;
    double window = 0.0; ///< IQ + ROB + LSQ dynamic energy.
    double execute = 0.0;
    double caches = 0.0;
    double dram = 0.0;
    double leakage = 0.0;

    double
    total() const
    {
        return frontend + window + execute + caches + dram + leakage;
    }
};

/** See file comment. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = EnergyParams{})
        : params_(params)
    {}

    EnergyBreakdown evaluate(const EnergyInputs &in) const;

    /** Energy-delay product: total energy x cycles. */
    double
    edp(const EnergyInputs &in) const
    {
        return evaluate(in).total() * static_cast<double>(in.cycles);
    }

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
};

} // namespace mlpwin

#endif // MLPWIN_ENERGY_ENERGY_MODEL_HH
