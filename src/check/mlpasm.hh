/**
 * @file
 * .mlpasm — a plain-text serialization of a Program, used to save
 * minimized fuzzer repros into the corpus and replay them later.
 *
 * Format (line-oriented, '#' starts a comment anywhere):
 *
 *   .mlpasm 1
 *   .name fuzz_42
 *   .codebase 0x10000
 *   .entry 0x10000
 *   .dataend 0x12000000
 *   .code
 *   0x0000000000000002            # halt
 *   ...
 *   .seg 0x10000000
 *   0x0000000000000007
 *   ...
 *
 * Code lines are encoded 64-bit instruction words (the writer appends
 * the disassembly as a comment); .seg lines are little-endian 64-bit
 * data words at consecutive addresses from the segment base. The
 * format round-trips exactly: parse(write(p)) loads as the same
 * program image.
 */

#ifndef MLPWIN_CHECK_MLPASM_HH
#define MLPWIN_CHECK_MLPASM_HH

#include <iosfwd>
#include <string>

#include "common/status.hh"
#include "isa/program.hh"

namespace mlpwin
{

/** Serialize a program as .mlpasm text. */
void writeMlpasm(std::ostream &os, const Program &prog);

/** writeMlpasm into a file. @return ok or Io. */
Status saveMlpasm(const std::string &path, const Program &prog,
                  const std::string &headerComment = "");

/**
 * Parse .mlpasm text into a Program.
 *
 * @throws SimError{InvalidArgument} on malformed input, naming the
 *         offending line.
 */
Program parseMlpasm(std::istream &is);

/** Parse a .mlpasm file. @throws SimError{InvalidArgument, Io}. */
Program loadMlpasm(const std::string &path);

} // namespace mlpwin

#endif // MLPWIN_CHECK_MLPASM_HH
