#include "minimize.hh"

#include <algorithm>
#include <vector>

namespace mlpwin
{

namespace
{

const std::uint64_t kNopWord = encodeInst(StaticInst{});

/** Rebuild a program with some instruction words replaced by Nops. */
Program
substitute(const Program &orig, const std::vector<bool> &nopped)
{
    std::vector<std::uint64_t> code = orig.code();
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (nopped[i])
            code[i] = kNopWord;
    }
    return Program(orig.name(), orig.codeBase(), std::move(code),
                   orig.data(), orig.entry(), orig.dataEnd());
}

/**
 * Basic-block leaders: the entry, every branch/jump target inside the
 * code, and every instruction after a control transfer.
 */
std::vector<std::size_t>
blockLeaders(const Program &prog)
{
    const std::vector<std::uint64_t> &code = prog.code();
    std::vector<bool> leader(code.size(), false);
    if (!code.empty())
        leader[0] = true;
    for (std::size_t i = 0; i < code.size(); ++i) {
        StaticInst si = decodeInst(code[i]);
        if (!si.isControl())
            continue;
        if (i + 1 < code.size())
            leader[i + 1] = true;
        if (si.isJalr())
            continue; // Indirect; target unknowable statically.
        Addr pc = prog.codeBase() + i * kInstBytes;
        Addr target = pc + static_cast<std::int64_t>(si.imm);
        if (prog.validPc(target))
            leader[(target - prog.codeBase()) / kInstBytes] = true;
    }
    std::vector<std::size_t> leaders;
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (leader[i])
            leaders.push_back(i);
    }
    return leaders;
}

/** Units (index ranges) eligible for nopping; Halts are kept. */
struct Unit
{
    std::size_t begin;
    std::size_t end; // exclusive
};

/**
 * Coarse-to-fine chunk removal over a unit list: try nopping runs of
 * `chunk` consecutive units, halving chunk down to 1, re-testing from
 * the coarsest granularity after any success at the finest (classic
 * ddmin without the complement step — complements are implicit in
 * Nop substitution, since unselected units keep their prior state).
 */
void
ddmin(const Program &orig, const std::vector<Unit> &units,
      std::vector<bool> &nopped, const MinimizePredicate &stillFails,
      MinimizeStats &st)
{
    auto unitNopped = [&](const Unit &u) {
        for (std::size_t i = u.begin; i < u.end; ++i) {
            StaticInst si = decodeInst(orig.code()[i]);
            if (!nopped[i] && !si.isNop() && !si.isHalt())
                return false;
        }
        return true;
    };
    auto setUnit = [&](const Unit &u, bool v) {
        for (std::size_t i = u.begin; i < u.end; ++i) {
            StaticInst si = decodeInst(orig.code()[i]);
            if (!si.isHalt()) // Keep Halts: the program must still end.
                nopped[i] = v;
        }
    };

    for (std::size_t chunk = std::max<std::size_t>(units.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
        for (std::size_t at = 0; at < units.size(); at += chunk) {
            std::size_t hi = std::min(at + chunk, units.size());
            bool anyLive = false;
            for (std::size_t u = at; u < hi; ++u) {
                if (!unitNopped(units[u]))
                    anyLive = true;
            }
            if (!anyLive)
                continue;
            std::vector<bool> saved = nopped;
            for (std::size_t u = at; u < hi; ++u)
                setUnit(units[u], true);
            ++st.tested;
            if (!stillFails(substitute(orig, nopped)))
                nopped = std::move(saved); // Revert; chunk was needed.
        }
        if (chunk == 1)
            break;
    }
}

} // namespace

Program
minimizeProgram(const Program &prog,
                const MinimizePredicate &stillFails,
                MinimizeStats *stats)
{
    MinimizeStats st;
    const std::size_t n = prog.numInsts();
    std::vector<bool> nopped(n, false);

    // Phase 1: whole basic blocks, coarse to fine.
    std::vector<std::size_t> leaders = blockLeaders(prog);
    std::vector<Unit> blocks;
    for (std::size_t b = 0; b < leaders.size(); ++b) {
        std::size_t end =
            b + 1 < leaders.size() ? leaders[b + 1] : n;
        blocks.push_back(Unit{leaders[b], end});
    }
    ddmin(prog, blocks, nopped, stillFails, st);

    // Phase 2: single instructions within what survived.
    std::vector<Unit> singles;
    for (std::size_t i = 0; i < n; ++i) {
        if (!nopped[i])
            singles.push_back(Unit{i, i + 1});
    }
    ddmin(prog, singles, nopped, stillFails, st);

    for (std::size_t i = 0; i < n; ++i) {
        if (nopped[i])
            ++st.nopped;
    }
    Program result = substitute(prog, nopped);
    for (std::uint64_t w : result.code()) {
        if (!decodeInst(w).isNop())
            ++st.remaining;
    }
    if (stats)
        *stats = st;
    return result;
}

} // namespace mlpwin
