#include "lockstep.hh"

#include <algorithm>
#include <sstream>

namespace mlpwin
{

namespace
{

void
fnv(std::uint64_t &hash, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        hash ^= (v >> (8 * i)) & 0xff;
        hash *= 0x100000001b3ULL;
    }
}

} // namespace

std::vector<MemDiff>
diffMemoryImages(const MainMemory &expected, const MainMemory &actual,
                 std::size_t maxDiffs)
{
    // Union of both images' page sets, ascending; a page missing from
    // one side reads as zero.
    std::vector<Addr> bases = expected.pageBases();
    std::vector<Addr> abases = actual.pageBases();
    bases.insert(bases.end(), abases.begin(), abases.end());
    std::sort(bases.begin(), bases.end());
    bases.erase(std::unique(bases.begin(), bases.end()), bases.end());

    std::vector<MemDiff> diffs;
    for (Addr base : bases) {
        const std::uint8_t *e = expected.pageData(base);
        const std::uint8_t *a = actual.pageData(base);
        if (e && a && std::equal(e, e + MainMemory::kPageBytes, a))
            continue;
        for (std::uint64_t off = 0; off < MainMemory::kPageBytes;
             ++off) {
            std::uint8_t eb = e ? e[off] : 0;
            std::uint8_t ab = a ? a[off] : 0;
            if (eb == ab)
                continue;
            diffs.push_back(MemDiff{base + off, eb, ab});
            if (diffs.size() >= maxDiffs)
                return diffs;
        }
    }
    return diffs;
}

LockstepChecker::LockstepChecker(const Program &prog)
    : ref_(shadowMem_, prog.entry())
{
    shadowMem_.loadProgram(prog);
}

void
LockstepChecker::flag(const ExecRecord &ref, const std::string &field,
                      std::uint64_t expected, std::uint64_t actual)
{
    if (divergence_)
        return;
    Divergence d;
    d.commitIndex = commits_;
    d.pc = ref.pc;
    d.field = field;
    d.expected = expected;
    d.actual = actual;
    d.inst = disassemble(ref.inst);
    divergence_ = std::move(d);
}

void
LockstepChecker::onCommit(const ExecRecord &rec)
{
    if (divergence_)
        return; // First divergence wins; the run is about to abort.

    if (ref_.halted()) {
        // The reference program ended but the core kept committing.
        ExecRecord ghost;
        ghost.pc = rec.pc;
        ghost.inst = rec.inst;
        flag(ghost, "commit-past-halt", 0, 1);
        return;
    }

    ExecRecord ref = ref_.step();

    if (rec.pc != ref.pc) {
        flag(ref, "pc", ref.pc, rec.pc);
    } else if (rec.inst != ref.inst) {
        flag(ref, "inst", encodeInst(ref.inst), encodeInst(rec.inst));
    } else if (rec.nextPc != ref.nextPc) {
        flag(ref, "nextPc", ref.nextPc, rec.nextPc);
    } else if (ref.inst.isMem() && rec.memAddr != ref.memAddr) {
        // Address before result: a wrong effective address is the
        // root cause, the wrong loaded value only its symptom.
        flag(ref, "memAddr", ref.memAddr, rec.memAddr);
    } else if (ref.inst.isStore() && rec.storeData != ref.storeData) {
        flag(ref, "storeData", ref.storeData, rec.storeData);
    } else if (ref.inst.destReg() != kNoReg &&
               rec.result != ref.result) {
        flag(ref, "result", ref.result, rec.result);
    }

    fnv(streamHash_, rec.pc);
    fnv(streamHash_, rec.result);
    fnv(streamHash_, rec.inst.isMem() ? rec.memAddr : 0);
    fnv(streamHash_, rec.inst.isStore() ? rec.storeData : 0);
    ++commits_;
}

void
LockstepChecker::skip(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n && !ref_.halted(); ++i)
        ref_.step();
}

void
LockstepChecker::restoreState(const RegFile &regs, Addr pc,
                              std::uint64_t inst_count,
                              const MainMemory &image)
{
    shadowMem_.cloneFrom(image);
    ref_.restoreState(regs, pc, inst_count);
}

Status
LockstepChecker::verifyFinalState(const Emulator &oracle,
                                  const MainMemory &fmem) const
{
    if (divergence_)
        return Status::error(ErrorCode::ArchDivergence,
                             "commit-time divergence already flagged");
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        RegId id = static_cast<RegId>(r);
        RegVal want = ref_.regs().read(id);
        RegVal got = oracle.regs().read(id);
        if (want != got) {
            std::ostringstream os;
            os << "final register " << (isFpRegId(id) ? "f" : "x")
               << (isFpRegId(id) ? r - kNumIntRegs : r)
               << " mismatch: reference 0x" << std::hex << want
               << ", oracle 0x" << got;
            return Status::error(ErrorCode::ArchDivergence, os.str());
        }
    }
    if (oracle.pc() != ref_.pc()) {
        std::ostringstream os;
        os << "final pc mismatch: reference 0x" << std::hex
           << ref_.pc() << ", oracle 0x" << oracle.pc();
        return Status::error(ErrorCode::ArchDivergence, os.str());
    }
    std::vector<MemDiff> diffs = diffMemoryImages(shadowMem_, fmem, 4);
    if (!diffs.empty()) {
        std::ostringstream os;
        os << "final memory image differs at " << diffs.size()
           << "+ bytes:";
        for (const MemDiff &d : diffs)
            os << " [0x" << std::hex << d.addr << "]=0x"
               << static_cast<unsigned>(d.actual) << " (want 0x"
               << static_cast<unsigned>(d.expected) << ")" << std::dec;
        return Status::error(ErrorCode::ArchDivergence, os.str());
    }
    return Status();
}

} // namespace mlpwin
