/**
 * @file
 * Lockstep architectural checker.
 *
 * A second, fully independent Emulator running against its own shadow
 * MainMemory, stepped once per *committed* instruction by the core's
 * commit hook. Every commit is cross-checked against the reference:
 * PC, destination value, effective address, and store data. The first
 * divergent commit is recorded (the run aborts with ErrorCode::
 * ArchDivergence and a DiagnosticDump naming the PC and field), so a
 * rollback or squash bug surfaces at the exact instruction it corrupts
 * instead of as a checksum mismatch billions of cycles later.
 *
 * The checker also folds every committed instruction into a running
 * FNV hash — the commit-stream fingerprint the differential fuzzer
 * compares across models — and offers an end-of-run verification of
 * the full architectural state: all 64 registers plus a page-wise
 * sparse memory-image diff between the timing model's functional
 * memory and the shadow memory.
 */

#ifndef MLPWIN_CHECK_LOCKSTEP_HH
#define MLPWIN_CHECK_LOCKSTEP_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.hh"
#include "common/types.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "mem/main_memory.hh"

namespace mlpwin
{

/** One byte-level difference between two sparse memory images. */
struct MemDiff
{
    Addr addr = 0;
    std::uint8_t expected = 0;
    std::uint8_t actual = 0;
};

/**
 * Page-wise comparison of two sparse memory images. A page allocated
 * in only one image is compared against all-zeroes (untouched memory
 * reads as zero). Returns up to maxDiffs differing bytes, lowest
 * address first.
 *
 * @param expected The reference image.
 * @param actual The image under test.
 */
std::vector<MemDiff> diffMemoryImages(const MainMemory &expected,
                                      const MainMemory &actual,
                                      std::size_t maxDiffs = 8);

/** See file comment. */
class LockstepChecker
{
  public:
    /** Everything known about the first divergent commit. */
    struct Divergence
    {
        /** Zero-based index in the committed-instruction stream. */
        std::uint64_t commitIndex = 0;
        Addr pc = 0;
        /** "pc", "result", "memAddr", "storeData", "nextPc", ... */
        std::string field;
        std::uint64_t expected = 0;
        std::uint64_t actual = 0;
        /** Disassembly of the reference instruction. */
        std::string inst;
    };

    /** Builds the shadow memory and reference emulator from prog. */
    explicit LockstepChecker(const Program &prog);

    /**
     * Cross-check one committed instruction against the reference.
     * Called from the core's commit path; O(1) per commit, no effect
     * on timing state. After the first divergence further commits are
     * ignored (the simulator aborts at its next poll).
     */
    void onCommit(const ExecRecord &rec);

    bool diverged() const { return divergence_.has_value(); }
    /** Precondition: diverged(). */
    const Divergence &divergence() const { return *divergence_; }

    /** Commits checked so far. */
    std::uint64_t commits() const { return commits_; }

    /**
     * Advance the reference emulator n instructions without checking
     * or hashing, mirroring a functional fast-forward on the core
     * side: the shadow memory stays in sync (the reference performs
     * the same stores), and checking resumes seamlessly at the next
     * detailed commit. Stops early at Halt.
     */
    void skip(std::uint64_t n);

    /**
     * Overwrite the reference's architectural state from a resumed
     * checkpoint: registers, PC, instruction count, and a deep copy
     * of the checkpointed memory image. Commit checking then covers
     * exactly the post-resume instruction stream.
     */
    void restoreState(const RegFile &regs, Addr pc,
                      std::uint64_t inst_count,
                      const MainMemory &image);

    /**
     * FNV-1a fingerprint over the committed stream (pc, result,
     * memAddr, storeData per instruction). Two runs with equal hashes
     * committed the same instructions with the same effects.
     */
    std::uint64_t streamHash() const { return streamHash_; }

    /**
     * End-of-run check of the complete architectural state: every
     * register, the PC, and the full sparse memory image, compared
     * page-wise. Only meaningful once the core has halted (all stores
     * drained to functional memory).
     *
     * @param oracle The core's oracle emulator (register reference).
     * @param fmem The timing model's functional memory.
     * @return ok, or InvariantViolation naming the first difference.
     */
    Status verifyFinalState(const Emulator &oracle,
                            const MainMemory &fmem) const;

  private:
    void flag(const ExecRecord &ref, const std::string &field,
              std::uint64_t expected, std::uint64_t actual);

    MainMemory shadowMem_;
    Emulator ref_;
    std::uint64_t commits_ = 0;
    std::uint64_t streamHash_ = 0xcbf29ce484222325ULL;
    std::optional<Divergence> divergence_;
};

} // namespace mlpwin

#endif // MLPWIN_CHECK_LOCKSTEP_HH
