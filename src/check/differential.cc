#include "differential.hh"

#include <sstream>

#include "common/parse.hh"
#include "sim/simulator.hh"

namespace mlpwin
{

std::string
DiffModel::label() const
{
    std::string s = modelName(model);
    if (model == ModelKind::Fixed || model == ModelKind::Ideal)
        s += ":" + std::to_string(level);
    return s;
}

std::vector<DiffModel>
defaultDiffModels()
{
    return {
        {ModelKind::Base, 1},     {ModelKind::Fixed, 3},
        {ModelKind::Ideal, 3},    {ModelKind::Resizing, 1},
        {ModelKind::Runahead, 1}, {ModelKind::Occupancy, 1},
        {ModelKind::Wib, 1},
    };
}

bool
parseDiffModels(const std::string &list, std::vector<DiffModel> &out,
                std::string *err)
{
    out.clear();
    std::istringstream is(list);
    std::string token;
    while (std::getline(is, token, ',')) {
        if (token.empty())
            continue;
        std::string name = token;
        unsigned level = 1;
        std::size_t colon = token.find(':');
        if (colon != std::string::npos) {
            name = token.substr(0, colon);
            std::uint64_t v = 0;
            if (!parseU64(token.substr(colon + 1).c_str(), v) ||
                v < 1 || v > 8) {
                if (err)
                    *err = "bad level in '" + token + "'";
                return false;
            }
            level = static_cast<unsigned>(v);
        }
        bool found = false;
        for (ModelKind m :
             {ModelKind::Base, ModelKind::Fixed, ModelKind::Ideal,
              ModelKind::Resizing, ModelKind::Runahead,
              ModelKind::Occupancy, ModelKind::Wib}) {
            if (name == modelName(m)) {
                out.push_back(DiffModel{m, level});
                found = true;
                break;
            }
        }
        if (!found) {
            if (err)
                *err = "unknown model '" + name + "'";
            return false;
        }
    }
    if (out.empty()) {
        if (err)
            *err = "empty model list";
        return false;
    }
    return true;
}

const char *
diffStatusName(DiffStatus s)
{
    switch (s) {
      case DiffStatus::Pass:
        return "pass";
      case DiffStatus::Divergence:
        return "divergence";
      case DiffStatus::Error:
        return "error";
      case DiffStatus::Budget:
        return "budget";
    }
    return "?";
}

DiffOutcome
runDifferential(const Program &prog, const DifferentialConfig &cfg)
{
    DiffOutcome out;
    for (const DiffModel &m : cfg.models) {
        SimConfig sc = cfg.base;
        sc.model = m.model;
        sc.fixedLevel = m.level;
        sc.lockstepCheck = true;
        sc.maxInsts = cfg.maxInsts;

        DiffModelResult r;
        r.label = m.label();
        try {
            Simulator sim(sc, prog);
            SimResult sr = sim.run();
            r.ran = true;
            r.halted = sr.halted;
            r.commits = sr.committed;
            r.streamHash = sr.commitStreamHash;
            r.cycles = sr.cycles;
        } catch (const SimError &e) {
            r.error = e.what();
            if (e.hasDump())
                r.dumpJson = e.dump().toJson();
        }
        out.models.push_back(std::move(r));
    }

    // Verdict: any abort beats any budget miss beats a stream
    // mismatch; all clean = pass.
    for (const DiffModelResult &r : out.models) {
        if (!r.ran) {
            out.status = DiffStatus::Error;
            out.detail = r.label + ": " + r.error;
            return out;
        }
    }
    for (const DiffModelResult &r : out.models) {
        if (!r.halted) {
            out.status = DiffStatus::Budget;
            out.detail = r.label + ": not halted after " +
                         std::to_string(r.commits) + " commits";
            return out;
        }
    }
    const DiffModelResult &first = out.models.front();
    for (const DiffModelResult &r : out.models) {
        if (r.commits != first.commits ||
            r.streamHash != first.streamHash) {
            out.status = DiffStatus::Divergence;
            std::ostringstream os;
            os << r.label << " committed " << r.commits << " (hash 0x"
               << std::hex << r.streamHash << ") vs " << first.label
               << " " << std::dec << first.commits << " (hash 0x"
               << std::hex << first.streamHash << ")" << std::dec;
            out.detail = os.str();
            return out;
        }
    }
    out.status = DiffStatus::Pass;
    return out;
}

} // namespace mlpwin
