#include "mlpasm.hh"

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

namespace mlpwin
{

namespace
{

std::string
stripComment(const std::string &line)
{
    std::size_t hash = line.find('#');
    std::string s =
        hash == std::string::npos ? line : line.substr(0, hash);
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

[[noreturn]] void
parseFail(unsigned lineno, const std::string &why)
{
    throw SimError(ErrorCode::InvalidArgument,
                   ".mlpasm line " + std::to_string(lineno) + ": " +
                       why);
}

std::uint64_t
parseWord(const std::string &tok, unsigned lineno)
{
    try {
        std::size_t pos = 0;
        std::uint64_t v = std::stoull(tok, &pos, 0);
        if (pos != tok.size())
            parseFail(lineno, "trailing junk in '" + tok + "'");
        return v;
    } catch (const std::logic_error &) {
        parseFail(lineno, "not a number: '" + tok + "'");
    }
}

} // namespace

void
writeMlpasm(std::ostream &os, const Program &prog)
{
    os << ".mlpasm 1\n";
    if (!prog.name().empty())
        os << ".name " << prog.name() << '\n';
    os << ".codebase 0x" << std::hex << prog.codeBase() << '\n'
       << ".entry 0x" << prog.entry() << '\n';
    if (prog.dataEnd())
        os << ".dataend 0x" << prog.dataEnd() << '\n';
    os << ".code\n";
    for (std::uint64_t word : prog.code()) {
        os << "0x" << std::setw(16) << std::setfill('0') << word
           << "  # " << disassemble(decodeInst(word)) << '\n';
    }
    for (const DataSegment &seg : prog.data()) {
        os << ".seg 0x" << seg.base << '\n';
        // Segments are built from 64-bit words; a trailing partial
        // word (if any) is zero-padded, which loadProgram's byte-wise
        // copy makes invisible only when the pad bytes are zero — the
        // Assembler only produces whole words, so this is exact.
        for (std::size_t i = 0; i < seg.bytes.size(); i += 8) {
            std::uint64_t w = 0;
            for (std::size_t b = 0; b < 8 && i + b < seg.bytes.size();
                 ++b)
                w |= static_cast<std::uint64_t>(seg.bytes[i + b])
                     << (8 * b);
            os << "0x" << std::setw(16) << std::setfill('0') << w
               << '\n';
        }
    }
    os << std::dec;
}

Status
saveMlpasm(const std::string &path, const Program &prog,
           const std::string &headerComment)
{
    std::ofstream os(path);
    if (!os)
        return Status::error(ErrorCode::Io,
                             "cannot open " + path + " for writing");
    if (!headerComment.empty()) {
        std::istringstream lines(headerComment);
        std::string line;
        while (std::getline(lines, line))
            os << "# " << line << '\n';
    }
    writeMlpasm(os, prog);
    os.flush();
    if (!os)
        return Status::error(ErrorCode::Io, "write failed: " + path);
    return Status();
}

Program
parseMlpasm(std::istream &is)
{
    std::string name = "mlpasm";
    Addr code_base = kCodeBase;
    Addr entry = 0;
    bool entry_set = false;
    Addr data_end = 0;
    std::vector<std::uint64_t> code;
    std::vector<DataSegment> data;

    enum class Section
    {
        Header,
        Code,
        Seg
    } section = Section::Header;
    bool versioned = false;

    std::string raw;
    unsigned lineno = 0;
    while (std::getline(is, raw)) {
        ++lineno;
        std::string line = stripComment(raw);
        if (line.empty())
            continue;
        std::istringstream tok(line);
        std::string head;
        tok >> head;

        if (head == ".mlpasm") {
            std::string ver;
            tok >> ver;
            if (ver != "1")
                parseFail(lineno, "unsupported version '" + ver + "'");
            versioned = true;
        } else if (head == ".name") {
            tok >> name;
        } else if (head == ".codebase") {
            std::string v;
            tok >> v;
            code_base = parseWord(v, lineno);
        } else if (head == ".entry") {
            std::string v;
            tok >> v;
            entry = parseWord(v, lineno);
            entry_set = true;
        } else if (head == ".dataend") {
            std::string v;
            tok >> v;
            data_end = parseWord(v, lineno);
        } else if (head == ".code") {
            section = Section::Code;
        } else if (head == ".seg") {
            std::string v;
            tok >> v;
            data.push_back(DataSegment{parseWord(v, lineno), {}});
            section = Section::Seg;
        } else if (head[0] == '.') {
            parseFail(lineno, "unknown directive '" + head + "'");
        } else {
            std::uint64_t w = parseWord(head, lineno);
            if (section == Section::Code) {
                code.push_back(w);
            } else if (section == Section::Seg) {
                for (unsigned b = 0; b < 8; ++b)
                    data.back().bytes.push_back(
                        static_cast<std::uint8_t>(w >> (8 * b)));
            } else {
                parseFail(lineno, "word outside .code/.seg section");
            }
        }
    }
    if (!versioned)
        parseFail(lineno, "missing .mlpasm version line");
    if (code.empty())
        parseFail(lineno, "empty .code section");
    if (!entry_set)
        entry = code_base;
    return Program(name, code_base, std::move(code), std::move(data),
                   entry, data_end);
}

Program
loadMlpasm(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw SimError(ErrorCode::Io, "cannot open " + path);
    return parseMlpasm(is);
}

} // namespace mlpwin
