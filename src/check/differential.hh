/**
 * @file
 * Differential model checking: run one program under every timing
 * model with the lockstep checker enabled and require that all of
 * them commit the *identical* instruction stream (equal commit counts
 * and equal commit-stream fingerprints). Timing models may disagree
 * on cycles, never on architecture — any disagreement, or any
 * checker/watchdog abort in a single model, is a bug repro.
 */

#ifndef MLPWIN_CHECK_DIFFERENTIAL_HH
#define MLPWIN_CHECK_DIFFERENTIAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "sim/sim_config.hh"

namespace mlpwin
{

/** One model column of the differential matrix. */
struct DiffModel
{
    ModelKind model = ModelKind::Base;
    /** Level for Fixed/Ideal models (1-based). */
    unsigned level = 1;

    /** "base", "fixed:3", ... */
    std::string label() const;
};

/** The default matrix: every evaluated model. */
std::vector<DiffModel> defaultDiffModels();

/** Parse a comma list of model tokens ("base,fixed:3,runahead"). */
bool parseDiffModels(const std::string &list,
                     std::vector<DiffModel> &out, std::string *err);

/** What one model's run produced. */
struct DiffModelResult
{
    std::string label;
    bool ran = false;    ///< No SimError was thrown.
    bool halted = false; ///< Reached Halt inside the budget.
    std::uint64_t commits = 0;
    std::uint64_t streamHash = 0;
    std::uint64_t cycles = 0;
    /** SimError message when ran == false. */
    std::string error;
    /** DiagnosticDump JSON when the error carried one. */
    std::string dumpJson;
};

/** Aggregate verdict of one differential run. */
enum class DiffStatus
{
    Pass,       ///< Every model halted with identical streams.
    Divergence, ///< Models halted but commit streams differ.
    Error,      ///< A model aborted (checker divergence, watchdog...).
    Budget,     ///< A model failed to halt inside the inst budget.
};

/** Printable status name ("pass", "divergence", ...). */
const char *diffStatusName(DiffStatus s);

struct DiffOutcome
{
    DiffStatus status = DiffStatus::Pass;
    /** One-line failure description; empty on Pass. */
    std::string detail;
    std::vector<DiffModelResult> models;

    /**
     * True for genuine correctness failures worth minimizing. Budget
     * exhaustion is excluded: the minimizer nops instructions, which
     * can turn a bounded loop infinite — such mutants must read as
     * "not a repro", or minimization would chase non-bugs.
     */
    bool failed() const
    {
        return status == DiffStatus::Divergence ||
               status == DiffStatus::Error;
    }
};

/** Knobs for one differential run. */
struct DifferentialConfig
{
    std::vector<DiffModel> models = defaultDiffModels();

    /**
     * Per-model committed-instruction budget; a model still running
     * at the budget reports Budget (fuzz programs must terminate
     * well inside it).
     */
    std::uint64_t maxInsts = 2'000'000;

    /**
     * Template configuration applied to every model (lockstepCheck
     * is forced on; model/fixedLevel/maxInsts are overwritten).
     */
    SimConfig base;
};

/** Run prog under every model of the matrix; see file comment. */
DiffOutcome runDifferential(const Program &prog,
                            const DifferentialConfig &cfg);

} // namespace mlpwin

#endif // MLPWIN_CHECK_DIFFERENTIAL_HH
