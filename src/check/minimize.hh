/**
 * @file
 * Delta-debugging minimizer for failing fuzz programs.
 *
 * Given a program and a predicate "does this still fail?", shrink the
 * program by replacing instructions with Nops — first whole basic
 * blocks, coarse to fine, then single instructions — keeping each
 * mutation only if the failure persists. Nop substitution (rather
 * than deletion) preserves every branch offset and data address, so
 * any subset of substitutions yields a well-formed program. The
 * predicate must treat a non-terminating mutant as NOT failing
 * (nopping a loop decrement makes the loop infinite); DiffOutcome::
 * failed() already encodes that rule.
 */

#ifndef MLPWIN_CHECK_MINIMIZE_HH
#define MLPWIN_CHECK_MINIMIZE_HH

#include <cstdint>
#include <functional>

#include "isa/program.hh"

namespace mlpwin
{

/** Returns true when the candidate program still reproduces the bug. */
using MinimizePredicate = std::function<bool(const Program &)>;

struct MinimizeStats
{
    /** Candidate programs evaluated (predicate invocations). */
    std::uint64_t tested = 0;
    /** Instructions nopped out of the original. */
    std::size_t nopped = 0;
    /** Non-Nop instructions remaining. */
    std::size_t remaining = 0;
};

/**
 * Minimize a failing program; see file comment.
 *
 * @param prog The failing program (stillFails(prog) must be true —
 *        callers verify before minimizing).
 * @param stillFails The repro predicate.
 * @param stats Optional counters for reporting.
 * @return The minimized program (same name, bases, and data image).
 */
Program minimizeProgram(const Program &prog,
                        const MinimizePredicate &stillFails,
                        MinimizeStats *stats = nullptr);

} // namespace mlpwin

#endif // MLPWIN_CHECK_MINIMIZE_HH
