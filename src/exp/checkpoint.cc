#include "exp/checkpoint.hh"

#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "exp/result_writer.hh"

namespace mlpwin
{
namespace exp
{

std::string
checkpointRecord(const ExperimentJob &job, const JobOutcome &outcome)
{
    std::ostringstream os;
    os << "{\"key\":\"" << jsonEscape(jobKey(job)) << '"'
       << ",\"workload\":\"" << jsonEscape(job.workload) << '"'
       << ",\"model\":\"" << jsonEscape(job.model.displayLabel())
       << '"' << ",\"state\":\"" << jobStateName(outcome.state) << '"'
       << ",\"error\":\"" << errorCodeName(outcome.error) << '"'
       << ",\"detail\":\"" << jsonEscape(outcome.errorDetail) << '"'
       << ",\"attempts\":" << outcome.attempts;
    // Hit provenance lives here, never in the result payload itself,
    // so final output rows stay bit-identical to a cold run's.
    if (outcome.cacheHit)
        os << ",\"cache\":\"hit\"";
    if (!outcome.dumpJson.empty())
        os << ",\"dump\":" << outcome.dumpJson;
    if (outcome.state == JobState::Ok)
        os << ",\"result\":" << resultToJson(outcome.result);
    os << '}';
    return os.str();
}

std::map<std::string, SimResult>
loadCheckpoint(const std::string &path, std::size_t *torn_lines)
{
    std::map<std::string, SimResult> done;
    if (torn_lines)
        *torn_lines = 0;
    std::ifstream is(path);
    if (!is)
        return done;

    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        try {
            JsonValue v = parseJson(line);
            if (v.field("state").asString() != "ok")
                continue;
            // "result" is by construction the record's last field:
            // slice it out textually so resultFromJson sees exactly
            // the bytes resultToJson wrote.
            const std::string marker = "\"result\":";
            std::size_t pos = line.find(marker);
            if (pos == std::string::npos)
                throw std::runtime_error("ok record without result");
            std::string result_json = line.substr(
                pos + marker.size(),
                line.size() - (pos + marker.size()) - 1);
            done[v.field("key").asString()] =
                resultFromJson(result_json);
        } catch (const std::exception &e) {
            if (torn_lines)
                ++*torn_lines;
            mlpwin_warn("checkpoint %s line %zu unusable (%s); "
                        "cell will re-run",
                        path.c_str(), lineno, e.what());
        }
    }
    return done;
}

CheckpointWriter::CheckpointWriter(const std::string &path,
                                   bool append)
    : path_(path)
{
    // A batch killed mid-write leaves a torn final line with no
    // newline; appending straight after it would corrupt the first
    // new record too. Terminate it first.
    bool terminate_torn_line = false;
    if (append) {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (in && in.tellg() > 0) {
            in.seekg(-1, std::ios::end);
            char last = '\n';
            in.get(last);
            terminate_torn_line = last != '\n';
        }
    }
    os_.open(path, append ? std::ios::app : std::ios::trunc);
    if (!os_)
        throw SimError(ErrorCode::Io,
                       "cannot open checkpoint file " + path);
    if (terminate_torn_line)
        os_ << '\n';
}

void
CheckpointWriter::append(const ExperimentJob &job,
                         const JobOutcome &outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    os_ << checkpointRecord(job, outcome) << '\n';
    os_.flush();
    if (!os_ && !warned_) {
        warned_ = true;
        mlpwin_warn("checkpoint writes to %s are failing; a resume "
                    "will re-run the affected cells",
                    path_.c_str());
    }
}

} // namespace exp
} // namespace mlpwin
