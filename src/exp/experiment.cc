#include "exp/experiment.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>

#include "cache/result_cache.hh"
#include "exp/checkpoint.hh"
#include "exp/result_writer.hh"
#include "exp/thread_pool.hh"
#include "profile/profiler.hh"
#include "sample/checkpoint.hh"
#include "telemetry/export.hh"
#include "telemetry/timeline.hh"
#include "workloads/suite.hh"

namespace mlpwin
{
namespace exp
{

std::string
ModelSpec::displayLabel() const
{
    if (!label.empty())
        return label;
    std::string s = modelName(model);
    if (model == ModelKind::Fixed || model == ModelKind::Ideal)
        s += std::to_string(level);
    return s;
}

bool
parseModelSpec(const std::string &token, ModelSpec &out)
{
    std::string name = token;
    std::string level;
    if (auto colon = token.find(':'); colon != std::string::npos) {
        name = token.substr(0, colon);
        level = token.substr(colon + 1);
    }
    bool found = false;
    for (ModelKind m : {ModelKind::Base, ModelKind::Fixed,
                        ModelKind::Ideal, ModelKind::Resizing,
                        ModelKind::Runahead, ModelKind::Occupancy,
                        ModelKind::Wib}) {
        if (name == modelName(m)) {
            out.model = m;
            found = true;
            break;
        }
    }
    if (!found)
        return false;
    out.level = 1;
    if (!level.empty()) {
        char *end = nullptr;
        unsigned long v = std::strtoul(level.c_str(), &end, 10);
        if (*end != '\0' || v == 0 || v > 16)
            return false;
        out.level = static_cast<unsigned>(v);
    }
    out.label.clear();
    return true;
}

std::vector<ExperimentJob>
expandSpec(const ExperimentSpec &spec)
{
    std::vector<ExperimentJob> jobs;
    jobs.reserve(spec.jobCount());
    for (const std::string &w : spec.workloads) {
        for (const ModelSpec &m : spec.models) {
            ExperimentJob job;
            job.index = jobs.size();
            job.workload = w;
            job.model = m;
            job.cfg = spec.base;
            job.cfg.model = m.model;
            job.cfg.fixedLevel = m.level;
            if (spec.configure)
                spec.configure(job.cfg, job);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

std::string
jobKey(const ExperimentJob &job)
{
    return job.workload + "/" + job.model.displayLabel();
}

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Ok:
        return "ok";
      case JobState::Failed:
        return "failed";
      case JobState::Timeout:
        return "timeout";
      case JobState::Skipped:
        return "skipped";
    }
    return "?";
}

std::size_t
BatchOutcome::count(JobState s) const
{
    std::size_t n = 0;
    for (const JobOutcome &o : outcomes)
        if (o.state == s)
            ++n;
    return n;
}

namespace
{

/** Per-job telemetry file stem: "<workload>.<label>". */
std::string
jobFileStem(const ExperimentJob &job)
{
    return job.workload + "." + job.model.displayLabel();
}

} // namespace

SimResult
runJob(const ExperimentSpec &spec, const ExperimentJob &job,
       const ArchCheckpoint *arch_ckpt)
{
    ScopedSpan span(SpanKind::Job, jobKey(job));

    if (spec.executor)
        return spec.executor(job);

    SimConfig cfg = job.cfg;
    cfg.startCheckpoint = arch_ckpt;

    // A '+'-separated workload is an SMT co-schedule; a single name
    // on a multi-thread config is replicated onto every thread.
    std::vector<std::string> parts = splitWorkloadSpec(job.workload);
    if (parts.size() == 1 && cfg.core.smt.nThreads > 1)
        parts.assign(cfg.core.smt.nThreads, parts[0]);
    std::vector<Program> progs;
    progs.reserve(parts.size());
    for (const std::string &part : parts)
        progs.push_back(findWorkload(part).make(spec.iterations));
    Simulator sim(cfg, progs);

    if (spec.jobTimeoutSeconds > 0.0)
        sim.setDeadline(std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                spec.jobTimeoutSeconds)));
    if (spec.abortFlag)
        sim.setAbortFlag(spec.abortFlag);

    if (spec.telemetryDir.empty())
        return sim.run();

    IntervalSampler sampler(spec.telemetryInterval);
    EventTimeline timeline;
    sim.setSampler(&sampler);
    sim.setTimeline(&timeline);

    SimResult r = sim.run();

    std::string stem = spec.telemetryDir + "/" + jobFileStem(job);
    std::ofstream series(stem + ".telemetry.jsonl");
    if (!series)
        throw SimError(ErrorCode::Io, "cannot open " + stem +
                                          ".telemetry.jsonl");
    writeTelemetryJsonl(series, sampler);

    std::ofstream trace(stem + ".trace.json");
    if (!trace)
        throw SimError(ErrorCode::Io,
                       "cannot open " + stem + ".trace.json");
    writeChromeTrace(trace, timeline, jobFileStem(job));
    return r;
}

namespace
{

/** Map a caught SimError onto the outcome record. */
void
recordFailure(JobOutcome &out, const SimError &e)
{
    out.error = e.code();
    out.errorDetail = e.message();
    if (e.hasDump())
        out.dumpJson = e.dump().toJson();
    switch (e.code()) {
      case ErrorCode::Timeout:
        out.state = JobState::Timeout;
        break;
      case ErrorCode::Interrupted:
        out.state = JobState::Skipped;
        break;
      default:
        out.state = JobState::Failed;
        break;
    }
}

/**
 * In-process executor backend: a small scheduler over `threads`
 * workers with a ready deque and a delayed min-heap. A job whose
 * attempt failed transiently is re-enqueued with a not-before
 * deadline instead of sleeping on the worker thread, so a slot in
 * retry backoff still executes other jobs (satellite of PR 8; the
 * old implementation parked the pool thread for the whole backoff).
 */
void
runInProcess(const ExperimentSpec &spec,
             const std::vector<ExperimentJob> &jobs,
             const std::vector<std::size_t> &pending,
             const std::function<void(std::size_t, JobOutcome &&)>
                 &settle,
             const std::map<std::string, ArchCheckpoint> &arch_ckpts,
             unsigned threads)
{
    using Clock = std::chrono::steady_clock;

    /** Mutable per-pending-job state, alive across re-enqueues. */
    struct Pend
    {
        std::size_t index = 0; ///< Into `jobs`.
        unsigned attempts = 0;
        bool started = false;
        Clock::time_point firstStart{};
        JobOutcome out;
    };

    std::vector<Pend> pend(pending.size());
    std::mutex m;
    std::condition_variable cv;
    std::deque<std::size_t> ready; // Indices into `pend`.
    struct Delayed
    {
        Clock::time_point due;
        std::size_t pi;
    };
    auto later = [](const Delayed &a, const Delayed &b) {
        return a.due > b.due;
    };
    std::priority_queue<Delayed, std::vector<Delayed>, decltype(later)>
        delayed(later);
    std::size_t unsettled = pending.size();

    for (std::size_t i = 0; i < pending.size(); ++i) {
        pend[i].index = pending[i];
        ready.push_back(i);
    }

    // One execution attempt; true when the job settled (p.out final),
    // false when it should be re-enqueued after backoff. Semantics
    // match the old inline retry loop: only transient errors retry,
    // a cancellation stops retries, attempts are cumulative, and
    // wallSeconds spans first attempt to settlement (backoff
    // included).
    auto run_attempt = [&](Pend &p) -> bool {
        const ExperimentJob &job = jobs[p.index];
        if (!p.started) {
            if (spec.cancelRequested && spec.cancelRequested()) {
                p.out.state = JobState::Skipped;
                p.out.error = ErrorCode::Interrupted;
                p.out.errorDetail = "cancelled before start";
                return true;
            }
            p.started = true;
            p.firstStart = Clock::now();
        }
        p.out.attempts = ++p.attempts;
        const ArchCheckpoint *arch = nullptr;
        if (auto ck = arch_ckpts.find(job.workload);
            ck != arch_ckpts.end())
            arch = &ck->second;
        bool ok = false;
        try {
            p.out.result = runJob(spec, job, arch);
            p.out.state = JobState::Ok;
            p.out.error = ErrorCode::Ok;
            p.out.errorDetail.clear();
            p.out.dumpJson.clear();
            ok = true;
        } catch (const SimError &e) {
            recordFailure(p.out, e);
        } catch (const std::exception &e) {
            p.out.state = JobState::Failed;
            p.out.error = ErrorCode::Internal;
            p.out.errorDetail = e.what();
        }
        if (!ok) {
            bool cancelled =
                spec.cancelRequested && spec.cancelRequested();
            if (errorCodeTransient(p.out.error) &&
                p.attempts < std::max(spec.maxAttempts, 1u) &&
                !cancelled)
                return false; // Re-enqueue with a backoff deadline.
        }
        p.out.wallSeconds =
            std::chrono::duration<double>(Clock::now() -
                                          p.firstStart)
                .count();
        return true;
    };

    auto worker = [&] {
        std::unique_lock<std::mutex> lock(m);
        for (;;) {
            Clock::time_point now = Clock::now();
            while (!delayed.empty() && delayed.top().due <= now) {
                ready.push_back(delayed.top().pi);
                delayed.pop();
            }
            if (ready.empty()) {
                if (unsettled == 0)
                    return;
                if (!delayed.empty())
                    cv.wait_until(lock, delayed.top().due);
                else
                    cv.wait(lock);
                continue;
            }
            std::size_t pi = ready.front();
            ready.pop_front();
            lock.unlock();

            bool settled = run_attempt(pend[pi]);

            if (settled)
                settle(pend[pi].index, std::move(pend[pi].out));
            lock.lock();
            if (settled) {
                --unsettled;
            } else {
                delayed.push(
                    {Clock::now() +
                         std::chrono::milliseconds(
                             static_cast<std::uint64_t>(
                                 spec.retryBackoffMs) *
                             pend[pi].attempts),
                     pi});
            }
            cv.notify_all();
        }
    };

    if (threads <= 1) {
        worker();
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
}

} // namespace

ExperimentRunner::ExperimentRunner(unsigned jobs, bool progress)
    : jobs_(ThreadPool::resolveThreads(jobs)), progress_(progress)
{}

BatchOutcome
ExperimentRunner::runAll(const ExperimentSpec &spec) const
{
    return runAll(spec, nullptr);
}

BatchOutcome
ExperimentRunner::runAll(const ExperimentSpec &spec,
                         JobExecutorBackend *backend) const
{
    // Force suite construction (and its magic static) before any
    // worker races to it, and fail fast on unknown workload names —
    // findWorkload throws a SimError listing the valid names. The
    // test-seam executor may use synthetic names, so skip then.
    if (!spec.executor)
        for (const std::string &w : spec.workloads)
            for (const std::string &part : splitWorkloadSpec(w))
                findWorkload(part);

    // Create the telemetry directory once, before workers race to
    // open files inside it.
    if (!spec.telemetryDir.empty())
        std::filesystem::create_directories(spec.telemetryDir);

    BatchOutcome batch;
    batch.jobs = expandSpec(spec);
    batch.outcomes.resize(batch.jobs.size());

    // Load each workload's architectural checkpoint exactly once, up
    // front: a missing file fails the batch before simulation time is
    // spent, and the (read-only) image is shared by every cell of
    // that workload's row.
    std::map<std::string, ArchCheckpoint> arch_ckpts;
    if (!spec.archCheckpointDir.empty() && !spec.executor) {
        for (const std::string &w : spec.workloads) {
            if (arch_ckpts.count(w))
                continue;
            arch_ckpts.emplace(
                w, ArchCheckpoint::loadFile(spec.archCheckpointDir +
                                            "/" + w + ".ckpt"));
        }
    }

    // Content-addressed result cache: each job's key folds the full
    // cell identity — configFingerprint plus the determinism knobs it
    // deliberately leaves out (they change result bytes:
    // commitStreamHash under the checker, early stops), the
    // workload's program identity, and the result-schema version.
    // Any construction failure already degraded to cache-off with a
    // warning inside the ResultCache constructor.
    std::unique_ptr<cache::ResultCache> rcache;
    std::map<std::string, std::uint64_t> prog_identity;
    std::vector<std::uint64_t> cache_keys;
    if (!spec.cacheDir.empty()) {
        rcache = std::make_unique<cache::ResultCache>(spec.cacheDir);
        if (!rcache->enabled())
            rcache.reset();
    }
    if (rcache) {
        for (const std::string &w : spec.workloads) {
            if (prog_identity.count(w))
                continue;
            std::uint64_t h;
            if (spec.executor) {
                // Synthetic test workloads have no Program; their
                // name is their identity.
                h = cache::fnv1a(w.data(), w.size());
            } else {
                h = 0;
                for (const std::string &part : splitWorkloadSpec(w))
                    h = cache::foldKey(
                        {h, programHash(findWorkload(part).make(
                                spec.iterations))});
                if (auto it = arch_ckpts.find(w);
                    it != arch_ckpts.end())
                    h = cache::foldKey({h,
                                        it->second.programHash(),
                                        it->second.instCount()});
            }
            prog_identity.emplace(w, h);
        }
        cache_keys.resize(batch.jobs.size());
        for (const ExperimentJob &job : batch.jobs) {
            const SimConfig &c = job.cfg;
            cache_keys[job.index] = cache::foldKey(
                {configFingerprint(c), c.maxCycles,
                 static_cast<std::uint64_t>(c.lockstepCheck),
                 c.core.debugStallCommitAt,
                 static_cast<std::uint64_t>(c.core.debugCorruptUndo),
                 prog_identity.at(job.workload), spec.iterations,
                 cache::kResultSchemaVersion});
        }
    }

    std::map<std::string, SimResult> resumed;
    if (spec.resume && !spec.checkpointPath.empty())
        resumed = loadCheckpoint(spec.checkpointPath,
                                 &batch.tornCheckpointLines);
    std::unique_ptr<CheckpointWriter> ckpt;
    if (!spec.checkpointPath.empty())
        ckpt = std::make_unique<CheckpointWriter>(spec.checkpointPath,
                                                  spec.resume);

    const auto start = std::chrono::steady_clock::now();
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;

    auto note = [&](const ExperimentJob &job, const JobOutcome &out) {
        std::size_t n = ++done;
        if (spec.onJobSettled)
            spec.onJobSettled(job, out);
        if (!progress_)
            return;
        double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        double eta = n ? elapsed / static_cast<double>(n) *
                             static_cast<double>(batch.jobs.size() - n)
                       : 0.0;
        std::lock_guard<std::mutex> lock(progress_mutex);
        if (out.state == JobState::Ok) {
            std::fprintf(
                stderr,
                "  [%zu/%zu] %s%s ipc %.3f  elapsed %.1fs eta "
                "%.1fs\n",
                n, batch.jobs.size(), jobKey(job).c_str(),
                out.resumed ? " [resumed]"
                            : (out.cacheHit ? " [cache]" : ""),
                out.result.ipc,
                elapsed, eta);
        } else {
            std::fprintf(stderr, "  [%zu/%zu] %s %s: %s\n", n,
                         batch.jobs.size(), jobKey(job).c_str(),
                         jobStateName(out.state),
                         out.errorDetail.c_str());
        }
    };

    // Skipped jobs are deliberately NOT checkpointed: a resume must
    // re-run interrupted cells. Failed/timeout records are kept for
    // postmortems but never adopted by loadCheckpoint. Thread-safe:
    // the writer locks, outcome slots are index-exclusive, the cache
    // locks internally. Fresh ok results are stored back to the
    // cache (adopted ones are already there / already checkpointed).
    auto settle = [&](std::size_t index, JobOutcome &&o) {
        JobOutcome &out = batch.outcomes[index];
        out = std::move(o);
        if (ckpt && out.state != JobState::Skipped)
            ckpt->append(batch.jobs[index], out);
        if (rcache && out.state == JobState::Ok && !out.resumed &&
            !out.cacheHit) {
            const ExperimentJob &job = batch.jobs[index];
            if (rcache->put(cache_keys[index],
                            resultToJson(out.result), job.workload,
                            job.model.displayLabel(),
                            configFingerprint(job.cfg),
                            prog_identity.at(job.workload)) &&
                spec.onCacheStored)
                spec.onCacheStored(
                    rcache->entryPath(cache_keys[index]), index,
                    out.attempts);
        }
        note(batch.jobs[index], out);
    };

    // Adopt resumed cells up front (no re-append to the checkpoint),
    // then cells with a verified cache entry (checkpointed like any
    // fresh settle, so a later resume adopts them the normal way);
    // everything else is pending for the executor backend.
    std::vector<std::size_t> pending;
    pending.reserve(batch.jobs.size());
    for (const ExperimentJob &job : batch.jobs) {
        JobOutcome &out = batch.outcomes[job.index];
        if (auto it = resumed.find(jobKey(job));
            it != resumed.end()) {
            out.state = JobState::Ok;
            out.result = it->second;
            out.resumed = true;
            note(job, out);
            continue;
        }
        if (rcache && spec.telemetryDir.empty()) {
            std::string payload;
            if (rcache->get(cache_keys[job.index], payload)) {
                JobOutcome hit;
                bool parsed = false;
                try {
                    hit.result = resultFromJson(payload);
                    parsed = true;
                } catch (const std::exception &e) {
                    // Checksum-valid bytes that still fail to parse
                    // mean a schema drift the version field missed.
                    rcache->quarantine(
                        cache_keys[job.index],
                        std::string("verified payload failed to "
                                    "parse: ") +
                            e.what());
                }
                if (parsed) {
                    hit.state = JobState::Ok;
                    hit.error = ErrorCode::Ok;
                    hit.cacheHit = true;
                    settle(job.index, std::move(hit));
                    continue;
                }
            }
        }
        pending.push_back(job.index);
    }

    if (backend)
        backend->execute(spec, batch.jobs, pending, settle);
    else
        runInProcess(spec, batch.jobs, pending, settle, arch_ckpts,
                     jobs_);

    if (rcache) {
        cache::CacheStats cs = rcache->stats();
        batch.cacheHits = cs.hits;
        batch.cacheStores = cs.stores;
        batch.cacheQuarantined = cs.quarantined;
    }
    return batch;
}

std::vector<SimResult>
ExperimentRunner::run(const ExperimentSpec &spec) const
{
    BatchOutcome batch = runAll(spec);
    for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
        const JobOutcome &o = batch.outcomes[i];
        if (o.state == JobState::Ok)
            continue;
        throw SimError(o.error == ErrorCode::Ok ? ErrorCode::Internal
                                                : o.error,
                       jobKey(batch.jobs[i]) + " " +
                           jobStateName(o.state) + ": " +
                           o.errorDetail);
    }
    std::vector<SimResult> results;
    results.reserve(batch.outcomes.size());
    for (JobOutcome &o : batch.outcomes)
        results.push_back(std::move(o.result));
    return results;
}

} // namespace exp
} // namespace mlpwin
