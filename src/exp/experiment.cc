#include "exp/experiment.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "exp/checkpoint.hh"
#include "exp/thread_pool.hh"
#include "profile/profiler.hh"
#include "sample/checkpoint.hh"
#include "telemetry/export.hh"
#include "telemetry/timeline.hh"
#include "workloads/suite.hh"

namespace mlpwin
{
namespace exp
{

std::string
ModelSpec::displayLabel() const
{
    if (!label.empty())
        return label;
    std::string s = modelName(model);
    if (model == ModelKind::Fixed || model == ModelKind::Ideal)
        s += std::to_string(level);
    return s;
}

bool
parseModelSpec(const std::string &token, ModelSpec &out)
{
    std::string name = token;
    std::string level;
    if (auto colon = token.find(':'); colon != std::string::npos) {
        name = token.substr(0, colon);
        level = token.substr(colon + 1);
    }
    bool found = false;
    for (ModelKind m : {ModelKind::Base, ModelKind::Fixed,
                        ModelKind::Ideal, ModelKind::Resizing,
                        ModelKind::Runahead, ModelKind::Occupancy,
                        ModelKind::Wib}) {
        if (name == modelName(m)) {
            out.model = m;
            found = true;
            break;
        }
    }
    if (!found)
        return false;
    out.level = 1;
    if (!level.empty()) {
        char *end = nullptr;
        unsigned long v = std::strtoul(level.c_str(), &end, 10);
        if (*end != '\0' || v == 0 || v > 16)
            return false;
        out.level = static_cast<unsigned>(v);
    }
    out.label.clear();
    return true;
}

std::vector<ExperimentJob>
expandSpec(const ExperimentSpec &spec)
{
    std::vector<ExperimentJob> jobs;
    jobs.reserve(spec.jobCount());
    for (const std::string &w : spec.workloads) {
        for (const ModelSpec &m : spec.models) {
            ExperimentJob job;
            job.index = jobs.size();
            job.workload = w;
            job.model = m;
            job.cfg = spec.base;
            job.cfg.model = m.model;
            job.cfg.fixedLevel = m.level;
            if (spec.configure)
                spec.configure(job.cfg, job);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

std::string
jobKey(const ExperimentJob &job)
{
    return job.workload + "/" + job.model.displayLabel();
}

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Ok:
        return "ok";
      case JobState::Failed:
        return "failed";
      case JobState::Timeout:
        return "timeout";
      case JobState::Skipped:
        return "skipped";
    }
    return "?";
}

std::size_t
BatchOutcome::count(JobState s) const
{
    std::size_t n = 0;
    for (const JobOutcome &o : outcomes)
        if (o.state == s)
            ++n;
    return n;
}

namespace
{

/** Per-job telemetry file stem: "<workload>.<label>". */
std::string
jobFileStem(const ExperimentJob &job)
{
    return job.workload + "." + job.model.displayLabel();
}

/**
 * Execute one job: build its Simulator (with the spec's deadline /
 * abort wiring and optional telemetry), run, and write the per-job
 * telemetry files. Telemetry-file trouble throws SimError{Io}, the
 * one failure class the retry loop treats as transient.
 */
SimResult
executeJob(const ExperimentSpec &spec, const ExperimentJob &job,
           const ArchCheckpoint *arch_ckpt)
{
    ScopedSpan span(SpanKind::Job, jobKey(job));

    if (spec.executor)
        return spec.executor(job);

    SimConfig cfg = job.cfg;
    cfg.startCheckpoint = arch_ckpt;

    // A '+'-separated workload is an SMT co-schedule; a single name
    // on a multi-thread config is replicated onto every thread.
    std::vector<std::string> parts = splitWorkloadSpec(job.workload);
    if (parts.size() == 1 && cfg.core.smt.nThreads > 1)
        parts.assign(cfg.core.smt.nThreads, parts[0]);
    std::vector<Program> progs;
    progs.reserve(parts.size());
    for (const std::string &part : parts)
        progs.push_back(findWorkload(part).make(spec.iterations));
    Simulator sim(cfg, progs);

    if (spec.jobTimeoutSeconds > 0.0)
        sim.setDeadline(std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                spec.jobTimeoutSeconds)));
    if (spec.abortFlag)
        sim.setAbortFlag(spec.abortFlag);

    if (spec.telemetryDir.empty())
        return sim.run();

    IntervalSampler sampler(spec.telemetryInterval);
    EventTimeline timeline;
    sim.setSampler(&sampler);
    sim.setTimeline(&timeline);

    SimResult r = sim.run();

    std::string stem = spec.telemetryDir + "/" + jobFileStem(job);
    std::ofstream series(stem + ".telemetry.jsonl");
    if (!series)
        throw SimError(ErrorCode::Io, "cannot open " + stem +
                                          ".telemetry.jsonl");
    writeTelemetryJsonl(series, sampler);

    std::ofstream trace(stem + ".trace.json");
    if (!trace)
        throw SimError(ErrorCode::Io,
                       "cannot open " + stem + ".trace.json");
    writeChromeTrace(trace, timeline, jobFileStem(job));
    return r;
}

/** Map a caught SimError onto the outcome record. */
void
recordFailure(JobOutcome &out, const SimError &e)
{
    out.error = e.code();
    out.errorDetail = e.message();
    if (e.hasDump())
        out.dumpJson = e.dump().toJson();
    switch (e.code()) {
      case ErrorCode::Timeout:
        out.state = JobState::Timeout;
        break;
      case ErrorCode::Interrupted:
        out.state = JobState::Skipped;
        break;
      default:
        out.state = JobState::Failed;
        break;
    }
}

} // namespace

ExperimentRunner::ExperimentRunner(unsigned jobs, bool progress)
    : jobs_(ThreadPool::resolveThreads(jobs)), progress_(progress)
{}

BatchOutcome
ExperimentRunner::runAll(const ExperimentSpec &spec) const
{
    // Force suite construction (and its magic static) before any
    // worker races to it, and fail fast on unknown workload names —
    // findWorkload throws a SimError listing the valid names. The
    // test-seam executor may use synthetic names, so skip then.
    if (!spec.executor)
        for (const std::string &w : spec.workloads)
            for (const std::string &part : splitWorkloadSpec(w))
                findWorkload(part);

    // Create the telemetry directory once, before workers race to
    // open files inside it.
    if (!spec.telemetryDir.empty())
        std::filesystem::create_directories(spec.telemetryDir);

    BatchOutcome batch;
    batch.jobs = expandSpec(spec);
    batch.outcomes.resize(batch.jobs.size());

    // Load each workload's architectural checkpoint exactly once, up
    // front: a missing file fails the batch before simulation time is
    // spent, and the (read-only) image is shared by every cell of
    // that workload's row.
    std::map<std::string, ArchCheckpoint> arch_ckpts;
    if (!spec.archCheckpointDir.empty() && !spec.executor) {
        for (const std::string &w : spec.workloads) {
            if (arch_ckpts.count(w))
                continue;
            arch_ckpts.emplace(
                w, ArchCheckpoint::loadFile(spec.archCheckpointDir +
                                            "/" + w + ".ckpt"));
        }
    }

    std::map<std::string, SimResult> resumed;
    if (spec.resume && !spec.checkpointPath.empty())
        resumed = loadCheckpoint(spec.checkpointPath);
    std::unique_ptr<CheckpointWriter> ckpt;
    if (!spec.checkpointPath.empty())
        ckpt = std::make_unique<CheckpointWriter>(spec.checkpointPath,
                                                  spec.resume);

    const auto start = std::chrono::steady_clock::now();
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;

    auto note = [&](const ExperimentJob &job, const JobOutcome &out) {
        std::size_t n = ++done;
        if (!progress_)
            return;
        double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        double eta = n ? elapsed / static_cast<double>(n) *
                             static_cast<double>(batch.jobs.size() - n)
                       : 0.0;
        std::lock_guard<std::mutex> lock(progress_mutex);
        if (out.state == JobState::Ok) {
            std::fprintf(
                stderr,
                "  [%zu/%zu] %s%s ipc %.3f  elapsed %.1fs eta "
                "%.1fs\n",
                n, batch.jobs.size(), jobKey(job).c_str(),
                out.resumed ? " [resumed]" : "", out.result.ipc,
                elapsed, eta);
        } else {
            std::fprintf(stderr, "  [%zu/%zu] %s %s: %s\n", n,
                         batch.jobs.size(), jobKey(job).c_str(),
                         jobStateName(out.state),
                         out.errorDetail.c_str());
        }
    };

    auto run_one = [&](const ExperimentJob &job) {
        JobOutcome &out = batch.outcomes[job.index];

        if (auto it = resumed.find(jobKey(job));
            it != resumed.end()) {
            out.state = JobState::Ok;
            out.result = it->second;
            out.resumed = true;
            note(job, out);
            return;
        }
        if (spec.cancelRequested && spec.cancelRequested()) {
            out.state = JobState::Skipped;
            out.error = ErrorCode::Interrupted;
            out.errorDetail = "cancelled before start";
            note(job, out);
            return;
        }

        const auto job_start = std::chrono::steady_clock::now();
        for (unsigned attempt = 1;; ++attempt) {
            out.attempts = attempt;
            const ArchCheckpoint *arch = nullptr;
            if (auto ck = arch_ckpts.find(job.workload);
                ck != arch_ckpts.end())
                arch = &ck->second;
            try {
                out.result = executeJob(spec, job, arch);
                out.state = JobState::Ok;
                out.error = ErrorCode::Ok;
                out.errorDetail.clear();
                out.dumpJson.clear();
                break;
            } catch (const SimError &e) {
                recordFailure(out, e);
            } catch (const std::exception &e) {
                out.state = JobState::Failed;
                out.error = ErrorCode::Internal;
                out.errorDetail = e.what();
            }
            bool cancelled =
                spec.cancelRequested && spec.cancelRequested();
            if (!errorCodeTransient(out.error) ||
                attempt >= std::max(spec.maxAttempts, 1u) ||
                cancelled)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<std::uint64_t>(spec.retryBackoffMs) *
                attempt));
        }
        out.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - job_start)
                .count();

        // Skipped jobs are deliberately NOT checkpointed: a resume
        // must re-run interrupted cells. Failed/timeout records are
        // kept for postmortems but never adopted by loadCheckpoint.
        if (ckpt && out.state != JobState::Skipped)
            ckpt->append(job, out);
        note(job, out);
    };

    if (jobs_ <= 1) {
        // Serial reference path: no pool, same submission order.
        for (const ExperimentJob &job : batch.jobs)
            run_one(job);
    } else {
        ThreadPool pool(jobs_);
        std::vector<std::future<void>> futures;
        futures.reserve(batch.jobs.size());
        for (const ExperimentJob &job : batch.jobs)
            futures.push_back(pool.submit([&run_one, &job] {
                run_one(job);
            }));
        for (std::future<void> &f : futures)
            f.get();
    }
    return batch;
}

std::vector<SimResult>
ExperimentRunner::run(const ExperimentSpec &spec) const
{
    BatchOutcome batch = runAll(spec);
    for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
        const JobOutcome &o = batch.outcomes[i];
        if (o.state == JobState::Ok)
            continue;
        throw SimError(o.error == ErrorCode::Ok ? ErrorCode::Internal
                                                : o.error,
                       jobKey(batch.jobs[i]) + " " +
                           jobStateName(o.state) + ": " +
                           o.errorDetail);
    }
    std::vector<SimResult> results;
    results.reserve(batch.outcomes.size());
    for (JobOutcome &o : batch.outcomes)
        results.push_back(std::move(o.result));
    return results;
}

} // namespace exp
} // namespace mlpwin
