#include "exp/experiment.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "exp/thread_pool.hh"
#include "telemetry/export.hh"
#include "telemetry/timeline.hh"
#include "workloads/suite.hh"

namespace mlpwin
{
namespace exp
{

std::string
ModelSpec::displayLabel() const
{
    if (!label.empty())
        return label;
    std::string s = modelName(model);
    if (model == ModelKind::Fixed || model == ModelKind::Ideal)
        s += std::to_string(level);
    return s;
}

bool
parseModelSpec(const std::string &token, ModelSpec &out)
{
    std::string name = token;
    std::string level;
    if (auto colon = token.find(':'); colon != std::string::npos) {
        name = token.substr(0, colon);
        level = token.substr(colon + 1);
    }
    bool found = false;
    for (ModelKind m : {ModelKind::Base, ModelKind::Fixed,
                        ModelKind::Ideal, ModelKind::Resizing,
                        ModelKind::Runahead, ModelKind::Occupancy,
                        ModelKind::Wib}) {
        if (name == modelName(m)) {
            out.model = m;
            found = true;
            break;
        }
    }
    if (!found)
        return false;
    out.level = 1;
    if (!level.empty()) {
        char *end = nullptr;
        unsigned long v = std::strtoul(level.c_str(), &end, 10);
        if (*end != '\0' || v == 0 || v > 16)
            return false;
        out.level = static_cast<unsigned>(v);
    }
    out.label.clear();
    return true;
}

std::vector<ExperimentJob>
expandSpec(const ExperimentSpec &spec)
{
    std::vector<ExperimentJob> jobs;
    jobs.reserve(spec.jobCount());
    for (const std::string &w : spec.workloads) {
        for (const ModelSpec &m : spec.models) {
            ExperimentJob job;
            job.index = jobs.size();
            job.workload = w;
            job.model = m;
            job.cfg = spec.base;
            job.cfg.model = m.model;
            job.cfg.fixedLevel = m.level;
            if (spec.configure)
                spec.configure(job.cfg, job);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

namespace
{

/** Per-job telemetry file stem: "<workload>.<label>". */
std::string
jobFileStem(const ExperimentJob &job)
{
    return job.workload + "." + job.model.displayLabel();
}

/**
 * Like runWorkload, but with an interval sampler and event timeline
 * attached; both are written under spec.telemetryDir after the run.
 */
SimResult
runJobWithTelemetry(const ExperimentSpec &spec,
                    const ExperimentJob &job)
{
    const WorkloadSpec &ws = findWorkload(job.workload);
    Program prog = ws.make(spec.iterations);
    Simulator sim(job.cfg, prog);

    IntervalSampler sampler(spec.telemetryInterval);
    EventTimeline timeline;
    sim.setSampler(&sampler);
    sim.setTimeline(&timeline);

    SimResult r = sim.run();

    std::string stem = spec.telemetryDir + "/" + jobFileStem(job);
    std::ofstream series(stem + ".telemetry.jsonl");
    if (!series)
        throw std::runtime_error("cannot open " + stem +
                                 ".telemetry.jsonl");
    writeTelemetryJsonl(series, sampler);

    std::ofstream trace(stem + ".trace.json");
    if (!trace)
        throw std::runtime_error("cannot open " + stem +
                                 ".trace.json");
    writeChromeTrace(trace, timeline, jobFileStem(job));
    return r;
}

} // namespace

ExperimentRunner::ExperimentRunner(unsigned jobs, bool progress)
    : jobs_(ThreadPool::resolveThreads(jobs)), progress_(progress)
{}

std::vector<SimResult>
ExperimentRunner::run(const ExperimentSpec &spec) const
{
    // Force suite construction (and its magic static) before any
    // worker races to it, and fail fast on unknown workload names.
    for (const std::string &w : spec.workloads)
        findWorkload(w);

    // Create the telemetry directory once, before workers race to
    // open files inside it.
    if (!spec.telemetryDir.empty())
        std::filesystem::create_directories(spec.telemetryDir);

    const std::vector<ExperimentJob> jobs = expandSpec(spec);
    std::vector<SimResult> results(jobs.size());
    std::vector<std::exception_ptr> errors(jobs.size());

    const auto start = std::chrono::steady_clock::now();
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;

    auto run_one = [&](const ExperimentJob &job) {
        try {
            results[job.index] = spec.telemetryDir.empty()
                ? runWorkload(job.workload, job.cfg, spec.iterations)
                : runJobWithTelemetry(spec, job);
        } catch (...) {
            errors[job.index] = std::current_exception();
        }
        std::size_t n = ++done;
        if (!progress_)
            return;
        double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        double eta = n ? elapsed / static_cast<double>(n) *
                             static_cast<double>(jobs.size() - n)
                       : 0.0;
        std::lock_guard<std::mutex> lock(progress_mutex);
        std::fprintf(stderr,
                     "  [%zu/%zu] %s/%s ipc %.3f  elapsed %.1fs eta "
                     "%.1fs\n",
                     n, jobs.size(), job.workload.c_str(),
                     job.model.displayLabel().c_str(),
                     results[job.index].ipc, elapsed, eta);
    };

    if (jobs_ <= 1) {
        // Serial reference path: no pool, same submission order.
        for (const ExperimentJob &job : jobs)
            run_one(job);
    } else {
        ThreadPool pool(jobs_);
        std::vector<std::future<void>> futures;
        futures.reserve(jobs.size());
        for (const ExperimentJob &job : jobs)
            futures.push_back(pool.submit([&run_one, &job] {
                run_one(job);
            }));
        for (std::future<void> &f : futures)
            f.get();
    }

    for (std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
    return results;
}

} // namespace exp
} // namespace mlpwin
