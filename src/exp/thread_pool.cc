#include "exp/thread_pool.hh"

#include <stdexcept>
#include <utility>

namespace mlpwin
{
namespace exp
{

unsigned
ThreadPool::resolveThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned num_threads)
{
    unsigned n = resolveThreads(num_threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

std::future<void>
ThreadPool::submit(std::function<void()> job)
{
    std::packaged_task<void()> task(std::move(job));
    std::future<void> fut = task.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            throw std::runtime_error(
                "ThreadPool::submit after shutdown");
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
    return fut;
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_ && workers_.empty())
            return;
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // Exceptions land in the associated future.
    }
}

} // namespace exp
} // namespace mlpwin
