#include "exp/result_writer.hh"

#include <stdexcept>

#include "common/json.hh"
#include "mem/cache.hh"

namespace mlpwin
{
namespace exp
{

namespace
{

template <typename T, typename Fmt>
std::string
joinArray(const T *vals, std::size_t n, Fmt fmt, const char *sep)
{
    std::string out;
    for (std::size_t i = 0; i < n; ++i) {
        if (i)
            out += sep;
        out += fmt(vals[i]);
    }
    return out;
}

void
readU64Array(const JsonValue &v, std::uint64_t *out, std::size_t n)
{
    // Shorter arrays are accepted with trailing zeros: provenance
    // arrays written before a Provenance leaf was appended (e.g.
    // PtWalk) load with that leaf at 0.
    if (v.kind != JsonValue::Kind::Array || v.array.size() > n)
        throw std::runtime_error("JSON: expected array of at most " +
                                 std::to_string(n));
    for (std::size_t i = 0; i < v.array.size(); ++i)
        out[i] = v.array[i].asU64();
}

/** {"base":N,...} keyed by cpiComponentName, leaf order. */
std::string
cpiStackToJson(const CpiStack &cpi)
{
    std::string out = "{";
    for (std::size_t i = 0; i < kNumCpiComponents; ++i) {
        if (i)
            out += ',';
        out += '"';
        out += cpiComponentName(static_cast<CpiComponent>(i));
        out += "\":" + fmtU64(cpi.counts[i]);
    }
    out += "}";
    return out;
}

CpiStack
cpiStackFromJson(const JsonValue &v)
{
    if (v.kind != JsonValue::Kind::Object)
        throw std::runtime_error("JSON: cpi stack must be an object");
    CpiStack cpi;
    for (std::size_t i = 0; i < kNumCpiComponents; ++i) {
        // Leaves appended after a record was written (the taxonomy is
        // append-only) load as zero.
        const char *name =
            cpiComponentName(static_cast<CpiComponent>(i));
        if (v.hasField(name))
            cpi.counts[i] = v.field(name).asU64();
    }
    return cpi;
}

} // namespace

std::string
resultToJson(const SimResult &r)
{
    auto u64s = [](const std::uint64_t *vals, std::size_t n) {
        return "[" + joinArray(vals, n, fmtU64, ",") + "]";
    };

    std::string s = "{";
    s += "\"workload\":\"" + jsonEscape(r.workload) + "\"";
    s += ",\"model\":\"" + jsonEscape(r.model) + "\"";
    s += std::string(",\"halted\":") + (r.halted ? "true" : "false");
    s += ",\"cycles\":" + fmtU64(r.cycles);
    s += ",\"committed\":" + fmtU64(r.committed);
    s += ",\"ipc\":" + fmtDouble(r.ipc);
    s += ",\"avg_load_latency\":" + fmtDouble(r.avgLoadLatency);
    s += ",\"observed_mlp\":" + fmtDouble(r.observedMlp);
    s += ",\"committed_branches\":" + fmtU64(r.committedBranches);
    s += ",\"committed_mispredicts\":" +
         fmtU64(r.committedMispredicts);
    s += ",\"squashed\":" + fmtU64(r.squashed);
    s += ",\"l2_demand_misses\":" + fmtU64(r.l2DemandMisses);
    s += ",\"l2_pollution\":{\"brought\":" +
         u64s(r.l2Pollution.brought, kNumProvenances) +
         ",\"useful\":" + u64s(r.l2Pollution.useful, kNumProvenances) +
         "}";
    s += ",\"cycles_at_level\":" +
         u64s(r.cyclesAtLevel.data(), r.cyclesAtLevel.size());
    const EnergyInputs &e = r.energyInputs;
    s += ",\"energy_inputs\":{";
    s += "\"cycles\":" + fmtU64(e.cycles);
    s += ",\"fetched\":" + fmtU64(e.fetched);
    s += ",\"dispatched\":" + fmtU64(e.dispatched);
    s += ",\"issued\":" + fmtU64(e.issued);
    s += ",\"committed\":" + fmtU64(e.committed);
    s += ",\"loads\":" + fmtU64(e.loads);
    s += ",\"stores\":" + fmtU64(e.stores);
    s += ",\"l1i_accesses\":" + fmtU64(e.l1iAccesses);
    s += ",\"l1d_accesses\":" + fmtU64(e.l1dAccesses);
    s += ",\"l2_accesses\":" + fmtU64(e.l2Accesses);
    s += ",\"dram_accesses\":" + fmtU64(e.dramAccesses);
    s += ",\"iq_size_cycles\":" + fmtU64(e.iqSizeCycles);
    s += ",\"rob_size_cycles\":" + fmtU64(e.robSizeCycles);
    s += ",\"lsq_size_cycles\":" + fmtU64(e.lsqSizeCycles);
    s += "}";
    s += ",\"energy_total\":" + fmtDouble(r.energyTotal);
    s += ",\"edp\":" + fmtDouble(r.edp);
    s += ",\"runahead_episodes\":" + fmtU64(r.runaheadEpisodes);
    s += ",\"runahead_useless\":" + fmtU64(r.runaheadUseless);
    s += ",\"arch_reg_checksum\":" + fmtU64(r.archRegChecksum);
    s += std::string(",\"sampled\":") + (r.sampled ? "true" : "false");
    s += ",\"sample_intervals\":" + fmtU64(r.sampleIntervals);
    s += ",\"ff_insts\":" + fmtU64(r.ffInsts);
    s += ",\"ipc_ci95\":" + fmtDouble(r.ipcCi95);
    s += ",\"commit_stream_hash\":" + fmtU64(r.commitStreamHash);
    s += ",\"n_threads\":" + fmtU64(r.nThreads);
    s += ",\"fetch_policy\":\"" + jsonEscape(r.fetchPolicy) + "\"";
    s += ",\"partition_policy\":\"" + jsonEscape(r.partitionPolicy) +
         "\"";
    auto dbls = [](const double *vals, std::size_t n) {
        return "[" + joinArray(vals, n, fmtDouble, ",") + "]";
    };
    s += ",\"thread_ipc\":" +
         dbls(r.threadIpc.data(), r.threadIpc.size());
    s += ",\"thread_committed\":" +
         u64s(r.threadCommitted.data(), r.threadCommitted.size());
    s += ",\"thread_commit_hash\":" +
         u64s(r.threadCommitHash.data(), r.threadCommitHash.size());
    s += ",\"thread_observed_mlp\":" +
         dbls(r.threadObservedMlp.data(), r.threadObservedMlp.size());
    s += ",\"stp\":" + fmtDouble(r.stp);
    s += ",\"antt\":" + fmtDouble(r.antt);
    s += ",\"hmean_speedup\":" + fmtDouble(r.hmeanSpeedup);
    s += ",\"cpi\":" + cpiStackToJson(r.cpiTotal());
    s += ",\"thread_cpi\":[";
    for (std::size_t i = 0; i < r.threadCpi.size(); ++i) {
        if (i)
            s += ',';
        s += cpiStackToJson(r.threadCpi[i]);
    }
    s += "]";
    s += std::string(",\"vm_enabled\":") +
         (r.vmEnabled ? "true" : "false");
    s += ",\"vm\":{";
    s += "\"itlb_accesses\":" + fmtU64(r.vm.itlbAccesses);
    s += ",\"itlb_misses\":" + fmtU64(r.vm.itlbMisses);
    s += ",\"dtlb_accesses\":" + fmtU64(r.vm.dtlbAccesses);
    s += ",\"dtlb_misses\":" + fmtU64(r.vm.dtlbMisses);
    s += ",\"stlb_accesses\":" + fmtU64(r.vm.stlbAccesses);
    s += ",\"stlb_misses\":" + fmtU64(r.vm.stlbMisses);
    s += ",\"walks\":" + fmtU64(r.vm.walks);
    s += ",\"walk_cycles\":" + fmtU64(r.vm.walkCycles);
    s += ",\"pt_accesses\":" + fmtU64(r.vm.ptAccesses);
    s += "}";
    s += "}";
    return s;
}

SimResult
resultFromJson(const std::string &json)
{
    JsonValue root = JsonParser(json).parse();
    if (root.kind != JsonValue::Kind::Object)
        throw std::runtime_error("JSON: result must be an object");

    SimResult r;
    r.workload = root.field("workload").asString();
    r.model = root.field("model").asString();
    r.halted = root.field("halted").asBool();
    r.cycles = root.field("cycles").asU64();
    r.committed = root.field("committed").asU64();
    r.ipc = root.field("ipc").asDouble();
    r.avgLoadLatency = root.field("avg_load_latency").asDouble();
    r.observedMlp = root.field("observed_mlp").asDouble();
    r.committedBranches = root.field("committed_branches").asU64();
    r.committedMispredicts =
        root.field("committed_mispredicts").asU64();
    r.squashed = root.field("squashed").asU64();
    r.l2DemandMisses = root.field("l2_demand_misses").asU64();

    const JsonValue &pol = root.field("l2_pollution");
    readU64Array(pol.field("brought"), r.l2Pollution.brought,
                 kNumProvenances);
    readU64Array(pol.field("useful"), r.l2Pollution.useful,
                 kNumProvenances);

    const JsonValue &levels = root.field("cycles_at_level");
    if (levels.kind != JsonValue::Kind::Array)
        throw std::runtime_error("JSON: cycles_at_level not an array");
    for (const JsonValue &v : levels.array)
        r.cyclesAtLevel.push_back(v.asU64());

    const JsonValue &en = root.field("energy_inputs");
    EnergyInputs &e = r.energyInputs;
    e.cycles = en.field("cycles").asU64();
    e.fetched = en.field("fetched").asU64();
    e.dispatched = en.field("dispatched").asU64();
    e.issued = en.field("issued").asU64();
    e.committed = en.field("committed").asU64();
    e.loads = en.field("loads").asU64();
    e.stores = en.field("stores").asU64();
    e.l1iAccesses = en.field("l1i_accesses").asU64();
    e.l1dAccesses = en.field("l1d_accesses").asU64();
    e.l2Accesses = en.field("l2_accesses").asU64();
    e.dramAccesses = en.field("dram_accesses").asU64();
    e.iqSizeCycles = en.field("iq_size_cycles").asU64();
    e.robSizeCycles = en.field("rob_size_cycles").asU64();
    e.lsqSizeCycles = en.field("lsq_size_cycles").asU64();

    r.energyTotal = root.field("energy_total").asDouble();
    r.edp = root.field("edp").asDouble();
    r.runaheadEpisodes = root.field("runahead_episodes").asU64();
    r.runaheadUseless = root.field("runahead_useless").asU64();
    r.archRegChecksum = root.field("arch_reg_checksum").asU64();
    // Sampling fields postdate the v1 schema; records written before
    // them load with the (correct) unsampled defaults.
    if (root.hasField("sampled")) {
        r.sampled = root.field("sampled").asBool();
        r.sampleIntervals = root.field("sample_intervals").asU64();
        r.ffInsts = root.field("ff_insts").asU64();
        r.ipcCi95 = root.field("ipc_ci95").asDouble();
    }
    // SMT fields postdate the sampling schema; older records load
    // with the single-thread defaults.
    if (root.hasField("n_threads")) {
        r.commitStreamHash =
            root.field("commit_stream_hash").asU64();
        r.nThreads =
            static_cast<unsigned>(root.field("n_threads").asU64());
        r.fetchPolicy = root.field("fetch_policy").asString();
        r.partitionPolicy = root.field("partition_policy").asString();
        auto readDoubles = [](const JsonValue &v,
                              std::vector<double> &out) {
            if (v.kind != JsonValue::Kind::Array)
                throw std::runtime_error(
                    "JSON: expected an array of doubles");
            for (const JsonValue &x : v.array)
                out.push_back(x.asDouble());
        };
        auto readU64s = [](const JsonValue &v,
                           std::vector<std::uint64_t> &out) {
            if (v.kind != JsonValue::Kind::Array)
                throw std::runtime_error(
                    "JSON: expected an array of u64");
            for (const JsonValue &x : v.array)
                out.push_back(x.asU64());
        };
        readDoubles(root.field("thread_ipc"), r.threadIpc);
        readU64s(root.field("thread_committed"), r.threadCommitted);
        readU64s(root.field("thread_commit_hash"),
                 r.threadCommitHash);
        readDoubles(root.field("thread_observed_mlp"),
                    r.threadObservedMlp);
        r.stp = root.field("stp").asDouble();
        r.antt = root.field("antt").asDouble();
        r.hmeanSpeedup = root.field("hmean_speedup").asDouble();
    }
    // CPI stacks postdate the SMT schema; older records load with
    // empty stacks (the aggregate "cpi" object is derived from
    // thread_cpi, so only the per-thread array is read back).
    if (root.hasField("cpi")) {
        const JsonValue &tc = root.field("thread_cpi");
        if (tc.kind != JsonValue::Kind::Array)
            throw std::runtime_error(
                "JSON: thread_cpi not an array");
        for (const JsonValue &v : tc.array)
            r.threadCpi.push_back(cpiStackFromJson(v));
    }
    // vm fields postdate the CPI schema; pre-paging records load with
    // paging off and all-zero counters.
    if (root.hasField("vm_enabled")) {
        r.vmEnabled = root.field("vm_enabled").asBool();
        const JsonValue &v = root.field("vm");
        r.vm.itlbAccesses = v.field("itlb_accesses").asU64();
        r.vm.itlbMisses = v.field("itlb_misses").asU64();
        r.vm.dtlbAccesses = v.field("dtlb_accesses").asU64();
        r.vm.dtlbMisses = v.field("dtlb_misses").asU64();
        r.vm.stlbAccesses = v.field("stlb_accesses").asU64();
        r.vm.stlbMisses = v.field("stlb_misses").asU64();
        r.vm.walks = v.field("walks").asU64();
        r.vm.walkCycles = v.field("walk_cycles").asU64();
        r.vm.ptAccesses = v.field("pt_accesses").asU64();
    }
    return r;
}

std::string
csvHeader()
{
    return "workload,model,halted,cycles,committed,ipc,"
           "avg_load_latency,observed_mlp,committed_branches,"
           "committed_mispredicts,squashed,l2_demand_misses,"
           "l2_brought,l2_useful,cycles_at_level,e_cycles,e_fetched,"
           "e_dispatched,e_issued,e_committed,e_loads,e_stores,"
           "e_l1i_accesses,e_l1d_accesses,e_l2_accesses,"
           "e_dram_accesses,e_iq_size_cycles,e_rob_size_cycles,"
           "e_lsq_size_cycles,energy_total,edp,runahead_episodes,"
           "runahead_useless,arch_reg_checksum,sampled,"
           "sample_intervals,ff_insts,ipc_ci95,commit_stream_hash,"
           "n_threads,fetch_policy,partition_policy,thread_ipc,"
           "thread_committed,thread_commit_hash,thread_observed_mlp,"
           "stp,antt,hmean_speedup,vm_enabled,vm_itlb_accesses,"
           "vm_itlb_misses,vm_dtlb_accesses,vm_dtlb_misses,"
           "vm_stlb_accesses,vm_stlb_misses,vm_walks,vm_walk_cycles,"
           "vm_pt_accesses,cpi_base,cpi_ifetch,cpi_bmiss,"
           "cpi_cache,cpi_dram,cpi_rob_full,cpi_iq_full,cpi_lsq_full,"
           "cpi_drain,cpi_runahead,cpi_smt_fetch,cpi_idle,"
           "cpi_tlb_walk";
}

std::string
resultToCsv(const SimResult &r)
{
    // Workload/model names contain no commas or quotes by
    // construction; arrays are ';'-joined inside one cell.
    std::string s;
    s += r.workload + "," + r.model + ",";
    s += r.halted ? "1," : "0,";
    s += fmtU64(r.cycles) + "," + fmtU64(r.committed) + ",";
    s += fmtDouble(r.ipc) + "," + fmtDouble(r.avgLoadLatency) + "," +
         fmtDouble(r.observedMlp) + ",";
    s += fmtU64(r.committedBranches) + "," +
         fmtU64(r.committedMispredicts) + "," + fmtU64(r.squashed) +
         "," + fmtU64(r.l2DemandMisses) + ",";
    s += joinArray(r.l2Pollution.brought, kNumProvenances, fmtU64,
                   ";") +
         ",";
    s += joinArray(r.l2Pollution.useful, kNumProvenances, fmtU64,
                   ";") +
         ",";
    s += joinArray(r.cyclesAtLevel.data(), r.cyclesAtLevel.size(),
                   fmtU64, ";") +
         ",";
    const EnergyInputs &e = r.energyInputs;
    for (std::uint64_t v :
         {e.cycles, e.fetched, e.dispatched, e.issued, e.committed,
          e.loads, e.stores, e.l1iAccesses, e.l1dAccesses,
          e.l2Accesses, e.dramAccesses, e.iqSizeCycles,
          e.robSizeCycles, e.lsqSizeCycles})
        s += fmtU64(v) + ",";
    s += fmtDouble(r.energyTotal) + "," + fmtDouble(r.edp) + ",";
    s += fmtU64(r.runaheadEpisodes) + "," +
         fmtU64(r.runaheadUseless) + ",";
    s += fmtU64(r.archRegChecksum) + ",";
    s += r.sampled ? "1," : "0,";
    s += fmtU64(r.sampleIntervals) + "," + fmtU64(r.ffInsts) + ",";
    s += fmtDouble(r.ipcCi95) + ",";
    s += fmtU64(r.commitStreamHash) + ",";
    s += fmtU64(r.nThreads) + ",";
    s += r.fetchPolicy + "," + r.partitionPolicy + ",";
    s += joinArray(r.threadIpc.data(), r.threadIpc.size(), fmtDouble,
                   ";") +
         ",";
    s += joinArray(r.threadCommitted.data(), r.threadCommitted.size(),
                   fmtU64, ";") +
         ",";
    s += joinArray(r.threadCommitHash.data(),
                   r.threadCommitHash.size(), fmtU64, ";") +
         ",";
    s += joinArray(r.threadObservedMlp.data(),
                   r.threadObservedMlp.size(), fmtDouble, ";") +
         ",";
    s += fmtDouble(r.stp) + "," + fmtDouble(r.antt) + "," +
         fmtDouble(r.hmeanSpeedup) + ",";
    s += r.vmEnabled ? "1" : "0";
    for (std::uint64_t v :
         {r.vm.itlbAccesses, r.vm.itlbMisses, r.vm.dtlbAccesses,
          r.vm.dtlbMisses, r.vm.stlbAccesses, r.vm.stlbMisses,
          r.vm.walks, r.vm.walkCycles, r.vm.ptAccesses})
        s += "," + fmtU64(v);
    const CpiStack total = r.cpiTotal();
    for (std::uint64_t v : total.counts)
        s += "," + fmtU64(v);
    return s;
}

ResultWriter::ResultWriter(std::ostream &os, Format format)
    : os_(os), format_(format)
{}

void
ResultWriter::write(const SimResult &r)
{
    if (format_ == Format::Csv) {
        if (rows_ == 0)
            os_ << csvHeader() << "\n";
        os_ << resultToCsv(r) << "\n";
    } else {
        os_ << resultToJson(r) << "\n";
    }
    ++rows_;
}

void
ResultWriter::writeAll(const std::vector<SimResult> &results)
{
    for (const SimResult &r : results)
        write(r);
}

} // namespace exp
} // namespace mlpwin
