/**
 * @file
 * Machine-readable SimResult serialization: one-line JSON objects
 * (JSON Lines) and CSV, covering every field — per-level cycle
 * residency, energy inputs, and pollution provenance included — plus
 * a parser for the same JSON schema so pipelines (and tests) can
 * round-trip results exactly. Doubles are printed with %.17g, so a
 * parse of the output reproduces the in-memory value bit-for-bit.
 */

#ifndef MLPWIN_EXP_RESULT_WRITER_HH
#define MLPWIN_EXP_RESULT_WRITER_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace mlpwin
{
namespace exp
{

/** Serialize one result as a single-line JSON object (no newline). */
std::string resultToJson(const SimResult &r);

/**
 * Parse a JSON object produced by resultToJson back into a
 * SimResult.
 *
 * @throws std::runtime_error on malformed input or a missing field.
 */
SimResult resultFromJson(const std::string &json);

/** CSV column header matching resultToCsv (no newline). */
std::string csvHeader();

/**
 * One CSV row (no newline). Array-valued fields (cyclesAtLevel,
 * pollution provenance counts) are ';'-joined inside one cell.
 */
std::string resultToCsv(const SimResult &r);

/** Streams results as JSONL or CSV (header emitted on first row). */
class ResultWriter
{
  public:
    enum class Format
    {
        Jsonl,
        Csv,
    };

    /** @param os Sink; must outlive the writer. */
    ResultWriter(std::ostream &os, Format format);

    /** Append one result (writes the CSV header before row one). */
    void write(const SimResult &r);

    /** Convenience: write a whole batch in order. */
    void writeAll(const std::vector<SimResult> &results);

    std::size_t rowsWritten() const { return rows_; }

  private:
    std::ostream &os_;
    Format format_;
    std::size_t rows_ = 0;
};

} // namespace exp
} // namespace mlpwin

#endif // MLPWIN_EXP_RESULT_WRITER_HH
