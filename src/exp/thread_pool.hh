/**
 * @file
 * A fixed-size worker pool with a plain FIFO job queue. No work
 * stealing, no priorities: jobs run in submission order as workers
 * free up, which keeps batch-experiment scheduling easy to reason
 * about. Exceptions thrown by a job are captured in the future
 * returned by submit(); shutdown() drains the queue, joins every
 * worker, and is safe to call more than once (the destructor calls
 * it too).
 */

#ifndef MLPWIN_EXP_THREAD_POOL_HH
#define MLPWIN_EXP_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mlpwin
{
namespace exp
{

/** See file comment. */
class ThreadPool
{
  public:
    /**
     * Start the workers immediately.
     *
     * @param num_threads Worker count; 0 means one worker per
     *        hardware thread (at least 1).
     */
    explicit ThreadPool(unsigned num_threads);

    /** Joins all workers (drains the queue first). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue a job. The returned future becomes ready when the job
     * finishes; if the job throws, future.get() rethrows.
     *
     * @throws std::runtime_error if called after shutdown().
     */
    std::future<void> submit(std::function<void()> job);

    /**
     * Stop accepting jobs, run everything already queued, and join
     * the workers. Idempotent: later calls return immediately.
     */
    void shutdown();

    /** Resolve a requested worker count (0 = hardware concurrency). */
    static unsigned resolveThreads(unsigned requested);

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::packaged_task<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

} // namespace exp
} // namespace mlpwin

#endif // MLPWIN_EXP_THREAD_POOL_HH
