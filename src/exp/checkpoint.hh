/**
 * @file
 * Incremental batch checkpointing: as each job of a batch finishes,
 * one self-contained JSONL record is appended (and flushed) to a
 * sidecar file, so a crashed or interrupted batch can be resumed with
 * only the in-flight jobs lost.
 *
 * Record schema (one line per finished job, completion order):
 *
 *   {"key":"<workload>/<label>","workload":"...","model":"...",
 *    "state":"ok|failed|timeout","error":"<code>","detail":"...",
 *    "attempts":N,"dump":{...}?,"result":{...}?}
 *
 * "result" is present only for ok records and is exactly the
 * resultToJson serialization — doubles print with %.17g, so a resumed
 * batch reproduces the in-memory SimResult bit-for-bit and its final
 * output is byte-identical to an uninterrupted run's. "result" is
 * always the record's last field (loadCheckpoint slices it out by
 * position after validating the line as JSON).
 *
 * On resume, only "ok" records are adopted; failed/timeout cells are
 * re-executed. Torn lines — the final line of a batch killed
 * mid-write, but also *interior* lines left behind when a worker
 * process was killed mid-append and the file was extended afterwards
 * — are skipped with a warning and counted, so the resume summary
 * can report how many records were lost rather than silently
 * re-running their cells.
 */

#ifndef MLPWIN_EXP_CHECKPOINT_HH
#define MLPWIN_EXP_CHECKPOINT_HH

#include <fstream>
#include <map>
#include <mutex>
#include <string>

#include "exp/experiment.hh"

namespace mlpwin
{
namespace exp
{

/** Serialize one finished job as a checkpoint line (no newline). */
std::string checkpointRecord(const ExperimentJob &job,
                             const JobOutcome &outcome);

/**
 * Read a checkpoint file and return the ok-state results keyed by
 * jobKey. A missing file yields an empty map (fresh start); malformed
 * lines — torn anywhere in the file, not just at the end — are
 * skipped with a warning rather than failing the resume.
 *
 * @param torn_lines When non-null, receives the number of non-empty
 *        lines that could not be used (truncated JSON, an interleaved
 *        write, an ok record missing its result payload).
 */
std::map<std::string, SimResult>
loadCheckpoint(const std::string &path,
               std::size_t *torn_lines = nullptr);

/** Thread-safe append-and-flush writer for checkpoint records. */
class CheckpointWriter
{
  public:
    /**
     * @param path Checkpoint file to create or extend.
     * @param append Keep existing records (resume) instead of
     *        truncating.
     * @throws SimError{Io} if the file cannot be opened.
     */
    CheckpointWriter(const std::string &path, bool append);

    /**
     * Append one record and flush. I/O trouble here degrades to a
     * warning: losing checkpoint durability must not fail the batch.
     */
    void append(const ExperimentJob &job, const JobOutcome &outcome);

  private:
    std::mutex mutex_;
    std::ofstream os_;
    std::string path_;
    bool warned_ = false;
};

} // namespace exp
} // namespace mlpwin

#endif // MLPWIN_EXP_CHECKPOINT_HH
