/**
 * @file
 * Declarative batch experiments: an ExperimentSpec names a run matrix
 * (workloads x models, with optional per-job config overrides), and
 * an ExperimentRunner expands it into independent jobs and executes
 * them across a thread pool — one private Simulator per job, results
 * aggregated in submission order so parallel output is bit-identical
 * to a serial run of the same spec.
 */

#ifndef MLPWIN_EXP_EXPERIMENT_HH
#define MLPWIN_EXP_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/sim_config.hh"
#include "sim/simulator.hh"
#include "telemetry/sampler.hh"

namespace mlpwin
{
namespace exp
{

/** One column of the run matrix: a model at a window level. */
struct ModelSpec
{
    ModelKind model = ModelKind::Base;
    /** Level used by Fixed/Ideal models (1-based). */
    unsigned level = 1;
    /** Display label; defaults to modelName (+ level for fixed/ideal). */
    std::string label;

    /** The label, or the default derived from model/level. */
    std::string displayLabel() const;
};

/**
 * Parse a model token of the form "name" or "name:level", e.g.
 * "resizing" or "fixed:3".
 *
 * @return false if the name or level is invalid.
 */
bool parseModelSpec(const std::string &token, ModelSpec &out);

struct ExperimentJob;

/** The full (workload x model) run matrix. */
struct ExperimentSpec
{
    /** Suite workload names (rows). */
    std::vector<std::string> workloads;
    /** Models (columns). */
    std::vector<ModelSpec> models;
    /**
     * Configuration shared by every job; model and fixedLevel are
     * overwritten from the job's ModelSpec.
     */
    SimConfig base;
    /** Program-generator outer iterations (bench runs use "forever"). */
    std::uint64_t iterations = 1ULL << 40;
    /**
     * Optional last-chance hook to tweak one job's config (e.g. a
     * per-cell parameter sweep). Runs after model/level are applied.
     */
    std::function<void(SimConfig &, const ExperimentJob &)> configure;

    /**
     * If non-empty, every job also writes interval telemetry and an
     * event timeline into this directory (created if missing) as
     * <workload>.<label>.telemetry.jsonl and
     * <workload>.<label>.trace.json.
     */
    std::string telemetryDir;
    /** Sampling interval for per-job telemetry, cycles. */
    Cycle telemetryInterval = kDefaultTelemetryInterval;

    /** workloads.size() * models.size(). */
    std::size_t jobCount() const
    {
        return workloads.size() * models.size();
    }
};

/** One expanded cell of the matrix, ready to simulate. */
struct ExperimentJob
{
    /** Submission-order index: workload-major, model-minor. */
    std::size_t index = 0;
    std::string workload;
    ModelSpec model;
    SimConfig cfg;
};

/**
 * Expand a spec into its job list, workload-major (all models of
 * workloads[0] first). Job i corresponds to
 * workloads[i / models.size()] x models[i % models.size()].
 */
std::vector<ExperimentJob> expandSpec(const ExperimentSpec &spec);

/** See file comment. */
class ExperimentRunner
{
  public:
    /**
     * @param jobs Worker threads; 0 = one per hardware thread.
     * @param progress Report per-job completion, ETA included, to
     *        stderr.
     */
    explicit ExperimentRunner(unsigned jobs = 0, bool progress = true);

    /**
     * Run every job of the spec and return results indexed like
     * expandSpec's job list (submission order), independent of the
     * order jobs actually finished in. If any job throws, the first
     * failure (in submission order) is rethrown after the whole
     * batch has settled.
     */
    std::vector<SimResult> run(const ExperimentSpec &spec) const;

    unsigned jobs() const { return jobs_; }

  private:
    unsigned jobs_;
    bool progress_;
};

} // namespace exp
} // namespace mlpwin

#endif // MLPWIN_EXP_EXPERIMENT_HH
