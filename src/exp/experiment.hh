/**
 * @file
 * Declarative batch experiments: an ExperimentSpec names a run matrix
 * (workloads x models, with optional per-job config overrides), and
 * an ExperimentRunner expands it into independent jobs and executes
 * them across a thread pool — one private Simulator per job, results
 * aggregated in submission order so parallel output is bit-identical
 * to a serial run of the same spec.
 */

#ifndef MLPWIN_EXP_EXPERIMENT_HH
#define MLPWIN_EXP_EXPERIMENT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"
#include "telemetry/sampler.hh"

namespace mlpwin
{
namespace exp
{

/** One column of the run matrix: a model at a window level. */
struct ModelSpec
{
    ModelKind model = ModelKind::Base;
    /** Level used by Fixed/Ideal models (1-based). */
    unsigned level = 1;
    /** Display label; defaults to modelName (+ level for fixed/ideal). */
    std::string label;

    /** The label, or the default derived from model/level. */
    std::string displayLabel() const;
};

/**
 * Parse a model token of the form "name" or "name:level", e.g.
 * "resizing" or "fixed:3".
 *
 * @return false if the name or level is invalid.
 */
bool parseModelSpec(const std::string &token, ModelSpec &out);

struct ExperimentJob;
struct JobOutcome;

/** The full (workload x model) run matrix. */
struct ExperimentSpec
{
    /** Suite workload names (rows). */
    std::vector<std::string> workloads;
    /** Models (columns). */
    std::vector<ModelSpec> models;
    /**
     * Configuration shared by every job; model and fixedLevel are
     * overwritten from the job's ModelSpec.
     */
    SimConfig base;
    /** Program-generator outer iterations (bench runs use "forever"). */
    std::uint64_t iterations = 1ULL << 40;
    /**
     * Optional last-chance hook to tweak one job's config (e.g. a
     * per-cell parameter sweep). Runs after model/level are applied.
     */
    std::function<void(SimConfig &, const ExperimentJob &)> configure;

    /**
     * If non-empty, resume every job from an architectural checkpoint
     * <archCheckpointDir>/<workload>.ckpt (created once with
     * mlpwin_ckpt). Each workload's checkpoint is loaded exactly once
     * and shared read-only across all of its matrix cells. A missing
     * or mismatched checkpoint fails the batch up front with
     * SimError{Io/InvalidArgument} — before any simulation time is
     * spent.
     */
    std::string archCheckpointDir;

    /**
     * If non-empty, every job also writes interval telemetry and an
     * event timeline into this directory (created if missing) as
     * <workload>.<label>.telemetry.jsonl and
     * <workload>.<label>.trace.json.
     */
    std::string telemetryDir;
    /** Sampling interval for per-job telemetry, cycles. */
    Cycle telemetryInterval = kDefaultTelemetryInterval;

    // --- fault tolerance ------------------------------------------------

    /**
     * Execution attempts per job. Only *transient* failures (see
     * errorCodeTransient: filesystem trouble writing telemetry or
     * checkpoint data) are retried; simulation failures are
     * deterministic, so re-running them would reproduce the error.
     */
    unsigned maxAttempts = 2;
    /** Backoff before retry k is k * this many milliseconds. */
    unsigned retryBackoffMs = 100;

    /**
     * Per-job wall-clock budget in seconds (0 = unlimited). Enforced
     * cooperatively by the Simulator's watchdog poll, so overshoot is
     * bounded by one checkInterval. An over-budget job is reported
     * JobState::Timeout; the rest of the batch continues.
     */
    double jobTimeoutSeconds = 0.0;

    /**
     * Polled before each job starts; return true to stop launching
     * new jobs (they finish as JobState::Skipped). In-flight jobs
     * drain normally — wire `abortFlag` to cut those short too.
     */
    std::function<bool()> cancelRequested;

    /**
     * When non-null and set to true, in-flight simulations abort at
     * their next watchdog poll (reported Skipped/interrupted). Safe
     * to set from a signal handler.
     */
    const std::atomic<bool> *abortFlag = nullptr;

    /**
     * If non-empty, every finished job appends one JSONL record here
     * (flushed immediately), so a killed batch loses at most the
     * in-flight jobs. See exp/checkpoint.hh for the schema.
     */
    std::string checkpointPath;
    /**
     * Skip jobs whose cell already has an `ok` record in
     * checkpointPath, adopting the recorded result verbatim — the
     * final output is bit-identical to an uninterrupted run.
     */
    bool resume = false;

    /**
     * Observer called once per job as it settles (checkpoint already
     * appended), including cells adopted on resume. The mlpwind
     * daemon streams per-job events to its client through this. May
     * be called concurrently from worker threads under the default
     * in-process executor — synchronize inside the callable.
     */
    std::function<void(const ExperimentJob &, const JobOutcome &)>
        onJobSettled;

    // --- result cache ---------------------------------------------------

    /**
     * If non-empty, a content-addressed result cache rooted here
     * (shared safely across concurrent batches and daemons; see
     * cache/result_cache.hh). Cells whose full identity — config
     * fingerprint, determinism knobs, program identity, sampling
     * regime, schema version — has a verified entry are adopted
     * without simulating, exactly like checkpoint resume; every
     * freshly simulated ok cell is stored back. Lookup is skipped
     * when telemetryDir is set (telemetry files only exist if the
     * cell actually runs), but results are still stored.
     */
    std::string cacheDir;

    /**
     * Test seam: called with (entry path, job index, attempts) right
     * after a cell's result lands in the cache. The bitflip/trunc/
     * staleschema fault-injection kinds corrupt the entry through
     * this hook, deterministically, so CI can prove quarantine +
     * re-simulation. Called from worker threads; thread-safe
     * callables only.
     */
    std::function<void(const std::string &, std::size_t, unsigned)>
        onCacheStored;

    /**
     * Test seam: when set, jobs call this instead of building a
     * Simulator. Lets harness tests inject failures/timeouts without
     * burning simulation time. Thread-safe callables only.
     */
    std::function<SimResult(const ExperimentJob &)> executor;

    /** workloads.size() * models.size(). */
    std::size_t jobCount() const
    {
        return workloads.size() * models.size();
    }
};

/** One expanded cell of the matrix, ready to simulate. */
struct ExperimentJob
{
    /** Submission-order index: workload-major, model-minor. */
    std::size_t index = 0;
    std::string workload;
    ModelSpec model;
    SimConfig cfg;
};

/**
 * Expand a spec into its job list, workload-major (all models of
 * workloads[0] first). Job i corresponds to
 * workloads[i / models.size()] x models[i % models.size()].
 */
std::vector<ExperimentJob> expandSpec(const ExperimentSpec &spec);

/** Stable identity of one matrix cell: "<workload>/<label>". */
std::string jobKey(const ExperimentJob &job);

/** Terminal state of one batch job. */
enum class JobState
{
    Ok,      ///< Simulated (or adopted from a checkpoint on resume).
    Failed,  ///< Simulation error; see error / errorDetail.
    Timeout, ///< Per-job wall-clock budget exhausted.
    Skipped, ///< Never ran (cancelled) or interrupted mid-run.
};

/** Printable state name ("ok", "failed", "timeout", "skipped"). */
const char *jobStateName(JobState s);

/** Everything known about one job after the batch settles. */
struct JobOutcome
{
    JobState state = JobState::Skipped;
    /** Meaningful only when state == Ok. */
    SimResult result;
    ErrorCode error = ErrorCode::Ok;
    /** Failure message (SimError::message or exception what()). */
    std::string errorDetail;
    /** DiagnosticDump JSON when the failure carried one, else "". */
    std::string dumpJson;
    /** Execution attempts consumed; 0 = adopted, not simulated. */
    unsigned attempts = 0;
    bool resumed = false;
    /** Adopted from the content-addressed result cache. */
    bool cacheHit = false;
    /** Wall-clock spent across all attempts, seconds. */
    double wallSeconds = 0.0;
};

/** Per-job outcomes of a whole batch, submission order. */
struct BatchOutcome
{
    /** The expanded matrix (parallel to outcomes). */
    std::vector<ExperimentJob> jobs;
    std::vector<JobOutcome> outcomes;

    /**
     * Torn checkpoint lines skipped while loading the resume file
     * (0 when not resuming): records lost to a kill mid-write whose
     * cells were re-run instead of adopted.
     */
    std::size_t tornCheckpointLines = 0;

    /**
     * Result-cache activity for this batch (all zero when no
     * cacheDir): cells adopted from cache, fresh results stored, and
     * entries quarantined after failing verification.
     */
    std::size_t cacheHits = 0;
    std::size_t cacheStores = 0;
    std::size_t cacheQuarantined = 0;

    std::size_t count(JobState s) const;
    bool allOk() const { return count(JobState::Ok) == jobs.size(); }
};

/**
 * Execute one expanded job in this process: build its Simulator (with
 * the spec's deadline / abort wiring and optional telemetry), run,
 * and write the per-job telemetry files. This is the single execution
 * path shared by the in-process thread executor and the isolated
 * worker processes (src/serve), so both produce bit-identical
 * results. Telemetry-file trouble throws SimError{Io}, the one
 * failure class the retry loops treat as transient.
 */
SimResult runJob(const ExperimentSpec &spec, const ExperimentJob &job,
                 const ArchCheckpoint *arch_ckpt);

/**
 * Executor-backend seam: how a batch's non-adopted jobs get executed.
 * ExperimentRunner::runAll keeps ownership of everything around the
 * execution — workload validation, resume adoption, checkpoint
 * appends, progress reporting, outcome ordering — and hands the
 * backend only the jobs that still need to run. The default backend
 * is the in-process thread scheduler; src/serve's Supervisor is the
 * process-isolated one.
 */
class JobExecutorBackend
{
  public:
    virtual ~JobExecutorBackend() = default;

    /**
     * Execute every job named by `pending` (indices into `jobs`),
     * calling `settle` exactly once per pending index with its final
     * outcome. `settle` is thread-safe; it checkpoints and reports
     * progress. The spec's cancelRequested/abortFlag must be honored:
     * not-yet-started jobs settle as Skipped, in-flight jobs drain.
     */
    virtual void
    execute(const ExperimentSpec &spec,
            const std::vector<ExperimentJob> &jobs,
            const std::vector<std::size_t> &pending,
            const std::function<void(std::size_t, JobOutcome &&)>
                &settle) = 0;
};

/** See file comment. */
class ExperimentRunner
{
  public:
    /**
     * @param jobs Worker threads; 0 = one per hardware thread.
     * @param progress Report per-job completion, ETA included, to
     *        stderr.
     */
    explicit ExperimentRunner(unsigned jobs = 0, bool progress = true);

    /**
     * Run every job of the spec, containing failures per job: one
     * wedged or crashing cell is recorded in its JobOutcome (with
     * retry for transient errors, timeout classification, and
     * checkpointing per the spec) while every other cell still runs.
     * Outcomes are indexed like expandSpec's job list (submission
     * order), independent of completion order.
     *
     * @throws SimError{InvalidArgument} before any job runs if the
     *         spec names an unknown workload.
     */
    BatchOutcome runAll(const ExperimentSpec &spec) const;

    /**
     * As runAll, but jobs that are not adopted from a resume
     * checkpoint are executed by `backend` instead of the in-process
     * thread scheduler (nullptr = in-process). See
     * JobExecutorBackend.
     */
    BatchOutcome runAll(const ExperimentSpec &spec,
                        JobExecutorBackend *backend) const;

    /**
     * Legacy strict interface: as runAll, but returns bare results
     * and throws the first non-ok job's SimError (in submission
     * order) after the whole batch has settled.
     */
    std::vector<SimResult> run(const ExperimentSpec &spec) const;

    unsigned jobs() const { return jobs_; }

  private:
    unsigned jobs_;
    bool progress_;
};

} // namespace exp
} // namespace mlpwin

#endif // MLPWIN_EXP_EXPERIMENT_HH
