#include "prefetcher.hh"

#include "common/logging.hh"

namespace mlpwin
{

StridePrefetcher::StridePrefetcher(const PrefetcherConfig &cfg,
                                   StatSet *stats)
    : enabled_(cfg.enabled),
      assoc_(cfg.tableAssoc),
      numSets_(cfg.tableEntries / cfg.tableAssoc),
      degree_(cfg.degree),
      table_(cfg.tableEntries),
      hits_(stats, "pf.table_hits", "stride table hits"),
      allocs_(stats, "pf.table_allocs", "stride table allocations"),
      issued_(stats, "pf.issued", "prefetch requests issued")
{
    mlpwin_assert(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0);
}

bool
StridePrefetcher::observe(Addr pc, Addr addr, std::int64_t &stride)
{
    if (!enabled_)
        return false;

    std::size_t set = (pc / kInstBytes) & (numSets_ - 1);
    std::size_t base = set * assoc_;

    Entry *entry = nullptr;
    Entry *victim = &table_[base];
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = table_[base + w];
        if (e.valid && e.pcTag == pc) {
            entry = &e;
            break;
        }
        if (!e.valid || e.lruStamp < victim->lruStamp)
            victim = &e;
    }

    if (!entry) {
        ++allocs_;
        victim->valid = true;
        victim->pcTag = pc;
        victim->lastAddr = addr;
        victim->stride = 0;
        victim->conf = 0;
        victim->lruStamp = ++lruCounter_;
        return false;
    }

    ++hits_;
    entry->lruStamp = ++lruCounter_;
    std::int64_t new_stride = static_cast<std::int64_t>(addr) -
                              static_cast<std::int64_t>(entry->lastAddr);
    entry->lastAddr = addr;

    if (new_stride == entry->stride && new_stride != 0) {
        if (entry->conf < 3)
            ++entry->conf;
    } else {
        entry->stride = new_stride;
        entry->conf = entry->conf > 1 ? 1 : 0;
    }

    if (entry->conf >= 2 && entry->stride != 0) {
        stride = entry->stride;
        return true;
    }
    return false;
}

StreamPrefetcher::StreamPrefetcher(const PrefetcherConfig &cfg,
                                   unsigned line_bytes, StatSet *stats)
    : enabled_(cfg.enabled && cfg.kind == PrefetcherKind::Stream),
      lineBytes_(line_bytes),
      degree_(cfg.degree),
      streams_(cfg.streamEntries),
      confirms_(stats, "pf.stream_confirms",
                "misses extending a confirmed stream"),
      allocs_(stats, "pf.stream_allocs", "stream allocations"),
      issued_(stats, "pf.stream_issued",
              "stream prefetch requests issued")
{
    mlpwin_assert(cfg.streamEntries >= 1);
}

void
StreamPrefetcher::onDemandMiss(Addr addr, std::vector<Addr> &lines)
{
    if (!enabled_)
        return;

    Addr line = addr & ~static_cast<Addr>(lineBytes_ - 1);

    Stream *victim = nullptr;
    for (Stream &s : streams_) {
        if (!s.valid) {
            if (!victim || victim->valid)
                victim = &s;
            continue;
        }
        std::int64_t delta = static_cast<std::int64_t>(line) -
                             static_cast<std::int64_t>(s.lastLine);
        bool ahead = delta == lineBytes_ ||
                     (s.direction != 0 &&
                      delta == s.direction *
                                   static_cast<std::int64_t>(
                                       lineBytes_));
        bool behind = delta == -static_cast<std::int64_t>(lineBytes_);
        if (ahead || behind) {
            // Adjacent-line miss: (re)confirm the stream's direction
            // and prefetch `degree` lines ahead.
            s.direction = delta > 0 ? 1 : -1;
            s.lastLine = line;
            s.lruStamp = ++lruCounter_;
            ++confirms_;
            for (unsigned k = 1; k <= degree_; ++k) {
                lines.push_back(line +
                                static_cast<Addr>(
                                    static_cast<std::int64_t>(k) *
                                    s.direction * lineBytes_));
            }
            return;
        }
        if (!victim || (victim->valid && s.lruStamp < victim->lruStamp))
            victim = &s;
    }

    // No stream matched: allocate (replacing the LRU stream).
    ++allocs_;
    victim->valid = true;
    victim->lastLine = line;
    victim->direction = 0;
    victim->lruStamp = ++lruCounter_;
}

} // namespace mlpwin
