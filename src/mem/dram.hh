/**
 * @file
 * Timing model of the main-memory channel: a fixed minimum latency
 * plus a shared data bus whose bandwidth serializes line transfers
 * (paper Table 1: 300-cycle minimum latency, 8 bytes/cycle).
 */

#ifndef MLPWIN_MEM_DRAM_HH
#define MLPWIN_MEM_DRAM_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/mem_config.hh"

namespace mlpwin
{

/** Single-channel DRAM timing; contents live in MainMemory. */
class DramChannel
{
  public:
    DramChannel(const DramConfig &cfg, unsigned line_bytes,
                StatSet *stats);

    /**
     * Schedule a line fetch whose request reaches DRAM at cycle t.
     * @return The cycle at which the line's data is available.
     */
    Cycle request(Cycle t);

    /** Schedule a dirty-line writeback; consumes bus bandwidth only. */
    void writeback(Cycle t);

    /** First cycle at which the data bus is free. */
    Cycle busFreeAt() const { return busFree_; }

    std::uint64_t numReads() const { return reads_.value(); }
    std::uint64_t numWritebacks() const { return writebacks_.value(); }

  private:
    unsigned minLatency_;
    unsigned transferCycles_;
    Cycle busFree_ = 0;

    Counter reads_;
    Counter writebacks_;
    Average queueDelay_;
};

} // namespace mlpwin

#endif // MLPWIN_MEM_DRAM_HH
