#include "main_memory.hh"

#include <algorithm>
#include <cstring>

namespace mlpwin
{

const MainMemory::Page *
MainMemory::findPage(Addr addr) const
{
    auto it = pages_.find(addr >> kPageShift);
    return it == pages_.end() ? nullptr : it->second.get();
}

MainMemory::Page &
MainMemory::getPage(Addr addr)
{
    auto &slot = pages_[addr >> kPageShift];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

std::uint64_t
MainMemory::readU64(Addr addr) const
{
    Addr offset = addr & (kPageBytes - 1);
    if (offset + 8 <= kPageBytes) {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        std::uint64_t v;
        std::memcpy(&v, page->data() + offset, 8);
        return v;
    }
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(readU8(addr + i)) << (8 * i);
    return v;
}

void
MainMemory::writeU64(Addr addr, std::uint64_t value)
{
    Addr offset = addr & (kPageBytes - 1);
    if (offset + 8 <= kPageBytes) {
        std::memcpy(getPage(addr).data() + offset, &value, 8);
        return;
    }
    for (unsigned i = 0; i < 8; ++i)
        writeU8(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

std::uint8_t
MainMemory::readU8(Addr addr) const
{
    const Page *page = findPage(addr);
    if (!page)
        return 0;
    return (*page)[addr & (kPageBytes - 1)];
}

void
MainMemory::writeU8(Addr addr, std::uint8_t value)
{
    getPage(addr)[addr & (kPageBytes - 1)] = value;
}

void
MainMemory::loadProgram(const Program &prog)
{
    Addr pc = prog.codeBase();
    for (std::uint64_t word : prog.code()) {
        writeU64(pc, word);
        pc += kInstBytes;
    }
    for (const DataSegment &seg : prog.data()) {
        for (std::size_t i = 0; i < seg.bytes.size(); ++i)
            writeU8(seg.base + i, seg.bytes[i]);
    }
}

void
MainMemory::installPage(Addr base, const std::uint8_t *bytes)
{
    std::memcpy(getPage(base).data(), bytes, kPageBytes);
}

void
MainMemory::cloneFrom(const MainMemory &other)
{
    pages_.clear();
    for (const auto &[key, page] : other.pages_)
        installPage(key << kPageShift, page->data());
}

std::vector<Addr>
MainMemory::pageBases() const
{
    std::vector<Addr> bases;
    bases.reserve(pages_.size());
    for (const auto &[key, page] : pages_)
        bases.push_back(key << kPageShift);
    std::sort(bases.begin(), bases.end());
    return bases;
}

const std::uint8_t *
MainMemory::pageData(Addr addr) const
{
    const Page *page = findPage(addr);
    return page ? page->data() : nullptr;
}

std::uint64_t
MainMemory::checksumRange(Addr base, std::uint64_t bytes) const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::uint64_t i = 0; i < bytes; ++i) {
        hash ^= readU8(base + i);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace mlpwin
