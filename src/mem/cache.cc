#include "cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mlpwin
{

Cache::Cache(const std::string &name, const CacheConfig &cfg,
             StatSet *stats)
    : lineBytes_(cfg.lineBytes),
      lineMask_(cfg.lineBytes - 1),
      assoc_(cfg.assoc),
      numSets_(cfg.sizeBytes / (cfg.lineBytes * cfg.assoc)),
      hitLatency_(cfg.hitLatency),
      mshrs_(cfg.mshrs),
      lines_(numSets_ * assoc_),
      accesses_(stats, name + ".accesses", "total lookups"),
      misses_(stats, name + ".misses", "lookups that missed"),
      mshrMergeHits_(stats, name + ".mshr_merges",
                     "hits on lines still in flight"),
      fillRejects_(stats, name + ".fill_rejects",
                   "fills rejected because all MSHRs were busy")
{
    mlpwin_assert(cfg.lineBytes > 0 &&
                  (cfg.lineBytes & (cfg.lineBytes - 1)) == 0);
    mlpwin_assert(numSets_ > 0 &&
                  (numSets_ & (numSets_ - 1)) == 0);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr / lineBytes_) & (numSets_ - 1);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

CacheLookup
Cache::lookup(Addr addr, Cycle now, bool demand_correct)
{
    ++accesses_;
    Line *line = findLine(addr);
    if (!line) {
        ++misses_;
        return CacheLookup{false, 0};
    }
    line->lruStamp = ++lruCounter_;
    if (demand_correct)
        line->touched = true;
    CacheLookup res;
    res.hit = true;
    res.readyAt = std::max(line->ready, now);
    if (line->ready > now)
        ++mshrMergeHits_;
    return res;
}

void
Cache::pruneFills(Cycle now)
{
    std::erase_if(pendingFills_,
                  [now](Cycle c) { return c <= now; });
}

bool
Cache::canAllocateFill(Cycle now)
{
    pruneFills(now);
    if (pendingFills_.size() >= mshrs_) {
        ++fillRejects_;
        return false;
    }
    return true;
}

Cache::Eviction
Cache::insert(Addr addr, Cycle fill_time, Provenance prov)
{
    std::size_t base = setIndex(addr) * assoc_;
    Line *victim = &lines_[base];
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = lines_[base + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lruStamp < victim->lruStamp)
            victim = &line;
    }

    Eviction ev;
    if (victim->valid) {
        ev.valid = true;
        ev.dirty = victim->dirty;
        ev.addr = victim->tag;
        auto p = static_cast<unsigned>(victim->prov);
        ++evictedPollution_.brought[p];
        if (victim->touched)
            ++evictedPollution_.useful[p];
    }

    victim->tag = lineAddr(addr);
    victim->valid = true;
    victim->dirty = false;
    victim->touched = false;
    victim->prov = prov;
    victim->ready = fill_time;
    victim->lruStamp = ++lruCounter_;
    pendingFills_.push_back(fill_time);
    return ev;
}

bool
Cache::warmTouch(Addr addr)
{
    Line *line = findLine(addr);
    if (line) {
        line->lruStamp = ++lruCounter_;
        return true;
    }
    insert(addr, 0, Provenance::Warmup);
    // A warm fill is ready immediately and happens outside simulated
    // time; leaving it in the pending-fill list would let a long
    // fast-forward grow the list without bound (it is only pruned on
    // timing accesses).
    pendingFills_.pop_back();
    return false;
}

void
Cache::setDirty(Addr addr)
{
    Line *line = findLine(addr);
    if (line)
        line->dirty = true;
}

void
Cache::touch(Addr addr)
{
    Line *line = findLine(addr);
    if (line)
        line->touched = true;
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

PollutionStats
Cache::pollution() const
{
    PollutionStats total = evictedPollution_;
    for (const Line &line : lines_) {
        if (!line.valid)
            continue;
        auto p = static_cast<unsigned>(line.prov);
        ++total.brought[p];
        if (line.touched)
            ++total.useful[p];
    }
    return total;
}

} // namespace mlpwin
