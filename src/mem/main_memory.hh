/**
 * @file
 * Sparse functional main memory for the full 64-bit simulated address
 * space, backed by demand-allocated 4 KiB pages. This models the
 * *contents* of memory; DRAM timing lives in dram.hh.
 */

#ifndef MLPWIN_MEM_MAIN_MEMORY_HH
#define MLPWIN_MEM_MAIN_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"

namespace mlpwin
{

/** Demand-paged functional memory; unwritten bytes read as zero. */
class MainMemory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr std::uint64_t kPageBytes = 1ULL << kPageShift;

    MainMemory() = default;

    /** Read an aligned-or-not 64-bit little-endian value. */
    std::uint64_t readU64(Addr addr) const;
    /** Write a 64-bit little-endian value. */
    void writeU64(Addr addr, std::uint64_t value);

    std::uint8_t readU8(Addr addr) const;
    void writeU8(Addr addr, std::uint8_t value);

    /** Copy a program's code and data segments into memory. */
    void loadProgram(const Program &prog);

    /**
     * Install one whole page (kPageBytes from bytes) at the
     * page-aligned address base, replacing any existing content.
     * Used to restore architectural-checkpoint memory images.
     */
    void installPage(Addr base, const std::uint8_t *bytes);

    /** Replace this image with a deep copy of other's pages. */
    void cloneFrom(const MainMemory &other);

    /** Number of distinct pages touched so far. */
    std::size_t numPages() const { return pages_.size(); }

    /**
     * Base addresses of every allocated page, sorted ascending. Lets
     * checkers iterate two sparse images deterministically; a page
     * absent from one image compares equal to an all-zero page.
     */
    std::vector<Addr> pageBases() const;

    /**
     * Raw bytes of the page containing addr (kPageBytes of them), or
     * nullptr if that page was never touched (reads as zero).
     */
    const std::uint8_t *pageData(Addr addr) const;

    /**
     * FNV-1a checksum over a byte range; used by tests to compare
     * architectural memory state across timing models.
     */
    std::uint64_t checksumRange(Addr base, std::uint64_t bytes) const;

  private:
    using Page = std::array<std::uint8_t, kPageBytes>;

    const Page *findPage(Addr addr) const;
    Page &getPage(Addr addr);

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

} // namespace mlpwin

#endif // MLPWIN_MEM_MAIN_MEMORY_HH
