#include "hierarchy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mlpwin
{

CacheHierarchy::CacheHierarchy(const MemSystemConfig &cfg, StatSet *stats,
                               const vm::MmuConfig &vm)
    : l1i_("l1i", cfg.l1i, stats),
      l1d_("l1d", cfg.l1d, stats),
      l2_("l2", cfg.l2, stats),
      mmu_(vm, vm.enabled ? stats : nullptr),
      dram_(cfg.dram, cfg.l2.lineBytes, stats),
      prefetcher_(cfg.prefetcher, stats),
      streamPf_(cfg.prefetcher, cfg.l2.lineBytes, stats),
      pfKind_(cfg.prefetcher.kind),
      l2DemandMisses_(stats, "l2.demand_misses",
                      "L2 misses from demand accesses"),
      loadRejects_(stats, "mem.load_rejects",
                   "loads rejected for MSHR occupancy"),
      lateMerges_(stats, "l2.late_merges",
                  "demand hits on in-flight lines counted as miss "
                  "occurrences"),
      missIntervals_(stats, "l2.miss_intervals",
                     "cycles between successive L2 demand misses",
                     /*bin_width=*/8, /*num_bins=*/128)
{
    if (mmu_.enabled())
        mmu_.setPtIssuer(
            [this](Addr a, Cycle t) { return ptAccess(a, t); });
}

Cycle
CacheHierarchy::ptAccess(Addr addr, Cycle t)
{
    CacheLookup look = l2_.lookup(addr, t, false);
    if (look.hit)
        return std::max(t + l2_.hitLatency(), look.readyAt);
    // No fill slot left: read around the cache — the walk still pays
    // the DRAM round trip and books bus bandwidth, it just cannot
    // keep the node resident. Guarantees walker forward progress
    // under full MSHR pressure.
    if (!l2_.canAllocateFill(t))
        return dram_.request(t + l2_.hitLatency());
    Cycle fill = dram_.request(t + l2_.hitLatency());
    Cache::Eviction ev = l2_.insert(addr, fill, Provenance::PtWalk);
    if (ev.valid && ev.dirty)
        dram_.writeback(t + l2_.hitLatency());
    return fill;
}

CacheHierarchy::L2Result
CacheHierarchy::accessL2(Addr addr, Cycle t, bool is_demand,
                         bool useful_touch, Provenance prov)
{
    CacheLookup look = l2_.lookup(addr, t, useful_touch);
    if (look.hit) {
        L2Result res;
        res.readyAt = std::max(t + l2_.hitLatency(), look.readyAt);
        // A demand access that merges into a line still far from
        // arriving (a late prefetch) experiences most of a miss's
        // latency; it counts as a miss occurrence for the resize
        // trigger, exactly as a tag-match-on-pending-MSHR does in a
        // conventional simulator.
        if (is_demand && look.readyAt > t + 2 * l2_.hitLatency()) {
            ++lateMerges_;
            noteDemandMiss(addr, t);
        }
        return res;
    }

    if (!l2_.canAllocateFill(t))
        return L2Result{false, 0, false};

    Cycle fill = dram_.request(t + l2_.hitLatency());
    Cache::Eviction ev = l2_.insert(addr, fill, prov);
    if (ev.valid && ev.dirty)
        dram_.writeback(t + l2_.hitLatency());

    if (is_demand) {
        ++l2DemandMisses_;
        noteDemandMiss(addr, t);
    }

    return L2Result{true, fill, true};
}

void
CacheHierarchy::noteDemandMiss(Addr addr, Cycle t)
{
    if (lastL2MissCycle_ != kNoCycle)
        missIntervals_.sample(t - lastL2MissCycle_);
    lastL2MissCycle_ = t;
    if (listener_)
        listener_(addr, t);
}

int
CacheHierarchy::issuePrefetchLine(Addr addr, Cycle t)
{
    if (l2_.contains(addr))
        return 0; // Already resident: skip, keep going.
    if (!l2_.canAllocateFill(t))
        return -1; // No fill slot: stop this batch.
    Cycle fill = dram_.request(t + l2_.hitLatency());
    Cache::Eviction ev = l2_.insert(addr, fill, Provenance::Prefetch);
    if (ev.valid && ev.dirty)
        dram_.writeback(t + l2_.hitLatency());
    return 1;
}

void
CacheHierarchy::maybePrefetch(Addr demand_addr, std::int64_t stride,
                              Cycle t)
{
    // The paper prefetches 16 data items into the L2 on a miss.
    Addr prev_line = l2_.lineAddr(demand_addr);
    for (unsigned k = 1; k <= prefetcher_.degree(); ++k) {
        Addr pa = demand_addr + static_cast<Addr>(stride) * k;
        Addr pa_line = l2_.lineAddr(pa);
        if (pa_line == prev_line)
            continue; // Same line as previous prefetch: nothing new.
        prev_line = pa_line;
        if (l2_.contains(pa))
            continue;
        if (!l2_.canAllocateFill(t))
            break;
        Cycle fill = dram_.request(t + l2_.hitLatency());
        Cache::Eviction ev =
            l2_.insert(pa, fill, Provenance::Prefetch);
        if (ev.valid && ev.dirty)
            dram_.writeback(t + l2_.hitLatency());
        prefetcher_.notePrefetchIssued();
    }
}

void
CacheHierarchy::writebackVictim(const Cache::Eviction &ev, Cycle t)
{
    if (!ev.valid || !ev.dirty)
        return;
    if (l2_.contains(ev.addr)) {
        l2_.setDirty(ev.addr);
    } else {
        // Rare: dirty L1 victim not in L2; send straight to memory.
        dram_.writeback(t);
    }
}

MemAccessResult
CacheHierarchy::load(Addr addr, Addr pc, Cycle now, Provenance prov)
{
    const bool correct = prov == Provenance::CorrPath;

    Cycle walk_done = 0;
    if (mmu_.enabled()) {
        vm::TranslateResult tr = mmu_.translateData(addr, now);
        now = tr.readyAt;
        walk_done = tr.walkDoneAt;
    }

    CacheLookup look = l1d_.lookup(addr, now, correct);
    if (look.hit) {
        MemAccessResult res;
        res.doneAt = std::max(now + l1d_.hitLatency(), look.readyAt);
        res.l1Hit = look.readyAt <= now + l1d_.hitLatency();
        res.walkDoneAt = walk_done;
        // Touch the L2 copy for usefulness accounting even on L1 hits:
        // the line was demanded by a correct-path load at some level.
        if (correct)
            l2_.touch(addr);
        return res;
    }

    if (!l1d_.canAllocateFill(now)) {
        ++loadRejects_;
        return MemAccessResult{false, 0, false, false};
    }

    Cycle t2 = now + l1d_.hitLatency();

    std::int64_t stride = 0;
    bool have_stride = pfKind_ == PrefetcherKind::Stride && correct &&
                       prefetcher_.observe(pc, addr, stride);

    L2Result l2res = accessL2(addr, t2, true, correct, prov);
    if (!l2res.accepted) {
        ++loadRejects_;
        return MemAccessResult{false, 0, false, false};
    }

    if (have_stride && l2res.wasMiss)
        maybePrefetch(addr, stride, t2);

    if (pfKind_ == PrefetcherKind::Stream && correct &&
        l2res.wasMiss) {
        std::vector<Addr> lines;
        streamPf_.onDemandMiss(addr, lines);
        for (Addr line : lines) {
            int res = issuePrefetchLine(line, t2);
            if (res < 0)
                break;
            if (res > 0)
                streamPf_.notePrefetchIssued();
        }
    }

    Cache::Eviction ev = l1d_.insert(addr, l2res.readyAt, prov);
    writebackVictim(ev, t2);

    MemAccessResult res;
    res.doneAt = l2res.readyAt;
    res.l1Hit = false;
    res.l2DemandMiss = l2res.wasMiss;
    res.walkDoneAt = walk_done;
    return res;
}

MemAccessResult
CacheHierarchy::store(Addr addr, Cycle now, Provenance prov)
{
    Cycle walk_done = 0;
    if (mmu_.enabled()) {
        vm::TranslateResult tr = mmu_.translateData(addr, now);
        now = tr.readyAt;
        walk_done = tr.walkDoneAt;
    }

    CacheLookup look = l1d_.lookup(addr, now, false);
    if (look.hit) {
        l1d_.setDirty(addr);
        MemAccessResult res;
        res.doneAt = std::max(now + l1d_.hitLatency(), look.readyAt);
        res.l1Hit = true;
        res.walkDoneAt = walk_done;
        return res;
    }

    if (!l1d_.canAllocateFill(now))
        return MemAccessResult{false, 0, false, false};

    Cycle t2 = now + l1d_.hitLatency();
    L2Result l2res = accessL2(addr, t2, true, false, prov);
    if (!l2res.accepted)
        return MemAccessResult{false, 0, false, false};

    Cache::Eviction ev = l1d_.insert(addr, l2res.readyAt, prov);
    writebackVictim(ev, t2);
    l1d_.setDirty(addr);

    MemAccessResult res;
    res.doneAt = l2res.readyAt;
    res.l1Hit = false;
    res.l2DemandMiss = l2res.wasMiss;
    res.walkDoneAt = walk_done;
    return res;
}

MemAccessResult
CacheHierarchy::ifetch(Addr addr, Cycle now, Provenance prov)
{
    Cycle walk_done = 0;
    if (mmu_.enabled()) {
        vm::TranslateResult tr = mmu_.translateInst(addr, now);
        now = tr.readyAt;
        walk_done = tr.walkDoneAt;
    }

    CacheLookup look = l1i_.lookup(addr, now, false);
    if (look.hit) {
        MemAccessResult res;
        res.doneAt = std::max(now + l1i_.hitLatency(), look.readyAt);
        res.l1Hit = look.readyAt <= now + l1i_.hitLatency();
        res.walkDoneAt = walk_done;
        return res;
    }

    if (!l1i_.canAllocateFill(now))
        return MemAccessResult{false, 0, false, false};

    Cycle t2 = now + l1i_.hitLatency();
    L2Result l2res = accessL2(addr, t2, true, false, prov);
    if (!l2res.accepted)
        return MemAccessResult{false, 0, false, false};

    l1i_.insert(addr, l2res.readyAt, prov);

    MemAccessResult res;
    res.doneAt = l2res.readyAt;
    res.l1Hit = false;
    res.l2DemandMiss = l2res.wasMiss;
    res.walkDoneAt = walk_done;
    return res;
}

} // namespace mlpwin
