#include "dram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mlpwin
{

DramChannel::DramChannel(const DramConfig &cfg, unsigned line_bytes,
                         StatSet *stats)
    : minLatency_(cfg.minLatency),
      transferCycles_(std::max(1u, line_bytes / cfg.bytesPerCycle)),
      reads_(stats, "dram.reads", "line fetches from main memory"),
      writebacks_(stats, "dram.writebacks",
                  "dirty line writebacks to main memory"),
      queueDelay_(stats, "dram.queue_delay",
                  "average cycles a request waits for the data bus")
{
    mlpwin_assert(cfg.bytesPerCycle > 0);
}

Cycle
DramChannel::request(Cycle t)
{
    Cycle start = std::max(t, busFree_);
    queueDelay_.sample(static_cast<double>(start - t));
    busFree_ = start + transferCycles_;
    ++reads_;
    return start + minLatency_;
}

void
DramChannel::writeback(Cycle t)
{
    busFree_ = std::max(t, busFree_) + transferCycles_;
    ++writebacks_;
}

} // namespace mlpwin
