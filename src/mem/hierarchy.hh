/**
 * @file
 * The full memory hierarchy: L1I + L1D + unified L2 + DRAM channel +
 * stride prefetcher, composed per the paper's Table 1. The hierarchy
 * is queried synchronously: each access immediately returns the cycle
 * at which its data will be available, modeling latencies, MSHR
 * occupancy, DRAM bandwidth, and prefetches analytically.
 *
 * L2 *demand* misses are reported to a listener; the MLP-aware resize
 * controller subscribes to it (paper Section 4: enlargement is
 * triggered by LLC miss occurrence).
 */

#ifndef MLPWIN_MEM_HIERARCHY_HH
#define MLPWIN_MEM_HIERARCHY_HH

#include <functional>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mem_config.hh"
#include "mem/prefetcher.hh"
#include "vm/mmu.hh"

namespace mlpwin
{

/** Outcome of a timing access to the hierarchy. */
struct MemAccessResult
{
    /** False if the access was structurally rejected (retry later). */
    bool accepted = true;
    /** Cycle at which the data is available / the write is absorbed. */
    Cycle doneAt = 0;
    bool l1Hit = false;
    /** True if this access initiated a new L2 demand miss. */
    bool l2DemandMiss = false;
    /**
     * When the access waited on a page-table walk (started or merged),
     * the walk's completion cycle; 0 otherwise (including always when
     * paging is off). Feeds the tlb_walk CPI leaf.
     */
    Cycle walkDoneAt = 0;
};

/** See file comment. */
class CacheHierarchy
{
  public:
    /**
     * Callback invoked on every L2 demand miss, with the missing
     * address and its cycle. On an SMT core the address's high bits
     * (smt/smt_config.hh kThreadAddrShift) identify the thread.
     */
    using L2MissListener = std::function<void(Addr, Cycle)>;

    /**
     * @param vm MMU (paging) configuration; the default keeps paging
     *        off, leaving every access bit-identical to a hierarchy
     *        built before the vm subsystem existed.
     */
    CacheHierarchy(const MemSystemConfig &cfg, StatSet *stats,
                   const vm::MmuConfig &vm = vm::MmuConfig{});

    /** Data load access issued by the LSU at cycle now. */
    MemAccessResult load(Addr addr, Addr pc, Cycle now,
                         Provenance prov);

    /** Data store access (performed at commit / drain time). */
    MemAccessResult store(Addr addr, Cycle now, Provenance prov);

    /** Instruction fetch of the line containing addr. */
    MemAccessResult ifetch(Addr addr, Cycle now, Provenance prov);

    /**
     * Pre-install the line containing addr in the L1I and the L2
     * before the measured run. Stands in for the paper's
     * 16G-instruction fast-forward, which leaves the instruction
     * working set resident.
     */
    void
    warmInstLine(Addr addr)
    {
        if (mmu_.enabled())
            mmu_.warmInst(addr);
        l1i_.warm(addr);
        l2_.warm(addr);
    }

    /**
     * Pre-install a data line in the L2 (and optionally the L1D).
     * Used for structural warm-up of working sets that a short warm-up
     * run cannot touch completely; sets larger than the L2 simply wrap
     * and leave their tail resident, as LRU would.
     */
    void
    warmDataLine(Addr addr, bool also_l1d)
    {
        if (mmu_.enabled())
            mmu_.warmData(addr);
        l2_.warm(addr);
        if (also_l1d)
            l1d_.warm(addr);
    }

    /**
     * Functional-warming hook for one committed load or store during
     * a native-speed fast-forward: recency-update or install the line
     * in the L1D, and on an L1D miss in the L2 too — the state a
     * detailed-mode access would have left, minus timing. Counts no
     * stats and consumes no MSHRs (the access is outside simulated
     * time).
     */
    void
    warmDemandAccess(Addr addr, bool is_store)
    {
        if (mmu_.enabled())
            mmu_.warmData(addr);
        if (!l1d_.warmTouch(addr))
            l2_.warmTouch(addr);
        if (is_store)
            l1d_.setDirty(addr);
    }

    /**
     * Functional-warming hook for one fetched instruction during a
     * fast-forward: keep the L1I (and on a miss the L2) resident and
     * recency-ordered for the instruction working set.
     */
    void
    warmFetchLine(Addr addr)
    {
        if (mmu_.enabled())
            mmu_.warmInst(addr);
        if (!l1i_.warmTouch(addr))
            l2_.warmTouch(addr);
    }

    void setL2MissListener(L2MissListener fn) { listener_ = std::move(fn); }

    /**
     * Subscribe to page-table-walk starts (same shape as the L2-miss
     * listener; the address's high bits identify the SMT thread).
     * Only ever fires with paging enabled.
     */
    void setWalkListener(vm::WalkListener fn)
    {
        mmu_.setWalkListener(std::move(fn));
    }

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const vm::Mmu &mmu() const { return mmu_; }
    const DramChannel &dram() const { return dram_; }
    const StridePrefetcher &prefetcher() const { return prefetcher_; }
    const StreamPrefetcher &streamPrefetcher() const
    {
        return streamPf_;
    }

    std::uint64_t l2DemandMisses() const { return l2DemandMisses_.value(); }
    const Histogram &missIntervalHist() const { return missIntervals_; }

  private:
    struct L2Result
    {
        bool accepted = true;
        Cycle readyAt = 0;
        bool wasMiss = false;
    };

    /**
     * Access the L2 on behalf of a lower-level miss.
     * @param is_demand False only for prefetches.
     * @param useful_touch True for correct-path demand loads.
     */
    L2Result accessL2(Addr addr, Cycle t, bool is_demand,
                      bool useful_touch, Provenance prov);

    /**
     * One page-table-walker PTE read, issued at cycle t: an L2
     * lookup/fill (PtWalk provenance) that contends for fill slots
     * and DRAM bus bandwidth with demand and prefetch traffic, but
     * never fires the L2-miss resize listener (walks have their own
     * opt-in trigger).
     *
     * @return Cycle the PTE data arrives.
     */
    Cycle ptAccess(Addr addr, Cycle t);

    /** Record a miss occurrence: interval histogram + listener. */
    void noteDemandMiss(Addr addr, Cycle t);

    void maybePrefetch(Addr demand_addr, std::int64_t stride, Cycle t);
    /**
     * Insert one prefetched line into the L2.
     * @retval 1 inserted, 0 already resident, -1 no fill slot (stop).
     */
    int issuePrefetchLine(Addr addr, Cycle t);
    void writebackVictim(const Cache::Eviction &ev, Cycle t);

    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    vm::Mmu mmu_;
    DramChannel dram_;
    StridePrefetcher prefetcher_;
    StreamPrefetcher streamPf_;
    PrefetcherKind pfKind_;
    L2MissListener listener_;

    Cycle lastL2MissCycle_ = kNoCycle;

    Counter l2DemandMisses_;
    Counter loadRejects_;
    Counter lateMerges_;
    Histogram missIntervals_;
};

} // namespace mlpwin

#endif // MLPWIN_MEM_HIERARCHY_HH
