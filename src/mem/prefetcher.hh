/**
 * @file
 * Baer-Chen style stride prefetcher (paper Table 1: stride-based,
 * 4K-entry 4-way PC-indexed table, prefetching 16 lines into the L2 on
 * a miss). The table learns per-PC strides with a two-bit confidence
 * state machine; the hierarchy asks it for prefetch candidates when a
 * demand access misses in the L2.
 */

#ifndef MLPWIN_MEM_PREFETCHER_HH
#define MLPWIN_MEM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/isa.hh"
#include "mem/mem_config.hh"

namespace mlpwin
{

/** See file comment. */
class StridePrefetcher
{
  public:
    StridePrefetcher(const PrefetcherConfig &cfg, StatSet *stats);

    /**
     * Record a demand load and return the learned stride if the entry
     * is in the steady state (confidence high).
     *
     * @param pc PC of the load instruction.
     * @param addr Demand byte address.
     * @param[out] stride Learned stride in bytes (may be negative).
     * @retval true A confident stride exists for this PC.
     */
    bool observe(Addr pc, Addr addr, std::int64_t &stride);

    unsigned degree() const { return degree_; }
    bool enabled() const { return enabled_; }

    std::uint64_t issued() const { return issued_.value(); }
    /** Called by the hierarchy when it actually issues a prefetch. */
    void notePrefetchIssued() { ++issued_; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr pcTag = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        /** 0=init, 1=transient, 2=steady, 3=steady+ */
        unsigned conf = 0;
        std::uint64_t lruStamp = 0;
    };

    bool enabled_;
    unsigned assoc_;
    std::size_t numSets_;
    unsigned degree_;
    std::uint64_t lruCounter_ = 0;
    std::vector<Entry> table_;

    Counter hits_;
    Counter allocs_;
    Counter issued_;
};

/**
 * Jouppi-style stream prefetcher (simplified): tracks a handful of
 * address-ordered miss streams; once two misses land on adjacent
 * lines (either direction), further misses on the stream prefetch
 * `degree` lines ahead into the L2. PC-agnostic — the alternative
 * commercial design the paper mentions alongside stride prefetching.
 */
class StreamPrefetcher
{
  public:
    StreamPrefetcher(const PrefetcherConfig &cfg, unsigned line_bytes,
                     StatSet *stats);

    /**
     * Record an L2 demand miss and collect prefetch candidates.
     *
     * @param addr Missed byte address.
     * @param[out] lines Line addresses to prefetch (appended).
     */
    void onDemandMiss(Addr addr, std::vector<Addr> &lines);

    bool enabled() const { return enabled_; }
    std::uint64_t issued() const { return issued_.value(); }
    void notePrefetchIssued() { ++issued_; }

  private:
    struct Stream
    {
        bool valid = false;
        Addr lastLine = 0;
        int direction = 0; ///< +1 / -1 once confirmed, 0 while new.
        std::uint64_t lruStamp = 0;
    };

    bool enabled_;
    unsigned lineBytes_;
    unsigned degree_;
    std::uint64_t lruCounter_ = 0;
    std::vector<Stream> streams_;

    Counter confirms_;
    Counter allocs_;
    Counter issued_;
};

} // namespace mlpwin

#endif // MLPWIN_MEM_PREFETCHER_HH
