/**
 * @file
 * A set-associative, write-back, write-allocate cache timing model
 * with LRU replacement, a bounded number of outstanding line fills
 * (MSHR-style non-blocking behaviour), and per-line provenance
 * tracking used by the paper's Fig. 11 cache-pollution study.
 */

#ifndef MLPWIN_MEM_CACHE_HH
#define MLPWIN_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/mem_config.hh"

namespace mlpwin
{

/** Who caused a line to be brought into a cache. */
enum class Provenance : std::uint8_t
{
    CorrPath,  ///< Demand access on the correct execution path.
    WrongPath, ///< Demand access on a squashed (wrong) path.
    Prefetch,  ///< Hardware prefetcher.
    Warmup,    ///< Installed before the measured run started.
    PtWalk,    ///< Page-table walker PTE read (vm/walker.hh).
};

constexpr unsigned kNumProvenances = 5;

/** Result of a cache lookup. */
struct CacheLookup
{
    bool hit = false;
    /** Cycle at which the line's data is available (>= lookup time). */
    Cycle readyAt = 0;
};

/** Fig. 11 provenance/usefulness accounting for one cache. */
struct PollutionStats
{
    /** Lines brought in, indexed by Provenance. */
    std::uint64_t brought[kNumProvenances] = {0, 0, 0};
    /** Of those, lines later touched by a correct-path demand load. */
    std::uint64_t useful[kNumProvenances] = {0, 0, 0};
};

/** See file comment. */
class Cache
{
  public:
    /**
     * @param name Stat prefix, e.g. "l2".
     * @param cfg Geometry and timing.
     * @param stats Owning stat set (may be nullptr).
     */
    Cache(const std::string &name, const CacheConfig &cfg,
          StatSet *stats);

    /** Line-aligned address of addr. */
    Addr lineAddr(Addr addr) const { return addr & ~lineMask_; }
    unsigned lineBytes() const { return lineBytes_; }
    unsigned hitLatency() const { return hitLatency_; }

    /**
     * Look up a line and update LRU on hit. On a hit to a line that is
     * still in flight, readyAt is its fill time (MSHR merge).
     *
     * @param addr Byte address.
     * @param now Current cycle.
     * @param demand_correct True for correct-path demand loads; marks
     *        the line useful for the pollution study.
     */
    CacheLookup lookup(Addr addr, Cycle now, bool demand_correct);

    /** True if another line fill can be started at cycle now. */
    bool canAllocateFill(Cycle now);

    /** Eviction notice produced by insert(). */
    struct Eviction
    {
        bool valid = false;
        bool dirty = false;
        Addr addr = 0;
    };

    /**
     * Insert a line that will be ready at fill_time, evicting the LRU
     * victim of its set. Caller must have checked canAllocateFill().
     *
     * @return Information about the evicted victim (for writebacks).
     */
    Eviction insert(Addr addr, Cycle fill_time, Provenance prov);

    /** Mark a resident line dirty (store hit or writeback from above). */
    void setDirty(Addr addr);

    /**
     * Mark a resident line touched by a correct-path demand (for the
     * pollution study) without a timing access; no-op if absent.
     */
    void touch(Addr addr);

    /**
     * Install a line as already resident at cycle 0 (pre-run cache
     * warm-up; stands in for the paper's 16G-instruction fast-forward).
     */
    void warm(Addr addr) { insert(addr, 0, Provenance::Warmup); }

    /**
     * Functional-warming access: recency-update the line if resident,
     * install it (Warmup provenance, ready immediately) if not. Unlike
     * lookup()/insert() this counts no stats and checks no fill slots
     * — it reconstructs tag/LRU state during native-speed emulation,
     * outside simulated time.
     *
     * @return True if the line was already resident.
     */
    bool warmTouch(Addr addr);

    /** True if the line is resident (no LRU update). */
    bool contains(Addr addr) const;

    /** Pollution accounting, including still-resident lines. */
    PollutionStats pollution() const;

    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool touched = false;
        Provenance prov = Provenance::CorrPath;
        Cycle ready = 0;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
    void pruneFills(Cycle now);

    unsigned lineBytes_;
    Addr lineMask_;
    unsigned assoc_;
    std::size_t numSets_;
    unsigned hitLatency_;
    unsigned mshrs_;
    std::uint64_t lruCounter_ = 0;

    std::vector<Line> lines_; // numSets_ * assoc_, set-major.
    std::vector<Cycle> pendingFills_;

    PollutionStats evictedPollution_;

    Counter accesses_;
    Counter misses_;
    Counter mshrMergeHits_;
    Counter fillRejects_;
};

} // namespace mlpwin

#endif // MLPWIN_MEM_CACHE_HH
