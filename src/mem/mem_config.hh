/**
 * @file
 * Configuration structs for the timing memory system (paper Table 1).
 */

#ifndef MLPWIN_MEM_MEM_CONFIG_HH
#define MLPWIN_MEM_MEM_CONFIG_HH

#include <cstdint>

namespace mlpwin
{

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = 32;
    unsigned hitLatency = 2;
    unsigned mshrs = 32; ///< Max outstanding line fills (non-blocking).
};

/** DRAM channel timing (paper: 300-cycle min latency, 8 B/cycle). */
struct DramConfig
{
    unsigned minLatency = 300;
    unsigned bytesPerCycle = 8;
};

/** Data prefetcher algorithm selection. */
enum class PrefetcherKind
{
    Stride, ///< Baer-Chen PC-indexed stride table (paper default).
    Stream, ///< Jouppi-style adjacent-line stream detection.
};

/** Stride prefetcher (paper: 4K-entry 4-way, 16-line degree, into L2). */
struct PrefetcherConfig
{
    bool enabled = true;
    PrefetcherKind kind = PrefetcherKind::Stride;
    unsigned tableEntries = 4096;
    unsigned tableAssoc = 4;
    unsigned degree = 16;
    /** Concurrent streams tracked (Stream kind only). */
    unsigned streamEntries = 8;
};

/** The full memory system (paper Table 1 defaults). */
struct MemSystemConfig
{
    CacheConfig l1i{64 * 1024, 2, 32, 1, 4};
    CacheConfig l1d{64 * 1024, 2, 32, 2, 32};
    CacheConfig l2{2 * 1024 * 1024, 4, 64, 12, 32};
    DramConfig dram;
    PrefetcherConfig prefetcher;
};

} // namespace mlpwin

#endif // MLPWIN_MEM_MEM_CONFIG_HH
