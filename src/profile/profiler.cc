#include "profiler.hh"

#include <algorithm>
#include <cstdio>

namespace mlpwin
{

namespace
{

/** Cap on retained coarse spans per host thread (oldest kept, so a
 *  trace always starts at the interesting beginning of a run). */
constexpr std::size_t kMaxRecordsPerThread = 1u << 15;

} // namespace

const char *
spanKindName(SpanKind k)
{
    switch (k) {
      case SpanKind::Fetch: return "fetch";
      case SpanKind::Dispatch: return "dispatch";
      case SpanKind::Issue: return "issue";
      case SpanKind::Lsu: return "lsu";
      case SpanKind::Complete: return "complete";
      case SpanKind::Commit: return "commit";
      case SpanKind::WibReinsert: return "wib_reinsert";
      case SpanKind::Warmup: return "warmup";
      case SpanKind::FastForward: return "fast_forward";
      case SpanKind::CheckpointLoad: return "checkpoint_load";
      case SpanKind::Drain: return "drain";
      case SpanKind::Job: return "job";
    }
    return "?";
}

Profiler &
Profiler::instance()
{
    static Profiler p;
    return p;
}

void
Profiler::setEnabled(bool on)
{
#ifdef MLPWIN_PROFILE_DISABLED
    (void)on;
#else
    enabled_.store(on, std::memory_order_relaxed);
#endif
}

Profiler::ThreadBuf &
Profiler::threadBuf()
{
    thread_local ThreadBuf *buf = nullptr;
    if (!buf) {
        std::lock_guard<std::mutex> lock(mutex_);
        bufs_.push_back(std::make_unique<ThreadBuf>());
        buf = bufs_.back().get();
        buf->index = static_cast<std::uint32_t>(bufs_.size() - 1);
    }
    return *buf;
}

void
Profiler::record(SpanKind kind, std::uint64_t begin_ns,
                 std::uint64_t end_ns, std::string label)
{
    ThreadBuf &buf = threadBuf();
    auto i = static_cast<std::size_t>(kind);
    ++buf.agg[i].count;
    buf.agg[i].totalNs += end_ns - begin_ns;
    if (i < kFirstCoarseSpan)
        return;
    if (buf.records.size() >= kMaxRecordsPerThread) {
        ++buf.dropped;
        return;
    }
    buf.records.push_back(SpanRecord{kind, buf.index, begin_ns,
                                     end_ns, std::move(label)});
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &buf : bufs_) {
        buf->agg.fill(SpanAggregate{});
        buf->records.clear();
        buf->dropped = 0;
    }
}

std::array<SpanAggregate, kNumSpanKinds>
Profiler::aggregate() const
{
    std::array<SpanAggregate, kNumSpanKinds> total{};
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &buf : bufs_) {
        for (std::size_t i = 0; i < kNumSpanKinds; ++i) {
            total[i].count += buf->agg[i].count;
            total[i].totalNs += buf->agg[i].totalNs;
        }
    }
    return total;
}

std::vector<SpanRecord>
Profiler::records() const
{
    std::vector<SpanRecord> all;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buf : bufs_)
            all.insert(all.end(), buf->records.begin(),
                       buf->records.end());
    }
    std::sort(all.begin(), all.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return a.beginNs < b.beginNs;
              });
    return all;
}

std::uint64_t
Profiler::droppedRecords() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (const auto &buf : bufs_)
        n += buf->dropped;
    return n;
}

std::vector<std::string>
Profiler::traceEvents() const
{
    std::vector<SpanRecord> all = records();
    std::vector<std::string> events;
    events.reserve(all.size() + 2);
    char line[256];

    std::snprintf(line, sizeof(line),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":0,\"args\":{\"name\":\"simulator host\"}}");
    events.emplace_back(line);

    std::uint32_t max_tid = 0;
    for (const SpanRecord &r : all)
        max_tid = std::max(max_tid, r.hostThread);
    for (std::uint32_t t = 0; t <= max_tid; ++t) {
        std::snprintf(
            line, sizeof(line),
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
            "\"tid\":%u,\"args\":{\"name\":\"host thread %u\"}}",
            t, t);
        events.emplace_back(line);
    }

    for (const SpanRecord &r : all) {
        double ts = static_cast<double>(r.beginNs) / 1000.0;
        double dur =
            static_cast<double>(r.endNs - r.beginNs) / 1000.0;
        if (r.label.empty()) {
            std::snprintf(line, sizeof(line),
                          "{\"name\":\"%s\",\"cat\":\"host\","
                          "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                          "\"pid\":1,\"tid\":%u}",
                          spanKindName(r.kind), ts, dur,
                          r.hostThread);
        } else {
            // Labels come from workload/model names (no escaping
            // needed for the characters those may contain).
            std::snprintf(line, sizeof(line),
                          "{\"name\":\"%s\",\"cat\":\"host\","
                          "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                          "\"pid\":1,\"tid\":%u,"
                          "\"args\":{\"label\":\"%s\"}}",
                          spanKindName(r.kind), ts, dur,
                          r.hostThread, r.label.c_str());
        }
        events.emplace_back(line);
    }
    return events;
}

} // namespace mlpwin
