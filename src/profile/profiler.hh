/**
 * @file
 * Host-side self-profiler: where does the *simulator* spend wall
 * time? Scoped RAII spans cover the pipeline stages (sampled — the
 * core times one cycle in 64 so the clock reads stay far below the
 * cost of the stages themselves) and the coarse phases around them
 * (warm-up, measurement, functional fast-forward, checkpoint load,
 * pipeline drain, per-job batch spans).
 *
 * Cost discipline mirrors the guest-side tracers: when disabled at
 * runtime every span site is one relaxed atomic load; when disabled
 * at compile time (-DMLPWIN_PROFILE_DISABLED) the sites vanish
 * entirely. Either way the profiler never touches simulation state,
 * so guest results are bit-identical with it on, off, or compiled
 * out (asserted by tests/profile/profiler_test.cc).
 *
 * Hot (per-cycle) kinds aggregate into per-thread {count, total ns}
 * cells only; coarse kinds additionally keep begin/end records in
 * per-thread buffers (capped, oldest kept) for Chrome trace_event
 * export — host spans render under pid 1 next to the guest timeline
 * (pid 0). Buffers are thread-local, so span recording is lock-free;
 * the registry mutex is taken only on first use per thread and by
 * the readers (aggregate/records/traceEvents), which callers run
 * after worker threads have finished.
 */

#ifndef MLPWIN_PROFILE_PROFILER_HH
#define MLPWIN_PROFILE_PROFILER_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mlpwin
{

/** What a host-time span covers. Hot per-cycle stage kinds first,
 *  coarse phase kinds (ring-buffered for trace export) after
 *  kFirstCoarseSpan. Append only: the order is the export order. */
enum class SpanKind : std::uint8_t
{
    Fetch = 0,
    Dispatch,
    Issue,
    Lsu,
    Complete,
    Commit,
    WibReinsert,
    // --- coarse phases (>= kFirstCoarseSpan) --------------------------
    Warmup,
    FastForward,
    CheckpointLoad,
    Drain,
    Job,
};

constexpr std::size_t kNumSpanKinds = 12;
constexpr std::size_t kFirstCoarseSpan =
    static_cast<std::size_t>(SpanKind::Warmup);

/** Stable short name (BENCH json keys, trace event names). */
const char *spanKindName(SpanKind k);

/** Accumulated host time for one span kind. */
struct SpanAggregate
{
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
};

/** One recorded coarse span (times are ns since the profiler epoch). */
struct SpanRecord
{
    SpanKind kind;
    std::uint32_t hostThread; ///< Registration index, trace tid.
    std::uint64_t beginNs;
    std::uint64_t endNs;
    std::string label; ///< Optional (e.g. "mcf.resizing" for Job).
};

/** See file comment. Process-global singleton. */
class Profiler
{
  public:
    static Profiler &instance();

#ifdef MLPWIN_PROFILE_DISABLED
    static constexpr bool enabled() { return false; }
#else
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
#endif

    /** Runtime gate; a no-op in MLPWIN_PROFILE_DISABLED builds. */
    void setEnabled(bool on);

    /** Nanoseconds since the profiler epoch (process start). */
    std::uint64_t
    nowNs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    /** Record one finished span into this thread's buffer. */
    void record(SpanKind kind, std::uint64_t begin_ns,
                std::uint64_t end_ns, std::string label = {});

    /** Drop all recorded data (aggregates and records). */
    void reset();

    /** Per-kind totals summed over every registered thread. */
    std::array<SpanAggregate, kNumSpanKinds> aggregate() const;

    /** All retained coarse spans, begin-ordered. */
    std::vector<SpanRecord> records() const;

    /** Coarse records dropped to the per-thread buffer cap. */
    std::uint64_t droppedRecords() const;

    /**
     * The retained coarse spans as serialized Chrome trace_event
     * objects (no surrounding brackets): complete "X" slices under
     * pid 1 with one metadata name event per host thread, ready to
     * merge into a guest timeline via writeChromeTrace's
     * extra_events. Timestamps are host microseconds since the
     * profiler epoch (the guest track's microseconds are cycles, so
     * the two planes sit side by side, not time-aligned).
     */
    std::vector<std::string> traceEvents() const;

  private:
    Profiler() : epoch_(std::chrono::steady_clock::now()) {}

    struct ThreadBuf
    {
        std::uint32_t index = 0;
        std::array<SpanAggregate, kNumSpanKinds> agg{};
        std::vector<SpanRecord> records;
        std::uint64_t dropped = 0;
    };

    ThreadBuf &threadBuf();

    const std::chrono::steady_clock::time_point epoch_;
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<ThreadBuf>> bufs_;
};

/**
 * RAII span. Captures the gate at construction so a mid-span
 * setEnabled toggle can't record a half-timed interval. Compiles to
 * nothing under MLPWIN_PROFILE_DISABLED.
 */
class ScopedSpan
{
  public:
#ifdef MLPWIN_PROFILE_DISABLED
    explicit ScopedSpan(SpanKind, std::string = {}) {}
#else
    explicit ScopedSpan(SpanKind kind, std::string label = {})
        : kind_(kind)
    {
        Profiler &p = Profiler::instance();
        if (p.enabled()) {
            active_ = true;
            label_ = std::move(label);
            beginNs_ = p.nowNs();
        }
    }

    ~ScopedSpan()
    {
        if (active_) {
            Profiler &p = Profiler::instance();
            p.record(kind_, beginNs_, p.nowNs(), std::move(label_));
        }
    }
#endif

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

#ifndef MLPWIN_PROFILE_DISABLED
  private:
    SpanKind kind_;
    bool active_ = false;
    std::uint64_t beginNs_ = 0;
    std::string label_;
#endif
};

} // namespace mlpwin

#endif // MLPWIN_PROFILE_PROFILER_HH
