/**
 * @file
 * Branch prediction unit per paper Table 1: a gshare direction
 * predictor with 16-bit global history and a 64K-entry PHT, a
 * 2K-set 4-way BTB, and a return-address stack.
 *
 * The global history is updated speculatively at predict time; the
 * core snapshots it per-branch and restores it on a squash.
 */

#ifndef MLPWIN_BRANCH_PREDICTOR_HH
#define MLPWIN_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace mlpwin
{

/** Conditional-direction predictor algorithm. */
enum class DirectionKind
{
    Gshare,     ///< Global-history XOR PC (paper Table 1 default).
    Bimodal,    ///< PC-indexed 2-bit counters, no history.
    Tournament, ///< McFarling chooser between gshare and bimodal.
};

/** Configuration of the branch unit (paper defaults). */
struct BranchPredictorConfig
{
    DirectionKind kind = DirectionKind::Gshare;
    unsigned historyBits = 16;
    std::size_t phtEntries = 64 * 1024;
    std::size_t btbSets = 2048;
    unsigned btbAssoc = 4;
    unsigned rasEntries = 16;
};

/** A prediction for one control-transfer instruction. */
struct BranchPrediction
{
    bool taken = false;
    Addr target = 0;
    /** History snapshot to restore if this branch squashes. */
    std::uint64_t historySnapshot = 0;
};

/** See file comment. */
class BranchPredictor
{
  public:
    BranchPredictor(const BranchPredictorConfig &cfg, StatSet *stats);

    /**
     * Predict a fetched control instruction and speculatively update
     * the global history (conditional branches only).
     *
     * @param pc The instruction's PC.
     * @param inst The decoded instruction (must be a control inst).
     */
    BranchPrediction predict(Addr pc, const StaticInst &inst);

    /**
     * Train on a resolved, committed control instruction.
     *
     * @param pc The instruction's PC.
     * @param inst The decoded instruction.
     * @param taken Actual direction.
     * @param target Actual target.
     * @param snapshot History snapshot captured at predict time.
     */
    void update(Addr pc, const StaticInst &inst, bool taken,
                Addr target, std::uint64_t snapshot);

    /** Restore the speculative global history after a squash. */
    void restoreHistory(std::uint64_t snapshot, bool taken);

    /**
     * Functional-warming update for one committed control instruction
     * during a native-speed fast-forward: trains the direction tables
     * and BTB exactly as a committed-and-correct detailed-mode branch
     * would, advances the global history with the true outcome, and
     * mirrors call/return traffic into the RAS. Counts no stats.
     */
    void warm(Addr pc, const StaticInst &inst, bool taken, Addr target);

    std::uint64_t history() const { return history_; }

    std::uint64_t lookups() const { return lookups_.value(); }
    std::uint64_t condMispredicts() const { return condMisp_.value(); }

  private:
    std::size_t phtIndex(Addr pc, std::uint64_t history) const;
    bool btbLookup(Addr pc, Addr &target);
    void btbInsert(Addr pc, Addr target);

    struct BtbEntry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
        std::uint64_t lruStamp = 0;
    };

    std::size_t bimodalIndex(Addr pc) const;
    /** Direction guess + the component votes (tournament). */
    bool predictDirection(Addr pc, bool &gshare_vote,
                          bool &bimodal_vote) const;

    DirectionKind kind_;
    unsigned historyBits_;
    std::uint64_t historyMask_;
    std::vector<std::uint8_t> pht_; ///< 2-bit saturating counters.
    /** Bimodal component (Bimodal and Tournament kinds). */
    std::vector<std::uint8_t> bimodal_;
    /** Chooser: >= 2 selects gshare (Tournament kind). */
    std::vector<std::uint8_t> chooser_;
    std::size_t btbSets_;
    unsigned btbAssoc_;
    std::vector<BtbEntry> btb_;
    std::vector<Addr> ras_;
    std::size_t rasTop_ = 0;
    unsigned rasEntries_;
    std::uint64_t history_ = 0;
    std::uint64_t lruCounter_ = 0;

    Counter lookups_;
    Counter condMisp_;
    Counter btbMisses_;
};

} // namespace mlpwin

#endif // MLPWIN_BRANCH_PREDICTOR_HH
