#include "predictor.hh"

#include "common/logging.hh"

namespace mlpwin
{

BranchPredictor::BranchPredictor(const BranchPredictorConfig &cfg,
                                 StatSet *stats)
    : kind_(cfg.kind),
      historyBits_(cfg.historyBits),
      historyMask_((1ULL << cfg.historyBits) - 1),
      pht_(cfg.phtEntries, 1), // Weakly not-taken.
      bimodal_(cfg.phtEntries, 1),
      chooser_(cfg.phtEntries, 2), // Weakly prefer gshare.
      btbSets_(cfg.btbSets),
      btbAssoc_(cfg.btbAssoc),
      btb_(cfg.btbSets * cfg.btbAssoc),
      ras_(cfg.rasEntries, 0),
      rasEntries_(cfg.rasEntries),
      lookups_(stats, "bp.lookups", "control-inst predictions"),
      condMisp_(stats, "bp.cond_mispredicts",
                "conditional direction mispredictions"),
      btbMisses_(stats, "bp.btb_misses", "taken targets missing in BTB")
{
    mlpwin_assert((cfg.phtEntries & (cfg.phtEntries - 1)) == 0);
    mlpwin_assert((cfg.btbSets & (cfg.btbSets - 1)) == 0);
}

std::size_t
BranchPredictor::phtIndex(Addr pc, std::uint64_t history) const
{
    std::uint64_t idx = (pc / kInstBytes) ^ (history & historyMask_);
    return idx & (pht_.size() - 1);
}

std::size_t
BranchPredictor::bimodalIndex(Addr pc) const
{
    return (pc / kInstBytes) & (bimodal_.size() - 1);
}

bool
BranchPredictor::predictDirection(Addr pc, bool &gshare_vote,
                                  bool &bimodal_vote) const
{
    gshare_vote = pht_[phtIndex(pc, history_)] >= 2;
    bimodal_vote = bimodal_[bimodalIndex(pc)] >= 2;
    switch (kind_) {
      case DirectionKind::Gshare:
        return gshare_vote;
      case DirectionKind::Bimodal:
        return bimodal_vote;
      case DirectionKind::Tournament:
        return chooser_[bimodalIndex(pc)] >= 2 ? gshare_vote
                                               : bimodal_vote;
    }
    return gshare_vote;
}

bool
BranchPredictor::btbLookup(Addr pc, Addr &target)
{
    std::size_t base = ((pc / kInstBytes) & (btbSets_ - 1)) * btbAssoc_;
    for (unsigned w = 0; w < btbAssoc_; ++w) {
        BtbEntry &e = btb_[base + w];
        if (e.valid && e.pc == pc) {
            e.lruStamp = ++lruCounter_;
            target = e.target;
            return true;
        }
    }
    return false;
}

void
BranchPredictor::btbInsert(Addr pc, Addr target)
{
    std::size_t base = ((pc / kInstBytes) & (btbSets_ - 1)) * btbAssoc_;
    BtbEntry *victim = &btb_[base];
    for (unsigned w = 0; w < btbAssoc_; ++w) {
        BtbEntry &e = btb_[base + w];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.lruStamp = ++lruCounter_;
            return;
        }
        if (!e.valid || e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lruStamp = ++lruCounter_;
}

BranchPrediction
BranchPredictor::predict(Addr pc, const StaticInst &inst)
{
    mlpwin_assert(inst.isControl());
    ++lookups_;

    BranchPrediction pred;
    pred.historySnapshot = history_;

    if (inst.isCondBranch()) {
        bool gshare_vote = false, bimodal_vote = false;
        pred.taken = predictDirection(pc, gshare_vote, bimodal_vote);
        pred.target = pred.taken
            ? pc + static_cast<std::int64_t>(inst.imm)
            : pc + kInstBytes;
        // Speculative history update.
        history_ = ((history_ << 1) | (pred.taken ? 1 : 0)) &
                   historyMask_;
        return pred;
    }

    if (inst.isJal()) {
        pred.taken = true;
        pred.target = pc + static_cast<std::int64_t>(inst.imm);
        if (inst.isCall())
            ras_[rasTop_++ % rasEntries_] = pc + kInstBytes;
        return pred;
    }

    // JALR: indirect. Returns use the RAS; other indirects use the BTB.
    pred.taken = true;
    if (inst.isReturn() && rasTop_ > 0) {
        pred.target = ras_[--rasTop_ % rasEntries_];
        return pred;
    }
    if (inst.isCall())
        ras_[rasTop_++ % rasEntries_] = pc + kInstBytes;
    if (!btbLookup(pc, pred.target)) {
        ++btbMisses_;
        pred.target = pc + kInstBytes; // No idea: predict fall-through.
    }
    return pred;
}

void
BranchPredictor::update(Addr pc, const StaticInst &inst, bool taken,
                        Addr target, std::uint64_t snapshot)
{
    if (inst.isCondBranch()) {
        auto train = [taken](std::uint8_t &ctr) {
            if (taken) {
                if (ctr < 3)
                    ++ctr;
            } else {
                if (ctr > 0)
                    --ctr;
            }
        };
        std::uint8_t &gctr = pht_[phtIndex(pc, snapshot)];
        std::uint8_t &bctr = bimodal_[bimodalIndex(pc)];
        bool gshare_right = (gctr >= 2) == taken;
        bool bimodal_right = (bctr >= 2) == taken;
        train(gctr);
        if (kind_ != DirectionKind::Gshare)
            train(bctr);
        if (kind_ == DirectionKind::Tournament &&
            gshare_right != bimodal_right) {
            // Move the chooser toward the component that was right.
            std::uint8_t &ch = chooser_[bimodalIndex(pc)];
            if (gshare_right) {
                if (ch < 3)
                    ++ch;
            } else {
                if (ch > 0)
                    --ch;
            }
        }
    }
    if (taken && (inst.isJalr() || inst.isCondBranch() || inst.isJal()))
        btbInsert(pc, target);
}

void
BranchPredictor::warm(Addr pc, const StaticInst &inst, bool taken,
                      Addr target)
{
    // On the detailed core the PHT is trained with the history as of
    // predict time; in a fast-forward every earlier branch has already
    // resolved, so the current history is exactly that snapshot.
    update(pc, inst, taken, target, history_);
    if (inst.isCondBranch())
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
    if (inst.isCall())
        ras_[rasTop_++ % rasEntries_] = pc + kInstBytes;
    else if (inst.isReturn() && rasTop_ > 0)
        --rasTop_;
}

void
BranchPredictor::restoreHistory(std::uint64_t snapshot, bool taken)
{
    history_ = ((snapshot << 1) | (taken ? 1 : 0)) & historyMask_;
}

} // namespace mlpwin
