/**
 * @file
 * SMT fetch arbitration: picks the one thread that owns the fetch
 * stage each cycle. Three policies (see SmtConfig::FetchPolicy):
 * round-robin, ICOUNT (Tullsen et al.: fewest in-flight front-end
 * instructions), and a predictor-driven MLP-aware variant that
 * throttles a thread stalled on L2 misses it cannot overlap.
 */

#ifndef MLPWIN_SMT_FETCH_POLICY_HH
#define MLPWIN_SMT_FETCH_POLICY_HH

#include <vector>

#include "smt/smt_config.hh"

namespace mlpwin
{

/** Per-thread inputs the core supplies to pick(). */
struct FetchThreadState
{
    /** May fetch this cycle (not halted/stalled/redirecting/full). */
    bool eligible = false;
    /** Fetch-queue + IQ occupancy (the ICOUNT metric). */
    unsigned frontEndCount = 0;
    /** In-flight L2-miss loads. */
    unsigned outstandingMisses = 0;
    /** Predicted MLP (ThreadPredictor::mlpEstimate). */
    double mlpEstimate = 0.0;
};

/** See file comment. */
class FetchPolicyEngine
{
  public:
    explicit FetchPolicyEngine(const SmtConfig &cfg)
        : cfg_(cfg), lastPicked_(cfg.nThreads - 1)
    {}

    /**
     * Choose the fetching thread. Deterministic: ties break in
     * rotation order after the previously picked thread.
     * @return Thread id, or -1 if no thread is eligible.
     */
    int pick(const std::vector<FetchThreadState> &threads);

  private:
    SmtConfig cfg_;
    unsigned lastPicked_;
};

} // namespace mlpwin

#endif // MLPWIN_SMT_FETCH_POLICY_HH
