#include "smt_config.hh"

#include <cstring>

namespace mlpwin
{

const char *
fetchPolicyName(FetchPolicy p)
{
    switch (p) {
      case FetchPolicy::RoundRobin:
        return "rr";
      case FetchPolicy::Icount:
        return "icount";
      case FetchPolicy::Predictive:
        return "predictive";
    }
    return "?";
}

const char *
partitionPolicyName(PartitionPolicy p)
{
    switch (p) {
      case PartitionPolicy::Static:
        return "static";
      case PartitionPolicy::Shared:
        return "shared";
      case PartitionPolicy::MlpAware:
        return "mlp";
    }
    return "?";
}

bool
parseFetchPolicy(const char *s, FetchPolicy &out)
{
    if (s == nullptr)
        return false;
    for (FetchPolicy p : {FetchPolicy::RoundRobin, FetchPolicy::Icount,
                          FetchPolicy::Predictive}) {
        if (std::strcmp(s, fetchPolicyName(p)) == 0) {
            out = p;
            return true;
        }
    }
    return false;
}

bool
parsePartitionPolicy(const char *s, PartitionPolicy &out)
{
    if (s == nullptr)
        return false;
    for (PartitionPolicy p :
         {PartitionPolicy::Static, PartitionPolicy::Shared,
          PartitionPolicy::MlpAware}) {
        if (std::strcmp(s, partitionPolicyName(p)) == 0) {
            out = p;
            return true;
        }
    }
    return false;
}

std::string
fetchPolicyNames()
{
    return "rr, icount, predictive";
}

std::string
partitionPolicyNames()
{
    return "static, shared, mlp";
}

} // namespace mlpwin
