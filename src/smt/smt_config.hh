/**
 * @file
 * SMT (simultaneous multithreading) configuration: thread count,
 * fetch policy, and per-thread window-partition policy, plus the
 * knobs of the per-thread ILP/MLP predictors. Plumbed through
 * CoreConfig so one struct reaches the core, the Simulator, and the
 * CLI flag parsers alike.
 */

#ifndef MLPWIN_SMT_SMT_CONFIG_HH
#define MLPWIN_SMT_SMT_CONFIG_HH

#include <string>

namespace mlpwin
{

/** Hard cap on co-scheduled hardware threads. */
constexpr unsigned kMaxSmtThreads = 4;

/**
 * Per-thread timing-address offset: thread t's functional addresses
 * are shifted by t << kThreadAddrShift before reaching the shared
 * cache hierarchy, so co-scheduled programs (separate address
 * spaces) never alias in the caches and an L2 miss's address names
 * its thread. Thread 0's addresses are unchanged, which keeps
 * single-thread runs bit-identical.
 */
constexpr unsigned kThreadAddrShift = 40;

/** Which thread fetches each cycle. */
enum class FetchPolicy
{
    /** Rotate over eligible threads, one per cycle. */
    RoundRobin,
    /** Fewest in-flight front-end instructions first (ICOUNT). */
    Icount,
    /**
     * MLP-aware ICOUNT: a thread stalled on outstanding L2 misses
     * with a low predicted MLP is fetch-throttled (its window fills
     * with instructions that cannot issue); a high-MLP thread keeps
     * fetching to expose more overlapping misses.
     */
    Predictive,
};

/** How the shared ROB/IQ/LSQ budget is split across threads. */
enum class PartitionPolicy
{
    /** Fixed equal split: every thread at the largest uniform level. */
    Static,
    /**
     * No per-thread cap: every thread sees the full budget and the
     * core enforces only the global capacity (first-come-first-
     * served, ICOUNT-style sharing).
     */
    Shared,
    /**
     * The paper's Fig. 5 algorithm applied per thread under the
     * shared budget: a thread grows one level on its own L2 demand
     * misses while the other threads' allocations leave headroom,
     * and shrinks back after a full memory latency without one.
     */
    MlpAware,
};

/** See file comment. */
struct SmtConfig
{
    /** Hardware threads (1 = the original single-thread core). */
    unsigned nThreads = 1;
    FetchPolicy fetchPolicy = FetchPolicy::Icount;
    PartitionPolicy partitionPolicy = PartitionPolicy::Static;

    // --- per-thread ILP/MLP predictor knobs ---------------------------
    /** Ring slots of history (QoSMT-style ring buffer). */
    unsigned predictorHistoryLength = 16;
    /** Cycles accumulated into each ring slot. */
    unsigned predictorIntervalCycles = 128;

    // --- predictive fetch knobs ---------------------------------------
    /** Predicted MLP below which a miss-stalled thread is throttled. */
    double mlpFetchThreshold = 1.5;
    /** ICOUNT bias added to a throttled thread's count. */
    unsigned fetchThrottlePenalty = 64;
};

/** Printable policy names ("rr"/"icount"/"predictive"). */
const char *fetchPolicyName(FetchPolicy p);
/** Printable policy names ("static"/"shared"/"mlp"). */
const char *partitionPolicyName(PartitionPolicy p);

/**
 * Strict parse of a fetch-policy name.
 * @return false (out untouched) unless s is exactly one of the
 *         names listed by fetchPolicyNames().
 */
bool parseFetchPolicy(const char *s, FetchPolicy &out);
/** Strict parse of a partition-policy name; see parseFetchPolicy. */
bool parsePartitionPolicy(const char *s, PartitionPolicy &out);

/** Comma-separated valid fetch-policy names (error messages). */
std::string fetchPolicyNames();
/** Comma-separated valid partition-policy names (error messages). */
std::string partitionPolicyNames();

} // namespace mlpwin

#endif // MLPWIN_SMT_SMT_CONFIG_HH
