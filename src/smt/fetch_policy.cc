#include "fetch_policy.hh"

namespace mlpwin
{

int
FetchPolicyEngine::pick(const std::vector<FetchThreadState> &threads)
{
    const unsigned n = static_cast<unsigned>(threads.size());
    int best = -1;
    std::uint64_t best_count = 0;

    for (unsigned k = 1; k <= n; ++k) {
        unsigned tid = (lastPicked_ + k) % n;
        const FetchThreadState &t = threads[tid];
        if (!t.eligible)
            continue;

        if (cfg_.fetchPolicy == FetchPolicy::RoundRobin) {
            best = static_cast<int>(tid);
            break;
        }

        std::uint64_t count = t.frontEndCount;
        if (cfg_.fetchPolicy == FetchPolicy::Predictive &&
            t.outstandingMisses > 0 &&
            t.mlpEstimate < cfg_.mlpFetchThreshold) {
            // Miss-stalled with little overlap left to expose:
            // filling its window starves the other threads.
            count += cfg_.fetchThrottlePenalty;
        }
        if (best < 0 || count < best_count) {
            best = static_cast<int>(tid);
            best_count = count;
        }
    }

    if (best >= 0)
        lastPicked_ = static_cast<unsigned>(best);
    return best;
}

} // namespace mlpwin
