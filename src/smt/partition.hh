/**
 * @file
 * SMT window partitioning: allocates level-table entries per thread
 * from the shared ROB/IQ/LSQ budget (the largest level's sizes).
 *
 * Three policies (see SmtConfig::PartitionPolicy):
 *  - Static: every thread fixed at the largest uniform level whose
 *    summed sizes fit the budget (level 1 for 2-4 threads with the
 *    paper's table — the classic statically partitioned SMT).
 *  - Shared: every thread sees the full budget; only the global
 *    capacity (enforced by the core at dispatch) limits growth.
 *  - MlpAware: the paper's Fig. 5 algorithm run per thread under a
 *    feasibility constraint: a thread grows one level on its own L2
 *    demand miss if the other threads' current allocations leave
 *    room, and shrinks one level (draining with allocation stopped,
 *    paying the transition penalty) after a full memory latency
 *    without one. Memory-bound phases thus borrow window entries
 *    from compute-bound co-runners and return them afterwards.
 */

#ifndef MLPWIN_SMT_PARTITION_HH
#define MLPWIN_SMT_PARTITION_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "resize/controller.hh"
#include "resize/level_table.hh"
#include "smt/smt_config.hh"

namespace mlpwin
{

/** Per-thread occupancy the core passes to tick(). */
struct ThreadPartitionInput
{
    WindowOccupancy occ;
    /** Thread committed its Halt; its allocation is released. */
    bool halted = false;
};

/** See file comment. */
class SmtPartitionController
{
  public:
    /**
     * @param table Level table shared by all threads (copied).
     * @param smt Thread count and partition policy.
     * @param mlp Fig. 5 timing knobs (memory latency, penalty).
     * @param stats Stat registry (may be nullptr).
     */
    SmtPartitionController(const LevelTable &table,
                           const SmtConfig &smt,
                           const MlpControllerConfig &mlp,
                           StatSet *stats);

    /** Called (via the Simulator) on thread tid's L2 demand misses. */
    void onL2DemandMiss(unsigned tid, Cycle now);

    /** Advance one cycle; in.size() must equal nThreads. */
    void tick(Cycle now, const std::vector<ThreadPartitionInput> &in);

    unsigned nThreads() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Thread tid's current level (1-based). */
    unsigned levelFor(unsigned tid) const
    {
        return threads_[tid].level;
    }

    /** Thread tid's resource caps at its current level. */
    const ResourceLevel &
    currentFor(unsigned tid) const
    {
        return table_.at(threads_[tid].level);
    }

    /** True while thread tid must not allocate window resources. */
    bool allocStoppedFor(unsigned tid) const
    {
        return threads_[tid].allocStopped;
    }

    /** True if any thread has allocation stopped (drain watchdog). */
    bool anyAllocStopped() const;

    bool inTransitionFor(unsigned tid) const
    {
        return threads_[tid].inTransition;
    }

    const LevelTable &table() const { return table_; }

    /** The shared capacity: the largest level's sizes. */
    const ResourceLevel &
    budget() const
    {
        return table_.at(table_.maxLevel());
    }

    const LevelResidency &residencyFor(unsigned tid) const
    {
        return threads_[tid].residency;
    }

    std::uint64_t upTransitions() const { return ups_; }
    std::uint64_t downTransitions() const { return downs_; }

    /** Zero residency/transition accounting. */
    void resetMeasurement();

    /**
     * The largest level l with nThreads * sizes(l) inside the
     * budget for all three resources (>= 1: level 1 must fit, which
     * the paper's table guarantees up to kMaxSmtThreads).
     */
    static unsigned staticLevel(const LevelTable &table,
                                unsigned n_threads);

    /**
     * True if raising tid one level keeps the summed per-thread
     * caps within the budget (halted threads count as released).
     */
    bool growFeasible(unsigned tid) const;

  private:
    struct ThreadState
    {
        unsigned level = 1;
        Cycle shrinkTiming = kNoCycle;
        bool doShrink = false;
        Cycle stallUntil = 0;
        bool allocStopped = false;
        bool inTransition = false;
        bool halted = false;
        LevelResidency residency;
    };

    void startTransition(ThreadState &t, Cycle now);

    LevelTable table_;
    SmtConfig smt_;
    MlpControllerConfig cfg_;
    std::vector<ThreadState> threads_;
    std::uint64_t ups_ = 0;
    std::uint64_t downs_ = 0;

    Counter enlargements_;
    Counter shrinks_;
    Counter drainStallCycles_;
};

} // namespace mlpwin

#endif // MLPWIN_SMT_PARTITION_HH
