#include "partition.hh"

#include "common/logging.hh"

namespace mlpwin
{

SmtPartitionController::SmtPartitionController(
        const LevelTable &table, const SmtConfig &smt,
        const MlpControllerConfig &mlp, StatSet *stats)
    : table_(table), smt_(smt), cfg_(mlp),
      enlargements_(stats, "smt.enlargements",
                    "per-thread level-up transitions"),
      shrinks_(stats, "smt.shrinks",
               "per-thread level-down transitions"),
      drainStallCycles_(stats, "smt.drain_stall_cycles",
                        "thread-cycles allocation stopped to drain")
{
    mlpwin_assert(smt_.nThreads >= 1 &&
                  smt_.nThreads <= kMaxSmtThreads);
    unsigned start_level = 1;
    switch (smt_.partitionPolicy) {
      case PartitionPolicy::Static:
        start_level = staticLevel(table_, smt_.nThreads);
        break;
      case PartitionPolicy::Shared:
        start_level = table_.maxLevel();
        break;
      case PartitionPolicy::MlpAware:
        start_level = 1;
        break;
    }
    threads_.resize(smt_.nThreads);
    for (ThreadState &t : threads_) {
        t.level = start_level;
        t.residency.cyclesAtLevel.assign(table_.maxLevel(), 0);
    }
}

unsigned
SmtPartitionController::staticLevel(const LevelTable &table,
                                    unsigned n_threads)
{
    const ResourceLevel &cap = table.at(table.maxLevel());
    unsigned best = 1;
    for (unsigned l = 1; l <= table.maxLevel(); ++l) {
        const ResourceLevel &r = table.at(l);
        if (n_threads * r.robSize <= cap.robSize &&
            n_threads * r.iqSize <= cap.iqSize &&
            n_threads * r.lsqSize <= cap.lsqSize) {
            best = l;
        }
    }
    return best;
}

bool
SmtPartitionController::growFeasible(unsigned tid) const
{
    const ResourceLevel &cap = budget();
    std::uint64_t rob = 0, iq = 0, lsq = 0;
    for (unsigned t = 0; t < threads_.size(); ++t) {
        if (threads_[t].halted)
            continue; // A finished thread's allocation is released.
        unsigned lvl = threads_[t].level + (t == tid ? 1 : 0);
        const ResourceLevel &r = table_.at(lvl);
        rob += r.robSize;
        iq += r.iqSize;
        lsq += r.lsqSize;
    }
    return rob <= cap.robSize && iq <= cap.iqSize &&
           lsq <= cap.lsqSize;
}

void
SmtPartitionController::startTransition(ThreadState &t, Cycle now)
{
    if (cfg_.transitionPenalty > 0) {
        t.stallUntil = now + cfg_.transitionPenalty;
        t.inTransition = true;
    }
}

void
SmtPartitionController::onL2DemandMiss(unsigned tid, Cycle now)
{
    if (smt_.partitionPolicy != PartitionPolicy::MlpAware)
        return;
    ThreadState &t = threads_[tid];
    if (t.halted)
        return;
    // Fig. 5 lines 7-10, per thread, gated on shared-budget headroom.
    if (t.level < table_.maxLevel() && growFeasible(tid)) {
        ++t.level;
        ++ups_;
        ++enlargements_;
        startTransition(t, now);
    }
    t.shrinkTiming = now + cfg_.memoryLatency;
    t.doShrink = false;
}

bool
SmtPartitionController::anyAllocStopped() const
{
    for (const ThreadState &t : threads_) {
        if (t.allocStopped)
            return true;
    }
    return false;
}

void
SmtPartitionController::tick(
        Cycle now, const std::vector<ThreadPartitionInput> &in)
{
    mlpwin_assert(in.size() == threads_.size());

    for (unsigned tid = 0; tid < threads_.size(); ++tid) {
        ThreadState &t = threads_[tid];
        t.halted = in[tid].halted;
        if (t.halted) {
            // Release the allocation so co-runners can grow into it.
            t.level = 1;
            t.doShrink = false;
            t.shrinkTiming = kNoCycle;
            t.allocStopped = false;
            t.inTransition = false;
            continue;
        }
        t.residency.cyclesAtLevel[t.level - 1] += 1;

        if (smt_.partitionPolicy != PartitionPolicy::MlpAware) {
            t.allocStopped = false;
            continue;
        }

        if (t.inTransition && now >= t.stallUntil)
            t.inTransition = false;

        // Fig. 5 lines 11-13.
        if (t.shrinkTiming != kNoCycle && now >= t.shrinkTiming)
            t.doShrink = true;

        bool stop_alloc = false;

        // Fig. 5 lines 14-23.
        if (t.level > 1 && t.doShrink) {
            const ResourceLevel &target = table_.at(t.level - 1);
            const WindowOccupancy &occ = in[tid].occ;
            if (occ.rob <= target.robSize &&
                occ.iq <= target.iqSize &&
                occ.lsq <= target.lsqSize) {
                --t.level;
                ++downs_;
                ++shrinks_;
                t.shrinkTiming = now + cfg_.memoryLatency;
                t.doShrink = false;
                startTransition(t, now);
            } else {
                stop_alloc = true;
                ++drainStallCycles_;
            }
        }

        t.allocStopped = stop_alloc || t.inTransition;
    }
}

void
SmtPartitionController::resetMeasurement()
{
    for (ThreadState &t : threads_) {
        std::fill(t.residency.cyclesAtLevel.begin(),
                  t.residency.cyclesAtLevel.end(), 0);
    }
    ups_ = 0;
    downs_ = 0;
}

} // namespace mlpwin
