/**
 * @file
 * The SMT thread context: everything the out-of-order core keeps
 * per hardware thread. One ThreadContext owns a thread's
 * architectural front (PC, correct-path oracle emulator, branch
 * predictor with its own history), its private window views (ROB
 * deque, rename map, LSQ list, fetch queue, store buffer, WIB
 * state, runahead state), its wrong-path shadow machinery, and the
 * per-thread observability hooks (lockstep checker, ILP/MLP
 * predictor, MLP accounting). The core's shared structures — cycle
 * clock, sequence numbers, issue queue list, functional units,
 * completion events — stay in OooCore; a single-thread core is one
 * ThreadContext driven exactly as before.
 *
 * Not copyable or movable (the branch predictor registers stats by
 * pointer): the core heap-allocates one per thread.
 */

#ifndef MLPWIN_SMT_THREAD_HH
#define MLPWIN_SMT_THREAD_HH

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "branch/predictor.hh"
#include "common/types.hh"
#include "cpu/cpi_stack.hh"
#include "cpu/dyninst.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "mem/main_memory.hh"
#include "runahead/runahead.hh"
#include "smt/predictor.hh"
#include "smt/smt_config.hh"

namespace mlpwin
{

class LockstepChecker;

/** A committed store waiting to drain to the caches. */
struct PendingStore
{
    Addr addr;
    RegVal data;
};

/** See file comment. */
struct ThreadContext
{
    /**
     * @param tid_ Hardware thread id (0-based).
     * @param fmem_ The thread's functional memory, already loaded
     *        (not owned).
     * @param prog The thread's program.
     * @param smt_cfg Predictor knobs.
     * @param stats Stat registry for the branch predictor; pass
     *        nullptr for tids > 0 (stat names are per-core).
     * @param bp_cfg Branch predictor configuration.
     */
    ThreadContext(unsigned tid_, MainMemory &fmem_,
                  const Program &prog, const SmtConfig &smt_cfg,
                  StatSet *stats, const BranchPredictorConfig &bp_cfg)
        : tid(tid_), fmem(fmem_),
          addrBase(static_cast<Addr>(tid_) << kThreadAddrShift),
          bp(bp_cfg, stats), oracle(fmem_, prog.entry()),
          fetchPc(prog.entry()), predictor(smt_cfg)
    {
        renameMap.fill(kNoProducer);
    }

    ThreadContext(const ThreadContext &) = delete;
    ThreadContext &operator=(const ThreadContext &) = delete;

    const unsigned tid;
    /** Functional memory (private address space; not owned). */
    MainMemory &fmem;
    /** Offset added to timing addresses in the shared caches. */
    const Addr addrBase;

    BranchPredictor bp;
    Emulator oracle;

    // --- lifecycle ------------------------------------------------------
    /** The thread's Halt instruction has committed. */
    bool halted = false;
    /** Lifetime count of real (non-pseudo) commits (== oracle). */
    std::uint64_t committedTotal = 0;
    /** Commits inside the measurement window (per-thread IPC). */
    std::uint64_t committedMeasured = 0;

    // --- windows --------------------------------------------------------
    /**
     * The thread's ROB slice, oldest at front. A std::deque keeps
     * element addresses stable, so the core's shared seq map and IQ
     * list may hold raw pointers into it.
     */
    std::deque<DynInst> window;
    std::deque<DynInst> fetchQueue;
    unsigned iqOcc = 0;
    unsigned lsqOcc = 0;
    std::deque<DynInst *> lsqList; ///< LSQ entries, age order.
    std::array<InstSeqNum, kNumArchRegs> renameMap{};
    std::deque<PendingStore> storeBuffer;

    // --- WIB state ------------------------------------------------------
    unsigned wibOcc = 0;
    std::unordered_map<InstSeqNum, std::vector<InstSeqNum>> wibWaiters;
    std::deque<std::pair<Cycle, InstSeqNum>> wibReady;

    // --- fetch state ----------------------------------------------------
    Addr fetchPc = 0;
    bool fetchHalted = false;
    bool fetchWaitBranch = false;
    Cycle redirectAt = 0;
    Cycle icacheBusyUntil = 0;
    Addr lastFetchLine = kNoAddr;

    // --- wrong-path state -----------------------------------------------
    bool onWrongPath = false;
    RegFile shadowRegs;
    std::unordered_map<Addr, RegVal> shadowStores;

    // --- runahead state -------------------------------------------------
    bool inRunahead = false;
    Addr raTriggerPc = 0;
    Cycle raExitAt = 0;
    std::uint64_t raEpisodeMisses = 0;
    std::vector<ExecRecord> raUndoLog;
    InvTracker inv;
    RunaheadCauseStatusTable rcst;

    // --- per-cycle scratch ----------------------------------------------
    bool allocStalledFull = false;
    /** Instructions issued this cycle (predictor input). */
    unsigned issuedThisCycle = 0;
    /** Real (non-pseudo) commits this cycle (CPI-stack Base test). */
    unsigned commitsThisCycle = 0;
    /** Which structure blocked dispatch this cycle (RobFull/IqFull/
     *  LsqFull), or kNoDispatchBlock when dispatch wasn't blocked on
     *  a full structure. */
    static constexpr std::uint8_t kNoDispatchBlock = 0xff;
    std::uint8_t dispatchBlock = kNoDispatchBlock;
    /** SMT: fetch-eligible this cycle but the shared port went to a
     *  co-runner. */
    bool fetchDenied = false;

    // --- CPI-stack accounting --------------------------------------------
    /** Cycle attribution over the measurement window. */
    CpiStack cpi;
    /** The pending redirectAt stems from a runahead exit, not a
     *  branch mispredict (classifies the redirect wait cycles). */
    bool redirectIsRunahead = false;

    // --- MLP observation -------------------------------------------------
    /** Completion cycles of in-flight L2-miss loads. */
    std::vector<Cycle> activeMissDone;
    double mlpOverlapSum = 0.0;
    std::uint64_t mlpActiveCycles = 0;

    // --- SMT policy inputs ----------------------------------------------
    ThreadPredictor predictor;

    /** Per-thread lockstep checker (not owned; nullptr disables). */
    LockstepChecker *checker = nullptr;

    /** Average in-flight L2-miss loads over miss-active cycles. */
    double
    observedMlp() const
    {
        return mlpActiveCycles
            ? mlpOverlapSum / static_cast<double>(mlpActiveCycles)
            : 0.0;
    }
};

} // namespace mlpwin

#endif // MLPWIN_SMT_THREAD_HH
