#include "metrics.hh"

#include <limits>

#include "common/status.hh"

namespace mlpwin
{

namespace
{

void
checkInputs(const std::vector<double> &smt_ipc,
            const std::vector<double> &alone_ipc)
{
    if (smt_ipc.empty() || smt_ipc.size() != alone_ipc.size())
        throw SimError(ErrorCode::InvalidArgument,
                       "fairness metrics need one SMT IPC and one "
                       "alone IPC per thread (got " +
                           std::to_string(smt_ipc.size()) + " and " +
                           std::to_string(alone_ipc.size()) + ")");
    for (double a : alone_ipc) {
        if (a <= 0.0)
            throw SimError(ErrorCode::InvalidArgument,
                           "fairness metrics need positive "
                           "single-thread (alone) IPCs");
    }
}

} // namespace

double
stp(const std::vector<double> &smt_ipc,
    const std::vector<double> &alone_ipc)
{
    checkInputs(smt_ipc, alone_ipc);
    double sum = 0.0;
    for (std::size_t i = 0; i < smt_ipc.size(); ++i)
        sum += smt_ipc[i] / alone_ipc[i];
    return sum;
}

double
antt(const std::vector<double> &smt_ipc,
     const std::vector<double> &alone_ipc)
{
    checkInputs(smt_ipc, alone_ipc);
    double sum = 0.0;
    for (std::size_t i = 0; i < smt_ipc.size(); ++i) {
        if (smt_ipc[i] <= 0.0)
            return std::numeric_limits<double>::infinity();
        sum += alone_ipc[i] / smt_ipc[i];
    }
    return sum / static_cast<double>(smt_ipc.size());
}

double
harmonicSpeedup(const std::vector<double> &smt_ipc,
                const std::vector<double> &alone_ipc)
{
    checkInputs(smt_ipc, alone_ipc);
    double denom = 0.0;
    for (std::size_t i = 0; i < smt_ipc.size(); ++i) {
        if (smt_ipc[i] <= 0.0)
            return 0.0;
        denom += alone_ipc[i] / smt_ipc[i];
    }
    return static_cast<double>(smt_ipc.size()) / denom;
}

} // namespace mlpwin
