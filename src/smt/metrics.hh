/**
 * @file
 * Multiprogram throughput/fairness metrics (Eyerman & Eeckhout):
 * system throughput (STP, a.k.a. weighted speedup), average
 * normalized turnaround time (ANTT), and the harmonic mean of
 * per-thread speedups. All take the co-scheduled (SMT) per-thread
 * IPCs and the same programs' single-thread (alone) IPCs.
 */

#ifndef MLPWIN_SMT_METRICS_HH
#define MLPWIN_SMT_METRICS_HH

#include <vector>

namespace mlpwin
{

/**
 * System throughput: sum over threads of IPC_smt / IPC_alone.
 * Ranges up to nThreads; 1.0 means "as much total work as one
 * program running alone".
 *
 * @throws SimError{InvalidArgument} on empty or mismatched inputs,
 *         or a non-positive alone IPC.
 */
double stp(const std::vector<double> &smt_ipc,
           const std::vector<double> &alone_ipc);

/**
 * Average normalized turnaround time: mean over threads of
 * IPC_alone / IPC_smt (per-thread slowdown; lower is better, 1.0 =
 * no slowdown). Infinity if any thread committed nothing.
 *
 * @throws SimError{InvalidArgument} as stp().
 */
double antt(const std::vector<double> &smt_ipc,
            const std::vector<double> &alone_ipc);

/**
 * Harmonic mean of per-thread speedups IPC_smt / IPC_alone —
 * balances throughput and fairness. 0 if any thread committed
 * nothing.
 *
 * @throws SimError{InvalidArgument} as stp().
 */
double harmonicSpeedup(const std::vector<double> &smt_ipc,
                       const std::vector<double> &alone_ipc);

} // namespace mlpwin

#endif // MLPWIN_SMT_METRICS_HH
