/**
 * @file
 * Per-thread ILP/MLP predictors for the SMT fetch and partition
 * policies. A ring buffer of fixed-length cycle intervals (the
 * QoSMT ILPPredictor idiom: a short history array indexed by a
 * advancing head, averaged on read) accumulates, per slot, the
 * instructions the thread issued and its outstanding-L2-miss
 * occupancy; the predictions are windowed averages over the ring:
 *
 *  - ilpEstimate(): issued instructions per cycle — how well the
 *    thread uses issue slots when it gets them.
 *  - mlpEstimate(): mean outstanding L2 misses over the miss-active
 *    cycles in the window — how much miss overlap a bigger window
 *    is buying this thread.
 *
 * Purely observational: predictors never affect timing unless a
 * policy consults them.
 */

#ifndef MLPWIN_SMT_PREDICTOR_HH
#define MLPWIN_SMT_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "smt/smt_config.hh"

namespace mlpwin
{

/** See file comment. */
class ThreadPredictor
{
  public:
    explicit ThreadPredictor(const SmtConfig &cfg);

    /**
     * Advance one cycle.
     * @param outstanding_misses In-flight L2-miss loads this cycle.
     * @param issued Instructions the thread issued this cycle.
     */
    void tick(unsigned outstanding_misses, unsigned issued);

    /** Issued instructions per cycle over the history window. */
    double ilpEstimate() const;

    /**
     * Mean outstanding L2 misses over miss-active cycles in the
     * window; 0 when the window holds no miss-active cycle.
     */
    double mlpEstimate() const;

    /** Drop all history (measurement-window reset). */
    void reset();

  private:
    struct Slot
    {
        std::uint32_t cycles = 0;
        std::uint32_t issued = 0;
        std::uint32_t missCycles = 0;
        std::uint64_t missSum = 0;
    };

    /** Retire the current slot into the ring and start a new one. */
    void advance();

    unsigned intervalCycles_;
    std::vector<Slot> ring_;
    unsigned head_ = 0;
    Slot cur_;

    // Running totals over ring_ (cur_ excluded), kept incrementally
    // so the estimates are O(1) per read.
    std::uint64_t totalCycles_ = 0;
    std::uint64_t totalIssued_ = 0;
    std::uint64_t totalMissCycles_ = 0;
    std::uint64_t totalMissSum_ = 0;
};

} // namespace mlpwin

#endif // MLPWIN_SMT_PREDICTOR_HH
