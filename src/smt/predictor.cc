#include "predictor.hh"

#include <algorithm>

namespace mlpwin
{

ThreadPredictor::ThreadPredictor(const SmtConfig &cfg)
    : intervalCycles_(std::max(1u, cfg.predictorIntervalCycles)),
      ring_(std::max(1u, cfg.predictorHistoryLength))
{
}

void
ThreadPredictor::advance()
{
    Slot &old = ring_[head_];
    totalCycles_ -= old.cycles;
    totalIssued_ -= old.issued;
    totalMissCycles_ -= old.missCycles;
    totalMissSum_ -= old.missSum;

    old = cur_;
    totalCycles_ += cur_.cycles;
    totalIssued_ += cur_.issued;
    totalMissCycles_ += cur_.missCycles;
    totalMissSum_ += cur_.missSum;

    head_ = (head_ + 1) % ring_.size();
    cur_ = Slot{};
}

void
ThreadPredictor::tick(unsigned outstanding_misses, unsigned issued)
{
    ++cur_.cycles;
    cur_.issued += issued;
    if (outstanding_misses > 0) {
        ++cur_.missCycles;
        cur_.missSum += outstanding_misses;
    }
    if (cur_.cycles >= intervalCycles_)
        advance();
}

double
ThreadPredictor::ilpEstimate() const
{
    std::uint64_t cycles = totalCycles_ + cur_.cycles;
    std::uint64_t issued = totalIssued_ + cur_.issued;
    return cycles ? static_cast<double>(issued) /
                        static_cast<double>(cycles)
                  : 0.0;
}

double
ThreadPredictor::mlpEstimate() const
{
    std::uint64_t mc = totalMissCycles_ + cur_.missCycles;
    std::uint64_t ms = totalMissSum_ + cur_.missSum;
    return mc ? static_cast<double>(ms) / static_cast<double>(mc)
              : 0.0;
}

void
ThreadPredictor::reset()
{
    std::fill(ring_.begin(), ring_.end(), Slot{});
    cur_ = Slot{};
    head_ = 0;
    totalCycles_ = totalIssued_ = 0;
    totalMissCycles_ = totalMissSum_ = 0;
}

} // namespace mlpwin
