#include "cache/result_cache.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"

namespace fs = std::filesystem;

namespace mlpwin
{
namespace cache
{

namespace
{

constexpr const char *kMagic = "MLPWCACHE";

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/**
 * Advisory flock on <dir>/.lock for the lifetime of the object.
 * Failure to acquire is tolerated (ok() false): the lock protects
 * concurrent maintenance, not correctness of individual reads —
 * entry files are only ever created whole via rename.
 */
class ScopedFlock
{
  public:
    ScopedFlock(const std::string &dir, int op)
    {
        fd_ = ::open((dir + "/.lock").c_str(), O_RDWR | O_CREAT,
                     0644);
        if (fd_ >= 0 && ::flock(fd_, op) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~ScopedFlock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }
    bool ok() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

/** Whole-file read; false on open/read failure. */
bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    if (is.bad())
        return false;
    out = ss.str();
    return true;
}

std::int64_t
fileMtime(const fs::path &p)
{
    // stat(2), not fs::last_write_time: file_clock's epoch is
    // implementation-defined, and callers want Unix seconds.
    struct stat st;
    if (::stat(p.c_str(), &st) != 0)
        return 0;
    return static_cast<std::int64_t>(st.st_mtime);
}

} // namespace

std::uint64_t
fnv1a(const void *data, std::size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
foldKey(std::initializer_list<std::uint64_t> parts)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t v : parts) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
    return h;
}

ResultCache::ResultCache(const std::string &dir) : dir_(dir)
{
    std::error_code ec;
    for (const char *sub : {"objects", "quarantine", "tmp"}) {
        fs::create_directories(fs::path(dir_) / sub, ec);
        if (ec) {
            disable("open", dir_ + "/" + sub + ": " + ec.message());
            return;
        }
    }
    // Probe writability up front so a read-only mount degrades here,
    // with one warning, instead of on the first put.
    int fd = ::open((dir_ + "/.lock").c_str(), O_RDWR | O_CREAT,
                    0644);
    if (fd < 0) {
        disable("open", dir_ + "/.lock: " + std::strerror(errno));
        return;
    }
    ::close(fd);
    enabled_ = true;
}

void
ResultCache::disable(const char *op, const std::string &detail)
{
    enabled_ = false;
    mlpwin_warn("result cache %s failed (%s); continuing with the "
                "cache off",
                op, detail.c_str());
}

std::string
ResultCache::entryPath(std::uint64_t key) const
{
    std::string h = hex16(key);
    return dir_ + "/objects/" + h.substr(0, 2) + "/" + h + ".entry";
}

bool
ResultCache::verifyEntry(const std::string &path, std::uint64_t key,
                         std::string *payload_out, std::string *why)
{
    auto fail = [&](const std::string &reason) {
        if (why)
            *why = reason;
        return false;
    };

    std::string raw;
    if (!readFile(path, raw))
        return fail("unreadable entry file");
    std::size_t nl = raw.find('\n');
    if (nl == std::string::npos)
        return fail("no header/payload separator (torn write?)");

    JsonValue hdr;
    try {
        hdr = parseJson(raw.substr(0, nl));
        if (hdr.field("magic").asString() != kMagic)
            return fail("bad magic \"" +
                        hdr.field("magic").asString() + "\"");
        if (hdr.field("version").asU64() != kFormatVersion)
            return fail("entry format version " +
                        hdr.field("version").text + " != " +
                        fmtU64(kFormatVersion));
        if (hdr.field("schema").asU64() != kResultSchemaVersion)
            return fail("stale result schema " +
                        hdr.field("schema").text + " (current " +
                        fmtU64(kResultSchemaVersion) + ")");
        if (hdr.field("key").asString() != hex16(key))
            return fail("key mismatch: header says " +
                        hdr.field("key").asString());

        std::uint64_t want_len = hdr.field("payload_len").asU64();
        std::uint64_t want_fnv = hdr.field("payload_fnv").asU64();
        // Payload is everything after the header newline, minus the
        // trailing newline the writer appends.
        if (raw.size() < nl + 2 || raw.back() != '\n')
            return fail("payload truncated (no trailing newline)");
        std::string payload =
            raw.substr(nl + 1, raw.size() - nl - 2);
        if (payload.size() != want_len)
            return fail("payload length " + fmtU64(payload.size()) +
                        " != header's " + fmtU64(want_len));
        std::uint64_t got_fnv = fnv1a(payload.data(),
                                      payload.size());
        if (got_fnv != want_fnv)
            return fail("payload checksum " + fmtU64(got_fnv) +
                        " != header's " + fmtU64(want_fnv));
        if (payload_out)
            *payload_out = std::move(payload);
        return true;
    } catch (const std::exception &e) {
        return fail(std::string("malformed header: ") + e.what());
    }
}

/**
 * Caller holds mutex_ AND a flock on the cache (shared is enough;
 * fsck calls in under its exclusive one — taking another here would
 * self-deadlock, flock conflicting across fds within one process).
 */
void
ResultCache::quarantineLocked(const std::string &path,
                              std::uint64_t key,
                              const std::string &reason)
{
    std::string dst =
        dir_ + "/quarantine/" + hex16(key) + ".entry";
    std::error_code ec;
    fs::rename(path, dst, ec);
    if (ec) {
        // Cross-process race (both readers saw the corruption) or an
        // unwritable dir; either way the goal — don't serve it — is
        // met if the file is gone. Remove as a fallback.
        fs::remove(path, ec);
    }
    std::ofstream os(dir_ + "/quarantine/" + hex16(key) + ".reason",
                     std::ios::trunc);
    if (os)
        os << "{\"key\":\"" << hex16(key) << "\",\"reason\":\""
           << jsonEscape(reason) << "\",\"entry\":\""
           << jsonEscape(dst) << "\"}\n";
    ++stats_.quarantined;
    mlpwin_warn("result cache entry %s quarantined (%s); cell will "
                "re-simulate",
                hex16(key).c_str(), reason.c_str());
}

bool
ResultCache::get(std::uint64_t key, std::string &payload_out)
{
    if (!enabled_)
        return false;
    std::lock_guard<std::mutex> guard(mutex_);
    std::string path = entryPath(key);
    if (!fs::exists(path)) {
        ++stats_.misses;
        return false;
    }
    std::string why;
    if (verifyEntry(path, key, &payload_out, &why)) {
        ++stats_.hits;
        return true;
    }
    {
        ScopedFlock lock(dir_, LOCK_SH);
        quarantineLocked(path, key, why);
    }
    ++stats_.misses;
    return false;
}

bool
ResultCache::put(std::uint64_t key, const std::string &payload,
                 const std::string &workload,
                 const std::string &model, std::uint64_t config_fp,
                 std::uint64_t program_hash)
{
    if (!enabled_)
        return false;
    std::lock_guard<std::mutex> guard(mutex_);

    std::ostringstream hdr;
    hdr << "{\"magic\":\"" << kMagic << "\",\"version\":"
        << kFormatVersion << ",\"schema\":" << kResultSchemaVersion
        << ",\"key\":\"" << hex16(key) << "\",\"workload\":\""
        << jsonEscape(workload) << "\",\"model\":\""
        << jsonEscape(model) << "\",\"config_fp\":\""
        << hex16(config_fp) << "\",\"program_hash\":\""
        << hex16(program_hash) << "\",\"payload_len\":"
        << payload.size() << ",\"payload_fnv\":"
        << fmtU64(fnv1a(payload.data(), payload.size())) << "}";

    ScopedFlock lock(dir_, LOCK_SH);
    std::string path = entryPath(key);
    std::string tmp = dir_ + "/tmp/" + hex16(key) + "." +
                      std::to_string(::getpid()) + ".tmp";
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    bool ok = !ec;
    if (ok) {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        os << hdr.str() << '\n' << payload << '\n';
        os.flush();
        ok = os.good();
        os.close();
        ok = ok && os.good();
        if (ok) {
            fs::rename(tmp, path, ec);
            ok = !ec;
        }
    }
    if (!ok) {
        fs::remove(tmp, ec);
        ++stats_.storeFailures;
        if (!warnedStore_) {
            warnedStore_ = true;
            disable("write",
                    path + (errno ? std::string(": ") +
                                        std::strerror(errno)
                                  : std::string()));
        }
        return false;
    }
    ++stats_.stores;
    return true;
}

void
ResultCache::quarantine(std::uint64_t key, const std::string &reason)
{
    if (!enabled_)
        return;
    std::lock_guard<std::mutex> guard(mutex_);
    std::string path = entryPath(key);
    if (!fs::exists(path))
        return;
    ScopedFlock lock(dir_, LOCK_SH);
    quarantineLocked(path, key, reason);
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return stats_;
}

ResultCache::FsckReport
ResultCache::fsck()
{
    FsckReport rep;
    if (!enabled_)
        return rep;
    std::lock_guard<std::mutex> guard(mutex_);
    ScopedFlock lock(dir_, LOCK_EX);
    std::error_code ec;
    for (const fs::directory_entry &shard :
         fs::directory_iterator(dir_ + "/objects", ec)) {
        if (!shard.is_directory())
            continue;
        for (const fs::directory_entry &e :
             fs::directory_iterator(shard.path(), ec)) {
            if (e.path().extension() != ".entry")
                continue;
            ++rep.scanned;
            std::uint64_t key = std::strtoull(
                e.path().stem().string().c_str(), nullptr, 16);
            std::string why;
            if (verifyEntry(e.path().string(), key, nullptr,
                            &why)) {
                ++rep.ok;
            } else {
                quarantineLocked(e.path().string(), key, why);
                ++rep.quarantined;
            }
        }
    }
    return rep;
}

std::vector<ResultCache::EntryInfo>
ResultCache::list()
{
    std::vector<EntryInfo> out;
    if (!enabled_)
        return out;
    std::lock_guard<std::mutex> guard(mutex_);
    std::error_code ec;
    for (const fs::directory_entry &shard :
         fs::directory_iterator(dir_ + "/objects", ec)) {
        if (!shard.is_directory())
            continue;
        for (const fs::directory_entry &e :
             fs::directory_iterator(shard.path(), ec)) {
            if (e.path().extension() != ".entry")
                continue;
            EntryInfo info;
            info.key = std::strtoull(
                e.path().stem().string().c_str(), nullptr, 16);
            std::error_code sec;
            info.bytes = fs::file_size(e.path(), sec);
            info.mtime = fileMtime(e.path());
            std::string raw;
            if (readFile(e.path().string(), raw)) {
                std::size_t nl = raw.find('\n');
                try {
                    JsonValue hdr = parseJson(
                        nl == std::string::npos ? raw
                                                : raw.substr(0, nl));
                    if (hdr.hasField("workload"))
                        info.workload =
                            hdr.field("workload").asString();
                    if (hdr.hasField("model"))
                        info.model = hdr.field("model").asString();
                } catch (const std::exception &) {
                    // fsck's job; ls still reports the file.
                }
            }
            out.push_back(std::move(info));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const EntryInfo &a, const EntryInfo &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.key < b.key;
              });
    return out;
}

ResultCache::GcReport
ResultCache::gc(std::uint64_t max_bytes, bool dry_run,
                std::vector<EntryInfo> *victims)
{
    GcReport rep;
    if (!enabled_)
        return rep;
    std::vector<EntryInfo> entries = list();
    std::lock_guard<std::mutex> guard(mutex_);
    ScopedFlock lock(dir_, LOCK_EX);
    for (const EntryInfo &e : entries)
        rep.bytesBefore += e.bytes;
    rep.scanned = entries.size();
    rep.bytesAfter = rep.bytesBefore;
    std::error_code ec;
    for (const EntryInfo &e : entries) {
        if (rep.bytesAfter <= max_bytes)
            break;
        if (dry_run) {
            // Plan without touching the store: every resident entry
            // would be removable by the real pass.
            ++rep.removed;
            rep.bytesAfter -= e.bytes;
            if (victims)
                victims->push_back(e);
        } else if (fs::remove(entryPath(e.key), ec)) {
            ++rep.removed;
            rep.bytesAfter -= e.bytes;
            if (victims)
                victims->push_back(e);
        }
    }
    if (!dry_run) {
        for (const fs::directory_entry &t :
             fs::directory_iterator(dir_ + "/tmp", ec))
            fs::remove(t.path(), ec);
    }
    return rep;
}

std::size_t
ResultCache::clear()
{
    if (!enabled_)
        return 0;
    std::lock_guard<std::mutex> guard(mutex_);
    ScopedFlock lock(dir_, LOCK_EX);
    std::size_t removed = 0;
    std::error_code ec;
    std::vector<fs::path> victims;
    for (const char *sub : {"objects", "quarantine", "tmp"})
        for (const fs::directory_entry &e :
             fs::recursive_directory_iterator(fs::path(dir_) / sub,
                                              ec))
            if (e.is_regular_file())
                victims.push_back(e.path());
    for (const fs::path &p : victims)
        if (fs::remove(p, ec))
            ++removed;
    return removed;
}

bool
ResultCache::corruptBitflip(const std::string &entry_path)
{
    std::string raw;
    if (!readFile(entry_path, raw))
        return false;
    std::size_t nl = raw.find('\n');
    if (nl == std::string::npos || nl + 1 >= raw.size())
        return false;
    // Flip a bit in the middle of the payload: the header still
    // parses, so only the checksum can catch it.
    std::size_t pos = nl + 1 + (raw.size() - nl - 1) / 2;
    raw[pos] = static_cast<char>(raw[pos] ^ 0x01);
    std::ofstream os(entry_path, std::ios::binary | std::ios::trunc);
    os << raw;
    return os.good();
}

bool
ResultCache::corruptTruncate(const std::string &entry_path)
{
    std::string raw;
    if (!readFile(entry_path, raw))
        return false;
    std::size_t nl = raw.find('\n');
    if (nl == std::string::npos)
        return false;
    // Keep the header and half the payload — the shape a crash
    // mid-write would leave if writes were not atomic.
    std::size_t keep = nl + 1 + (raw.size() - nl - 1) / 2;
    std::ofstream os(entry_path, std::ios::binary | std::ios::trunc);
    os << raw.substr(0, keep);
    return os.good();
}

bool
ResultCache::corruptStaleSchema(const std::string &entry_path)
{
    std::string raw;
    if (!readFile(entry_path, raw))
        return false;
    const std::string marker = "\"schema\":";
    std::size_t pos = raw.find(marker);
    std::size_t nl = raw.find('\n');
    if (pos == std::string::npos || nl == std::string::npos ||
        pos > nl)
        return false;
    // Rewrite the schema number as 0 (no schema ever used 0),
    // preserving byte count so payload offsets stay valid.
    std::size_t digit = pos + marker.size();
    while (digit < nl && raw[digit] >= '0' && raw[digit] <= '9') {
        raw[digit] = '0';
        ++digit;
    }
    std::ofstream os(entry_path, std::ios::binary | std::ios::trunc);
    os << raw;
    return os.good();
}

} // namespace cache
} // namespace mlpwin
