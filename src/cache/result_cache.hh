/**
 * @file
 * Durable content-addressed result cache: the cheapest simulated
 * cycle is the one never re-simulated. Every finished matrix cell's
 * resultToJson line is stored under a 64-bit FNV key folded from the
 * cell's full identity — configFingerprint (plus the non-fingerprint
 * determinism knobs), the workload's program-identity hash, the
 * sampling regime, and the result-schema version — so a later batch
 * or daemon spec that names the same cell adopts the result instead
 * of re-simulating it, bit-identically (the payload round-trips
 * through the same %.17g serialization resume checkpoints use).
 *
 * A shared on-disk cache is only a win if it is crash-safe, so every
 * entry defends itself:
 *
 *  - Writes are atomic: the entry is written to tmp/ and rename(2)d
 *    into place, so readers never observe a half-written file and a
 *    crash mid-put leaves at worst an orphaned temp file.
 *  - Every entry carries a self-describing JSON header (magic,
 *    format + result-schema versions, key, payload length, FNV-1a
 *    payload checksum) on its first line; the payload is the second.
 *  - Every read is verified. A mismatch of any header field or the
 *    checksum moves the entry to quarantine/ with a .reason
 *    diagnostic and reports a miss — the caller re-simulates and the
 *    next put self-heals the slot. Corruption can cost time, never
 *    correctness.
 *  - Concurrent mlpwin_batch / mlpwind processes share one cache
 *    safely: mutating operations hold an advisory flock(2) on
 *    <dir>/.lock (shared for put/quarantine, exclusive for
 *    fsck/gc/clear), and lookups rely on rename atomicity.
 *  - A missing, unwritable, or full cache directory degrades to
 *    cache-off with a single warning; it never fails the run.
 *
 * Layout under the cache directory:
 *
 *   objects/<hh>/<16-hex-key>.entry   (hh = first two key digits)
 *   quarantine/<16-hex-key>.entry     + <16-hex-key>.reason
 *   tmp/                              in-flight writes
 *   .lock                             flock coordination file
 */

#ifndef MLPWIN_CACHE_RESULT_CACHE_HH
#define MLPWIN_CACHE_RESULT_CACHE_HH

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

namespace mlpwin
{
namespace cache
{

/**
 * Version of the SimResult JSON schema stored in cache payloads.
 * Bump whenever resultToJson's field set changes; old entries then
 * read as stale and re-simulate instead of replaying a result that
 * is missing fields downstream code expects.
 */
constexpr std::uint32_t kResultSchemaVersion = 2;

/** FNV-1a fold of an ordered tuple of 64-bit identity parts. */
std::uint64_t foldKey(std::initializer_list<std::uint64_t> parts);

/** FNV-1a over raw bytes (payload checksums, name identity). */
std::uint64_t fnv1a(const void *data, std::size_t len);

/** Monotonic counters; see stats(). */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t storeFailures = 0;
    std::uint64_t quarantined = 0;
};

/** See file comment. */
class ResultCache
{
  public:
    static constexpr std::uint32_t kFormatVersion = 1;

    /**
     * Open (creating if needed) the cache rooted at `dir`. On any
     * setup failure the cache comes up disabled — one warning, all
     * operations no-ops — rather than failing the caller's run.
     */
    explicit ResultCache(const std::string &dir);

    bool enabled() const { return enabled_; }
    const std::string &dir() const { return dir_; }

    /**
     * Verified lookup. On a hit, `payload_out` receives exactly the
     * bytes put() stored (one resultToJson line). An entry that
     * fails verification is quarantined and reported as a miss.
     */
    bool get(std::uint64_t key, std::string &payload_out);

    /**
     * Atomically store one entry. `workload` / `model` / the two
     * identity hashes are recorded in the header for quarantine
     * triage and `cachectl ls`; they are not part of the address.
     * The first write failure (ENOSPC, permissions) disables the
     * cache for the rest of the run with a single warning.
     *
     * @return true when the entry landed (entryPath(key) exists).
     */
    bool put(std::uint64_t key, const std::string &payload,
             const std::string &workload, const std::string &model,
             std::uint64_t config_fp, std::uint64_t program_hash);

    /**
     * Move an entry into quarantine/ with a .reason diagnostic, e.g.
     * when a checksum-valid payload still fails to parse. No-op if
     * the entry does not exist.
     */
    void quarantine(std::uint64_t key, const std::string &reason);

    /** Absolute path the entry for `key` lives at (hit or not). */
    std::string entryPath(std::uint64_t key) const;

    CacheStats stats() const;

    // --- offline maintenance (mlpwin_cachectl) ------------------------

    struct FsckReport
    {
        std::size_t scanned = 0;
        std::size_t ok = 0;
        std::size_t quarantined = 0;
    };

    /**
     * Verify every entry in place (exclusive lock); corrupt ones are
     * quarantined exactly as a failed get() would.
     */
    FsckReport fsck();

    struct EntryInfo
    {
        std::uint64_t key = 0;
        std::string workload;
        std::string model;
        std::uint64_t bytes = 0;
        /** Seconds since epoch of the entry file's mtime. */
        std::int64_t mtime = 0;
    };

    /** Enumerate entries, oldest first (header parse best-effort). */
    std::vector<EntryInfo> list();

    struct GcReport
    {
        std::size_t scanned = 0;
        std::size_t removed = 0;
        std::uint64_t bytesBefore = 0;
        std::uint64_t bytesAfter = 0;
    };

    /**
     * Delete oldest entries (by mtime) until the objects/ payload
     * total is within `max_bytes`; also sweeps orphaned tmp files.
     *
     * @param dry_run Plan only: compute the same report and victim
     *        list a real pass would, but delete nothing (the object
     *        store is left byte-identical, tmp files included).
     * @param victims When non-null, receives the entries a real pass
     *        would delete, in eviction (oldest-first) order.
     */
    GcReport gc(std::uint64_t max_bytes, bool dry_run = false,
                std::vector<EntryInfo> *victims = nullptr);

    /** Remove every entry, quarantined file, and temp file. */
    std::size_t clear();

    // --- deterministic corruption (fault injection) -------------------
    // Used by the bitflip/trunc/staleschema --inject kinds so CI can
    // prove quarantine + re-simulation. Each returns false if the
    // file could not be rewritten.

    /** Flip one bit in the middle of the payload line. */
    static bool corruptBitflip(const std::string &entry_path);
    /** Truncate the file mid-payload (simulated torn write). */
    static bool corruptTruncate(const std::string &entry_path);
    /** Rewrite the header claiming an older result schema. */
    static bool corruptStaleSchema(const std::string &entry_path);

  private:
    bool verifyEntry(const std::string &path, std::uint64_t key,
                     std::string *payload_out, std::string *why);
    void quarantineLocked(const std::string &path, std::uint64_t key,
                          const std::string &reason);
    void disable(const char *op, const std::string &detail);

    std::string dir_;
    bool enabled_ = false;
    mutable std::mutex mutex_;
    CacheStats stats_;
    bool warnedStore_ = false;
};

} // namespace cache
} // namespace mlpwin

#endif // MLPWIN_CACHE_RESULT_CACHE_HH
