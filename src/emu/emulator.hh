/**
 * @file
 * Functional (architectural) emulator for the mini-RISC ISA.
 *
 * The emulator advances architectural state one instruction at a time
 * and reports everything the timing model needs about each dynamic
 * instruction: the decoded static instruction, branch outcome, memory
 * address, and result value. The out-of-order core uses one emulator
 * instance as its correct-path oracle; the wrong-path engine and the
 * runahead engine reuse the same evaluation helpers with their own
 * register state.
 */

#ifndef MLPWIN_EMU_EMULATOR_HH
#define MLPWIN_EMU_EMULATOR_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/isa.hh"
#include "mem/main_memory.hh"

namespace mlpwin
{

/** Architectural register file: flat int + fp, x0 reads as zero. */
class RegFile
{
  public:
    RegFile() { regs_.fill(0); }

    RegVal
    read(RegId r) const
    {
        if (r == kNoReg || r == intReg(0))
            return 0;
        return regs_[r];
    }

    void
    write(RegId r, RegVal v)
    {
        if (r == kNoReg || r == intReg(0))
            return;
        regs_[r] = v;
    }

    /** FNV-1a checksum over all registers (tests compare models). */
    std::uint64_t checksum() const;

  private:
    std::array<RegVal, kNumArchRegs> regs_;
};

/** Everything the timing model needs to know about one executed inst. */
struct ExecRecord
{
    StaticInst inst;
    Addr pc = 0;
    Addr nextPc = 0;    ///< Architecturally correct next PC.
    bool taken = false; ///< For control insts: was it taken?
    Addr memAddr = kNoAddr; ///< Effective address for loads/stores.
    RegVal storeData = 0;   ///< Value stored, for stores.
    RegVal result = 0;      ///< Value written to the dest register.
    bool halted = false;    ///< This instruction was Halt.

    /**
     * Undo log for speculative-episode rollback (runahead exit): the
     * previous value of the destination register, and the previous
     * memory word for stores. Rolling back a sequence of ExecRecords
     * youngest-to-oldest restores the pre-sequence state exactly.
     */
    RegVal prevDestVal = 0;
    RegVal prevMemVal = 0;
};

/**
 * Pure evaluation of a non-memory, non-control operation.
 *
 * @param op Opcode (must not be Ld/St/Fld/Fst/branch/jump/Halt).
 * @param a First source value (rs1).
 * @param b Second source value (rs2).
 * @param imm Immediate field.
 * @return The destination value.
 */
RegVal evalOp(Opcode op, RegVal a, RegVal b, std::int32_t imm);

/** Evaluate a conditional branch's direction. */
bool evalBranch(Opcode op, RegVal a, RegVal b);

/** Architectural-state emulator; see file comment. */
class Emulator
{
  public:
    /**
     * @param mem Functional memory (shared with the timing model).
     * @param entry Initial program counter.
     */
    Emulator(MainMemory &mem, Addr entry);

    /** Execute one instruction; returns its full record. */
    ExecRecord step();

    Addr pc() const { return pc_; }
    bool halted() const { return halted_; }
    std::uint64_t instCount() const { return instCount_; }

    RegFile &regs() { return regs_; }
    const RegFile &regs() const { return regs_; }

    /** The functional memory this emulator executes against. */
    const MainMemory &memory() const { return mem_; }

    /** Rewind the PC (used with ExecRecord undo logs; see above). */
    void setPc(Addr pc) { pc_ = pc; halted_ = false; }

    /**
     * Overwrite the architectural register/PC/instruction-count state
     * wholesale — resuming from an architectural checkpoint. Memory
     * is restored separately (the emulator does not own it).
     */
    void
    restoreState(const RegFile &regs, Addr pc,
                 std::uint64_t inst_count)
    {
        regs_ = regs;
        pc_ = pc;
        instCount_ = inst_count;
        halted_ = false;
    }

    /**
     * Undo one executed instruction's architectural effects. Records
     * must be undone youngest-first.
     */
    void undo(const ExecRecord &rec);

  private:
    MainMemory &mem_;
    RegFile regs_;
    Addr pc_;
    bool halted_ = false;
    std::uint64_t instCount_ = 0;
};

} // namespace mlpwin

#endif // MLPWIN_EMU_EMULATOR_HH
