#include "emulator.hh"

#include <bit>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace mlpwin
{

std::uint64_t
RegFile::checksum() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        std::uint64_t v = read(static_cast<RegId>(r));
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= (v >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ULL;
        }
    }
    return hash;
}

namespace
{

double toF(RegVal v) { return std::bit_cast<double>(v); }
RegVal fromF(double d) { return std::bit_cast<RegVal>(d); }

std::int64_t toS(RegVal v) { return static_cast<std::int64_t>(v); }

RegVal
safeDiv(RegVal a, RegVal b)
{
    std::int64_t sa = toS(a), sb = toS(b);
    if (sb == 0)
        return 0; // No traps in this ISA; division by zero yields 0.
    if (sa == std::numeric_limits<std::int64_t>::min() && sb == -1)
        return a; // Overflow case defined as identity, RISC-V style.
    return static_cast<RegVal>(sa / sb);
}

RegVal
safeRem(RegVal a, RegVal b)
{
    std::int64_t sa = toS(a), sb = toS(b);
    if (sb == 0)
        return a;
    if (sa == std::numeric_limits<std::int64_t>::min() && sb == -1)
        return 0;
    return static_cast<RegVal>(sa % sb);
}

RegVal
fcvtToInt(double d)
{
    if (std::isnan(d))
        return 0;
    if (d >= 9.2233720368547758e18)
        return static_cast<RegVal>(std::numeric_limits<std::int64_t>::max());
    if (d <= -9.2233720368547758e18)
        return static_cast<RegVal>(std::numeric_limits<std::int64_t>::min());
    return static_cast<RegVal>(static_cast<std::int64_t>(d));
}

} // namespace

RegVal
evalOp(Opcode op, RegVal a, RegVal b, std::int32_t imm)
{
    const RegVal sext = static_cast<RegVal>(
        static_cast<std::int64_t>(imm));
    const RegVal zext = static_cast<std::uint32_t>(imm);
    switch (op) {
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Sll: return a << (b & 63);
      case Opcode::Srl: return a >> (b & 63);
      case Opcode::Sra:
        return static_cast<RegVal>(toS(a) >> (b & 63));
      case Opcode::Slt: return toS(a) < toS(b) ? 1 : 0;
      case Opcode::Sltu: return a < b ? 1 : 0;
      case Opcode::Mul: return a * b;
      case Opcode::Div: return safeDiv(a, b);
      case Opcode::Rem: return safeRem(a, b);
      case Opcode::Addi: return a + sext;
      case Opcode::Andi: return a & zext;
      case Opcode::Ori: return a | zext;
      case Opcode::Xori: return a ^ zext;
      case Opcode::Slli: return a << (imm & 63);
      case Opcode::Srli: return a >> (imm & 63);
      case Opcode::Srai:
        return static_cast<RegVal>(toS(a) >> (imm & 63));
      case Opcode::Slti:
        return toS(a) < static_cast<std::int64_t>(imm) ? 1 : 0;
      case Opcode::Lui: return zext << 32;
      case Opcode::Fadd: return fromF(toF(a) + toF(b));
      case Opcode::Fsub: return fromF(toF(a) - toF(b));
      case Opcode::Fmul: return fromF(toF(a) * toF(b));
      case Opcode::Fdiv: return fromF(toF(a) / toF(b));
      case Opcode::Fsqrt: return fromF(std::sqrt(toF(a)));
      case Opcode::Fmin: return fromF(std::fmin(toF(a), toF(b)));
      case Opcode::Fmax: return fromF(std::fmax(toF(a), toF(b)));
      case Opcode::Fcvt: return fromF(static_cast<double>(toS(a)));
      case Opcode::Fcvti: return fcvtToInt(toF(a));
      case Opcode::Fcmplt: return toF(a) < toF(b) ? 1 : 0;
      case Opcode::Nop: return 0;
      default:
        mlpwin_panic("evalOp on non-ALU opcode %s", opcodeName(op));
    }
}

bool
evalBranch(Opcode op, RegVal a, RegVal b)
{
    switch (op) {
      case Opcode::Beq: return a == b;
      case Opcode::Bne: return a != b;
      case Opcode::Blt: return toS(a) < toS(b);
      case Opcode::Bge: return toS(a) >= toS(b);
      case Opcode::Bltu: return a < b;
      case Opcode::Bgeu: return a >= b;
      default:
        mlpwin_panic("evalBranch on non-branch opcode %s",
                     opcodeName(op));
    }
}

Emulator::Emulator(MainMemory &mem, Addr entry)
    : mem_(mem), pc_(entry)
{
}

ExecRecord
Emulator::step()
{
    mlpwin_assert(!halted_);

    ExecRecord rec;
    rec.pc = pc_;
    rec.inst = decodeInst(mem_.readU64(pc_));
    rec.nextPc = pc_ + kInstBytes;

    const StaticInst &inst = rec.inst;
    const RegVal a = regs_.read(inst.rs1);
    const RegVal b = regs_.read(inst.rs2);

    if (inst.destReg() != kNoReg)
        rec.prevDestVal = regs_.read(inst.destReg());

    if (inst.isHalt()) {
        rec.halted = true;
        halted_ = true;
    } else if (inst.isLoad()) {
        rec.memAddr = a + static_cast<std::int64_t>(inst.imm);
        rec.result = mem_.readU64(rec.memAddr);
        regs_.write(inst.rd, rec.result);
    } else if (inst.isStore()) {
        rec.memAddr = a + static_cast<std::int64_t>(inst.imm);
        rec.storeData = b;
        rec.prevMemVal = mem_.readU64(rec.memAddr);
        mem_.writeU64(rec.memAddr, b);
    } else if (inst.isCondBranch()) {
        rec.taken = evalBranch(inst.op, a, b);
        if (rec.taken)
            rec.nextPc = pc_ + static_cast<std::int64_t>(inst.imm);
    } else if (inst.isJal()) {
        rec.taken = true;
        rec.result = pc_ + kInstBytes;
        regs_.write(inst.rd, rec.result);
        rec.nextPc = pc_ + static_cast<std::int64_t>(inst.imm);
    } else if (inst.isJalr()) {
        rec.taken = true;
        rec.result = pc_ + kInstBytes;
        rec.nextPc = a + static_cast<std::int64_t>(inst.imm);
        regs_.write(inst.rd, rec.result);
    } else if (!inst.isNop()) {
        rec.result = evalOp(inst.op, a, b, inst.imm);
        regs_.write(inst.rd, rec.result);
    }

    pc_ = rec.nextPc;
    ++instCount_;
    return rec;
}

void
Emulator::undo(const ExecRecord &rec)
{
    if (rec.inst.isStore())
        mem_.writeU64(rec.memAddr, rec.prevMemVal);
    if (rec.inst.destReg() != kNoReg)
        regs_.write(rec.inst.destReg(), rec.prevDestVal);
    pc_ = rec.pc;
    halted_ = false;
    mlpwin_assert(instCount_ > 0);
    --instCount_;
}

} // namespace mlpwin
