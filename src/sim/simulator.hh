/**
 * @file
 * The Simulator facade: builds a full system (functional memory,
 * cache hierarchy, resize controller, out-of-order core) for one
 * program and one model, runs it, and collects a SimResult with
 * everything the paper's figures and tables need.
 *
 * With cfg.core.smt.nThreads > 1 the facade builds an SMT system
 * instead: one functional memory, program, and lockstep checker per
 * hardware thread, co-scheduled on one core whose shared windows are
 * divided by an SmtPartitionController. SMT runs use the base model
 * (the partition policy governs window sizing) and report per-thread
 * IPC alongside the aggregates.
 */

#ifndef MLPWIN_SIM_SIMULATOR_HH
#define MLPWIN_SIM_SIMULATOR_HH

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "check/lockstep.hh"
#include "common/stats.hh"
#include "common/status.hh"
#include "cpu/core.hh"
#include "energy/energy_model.hh"
#include "isa/program.hh"
#include "mem/hierarchy.hh"
#include "mem/main_memory.hh"
#include "sample/checkpoint.hh"
#include "sample/sampling.hh"
#include "sim/sim_config.hh"
#include "smt/partition.hh"
#include "telemetry/sampler.hh"
#include "telemetry/timeline.hh"

namespace mlpwin
{

/** Everything measured in one finished run. */
struct SimResult
{
    std::string workload;
    std::string model;
    bool halted = false;

    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;
    double ipc = 0.0;
    double avgLoadLatency = 0.0;
    double observedMlp = 0.0;

    std::uint64_t committedBranches = 0;
    std::uint64_t committedMispredicts = 0;
    std::uint64_t squashed = 0;

    std::uint64_t l2DemandMisses = 0;
    PollutionStats l2Pollution;

    std::vector<std::uint64_t> cyclesAtLevel;

    EnergyInputs energyInputs;
    double energyTotal = 0.0; ///< pJ (model units).
    double edp = 0.0;         ///< energy x cycles.

    std::uint64_t runaheadEpisodes = 0;
    std::uint64_t runaheadUseless = 0;

    /** True when the run simulated virtual memory (paging on). */
    bool vmEnabled = false;
    /** TLB / page-walk counters (all zero when vmEnabled is false). */
    vm::VmStats vm;

    /**
     * Per-thread CPI stacks over the measurement window (one per
     * hardware thread, thread-id order; a single entry on
     * single-thread runs). Each stack's leaves sum exactly to
     * `cycles` — the cycle-accounting invariant.
     */
    std::vector<CpiStack> threadCpi;

    /** Leaf-wise sum of threadCpi (whole-core stall breakdown). */
    CpiStack
    cpiTotal() const
    {
        CpiStack total;
        for (const CpiStack &t : threadCpi)
            total += t;
        return total;
    }

    std::uint64_t archRegChecksum = 0;

    /**
     * Commit-stream fingerprint from the lockstep checker (pc,
     * result, memAddr, storeData of every committed instruction);
     * 0 when the run was unchecked. Two checked runs with equal
     * hashes committed identical instruction streams — the property
     * the differential fuzzer requires across models. On SMT runs
     * this is an FNV fold of the per-thread stream hashes.
     */
    std::uint64_t commitStreamHash = 0;

    // --- SMT fields (nThreads > 1 runs) --------------------------------
    unsigned nThreads = 1;
    std::string fetchPolicy;     ///< "rr"/"icount"/"predictive".
    std::string partitionPolicy; ///< "static"/"shared"/"mlp".
    /** Per-thread IPC over the measurement window. */
    std::vector<double> threadIpc;
    /** Per-thread committed instructions (measurement window). */
    std::vector<std::uint64_t> threadCommitted;
    /** Per-thread commit-stream hashes (0 when unchecked). */
    std::vector<std::uint64_t> threadCommitHash;
    /** Per-thread observed MLP. */
    std::vector<double> threadObservedMlp;
    /**
     * Fairness aggregates vs single-thread alone-run IPC baselines:
     * system throughput Σ(smt/alone), average normalized turnaround
     * mean(alone/smt), and harmonic mean of speedups. Filled by the
     * experiment driver (smt/metrics.hh) when baselines exist; 0
     * otherwise.
     */
    double stp = 0.0;
    double antt = 0.0;
    double hmeanSpeedup = 0.0;

    // --- sampled-simulation fields (sampled == true runs) -------------
    /** True when this result came from a sampled run. */
    bool sampled = false;
    /** Fully measured sampling intervals behind the IPC estimate. */
    std::uint64_t sampleIntervals = 0;
    /** Instructions fast-forwarded functionally (excluded from
     *  `committed`, which counts detailed-mode instructions only). */
    std::uint64_t ffInsts = 0;
    /**
     * Half-width of the CLT 95% confidence interval on `ipc`. In a
     * sampled run, `ipc` is the mean of the per-interval IPCs; the
     * full-detail IPC is expected inside ipc +/- ipcCi95. Zero for
     * unsampled runs and for runs with fewer than two intervals.
     */
    double ipcCi95 = 0.0;

    /** Committed instructions per committed mispredict (Table 5). */
    double
    instsPerMispredict() const
    {
        return committedMispredicts
            ? static_cast<double>(committed) /
                  static_cast<double>(committedMispredicts)
            : static_cast<double>(committed);
    }
};

/** See file comment. */
class Simulator
{
  public:
    Simulator(const SimConfig &cfg, const Program &prog);

    /**
     * SMT construction: one program per hardware thread.
     * progs.size() must equal cfg.core.smt.nThreads; with more than
     * one thread the model must be Base and sampling / checkpoints /
     * functional warm-up are unavailable.
     */
    Simulator(const SimConfig &cfg, const std::vector<Program> &progs);

    /**
     * Run to Halt / instruction budget / cycle ceiling.
     *
     * @throws SimError (NoProgress / InvariantViolation) if the
     *         forward-progress watchdog fires, with a DiagnosticDump
     *         of the wedged machine state; (Timeout) past a deadline
     *         set via setDeadline; (Interrupted) once an attached
     *         abort flag goes true.
     */
    SimResult run();

    /**
     * Tick until the committed-instruction count reaches the target
     * (0 = until Halt), the cycle ceiling, or Halt. Watchdog/deadline
     * semantics as in run().
     */
    void runUntil(std::uint64_t committed_target);

    /**
     * Execute up to n instructions on the functional emulator with
     * cache/predictor warming, from a drained pipeline (the core must
     * satisfy readyForFastForward(); trivially true before the first
     * cycle and after drainPipeline()). The lockstep checker, when
     * attached, skips in lockstep so checking resumes seamlessly.
     * Single-thread runs only.
     *
     * @return Instructions actually executed (less than n at Halt).
     */
    std::uint64_t fastForward(std::uint64_t n);

    /**
     * Pause fetch and tick until nothing is in flight, leaving the
     * core at an architectural boundary (readyForFastForward()), then
     * re-allow fetch. Watchdog-bounded.
     */
    void drainPipeline();

    /**
     * Abort the run (SimError{Timeout}) once the wall clock passes
     * `deadline`. Polled every watchdog.checkInterval cycles, so
     * enforcement lags by at most one poll period.
     */
    void
    setDeadline(std::chrono::steady_clock::time_point deadline)
    {
        deadline_ = deadline;
        hasDeadline_ = true;
    }

    /**
     * Abort the run (SimError{Interrupted}) once *flag becomes true
     * (not owned; nullptr detaches). Lets a batch driver cancel
     * in-flight simulations from a signal handler.
     */
    void setAbortFlag(const std::atomic<bool> *flag)
    {
        abortFlag_ = flag;
    }

    /**
     * Check the structural invariants the watchdog enforces (window
     * occupancies within the largest level's capacities, outstanding
     * misses bounded). Cheap; callable any time.
     */
    Status checkInvariants() const;

    /**
     * The effective no-commit window in cycles: the configured value,
     * or the auto default (2 x memory latency x max ROB size) when
     * the configuration says 0. Returns 0 if the watchdog is off.
     */
    Cycle watchdogWindow() const;

    /** Build the machine-state dump a watchdog abort would carry. */
    DiagnosticDump diagnosticDump() const;

    /** Advance a single cycle (fine-grained control for tests). */
    void tick() { stepCycle(); }

    /**
     * Attach a pipeline tracer to the core (not owned). Pass nullptr
     * to detach. See cpu/tracer.hh for categories.
     */
    void setTracer(PipelineTracer *t) { core_->setTracer(t); }

    /**
     * Attach an interval sampler (not owned; nullptr detaches). The
     * simulator polls it once per cycle and snapshots when a sample is
     * due — one pointer test per cycle when disabled.
     */
    void setSampler(IntervalSampler *s) { sampler_ = s; }

    /**
     * Attach an event timeline (not owned; nullptr detaches). Wired
     * through to the core (runahead episodes) and, on single-thread
     * runs, the resize controller (grow/shrink transitions).
     */
    void
    setTimeline(EventTimeline *t)
    {
        timeline_ = t;
        core_->setTimeline(t);
        if (resize_)
            resize_->setTimeline(t);
    }

    /** Build a telemetry snapshot of the current machine state. */
    IntervalSnapshot snapshot() const;

    /** Thread 0's lockstep checker, when cfg.lockstepCheck enabled. */
    const LockstepChecker *
    checker() const
    {
        return checkers_.empty() ? nullptr : checkers_[0].get();
    }

    /** Per-thread checker (nullptr when unchecked). */
    const LockstepChecker *
    checker(unsigned tid) const
    {
        return tid < checkers_.size() ? checkers_[tid].get() : nullptr;
    }

    unsigned nThreads() const { return core_->nThreads(); }

    OooCore &core() { return *core_; }
    CacheHierarchy &hierarchy() { return mem_; }
    MainMemory &memory() { return fmems_.front(); }
    MainMemory &memory(unsigned tid) { return fmems_[tid]; }
    /** Single-thread runs only (SMT uses partitionController()). */
    ResizeController &controller() { return *resize_; }
    /** SMT runs only (nullptr on single-thread runs). */
    const SmtPartitionController *
    partitionController() const
    {
        return partition_.get();
    }
    StatSet &stats() { return stats_; }

    /** Dump all registered stats. */
    void dumpStats(std::ostream &os) const { stats_.dump(os); }

  private:
    /** One core cycle plus the telemetry sampling poll. */
    void
    stepCycle()
    {
        core_->tick();
        for (unsigned tid = 0; tid < checkers_.size(); ++tid) {
            if (checkers_[tid] && checkers_[tid]->diverged())
                abortDivergence(tid);
        }
        if (sampler_ && sampler_->due(core_->cycle()))
            sampler_->record(snapshot());
    }

    /** The level table in force: resize controller's or partition's. */
    const LevelTable &activeTable() const;

    /** Periodic (checkInterval) watchdog work; throws SimError. */
    void pollWatchdog(Cycle window);

    /** The sampled-mode run loop (cfg.sampling.enabled). */
    SimResult runSampled();

    /** Warm-up phase shared by run() and runSampled(). */
    PollutionStats warmupPhase();

    /** End-of-run bookkeeping + SimResult assembly (both modes). */
    SimResult collectResult(const PollutionStats &pollution_base);

    /** Throw a watchdog SimError with the diagnostic dump attached. */
    [[noreturn]] void abortRun(ErrorCode code,
                               const std::string &why) const;

    /**
     * Throw the ArchDivergence SimError for thread tid's recorded
     * first divergent commit, dump attached.
     */
    [[noreturn]] void abortDivergence(unsigned tid) const;

    SimConfig cfg_;
    std::string workloadName_;
    StatSet stats_;
    /** One functional memory per hardware thread (address-stable). */
    std::deque<MainMemory> fmems_;
    CacheHierarchy mem_;
    std::unique_ptr<ResizeController> resize_;
    std::unique_ptr<SmtPartitionController> partition_;
    std::unique_ptr<OooCore> core_;
    /** One checker per thread (empty when unchecked). */
    std::vector<std::unique_ptr<LockstepChecker>> checkers_;
    std::unique_ptr<SamplingController> sampling_;
    IntervalSampler *sampler_ = nullptr;
    EventTimeline *timeline_ = nullptr;

    // --- watchdog state -----------------------------------------------
    /** Cycle of the most recent commit (watchdog + dumps). */
    Cycle lastCommitCycle_ = 0;
    /** Consecutive cycles with allocation stopped (drain tracking). */
    Cycle allocStoppedRun_ = 0;
    bool hasDeadline_ = false;
    std::chrono::steady_clock::time_point deadline_;
    const std::atomic<bool> *abortFlag_ = nullptr;
};

/**
 * FNV-1a fingerprint of the performance-relevant SimConfig fields
 * (model, level table, core widths, memory latencies, SMT/sampling
 * setup). Two runs with equal fingerprints simulate the same
 * machine; BENCH_<n>.json records it so cross-commit comparisons can
 * tell "the simulator got faster" from "the config changed".
 */
std::uint64_t configFingerprint(const SimConfig &cfg);

/**
 * Convenience: build and run one workload under one model. With
 * cfg.core.smt.nThreads > 1, `name` may be a '+'-separated pair/quad
 * of workload names ("mcf+gamess") co-scheduled one per thread; a
 * single name is replicated across all threads.
 *
 * @param name Workload name (or '+'-separated co-schedule).
 * @param cfg Full configuration (model field selects the model).
 * @param iterations Outer iterations for the program generator.
 */
SimResult runWorkload(const std::string &name, const SimConfig &cfg,
                      std::uint64_t iterations);

/** Split a '+'-separated co-schedule spec into workload names. */
std::vector<std::string> splitWorkloadSpec(const std::string &name);

} // namespace mlpwin

#endif // MLPWIN_SIM_SIMULATOR_HH
