/**
 * @file
 * Top-level simulation configuration: the paper's evaluated models
 * (Section 5.3) and all component configs, defaulting to Table 1.
 */

#ifndef MLPWIN_SIM_SIM_CONFIG_HH
#define MLPWIN_SIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "branch/predictor.hh"
#include "cpu/core_config.hh"
#include "mem/mem_config.hh"
#include "resize/controller.hh"
#include "resize/level_table.hh"
#include "runahead/runahead.hh"
#include "sample/sample_config.hh"
#include "vm/mmu_config.hh"

namespace mlpwin
{

class ArchCheckpoint;

/** The evaluated processor models. */
enum class ModelKind
{
    /** Conventional processor: fixed at level 1 (the paper's base). */
    Base,
    /** Fixed size at `fixedLevel`, pipelined (issue/branch penalty). */
    Fixed,
    /** Fixed size at `fixedLevel`, NOT pipelined (no penalties). */
    Ideal,
    /** The paper's MLP-aware dynamic window resizing. */
    Resizing,
    /** Runahead execution on the base window (Section 5.7). */
    Runahead,
    /** Occupancy-driven resizing ablation (Section 6.2). */
    Occupancy,
    /**
     * Waiting-instruction-buffer model (Lebeck et al.; paper Section
     * 6.3): level-3 ROB/LSQ with the small level-1 single-cycle IQ,
     * plus a WIB that parks miss-dependent instructions.
     */
    Wib,
};

/** Printable model name. */
const char *modelName(ModelKind kind);

/**
 * Forward-progress watchdog (see Simulator::runUntil). A wedged core
 * — a lost wakeup, a drain that can never complete, a leaked window
 * entry — would otherwise spin silently to the 4-billion-cycle
 * maxCycles ceiling; the watchdog turns that into a prompt SimError
 * carrying a DiagnosticDump of the stuck machine state.
 */
struct WatchdogConfig
{
    bool enabled = true;

    /**
     * Abort if no instruction commits for this many cycles. 0 = auto:
     * 2 x MLP-controller memory latency x the largest level's ROB
     * size — a full window of back-to-back DRAM misses, doubled.
     * Any legitimate stall (mispredict recovery + a chain of misses)
     * resolves well inside that.
     */
    Cycle noCommitWindow = 0;

    /**
     * Structural-invariant / deadline / cancellation poll period in
     * cycles. Checks are O(1); the default adds no measurable cost.
     */
    Cycle checkInterval = 1024;
};

/** See file comment. */
struct SimConfig
{
    CoreConfig core;
    MemSystemConfig mem;
    BranchPredictorConfig bp;
    LevelTable levels = LevelTable::paperDefault();

    ModelKind model = ModelKind::Base;
    /** Level used by Fixed/Ideal models (1-based). */
    unsigned fixedLevel = 1;

    MlpControllerConfig mlp;
    OccupancyControllerConfig occupancy;
    RunaheadConfig runahead;

    /**
     * Virtual-memory (paging) configuration. Off by default; a
     * disabled MMU leaves every cycle, hash, and statistic
     * bit-identical to a build that predates the vm subsystem.
     */
    vm::MmuConfig vm;

    /**
     * Pre-install the program text in the L1I/L2 before the run. The
     * paper measures 100M-instruction samples after a 16G-instruction
     * fast-forward, so instruction fetch is warm; our runs start cold,
     * and this restores the paper's I-side conditions. Data stays cold.
     */
    bool warmInstCaches = true;

    /**
     * Pre-install the program's data segments (BSS included) in the
     * L2 — and in the L1D too when the whole footprint fits it —
     * before the run. Complements warmupInsts for working sets too
     * large for a short warm-up run to touch completely; footprints
     * beyond the L2 capacity wrap, leaving the tail resident as LRU
     * would. Off by default; the benchmark harness enables it.
     */
    bool warmDataCaches = false;

    /**
     * Committed instructions to execute *before* the measurement
     * window opens; all statistics are zeroed afterwards. Stands in
     * for the paper's 16G-instruction fast-forward, which warms the
     * data caches, predictors, and prefetcher tables.
     */
    std::uint64_t warmupInsts = 0;

    /**
     * Execute the warm-up phase on the functional emulator with
     * cache/predictor warming (sample/fastforward.hh) instead of on
     * the detailed core — orders of magnitude faster, with the same
     * architectural state and near-identical cache/predictor contents
     * at the measurement boundary. The CLI tools and the benchmark
     * harness enable this; the default stays detailed so existing
     * configurations measure exactly what they did before.
     */
    bool functionalWarmup = false;

    /**
     * SMARTS-style systematic sampling (see sample/sample_config.hh).
     * When enabled, maxInsts bounds the *total* instructions executed
     * after warm-up (fast-forwarded + detailed), and SimResult.ipc
     * becomes the sampled estimate with a confidence interval.
     */
    SamplingConfig sampling;

    /**
     * Resume from an architectural checkpoint (not owned; must
     * outlive the Simulator). The checkpoint's program hash must
     * match the program, or the Simulator constructor throws
     * SimError{InvalidArgument}. One checkpoint, being read-only
     * here, may be shared by every cell of a sweep matrix.
     */
    const ArchCheckpoint *startCheckpoint = nullptr;

    /**
     * Run a lockstep architectural checker alongside the core: an
     * independent reference emulator on a shadow memory, stepped and
     * cross-checked at every commit (see check/lockstep.hh). The
     * first divergent commit aborts the run with ErrorCode::
     * ArchDivergence and a dump naming the PC and field. Purely
     * observational: a checked run's cycles and statistics are
     * bit-identical to an unchecked run.
     */
    bool lockstepCheck = false;

    /** Stop after this many committed instructions (0 = run to Halt). */
    std::uint64_t maxInsts = 0;
    /** Hard cycle ceiling (guards against deadlock bugs). */
    std::uint64_t maxCycles = 4'000'000'000ULL;

    /** Forward-progress watchdog; on by default. */
    WatchdogConfig watchdog;
};

} // namespace mlpwin

#endif // MLPWIN_SIM_SIM_CONFIG_HH
