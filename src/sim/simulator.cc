#include "simulator.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "sample/fastforward.hh"
#include "workloads/suite.hh"

namespace mlpwin
{

const char *
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Base:
        return "base";
      case ModelKind::Fixed:
        return "fixed";
      case ModelKind::Ideal:
        return "ideal";
      case ModelKind::Resizing:
        return "resizing";
      case ModelKind::Runahead:
        return "runahead";
      case ModelKind::Occupancy:
        return "occupancy";
      case ModelKind::Wib:
        return "wib";
    }
    return "?";
}

namespace
{

std::unique_ptr<ResizeController>
buildController(const SimConfig &cfg, StatSet *stats)
{
    switch (cfg.model) {
      case ModelKind::Base:
      case ModelKind::Runahead:
        return std::make_unique<FixedLevelController>(cfg.levels, 1);
      case ModelKind::Fixed:
      case ModelKind::Ideal:
        return std::make_unique<FixedLevelController>(cfg.levels,
                                                      cfg.fixedLevel);
      case ModelKind::Resizing:
        return std::make_unique<MlpAwareController>(cfg.levels,
                                                    cfg.mlp, stats);
      case ModelKind::Occupancy:
        return std::make_unique<OccupancyController>(
            cfg.levels, cfg.occupancy, stats);
      case ModelKind::Wib: {
        // Large window everywhere except the IQ, which stays at the
        // base's single-cycle size; the WIB supplies the capacity.
        const ResourceLevel &big = cfg.levels.at(cfg.levels.maxLevel());
        const ResourceLevel &small = cfg.levels.at(1);
        ResourceLevel wib_level = big;
        wib_level.iqSize = small.iqSize;
        wib_level.iqDepth = small.iqDepth;
        wib_level.robDepth = small.robDepth;
        wib_level.lsqDepth = small.lsqDepth;
        return std::make_unique<FixedLevelController>(
            LevelTable({wib_level}), 1);
      }
    }
    mlpwin_panic("bad model kind");
}

} // namespace

Simulator::Simulator(const SimConfig &cfg, const Program &prog)
    : cfg_(cfg), workloadName_(prog.name()),
      mem_(cfg.mem, &stats_)
{
    // Per-model adjustments.
    if (cfg_.model == ModelKind::Ideal)
        cfg_.core.pipelinePenalties = false;
    if (cfg_.model == ModelKind::Wib)
        cfg_.core.wibEnabled = true;
    RunaheadConfig ra = cfg_.runahead;
    ra.enabled = cfg_.model == ModelKind::Runahead;

    fmem_.loadProgram(prog);
    if (cfg_.warmInstCaches) {
        unsigned line = mem_.l1i().lineBytes();
        for (Addr a = prog.codeBase(); a < prog.codeEnd(); a += line)
            mem_.warmInstLine(a);
    }
    if (cfg_.warmDataCaches && prog.dataEnd() > prog.dataBase()) {
        unsigned line = mem_.l2().lineBytes();
        std::uint64_t bytes = prog.dataEnd() - prog.dataBase();
        bool fits_l1d = bytes <= cfg_.mem.l1d.sizeBytes;
        for (Addr a = prog.dataBase(); a < prog.dataEnd(); a += line)
            mem_.warmDataLine(a, fits_l1d);
    }
    resize_ = buildController(cfg_, &stats_);
    mem_.setL2MissListener(
        [this](Cycle c) { resize_->onL2DemandMiss(c); });
    core_ = std::make_unique<OooCore>(cfg_.core, *resize_, mem_, fmem_,
                                      prog, &stats_, ra, cfg_.bp);
    if (cfg_.lockstepCheck) {
        checker_ = std::make_unique<LockstepChecker>(prog);
        core_->setChecker(checker_.get());
    }
    std::string sampling_err = cfg_.sampling.validate();
    if (!sampling_err.empty())
        throw SimError(ErrorCode::InvalidArgument, sampling_err);
    if (cfg_.sampling.enabled)
        sampling_ = std::make_unique<SamplingController>(cfg_.sampling,
                                                         &stats_);
    if (cfg_.startCheckpoint) {
        const ArchCheckpoint &ck = *cfg_.startCheckpoint;
        if (ck.programHash() != programHash(prog))
            throw SimError(
                ErrorCode::InvalidArgument,
                "checkpoint (workload " + ck.workload() +
                    ", inst " + std::to_string(ck.instCount()) +
                    ") was taken from a different program than " +
                    prog.name() + " (identity hash mismatch)");
        ck.restoreMemory(fmem_);
        core_->restoreArchState(ck.regs(), ck.pc(), ck.instCount());
        if (checker_)
            checker_->restoreState(ck.regs(), ck.pc(), ck.instCount(),
                                   fmem_);
    }
}

IntervalSnapshot
Simulator::snapshot() const
{
    IntervalSnapshot s;
    s.cycle = core_->cycle();
    s.committed = core_->committedInsts();
    s.l2DemandMisses = mem_.l2DemandMisses();
    s.level = resize_->level();
    s.robOcc = core_->robOccupancy();
    s.iqOcc = core_->iqOccupancy();
    s.lsqOcc = core_->lsqOccupancy();
    s.outstandingMisses = core_->outstandingL2Misses();
    // The DRAM model is analytic (no literal queue); report the bus
    // backlog — how far ahead of "now" the bus is already booked.
    Cycle bus_free = mem_.dram().busFreeAt();
    s.dramBacklog = bus_free > s.cycle
        ? static_cast<std::uint64_t>(bus_free - s.cycle) : 0;
    return s;
}

Cycle
Simulator::watchdogWindow() const
{
    if (!cfg_.watchdog.enabled)
        return 0;
    if (cfg_.watchdog.noCommitWindow)
        return cfg_.watchdog.noCommitWindow;
    const LevelTable &table = resize_->table();
    Cycle window = 2ULL * cfg_.mlp.memoryLatency *
                   table.at(table.maxLevel()).robSize;
    return std::max<Cycle>(window, 1);
}

DiagnosticDump
Simulator::diagnosticDump() const
{
    DiagnosticDump d;
    d.workload = workloadName_;
    d.model = modelName(cfg_.model);
    d.cycle = core_->cycle();
    d.committed = core_->committedInsts();
    d.lastCommitCycle = lastCommitCycle_;

    d.robEmpty = core_->robEmpty();
    d.robHeadSeq = core_->robHeadSeq();
    d.robHeadPc = core_->robHeadPc();
    d.robHeadCompleted = core_->robHeadCompleted();

    const LevelTable &table = resize_->table();
    const ResourceLevel &cap = table.at(table.maxLevel());
    d.robOcc = core_->robOccupancy();
    d.robCap = cap.robSize;
    d.iqOcc = core_->iqOccupancy();
    d.iqCap = cap.iqSize;
    d.lsqOcc = core_->lsqOccupancy();
    d.lsqCap = cap.lsqSize;

    d.level = resize_->level();
    d.allocStopped = resize_->allocStopped();
    d.inTransition = resize_->inTransition();

    d.outstandingMisses = core_->outstandingL2Misses();
    Cycle bus_free = mem_.dram().busFreeAt();
    d.dramBacklog = bus_free > d.cycle
        ? static_cast<std::uint64_t>(bus_free - d.cycle) : 0;
    d.fetchHalted = core_->fetchHalted();

    // Tail of the event timeline, when a recorder is attached: the
    // grow/shrink/drain/runahead episodes leading up to the wedge.
    if (timeline_) {
        constexpr std::size_t kTail = 8;
        const std::deque<TimelineEvent> &events = timeline_->events();
        std::size_t first =
            events.size() > kTail ? events.size() - kTail : 0;
        for (std::size_t i = first; i < events.size(); ++i) {
            const TimelineEvent &e = events[i];
            std::ostringstream os;
            os << timelineEventKindName(e.kind);
            if (e.kind == TimelineEventKind::Grow ||
                e.kind == TimelineEventKind::Shrink)
                os << ' ' << e.fromLevel << "->" << e.toLevel;
            if (e.kind == TimelineEventKind::Runahead)
                os << " pc=0x" << std::hex << e.triggerPc << std::dec
                   << " misses=" << e.misses;
            os << " @[" << e.begin << ',' << e.end << ']';
            d.recentEvents.push_back(os.str());
        }
    }
    return d;
}

Status
Simulator::checkInvariants() const
{
    const LevelTable &table = resize_->table();
    const ResourceLevel &cap = table.at(table.maxLevel());
    if (core_->robOccupancy() > cap.robSize)
        return Status::error(
            ErrorCode::InvariantViolation,
            "ROB occupancy " +
                std::to_string(core_->robOccupancy()) +
                " exceeds largest-level capacity " +
                std::to_string(cap.robSize));
    if (core_->iqOccupancy() > cap.iqSize)
        return Status::error(
            ErrorCode::InvariantViolation,
            "IQ occupancy " + std::to_string(core_->iqOccupancy()) +
                " exceeds largest-level capacity " +
                std::to_string(cap.iqSize));
    if (core_->lsqOccupancy() > cap.lsqSize)
        return Status::error(
            ErrorCode::InvariantViolation,
            "LSQ occupancy " + std::to_string(core_->lsqOccupancy()) +
                " exceeds largest-level capacity " +
                std::to_string(cap.lsqSize));
    // A miss entry outlives its load only until its fill cycle; a
    // count beyond every structure that can source misses means a
    // leaked entry (e.g. a bogus completion cycle).
    unsigned miss_bound = cap.robSize + cap.lsqSize + 64;
    if (core_->outstandingL2Misses() > miss_bound)
        return Status::error(
            ErrorCode::InvariantViolation,
            "outstanding L2-miss count " +
                std::to_string(core_->outstandingL2Misses()) +
                " exceeds plausibility bound " +
                std::to_string(miss_bound) + " (leaked entry?)");
    return Status();
}

void
Simulator::abortRun(ErrorCode code, const std::string &why) const
{
    throw SimError(code,
                   why + " (workload " + workloadName_ + ", model " +
                       modelName(cfg_.model) + ", cycle " +
                       std::to_string(core_->cycle()) + ")",
                   diagnosticDump());
}

void
Simulator::abortDivergence() const
{
    const LockstepChecker::Divergence &d = checker_->divergence();
    DiagnosticDump dump = diagnosticDump();
    dump.hasDivergence = true;
    dump.divergenceCommit = d.commitIndex;
    dump.divergencePc = d.pc;
    dump.divergenceField = d.field;
    dump.divergenceExpected = d.expected;
    dump.divergenceActual = d.actual;
    dump.divergenceInst = d.inst;

    std::ostringstream os;
    os << "lockstep divergence at commit #" << d.commitIndex
       << ": pc 0x" << std::hex << d.pc << " (" << d.inst
       << ") field " << d.field << " expected 0x" << d.expected
       << ", got 0x" << d.actual << std::dec << " (workload "
       << workloadName_ << ", model " << modelName(cfg_.model)
       << ", cycle " << core_->cycle() << ")";
    throw SimError(ErrorCode::ArchDivergence, os.str(),
                   std::move(dump));
}

void
Simulator::pollWatchdog(Cycle window)
{
    if (window) {
        Status s = checkInvariants();
        if (!s.ok())
            abortRun(s.code(), s.message());
    }
    if (abortFlag_ && abortFlag_->load(std::memory_order_relaxed))
        abortRun(ErrorCode::Interrupted,
                 "run aborted by cancellation request");
    if (hasDeadline_ &&
        std::chrono::steady_clock::now() >= deadline_)
        abortRun(ErrorCode::Timeout,
                 "wall-clock budget exhausted");
}

void
Simulator::runUntil(std::uint64_t committed_target)
{
    std::uint64_t last_committed = core_->committedInsts();
    lastCommitCycle_ = core_->cycle();

    const Cycle window = watchdogWindow();
    const Cycle interval =
        std::max<Cycle>(cfg_.watchdog.checkInterval, 1);

    try {
        while (!core_->halted() &&
               core_->cycle() < cfg_.maxCycles &&
               (committed_target == 0 ||
                core_->committedInsts() < committed_target)) {
            stepCycle();

            const Cycle now = core_->cycle();
            if (core_->committedInsts() != last_committed) {
                last_committed = core_->committedInsts();
                lastCommitCycle_ = now;
            }
            // Drain tracking: allocation stopped for longer than the
            // watchdog window means a shrink (or transition) that can
            // never complete, even if the ROB keeps retiring
            // meanwhile.
            if (resize_->allocStopped())
                ++allocStoppedRun_;
            else
                allocStoppedRun_ = 0;

            if (window) {
                if (now - lastCommitCycle_ > window)
                    abortRun(ErrorCode::NoProgress,
                             "no instruction committed for " +
                                 std::to_string(window) + " cycles");
                if (allocStoppedRun_ > window)
                    abortRun(ErrorCode::InvariantViolation,
                             "window resize drain still incomplete "
                             "after " +
                                 std::to_string(allocStoppedRun_) +
                                 " cycles of stopped allocation");
            }
            if (now % interval == 0)
                pollWatchdog(window);
        }
    } catch (const SimError &e) {
        if (e.hasDump())
            throw;
        // Structural invariants promoted out of the core throw bare
        // SimErrors; attach the machine-state dump and run identity
        // they could not build themselves.
        abortRun(e.code(), e.message());
    }
}

std::uint64_t
Simulator::fastForward(std::uint64_t n)
{
    if (n == 0 || core_->halted())
        return 0;
    mlpwin_assert(core_->readyForFastForward());
    FastForwarder ff(core_->oracleForFastForward(), &mem_,
                     &core_->predictorForWarming());
    std::uint64_t done = ff.run(n);
    if (checker_)
        checker_->skip(done);
    core_->resumeAfterFastForward();
    return done;
}

void
Simulator::drainPipeline()
{
    core_->setFetchPaused(true);
    const Cycle window = watchdogWindow();
    const Cycle limit = window ? window : 1'000'000;
    const Cycle start = core_->cycle();
    while (!core_->readyForFastForward() && !core_->halted()) {
        stepCycle();
        if (core_->cycle() - start > limit)
            abortRun(ErrorCode::NoProgress,
                     "pipeline drain toward a fast-forward boundary "
                     "did not complete within " +
                         std::to_string(limit) + " cycles");
    }
    core_->setFetchPaused(false);
}

PollutionStats
Simulator::warmupPhase()
{
    PollutionStats pollution_base;

    // Warm-up phase: execute unmeasured instructions, then zero every
    // statistic. Stands in for the paper's 16G-instruction skip.
    // Sampled runs always warm up functionally — their whole premise
    // is that detailed cycles are spent only where measured.
    if (cfg_.warmupInsts > 0 && !core_->halted()) {
        if (cfg_.functionalWarmup || cfg_.sampling.enabled)
            fastForward(cfg_.warmupInsts);
        else
            runUntil(core_->committedInsts() + cfg_.warmupInsts);
        stats_.resetAll();
        core_->resetMeasurement();
        resize_->resetMeasurement();
        if (sampler_)
            sampler_->notifyReset(core_->cycle());
        pollution_base = mem_.l2().pollution();
    }
    return pollution_base;
}

SimResult
Simulator::run()
{
    if (cfg_.sampling.enabled)
        return runSampled();

    PollutionStats pollution_base = warmupPhase();
    std::uint64_t target = cfg_.maxInsts
        ? core_->committedInsts() + cfg_.maxInsts : 0;
    runUntil(target);
    return collectResult(pollution_base);
}

SimResult
Simulator::runSampled()
{
    const SamplingConfig &sc = cfg_.sampling;
    PollutionStats pollution_base = warmupPhase();

    // In sampled mode maxInsts bounds the total post-warm-up
    // instructions, fast-forwarded and detailed together, so a
    // sampled cell covers the same program region as a full-detail
    // cell with the same budget.
    const std::uint64_t budget = cfg_.maxInsts;
    const std::uint64_t burst =
        sc.detailedWarmupInsts + sc.intervalInsts;

    while (!core_->halted()) {
        std::uint64_t used =
            sampling_->ffInsts() + core_->committedInsts();
        if (budget && used >= budget)
            break;
        std::uint64_t remaining = budget ? budget - used : 0;
        if (budget && remaining <= burst) {
            // The tail cannot fit a warm-up burst plus a full
            // interval; finish it in detail, unmeasured.
            runUntil(core_->committedInsts() + remaining);
            break;
        }

        std::uint64_t ff_len = sc.ffInstsPerPeriod();
        if (budget)
            ff_len = std::min(ff_len, remaining - burst);
        if (ff_len) {
            sampling_->recordFastForward(fastForward(ff_len));
            if (core_->halted())
                break;
        }

        // Detailed warm-up burst: unmeasured detailed execution that
        // rebuilds the in-flight state (ROB/IQ/MSHR occupancy)
        // functional warming cannot reconstruct.
        runUntil(core_->committedInsts() + sc.detailedWarmupInsts);
        if (core_->halted())
            break;

        const Cycle c0 = core_->cycle();
        const std::uint64_t i0 = core_->committedInsts();
        runUntil(i0 + sc.intervalInsts);
        std::uint64_t insts = core_->committedInsts() - i0;
        // A full interval may overshoot by up to commit-width-1
        // instructions in its final cycle; the overshoot stays in the
        // interval's own IPC. Short intervals (Halt mid-measurement)
        // are discarded: they would bias the per-interval population.
        if (insts >= sc.intervalInsts)
            sampling_->recordInterval(insts, core_->cycle() - c0);

        // Return to an architectural boundary so the next period can
        // fast-forward. Drain cycles are outside the measured deltas.
        drainPipeline();
    }

    sampling_->finalize();
    SimResult r = collectResult(pollution_base);
    r.sampled = true;
    r.sampleIntervals = sampling_->intervals();
    r.ffInsts = sampling_->ffInsts();
    r.ipcCi95 = sampling_->ipcCi95();
    if (r.sampleIntervals > 0)
        r.ipc = sampling_->ipcMean();
    return r;
}

SimResult
Simulator::collectResult(const PollutionStats &pollution_base)
{
    // End-of-run full-state verification: registers, PC, and the
    // complete sparse memory image. Only meaningful at Halt — before
    // that, committed stores may legitimately still sit in the store
    // buffer ahead of functional memory.
    if (checker_ && core_->halted()) {
        Status s =
            checker_->verifyFinalState(core_->oracle(), fmem_);
        if (!s.ok())
            abortRun(s.code(), s.message());
    }

    // Flush the trailing partial interval and close any open episode.
    if (sampler_)
        sampler_->finish(snapshot());
    if (timeline_)
        timeline_->finish(core_->cycle());

    SimResult r;
    r.workload = workloadName_;
    r.model = modelName(cfg_.model);
    r.halted = core_->halted();
    r.cycles = core_->measuredCycles();
    r.committed = core_->committedInsts();
    r.ipc = core_->ipc();
    r.avgLoadLatency = core_->avgLoadLatency();
    r.observedMlp = core_->observedMlp();
    r.committedBranches = core_->committedBranches();
    r.committedMispredicts = core_->committedMispredicts();
    r.squashed = core_->squashedInsts();
    r.l2DemandMisses = mem_.l2DemandMisses();
    r.l2Pollution = mem_.l2().pollution();
    for (unsigned p = 0; p < kNumProvenances; ++p) {
        r.l2Pollution.brought[p] -= std::min(
            pollution_base.brought[p], r.l2Pollution.brought[p]);
        r.l2Pollution.useful[p] -= std::min(
            pollution_base.useful[p], r.l2Pollution.useful[p]);
    }
    r.cyclesAtLevel = resize_->residency().cyclesAtLevel;
    r.runaheadEpisodes = core_->runaheadEpisodes();
    r.runaheadUseless = core_->runaheadUselessEpisodes();
    r.archRegChecksum = core_->oracle().regs().checksum();
    r.commitStreamHash = checker_ ? checker_->streamHash() : 0;

    EnergyInputs &e = r.energyInputs;
    e.cycles = r.cycles;
    e.fetched = core_->fetchedInsts();
    e.dispatched = r.committed + r.squashed; // Window allocations.
    e.issued = core_->issuedInsts();
    e.committed = r.committed;
    e.loads = core_->committedLoads();
    e.stores = core_->committedStores();
    e.l1iAccesses = mem_.l1i().accesses();
    e.l1dAccesses = mem_.l1d().accesses();
    e.l2Accesses = mem_.l2().accesses();
    e.dramAccesses = mem_.dram().numReads() + mem_.dram().numWritebacks();
    e.iqSizeCycles = core_->iqSizeCycles();
    e.robSizeCycles = core_->robSizeCycles();
    e.lsqSizeCycles = core_->lsqSizeCycles();

    EnergyModel em;
    r.energyTotal = em.evaluate(e).total();
    r.edp = em.edp(e);
    return r;
}

SimResult
runWorkload(const std::string &name, const SimConfig &cfg,
            std::uint64_t iterations)
{
    const WorkloadSpec &spec = findWorkload(name);
    Program prog = spec.make(iterations);
    Simulator sim(cfg, prog);
    return sim.run();
}

} // namespace mlpwin
