#include "simulator.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "profile/profiler.hh"
#include "sample/fastforward.hh"
#include "workloads/suite.hh"

namespace mlpwin
{

const char *
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Base:
        return "base";
      case ModelKind::Fixed:
        return "fixed";
      case ModelKind::Ideal:
        return "ideal";
      case ModelKind::Resizing:
        return "resizing";
      case ModelKind::Runahead:
        return "runahead";
      case ModelKind::Occupancy:
        return "occupancy";
      case ModelKind::Wib:
        return "wib";
    }
    return "?";
}

namespace
{

std::unique_ptr<ResizeController>
buildController(const SimConfig &cfg, StatSet *stats)
{
    switch (cfg.model) {
      case ModelKind::Base:
      case ModelKind::Runahead:
        return std::make_unique<FixedLevelController>(cfg.levels, 1);
      case ModelKind::Fixed:
      case ModelKind::Ideal:
        return std::make_unique<FixedLevelController>(cfg.levels,
                                                      cfg.fixedLevel);
      case ModelKind::Resizing:
        return std::make_unique<MlpAwareController>(cfg.levels,
                                                    cfg.mlp, stats);
      case ModelKind::Occupancy:
        return std::make_unique<OccupancyController>(
            cfg.levels, cfg.occupancy, stats);
      case ModelKind::Wib: {
        // Large window everywhere except the IQ, which stays at the
        // base's single-cycle size; the WIB supplies the capacity.
        const ResourceLevel &big = cfg.levels.at(cfg.levels.maxLevel());
        const ResourceLevel &small = cfg.levels.at(1);
        ResourceLevel wib_level = big;
        wib_level.iqSize = small.iqSize;
        wib_level.iqDepth = small.iqDepth;
        wib_level.robDepth = small.robDepth;
        wib_level.lsqDepth = small.lsqDepth;
        return std::make_unique<FixedLevelController>(
            LevelTable({wib_level}), 1);
      }
    }
    mlpwin_panic("bad model kind");
}

std::string
joinNames(const std::vector<Program> &progs)
{
    std::string s;
    for (const Program &p : progs) {
        if (!s.empty())
            s += '+';
        s += p.name();
    }
    return s;
}

} // namespace

Simulator::Simulator(const SimConfig &cfg, const Program &prog)
    : Simulator(cfg, std::vector<Program>{prog})
{
}

Simulator::Simulator(const SimConfig &cfg,
                     const std::vector<Program> &progs)
    : cfg_(cfg), workloadName_(joinNames(progs)),
      mem_(cfg.mem, &stats_, cfg.vm)
{
    std::string vm_err = cfg_.vm.validate();
    if (!vm_err.empty())
        throw SimError(ErrorCode::InvalidArgument, vm_err);
    const SmtConfig &smt = cfg_.core.smt;
    if (smt.nThreads < 1 || smt.nThreads > kMaxSmtThreads)
        throw SimError(ErrorCode::InvalidArgument,
                       "nThreads must be in [1, " +
                           std::to_string(kMaxSmtThreads) + "], got " +
                           std::to_string(smt.nThreads));
    if (progs.size() != smt.nThreads)
        throw SimError(ErrorCode::InvalidArgument,
                       "SMT run needs one program per thread: " +
                           std::to_string(smt.nThreads) +
                           " threads but " +
                           std::to_string(progs.size()) +
                           " programs");
    const bool smt_run = smt.nThreads > 1;
    if (smt_run) {
        // The partition policy is authoritative over window sizing on
        // an SMT core; single-thread-only machinery is rejected
        // rather than silently misbehaving.
        if (cfg_.model != ModelKind::Base)
            throw SimError(
                ErrorCode::InvalidArgument,
                std::string("SMT runs support only the base model "
                            "(the partition policy governs window "
                            "sizing); got ") +
                    modelName(cfg_.model));
        if (cfg_.sampling.enabled)
            throw SimError(ErrorCode::InvalidArgument,
                           "sampled simulation is single-thread only");
        if (cfg_.startCheckpoint)
            throw SimError(ErrorCode::InvalidArgument,
                           "checkpoint resume is single-thread only");
    }

    // Per-model adjustments.
    if (cfg_.model == ModelKind::Ideal)
        cfg_.core.pipelinePenalties = false;
    if (cfg_.model == ModelKind::Wib)
        cfg_.core.wibEnabled = true;
    RunaheadConfig ra = cfg_.runahead;
    ra.enabled = cfg_.model == ModelKind::Runahead;

    for (unsigned tid = 0; tid < progs.size(); ++tid) {
        const Program &prog = progs[tid];
        fmems_.emplace_back().loadProgram(prog);
        // Timing-side warming at the thread's address offset (thread
        // 0's offset is zero, preserving single-thread behaviour).
        Addr base = static_cast<Addr>(tid) << kThreadAddrShift;
        if (cfg_.warmInstCaches) {
            unsigned line = mem_.l1i().lineBytes();
            for (Addr a = prog.codeBase(); a < prog.codeEnd();
                 a += line)
                mem_.warmInstLine(base + a);
        }
        if (cfg_.warmDataCaches && prog.dataEnd() > prog.dataBase()) {
            unsigned line = mem_.l2().lineBytes();
            std::uint64_t bytes = prog.dataEnd() - prog.dataBase();
            bool fits_l1d = bytes <= cfg_.mem.l1d.sizeBytes;
            for (Addr a = prog.dataBase(); a < prog.dataEnd();
                 a += line)
                mem_.warmDataLine(base + a, fits_l1d);
        }
    }

    if (smt_run) {
        partition_ = std::make_unique<SmtPartitionController>(
            cfg_.levels, smt, cfg_.mlp, &stats_);
        mem_.setL2MissListener([this](Addr a, Cycle c) {
            // The address's high bits name the missing thread.
            auto tid = static_cast<unsigned>(a >> kThreadAddrShift);
            if (tid < partition_->nThreads())
                partition_->onL2DemandMiss(tid, c);
        });
        if (cfg_.vm.enabled && cfg_.vm.resizeOnWalk) {
            // Opt-in: a page-table walk start counts as a miss
            // occurrence for the partition policy, like an L2 miss.
            mem_.setWalkListener([this](Addr a, Cycle c) {
                auto tid =
                    static_cast<unsigned>(a >> kThreadAddrShift);
                if (tid < partition_->nThreads())
                    partition_->onL2DemandMiss(tid, c);
            });
        }
    } else {
        resize_ = buildController(cfg_, &stats_);
        mem_.setL2MissListener([this](Addr, Cycle c) {
            resize_->onL2DemandMiss(c);
        });
        if (cfg_.vm.enabled && cfg_.vm.resizeOnWalk) {
            mem_.setWalkListener([this](Addr, Cycle c) {
                resize_->onL2DemandMiss(c);
            });
        }
    }

    std::vector<SmtThreadSpec> specs;
    specs.reserve(progs.size());
    for (unsigned tid = 0; tid < progs.size(); ++tid)
        specs.push_back(SmtThreadSpec{&fmems_[tid], &progs[tid]});
    core_ = std::make_unique<OooCore>(cfg_.core, resize_.get(),
                                      partition_.get(), mem_, specs,
                                      &stats_, ra, cfg_.bp);
    if (cfg_.lockstepCheck) {
        checkers_.reserve(progs.size());
        for (unsigned tid = 0; tid < progs.size(); ++tid) {
            checkers_.push_back(
                std::make_unique<LockstepChecker>(progs[tid]));
            core_->setChecker(tid, checkers_[tid].get());
        }
    }
    std::string sampling_err = cfg_.sampling.validate();
    if (!sampling_err.empty())
        throw SimError(ErrorCode::InvalidArgument, sampling_err);
    if (cfg_.sampling.enabled)
        sampling_ = std::make_unique<SamplingController>(cfg_.sampling,
                                                         &stats_);
    if (cfg_.startCheckpoint) {
        ScopedSpan span(SpanKind::CheckpointLoad);
        const ArchCheckpoint &ck = *cfg_.startCheckpoint;
        if (ck.programHash() != programHash(progs[0]))
            throw SimError(
                ErrorCode::InvalidArgument,
                "checkpoint (workload " + ck.workload() +
                    ", inst " + std::to_string(ck.instCount()) +
                    ") was taken from a different program than " +
                    progs[0].name() + " (identity hash mismatch)");
        ck.restoreMemory(fmems_[0]);
        core_->restoreArchState(ck.regs(), ck.pc(), ck.instCount());
        if (!checkers_.empty())
            checkers_[0]->restoreState(ck.regs(), ck.pc(),
                                       ck.instCount(), fmems_[0]);
    }
}

const LevelTable &
Simulator::activeTable() const
{
    return resize_ ? resize_->table() : partition_->table();
}

IntervalSnapshot
Simulator::snapshot() const
{
    IntervalSnapshot s;
    s.cycle = core_->cycle();
    s.committed = core_->committedInsts();
    s.l2DemandMisses = mem_.l2DemandMisses();
    s.level = resize_ ? resize_->level() : partition_->levelFor(0);
    s.robOcc = core_->robOccupancy();
    s.iqOcc = core_->iqOccupancy();
    s.lsqOcc = core_->lsqOccupancy();
    s.outstandingMisses = core_->outstandingL2Misses();
    // The DRAM model is analytic (no literal queue); report the bus
    // backlog — how far ahead of "now" the bus is already booked.
    Cycle bus_free = mem_.dram().busFreeAt();
    s.dramBacklog = bus_free > s.cycle
        ? static_cast<std::uint64_t>(bus_free - s.cycle) : 0;
    // Per-thread series (one entry per hardware thread; a single
    // entry on single-thread runs).
    for (unsigned tid = 0; tid < core_->nThreads(); ++tid) {
        const ThreadContext &t = core_->thread(tid);
        ThreadSnapshot ts;
        ts.committed = t.committedMeasured;
        ts.level = core_->threadLevel(tid);
        ts.robOcc = static_cast<unsigned>(t.window.size());
        ts.outstandingMisses =
            static_cast<unsigned>(t.activeMissDone.size());
        ts.cpi = t.cpi;
        s.threads.push_back(ts);
    }
    s.cpi = core_->cpiStackTotal();
    s.hasCpi = true;
    if (mem_.mmu().enabled()) {
        s.hasVm = true;
        vm::VmStats v = mem_.mmu().stats();
        s.tlbWalks = v.walks;
        s.walkCycles = v.walkCycles;
    }
    return s;
}

Cycle
Simulator::watchdogWindow() const
{
    if (!cfg_.watchdog.enabled)
        return 0;
    if (cfg_.watchdog.noCommitWindow)
        return cfg_.watchdog.noCommitWindow;
    const LevelTable &table = activeTable();
    Cycle window = 2ULL * cfg_.mlp.memoryLatency *
                   table.at(table.maxLevel()).robSize;
    return std::max<Cycle>(window, 1);
}

DiagnosticDump
Simulator::diagnosticDump() const
{
    DiagnosticDump d;
    d.workload = workloadName_;
    d.model = modelName(cfg_.model);
    d.cycle = core_->cycle();
    d.committed = core_->committedInsts();
    d.lastCommitCycle = lastCommitCycle_;

    d.robEmpty = core_->robEmpty();
    d.robHeadSeq = core_->robHeadSeq();
    d.robHeadPc = core_->robHeadPc();
    d.robHeadCompleted = core_->robHeadCompleted();

    const LevelTable &table = activeTable();
    const ResourceLevel &cap = table.at(table.maxLevel());
    d.robOcc = core_->robOccupancy();
    d.robCap = cap.robSize;
    d.iqOcc = core_->iqOccupancy();
    d.iqCap = cap.iqSize;
    d.lsqOcc = core_->lsqOccupancy();
    d.lsqCap = cap.lsqSize;

    if (resize_) {
        d.level = resize_->level();
        d.allocStopped = resize_->allocStopped();
        d.inTransition = resize_->inTransition();
    } else {
        d.level = partition_->levelFor(0);
        d.allocStopped = partition_->anyAllocStopped();
        d.inTransition = partition_->inTransitionFor(0);
    }

    d.outstandingMisses = core_->outstandingL2Misses();
    Cycle bus_free = mem_.dram().busFreeAt();
    d.dramBacklog = bus_free > d.cycle
        ? static_cast<std::uint64_t>(bus_free - d.cycle) : 0;
    d.fetchHalted = core_->fetchHalted();

    // Tail of the event timeline, when a recorder is attached: the
    // grow/shrink/drain/runahead episodes leading up to the wedge.
    if (timeline_) {
        constexpr std::size_t kTail = 8;
        const std::deque<TimelineEvent> &events = timeline_->events();
        std::size_t first =
            events.size() > kTail ? events.size() - kTail : 0;
        for (std::size_t i = first; i < events.size(); ++i) {
            const TimelineEvent &e = events[i];
            std::ostringstream os;
            os << timelineEventKindName(e.kind);
            if (e.kind == TimelineEventKind::Grow ||
                e.kind == TimelineEventKind::Shrink)
                os << ' ' << e.fromLevel << "->" << e.toLevel;
            if (e.kind == TimelineEventKind::Runahead)
                os << " pc=0x" << std::hex << e.triggerPc << std::dec
                   << " misses=" << e.misses;
            os << " @[" << e.begin << ',' << e.end << ']';
            d.recentEvents.push_back(os.str());
        }
    }
    return d;
}

Status
Simulator::checkInvariants() const
{
    const LevelTable &table = activeTable();
    const ResourceLevel &cap = table.at(table.maxLevel());
    if (core_->robOccupancy() > cap.robSize)
        return Status::error(
            ErrorCode::InvariantViolation,
            "ROB occupancy " +
                std::to_string(core_->robOccupancy()) +
                " exceeds largest-level capacity " +
                std::to_string(cap.robSize));
    if (core_->iqOccupancy() > cap.iqSize)
        return Status::error(
            ErrorCode::InvariantViolation,
            "IQ occupancy " + std::to_string(core_->iqOccupancy()) +
                " exceeds largest-level capacity " +
                std::to_string(cap.iqSize));
    if (core_->lsqOccupancy() > cap.lsqSize)
        return Status::error(
            ErrorCode::InvariantViolation,
            "LSQ occupancy " + std::to_string(core_->lsqOccupancy()) +
                " exceeds largest-level capacity " +
                std::to_string(cap.lsqSize));
    // A miss entry outlives its load only until its fill cycle; a
    // count beyond every structure that can source misses means a
    // leaked entry (e.g. a bogus completion cycle).
    unsigned miss_bound = cap.robSize + cap.lsqSize + 64;
    if (core_->outstandingL2Misses() > miss_bound)
        return Status::error(
            ErrorCode::InvariantViolation,
            "outstanding L2-miss count " +
                std::to_string(core_->outstandingL2Misses()) +
                " exceeds plausibility bound " +
                std::to_string(miss_bound) + " (leaked entry?)");
    // Cycle-accounting invariant: every thread's CPI stack attributes
    // exactly one leaf per cycle since the measurement reset, so the
    // leaf counts must sum to the measured cycle count — exactly.
    const Cycle mc = core_->measuredCycles();
    for (unsigned tid = 0; tid < core_->nThreads(); ++tid) {
        std::uint64_t sum = core_->cpiStack(tid).sum();
        if (sum != mc)
            return Status::error(
                ErrorCode::InvariantViolation,
                "CPI stack of thread " + std::to_string(tid) +
                    " sums to " + std::to_string(sum) + " but " +
                    std::to_string(mc) +
                    " cycles were measured (cycle-accounting leak)");
    }
    return Status();
}

void
Simulator::abortRun(ErrorCode code, const std::string &why) const
{
    throw SimError(code,
                   why + " (workload " + workloadName_ + ", model " +
                       modelName(cfg_.model) + ", cycle " +
                       std::to_string(core_->cycle()) + ")",
                   diagnosticDump());
}

void
Simulator::abortDivergence(unsigned tid) const
{
    const LockstepChecker::Divergence &d =
        checkers_[tid]->divergence();
    DiagnosticDump dump = diagnosticDump();
    dump.hasDivergence = true;
    dump.divergenceThread = tid;
    dump.divergenceCommit = d.commitIndex;
    dump.divergencePc = d.pc;
    dump.divergenceField = d.field;
    dump.divergenceExpected = d.expected;
    dump.divergenceActual = d.actual;
    dump.divergenceInst = d.inst;

    std::ostringstream os;
    os << "lockstep divergence on thread " << tid << " at commit #"
       << d.commitIndex << ": pc 0x" << std::hex << d.pc << " ("
       << d.inst << ") field " << d.field << " expected 0x"
       << d.expected << ", got 0x" << d.actual << std::dec
       << " (workload " << workloadName_ << ", model "
       << modelName(cfg_.model) << ", cycle " << core_->cycle()
       << ")";
    throw SimError(ErrorCode::ArchDivergence, os.str(),
                   std::move(dump));
}

void
Simulator::pollWatchdog(Cycle window)
{
    if (window) {
        Status s = checkInvariants();
        if (!s.ok())
            abortRun(s.code(), s.message());
    }
    if (abortFlag_ && abortFlag_->load(std::memory_order_relaxed))
        abortRun(ErrorCode::Interrupted,
                 "run aborted by cancellation request");
    if (hasDeadline_ &&
        std::chrono::steady_clock::now() >= deadline_)
        abortRun(ErrorCode::Timeout,
                 "wall-clock budget exhausted");
}

void
Simulator::runUntil(std::uint64_t committed_target)
{
    std::uint64_t last_committed = core_->committedInsts();
    lastCommitCycle_ = core_->cycle();

    const Cycle window = watchdogWindow();
    const Cycle interval =
        std::max<Cycle>(cfg_.watchdog.checkInterval, 1);

    try {
        while (!core_->halted() &&
               core_->cycle() < cfg_.maxCycles &&
               (committed_target == 0 ||
                core_->committedInsts() < committed_target)) {
            stepCycle();

            const Cycle now = core_->cycle();
            if (core_->committedInsts() != last_committed) {
                last_committed = core_->committedInsts();
                lastCommitCycle_ = now;
            }
            // Drain tracking: allocation stopped for longer than the
            // watchdog window means a shrink (or transition) that can
            // never complete, even if the ROB keeps retiring
            // meanwhile.
            bool alloc_stopped = resize_
                ? resize_->allocStopped()
                : partition_->anyAllocStopped();
            if (alloc_stopped)
                ++allocStoppedRun_;
            else
                allocStoppedRun_ = 0;

            if (window) {
                if (now - lastCommitCycle_ > window)
                    abortRun(ErrorCode::NoProgress,
                             "no instruction committed for " +
                                 std::to_string(window) + " cycles");
                if (allocStoppedRun_ > window)
                    abortRun(ErrorCode::InvariantViolation,
                             "window resize drain still incomplete "
                             "after " +
                                 std::to_string(allocStoppedRun_) +
                                 " cycles of stopped allocation");
            }
            if (now % interval == 0)
                pollWatchdog(window);
        }
    } catch (const SimError &e) {
        if (e.hasDump())
            throw;
        // Structural invariants promoted out of the core throw bare
        // SimErrors; attach the machine-state dump and run identity
        // they could not build themselves.
        abortRun(e.code(), e.message());
    }
}

std::uint64_t
Simulator::fastForward(std::uint64_t n)
{
    if (n == 0 || core_->halted())
        return 0;
    mlpwin_assert(core_->nThreads() == 1);
    mlpwin_assert(core_->readyForFastForward());
    ScopedSpan span(SpanKind::FastForward);
    FastForwarder ff(core_->oracleForFastForward(), &mem_,
                     &core_->predictorForWarming());
    std::uint64_t done = ff.run(n);
    if (!checkers_.empty())
        checkers_[0]->skip(done);
    core_->resumeAfterFastForward();
    return done;
}

void
Simulator::drainPipeline()
{
    ScopedSpan span(SpanKind::Drain);
    core_->setFetchPaused(true);
    const Cycle window = watchdogWindow();
    const Cycle limit = window ? window : 1'000'000;
    const Cycle start = core_->cycle();
    while (!core_->readyForFastForward() && !core_->halted()) {
        stepCycle();
        if (core_->cycle() - start > limit)
            abortRun(ErrorCode::NoProgress,
                     "pipeline drain toward a fast-forward boundary "
                     "did not complete within " +
                         std::to_string(limit) + " cycles");
    }
    core_->setFetchPaused(false);
}

PollutionStats
Simulator::warmupPhase()
{
    PollutionStats pollution_base;

    // Warm-up phase: execute unmeasured instructions, then zero every
    // statistic. Stands in for the paper's 16G-instruction skip.
    // Sampled runs always warm up functionally — their whole premise
    // is that detailed cycles are spent only where measured. SMT runs
    // always warm up in detail: the functional fast-forward drives a
    // single oracle.
    if (cfg_.warmupInsts > 0 && !core_->halted()) {
        ScopedSpan span(SpanKind::Warmup);
        bool functional = (cfg_.functionalWarmup ||
                           cfg_.sampling.enabled) &&
                          core_->nThreads() == 1;
        if (functional)
            fastForward(cfg_.warmupInsts);
        else
            runUntil(core_->committedInsts() + cfg_.warmupInsts);
        stats_.resetAll();
        core_->resetMeasurement();
        if (resize_)
            resize_->resetMeasurement();
        else
            partition_->resetMeasurement();
        if (sampler_)
            sampler_->notifyReset(core_->cycle());
        pollution_base = mem_.l2().pollution();
    }
    return pollution_base;
}

SimResult
Simulator::run()
{
    if (cfg_.sampling.enabled)
        return runSampled();

    PollutionStats pollution_base = warmupPhase();
    std::uint64_t target = cfg_.maxInsts
        ? core_->committedInsts() + cfg_.maxInsts : 0;
    runUntil(target);
    return collectResult(pollution_base);
}

SimResult
Simulator::runSampled()
{
    const SamplingConfig &sc = cfg_.sampling;
    PollutionStats pollution_base = warmupPhase();

    // In sampled mode maxInsts bounds the total post-warm-up
    // instructions, fast-forwarded and detailed together, so a
    // sampled cell covers the same program region as a full-detail
    // cell with the same budget.
    const std::uint64_t budget = cfg_.maxInsts;
    const std::uint64_t burst =
        sc.detailedWarmupInsts + sc.intervalInsts;

    while (!core_->halted()) {
        std::uint64_t used =
            sampling_->ffInsts() + core_->committedInsts();
        if (budget && used >= budget)
            break;
        std::uint64_t remaining = budget ? budget - used : 0;
        if (budget && remaining <= burst) {
            // The tail cannot fit a warm-up burst plus a full
            // interval; finish it in detail, unmeasured.
            runUntil(core_->committedInsts() + remaining);
            break;
        }

        std::uint64_t ff_len = sc.ffInstsPerPeriod();
        if (budget)
            ff_len = std::min(ff_len, remaining - burst);
        if (ff_len) {
            sampling_->recordFastForward(fastForward(ff_len));
            if (core_->halted())
                break;
        }

        // Detailed warm-up burst: unmeasured detailed execution that
        // rebuilds the in-flight state (ROB/IQ/MSHR occupancy)
        // functional warming cannot reconstruct.
        runUntil(core_->committedInsts() + sc.detailedWarmupInsts);
        if (core_->halted())
            break;

        const Cycle c0 = core_->cycle();
        const std::uint64_t i0 = core_->committedInsts();
        runUntil(i0 + sc.intervalInsts);
        std::uint64_t insts = core_->committedInsts() - i0;
        // A full interval may overshoot by up to commit-width-1
        // instructions in its final cycle; the overshoot stays in the
        // interval's own IPC. Short intervals (Halt mid-measurement)
        // are discarded: they would bias the per-interval population.
        if (insts >= sc.intervalInsts)
            sampling_->recordInterval(insts, core_->cycle() - c0);

        // Return to an architectural boundary so the next period can
        // fast-forward. Drain cycles are outside the measured deltas.
        drainPipeline();
    }

    sampling_->finalize();
    SimResult r = collectResult(pollution_base);
    r.sampled = true;
    r.sampleIntervals = sampling_->intervals();
    r.ffInsts = sampling_->ffInsts();
    r.ipcCi95 = sampling_->ipcCi95();
    if (r.sampleIntervals > 0)
        r.ipc = sampling_->ipcMean();
    return r;
}

SimResult
Simulator::collectResult(const PollutionStats &pollution_base)
{
    // End-of-run full-state verification: registers, PC, and the
    // complete sparse memory image, per thread. Only meaningful at
    // Halt — before that, committed stores may legitimately still sit
    // in the store buffer ahead of functional memory.
    if (!checkers_.empty() && core_->halted()) {
        for (unsigned tid = 0; tid < checkers_.size(); ++tid) {
            Status s = checkers_[tid]->verifyFinalState(
                core_->oracle(tid), fmems_[tid]);
            if (!s.ok())
                abortRun(s.code(),
                         "thread " + std::to_string(tid) + ": " +
                             s.message());
        }
    }

    // Flush the trailing partial interval and close any open episode.
    if (sampler_)
        sampler_->finish(snapshot());
    if (timeline_)
        timeline_->finish(core_->cycle());

    SimResult r;
    r.workload = workloadName_;
    r.model = modelName(cfg_.model);
    r.halted = core_->halted();
    r.cycles = core_->measuredCycles();
    r.committed = core_->committedInsts();
    r.ipc = core_->ipc();
    r.avgLoadLatency = core_->avgLoadLatency();
    r.observedMlp = core_->observedMlp();
    r.committedBranches = core_->committedBranches();
    r.committedMispredicts = core_->committedMispredicts();
    r.squashed = core_->squashedInsts();
    r.l2DemandMisses = mem_.l2DemandMisses();
    r.l2Pollution = mem_.l2().pollution();
    for (unsigned p = 0; p < kNumProvenances; ++p) {
        r.l2Pollution.brought[p] -= std::min(
            pollution_base.brought[p], r.l2Pollution.brought[p]);
        r.l2Pollution.useful[p] -= std::min(
            pollution_base.useful[p], r.l2Pollution.useful[p]);
    }
    if (resize_) {
        r.cyclesAtLevel = resize_->residency().cyclesAtLevel;
    } else {
        // Element-wise sum of the per-thread level residencies: total
        // thread-cycles spent at each level.
        r.cyclesAtLevel.assign(activeTable().maxLevel(), 0);
        for (unsigned tid = 0; tid < core_->nThreads(); ++tid) {
            const LevelResidency &res = partition_->residencyFor(tid);
            for (std::size_t l = 0;
                 l < res.cyclesAtLevel.size() &&
                 l < r.cyclesAtLevel.size();
                 ++l)
                r.cyclesAtLevel[l] += res.cyclesAtLevel[l];
        }
    }
    r.runaheadEpisodes = core_->runaheadEpisodes();
    r.runaheadUseless = core_->runaheadUselessEpisodes();
    r.vmEnabled = mem_.mmu().enabled();
    if (r.vmEnabled)
        r.vm = mem_.mmu().stats();
    r.archRegChecksum = core_->oracle().regs().checksum();

    r.nThreads = core_->nThreads();
    r.fetchPolicy = fetchPolicyName(cfg_.core.smt.fetchPolicy);
    r.partitionPolicy =
        partitionPolicyName(cfg_.core.smt.partitionPolicy);
    const Cycle mc = core_->measuredCycles();
    for (unsigned tid = 0; tid < core_->nThreads(); ++tid) {
        const ThreadContext &t = core_->thread(tid);
        r.threadCommitted.push_back(t.committedMeasured);
        r.threadIpc.push_back(
            mc ? static_cast<double>(t.committedMeasured) / mc : 0.0);
        r.threadObservedMlp.push_back(t.observedMlp());
        r.threadCpi.push_back(t.cpi);
        r.threadCommitHash.push_back(
            tid < checkers_.size() && checkers_[tid]
                ? checkers_[tid]->streamHash() : 0);
    }
    if (r.nThreads == 1) {
        // Single-thread runs keep the original fingerprint exactly.
        r.commitStreamHash = checkers_.empty()
            ? 0 : checkers_[0]->streamHash();
    } else if (!checkers_.empty()) {
        // FNV-1a fold of the per-thread stream hashes.
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (std::uint64_t th : r.threadCommitHash) {
            h ^= th;
            h *= 0x100000001b3ULL;
        }
        r.commitStreamHash = h;
    }

    EnergyInputs &e = r.energyInputs;
    e.cycles = r.cycles;
    e.fetched = core_->fetchedInsts();
    e.dispatched = r.committed + r.squashed; // Window allocations.
    e.issued = core_->issuedInsts();
    e.committed = r.committed;
    e.loads = core_->committedLoads();
    e.stores = core_->committedStores();
    e.l1iAccesses = mem_.l1i().accesses();
    e.l1dAccesses = mem_.l1d().accesses();
    e.l2Accesses = mem_.l2().accesses();
    e.dramAccesses = mem_.dram().numReads() + mem_.dram().numWritebacks();
    e.iqSizeCycles = core_->iqSizeCycles();
    e.robSizeCycles = core_->robSizeCycles();
    e.lsqSizeCycles = core_->lsqSizeCycles();

    EnergyModel em;
    r.energyTotal = em.evaluate(e).total();
    r.edp = em.edp(e);
    return r;
}

std::uint64_t
configFingerprint(const SimConfig &cfg)
{
    // FNV-1a over the performance-relevant numeric knobs, folded in a
    // fixed order so the fingerprint is stable across runs and hosts.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto fold = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };

    fold(static_cast<std::uint64_t>(cfg.model));
    fold(cfg.fixedLevel);
    for (unsigned l = 1; l <= cfg.levels.maxLevel(); ++l) {
        const ResourceLevel &lvl = cfg.levels.at(l);
        fold(lvl.robSize);
        fold(lvl.iqSize);
        fold(lvl.lsqSize);
        fold(lvl.iqDepth);
        fold(lvl.robDepth);
        fold(lvl.lsqDepth);
    }

    const CoreConfig &c = cfg.core;
    fold(c.fetchWidth);
    fold(c.decodeWidth);
    fold(c.issueWidth);
    fold(c.commitWidth);
    fold(c.mispredictPenalty);
    fold(c.fetchQueueSize);
    fold(c.storeBufferSize);
    fold(c.numIntAlu);
    fold(c.numIntMulDiv);
    fold(c.numMemPorts);
    fold(c.numFpAlu);
    fold(c.numFpMulDiv);
    fold(c.pipelinePenalties);
    fold(c.wrongPathExecution);
    fold(c.wibEnabled);
    fold(c.wibSize);
    fold(c.smt.nThreads);
    fold(static_cast<std::uint64_t>(c.smt.fetchPolicy));
    fold(static_cast<std::uint64_t>(c.smt.partitionPolicy));

    for (const CacheConfig &cc : {cfg.mem.l1i, cfg.mem.l1d,
                                  cfg.mem.l2}) {
        fold(cc.sizeBytes);
        fold(cc.assoc);
        fold(cc.lineBytes);
        fold(cc.hitLatency);
        fold(cc.mshrs);
    }
    fold(cfg.mem.dram.minLatency);
    fold(cfg.mem.dram.bytesPerCycle);
    fold(cfg.mem.prefetcher.enabled);
    fold(cfg.mem.prefetcher.degree);

    fold(cfg.mlp.memoryLatency);
    fold(cfg.mlp.transitionPenalty);
    fold(cfg.warmInstCaches);
    fold(cfg.warmDataCaches);
    fold(cfg.warmupInsts);
    fold(cfg.functionalWarmup);
    fold(cfg.sampling.enabled);
    fold(cfg.sampling.intervalInsts);
    fold(cfg.sampling.periodInsts);
    fold(cfg.sampling.detailedWarmupInsts);
    fold(cfg.maxInsts);

    // Virtual-memory knobs. Folded unconditionally (off still folds
    // the defaults) so the fingerprint depends on every MMU field;
    // two runs differing in any TLB geometry, huge-page, or walk knob
    // get distinct fingerprints — and distinct result-cache keys.
    const vm::MmuConfig &v = cfg.vm;
    fold(v.enabled);
    for (const vm::TlbConfig &t : {v.itlb, v.dtlb, v.stlb}) {
        fold(t.entries);
        fold(t.assoc);
        fold(t.hitLatency);
    }
    fold(v.walkLevels);
    fold(v.hugePages);
    fold(v.fragPermille);
    fold(v.resizeOnWalk);
    return h;
}

std::vector<std::string>
splitWorkloadSpec(const std::string &name)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : name) {
        if (c == '+') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);
    return parts;
}

SimResult
runWorkload(const std::string &name, const SimConfig &cfg,
            std::uint64_t iterations)
{
    std::vector<std::string> parts = splitWorkloadSpec(name);
    unsigned n = cfg.core.smt.nThreads;
    if (parts.size() == 1 && n > 1) {
        // A single name on an SMT config co-schedules n copies.
        parts.assign(n, parts[0]);
    }
    if (parts.size() != n) {
        throw SimError(ErrorCode::InvalidArgument,
                       "workload spec '" + name + "' names " +
                           std::to_string(parts.size()) +
                           " programs but the configuration has " +
                           std::to_string(n) + " threads");
    }
    std::vector<Program> progs;
    progs.reserve(parts.size());
    for (const std::string &part : parts) {
        const WorkloadSpec &spec = findWorkload(part);
        progs.push_back(spec.make(iterations));
    }
    Simulator sim(cfg, progs);
    return sim.run();
}

} // namespace mlpwin
