#include "simulator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "workloads/suite.hh"

namespace mlpwin
{

const char *
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Base:
        return "base";
      case ModelKind::Fixed:
        return "fixed";
      case ModelKind::Ideal:
        return "ideal";
      case ModelKind::Resizing:
        return "resizing";
      case ModelKind::Runahead:
        return "runahead";
      case ModelKind::Occupancy:
        return "occupancy";
      case ModelKind::Wib:
        return "wib";
    }
    return "?";
}

namespace
{

std::unique_ptr<ResizeController>
buildController(const SimConfig &cfg, StatSet *stats)
{
    switch (cfg.model) {
      case ModelKind::Base:
      case ModelKind::Runahead:
        return std::make_unique<FixedLevelController>(cfg.levels, 1);
      case ModelKind::Fixed:
      case ModelKind::Ideal:
        return std::make_unique<FixedLevelController>(cfg.levels,
                                                      cfg.fixedLevel);
      case ModelKind::Resizing:
        return std::make_unique<MlpAwareController>(cfg.levels,
                                                    cfg.mlp, stats);
      case ModelKind::Occupancy:
        return std::make_unique<OccupancyController>(
            cfg.levels, cfg.occupancy, stats);
      case ModelKind::Wib: {
        // Large window everywhere except the IQ, which stays at the
        // base's single-cycle size; the WIB supplies the capacity.
        const ResourceLevel &big = cfg.levels.at(cfg.levels.maxLevel());
        const ResourceLevel &small = cfg.levels.at(1);
        ResourceLevel wib_level = big;
        wib_level.iqSize = small.iqSize;
        wib_level.iqDepth = small.iqDepth;
        wib_level.robDepth = small.robDepth;
        wib_level.lsqDepth = small.lsqDepth;
        return std::make_unique<FixedLevelController>(
            LevelTable({wib_level}), 1);
      }
    }
    mlpwin_panic("bad model kind");
}

} // namespace

Simulator::Simulator(const SimConfig &cfg, const Program &prog)
    : cfg_(cfg), workloadName_(prog.name()),
      mem_(cfg.mem, &stats_)
{
    // Per-model adjustments.
    if (cfg_.model == ModelKind::Ideal)
        cfg_.core.pipelinePenalties = false;
    if (cfg_.model == ModelKind::Wib)
        cfg_.core.wibEnabled = true;
    RunaheadConfig ra = cfg_.runahead;
    ra.enabled = cfg_.model == ModelKind::Runahead;

    fmem_.loadProgram(prog);
    if (cfg_.warmInstCaches) {
        unsigned line = mem_.l1i().lineBytes();
        for (Addr a = prog.codeBase(); a < prog.codeEnd(); a += line)
            mem_.warmInstLine(a);
    }
    if (cfg_.warmDataCaches && prog.dataEnd() > prog.dataBase()) {
        unsigned line = mem_.l2().lineBytes();
        std::uint64_t bytes = prog.dataEnd() - prog.dataBase();
        bool fits_l1d = bytes <= cfg_.mem.l1d.sizeBytes;
        for (Addr a = prog.dataBase(); a < prog.dataEnd(); a += line)
            mem_.warmDataLine(a, fits_l1d);
    }
    resize_ = buildController(cfg_, &stats_);
    mem_.setL2MissListener(
        [this](Cycle c) { resize_->onL2DemandMiss(c); });
    core_ = std::make_unique<OooCore>(cfg_.core, *resize_, mem_, fmem_,
                                      prog, &stats_, ra, cfg_.bp);
}

IntervalSnapshot
Simulator::snapshot() const
{
    IntervalSnapshot s;
    s.cycle = core_->cycle();
    s.committed = core_->committedInsts();
    s.l2DemandMisses = mem_.l2DemandMisses();
    s.level = resize_->level();
    s.robOcc = core_->robOccupancy();
    s.iqOcc = core_->iqOccupancy();
    s.lsqOcc = core_->lsqOccupancy();
    s.outstandingMisses = core_->outstandingL2Misses();
    // The DRAM model is analytic (no literal queue); report the bus
    // backlog — how far ahead of "now" the bus is already booked.
    Cycle bus_free = mem_.dram().busFreeAt();
    s.dramBacklog = bus_free > s.cycle
        ? static_cast<std::uint64_t>(bus_free - s.cycle) : 0;
    return s;
}

void
Simulator::runUntil(std::uint64_t committed_target)
{
    std::uint64_t last_progress_committed = core_->committedInsts();
    Cycle last_progress_cycle = core_->cycle();

    while (!core_->halted() &&
           core_->cycle() < cfg_.maxCycles &&
           (committed_target == 0 ||
            core_->committedInsts() < committed_target)) {
        stepCycle();

        // Deadlock watchdog: the core must commit something within a
        // generous window (mispredict + full memory stall bounded).
        if (core_->committedInsts() != last_progress_committed) {
            last_progress_committed = core_->committedInsts();
            last_progress_cycle = core_->cycle();
        } else if (core_->cycle() - last_progress_cycle > 500000) {
            mlpwin_panic("no commit progress for 500k cycles "
                         "(workload %s, model %s, cycle %llu)",
                         workloadName_.c_str(),
                         modelName(cfg_.model),
                         static_cast<unsigned long long>(
                             core_->cycle()));
        }
    }
}

SimResult
Simulator::run()
{
    PollutionStats pollution_base;

    // Warm-up phase: execute unmeasured instructions, then zero every
    // statistic. Stands in for the paper's 16G-instruction skip.
    if (cfg_.warmupInsts > 0 && !core_->halted()) {
        runUntil(cfg_.warmupInsts);
        stats_.resetAll();
        core_->resetMeasurement();
        resize_->resetMeasurement();
        if (sampler_)
            sampler_->notifyReset(core_->cycle());
        pollution_base = mem_.l2().pollution();
    }

    std::uint64_t target = cfg_.maxInsts
        ? core_->committedInsts() + cfg_.maxInsts : 0;
    runUntil(target);

    // Flush the trailing partial interval and close any open episode.
    if (sampler_)
        sampler_->finish(snapshot());
    if (timeline_)
        timeline_->finish(core_->cycle());

    SimResult r;
    r.workload = workloadName_;
    r.model = modelName(cfg_.model);
    r.halted = core_->halted();
    r.cycles = core_->measuredCycles();
    r.committed = core_->committedInsts();
    r.ipc = core_->ipc();
    r.avgLoadLatency = core_->avgLoadLatency();
    r.observedMlp = core_->observedMlp();
    r.committedBranches = core_->committedBranches();
    r.committedMispredicts = core_->committedMispredicts();
    r.squashed = core_->squashedInsts();
    r.l2DemandMisses = mem_.l2DemandMisses();
    r.l2Pollution = mem_.l2().pollution();
    for (unsigned p = 0; p < kNumProvenances; ++p) {
        r.l2Pollution.brought[p] -= std::min(
            pollution_base.brought[p], r.l2Pollution.brought[p]);
        r.l2Pollution.useful[p] -= std::min(
            pollution_base.useful[p], r.l2Pollution.useful[p]);
    }
    r.cyclesAtLevel = resize_->residency().cyclesAtLevel;
    r.runaheadEpisodes = core_->runaheadEpisodes();
    r.runaheadUseless = core_->runaheadUselessEpisodes();
    r.archRegChecksum = core_->oracle().regs().checksum();

    EnergyInputs &e = r.energyInputs;
    e.cycles = r.cycles;
    e.fetched = core_->fetchedInsts();
    e.dispatched = r.committed + r.squashed; // Window allocations.
    e.issued = core_->issuedInsts();
    e.committed = r.committed;
    e.loads = core_->committedLoads();
    e.stores = core_->committedStores();
    e.l1iAccesses = mem_.l1i().accesses();
    e.l1dAccesses = mem_.l1d().accesses();
    e.l2Accesses = mem_.l2().accesses();
    e.dramAccesses = mem_.dram().numReads() + mem_.dram().numWritebacks();
    e.iqSizeCycles = core_->iqSizeCycles();
    e.robSizeCycles = core_->robSizeCycles();
    e.lsqSizeCycles = core_->lsqSizeCycles();

    EnergyModel em;
    r.energyTotal = em.evaluate(e).total();
    r.edp = em.edp(e);
    return r;
}

SimResult
runWorkload(const std::string &name, const SimConfig &cfg,
            std::uint64_t iterations)
{
    const WorkloadSpec &spec = findWorkload(name);
    Program prog = spec.make(iterations);
    Simulator sim(cfg, prog);
    return sim.run();
}

} // namespace mlpwin
