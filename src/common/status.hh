/**
 * @file
 * Recoverable error reporting for library paths.
 *
 * The logging macros (mlpwin_fatal / mlpwin_panic) terminate the
 * process, which is the right call for a single interactive run but
 * destroys a whole batch when one cell misbehaves. Library code that
 * batch drivers call — workload lookup, Simulator::run, job
 * execution — reports failures through this header instead:
 *
 *  - Status: a cheap ok/error value for query-style checks
 *    (Simulator::checkInvariants).
 *  - SimError: the exception thrown out of a failing run, carrying an
 *    ErrorCode (so callers can classify: retry transient I/O, never
 *    retry an invariant violation) and, for watchdog aborts, a
 *    DiagnosticDump of the wedged machine state.
 */

#ifndef MLPWIN_COMMON_STATUS_HH
#define MLPWIN_COMMON_STATUS_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mlpwin
{

/** Classification of a recoverable failure. */
enum class ErrorCode
{
    Ok,                 ///< No error (Status only).
    InvalidArgument,    ///< Bad user input (unknown workload, ...).
    NoProgress,         ///< Watchdog: no commit for a full window.
    InvariantViolation, ///< Structural invariant broke (occupancy
                        ///< over capacity, drain never completes).
    ArchDivergence,     ///< Lockstep checker: a committed instruction
                        ///< disagreed with the reference emulator.
    Io,                 ///< Filesystem trouble; typically transient.
    Timeout,            ///< Per-job wall-clock budget exhausted.
    Interrupted,        ///< Run aborted by a cancellation request.
    WorkerCrash,        ///< Isolated worker process died (signal,
                        ///< nonzero exit, or torn result stream).
    WorkerUnresponsive, ///< Isolated worker missed its heartbeat
                        ///< deadline and was killed by the supervisor.
    Internal,           ///< Unclassified failure.
};

/** Printable code name ("ok", "no_progress", ...). */
const char *errorCodeName(ErrorCode code);

/**
 * Inverse of errorCodeName, for codes that crossed a process or
 * checkpoint boundary as text.
 *
 * @return false (out untouched) if the name is unknown.
 */
bool parseErrorCode(const std::string &name, ErrorCode &out);

/**
 * True for failure classes worth retrying (currently only Io:
 * telemetry/checkpoint files on contended filesystems). Simulation
 * failures are deterministic and never retried.
 */
bool errorCodeTransient(ErrorCode code);

/**
 * Machine-state snapshot attached to watchdog/invariant aborts: the
 * pipeline heads, window occupancies against their capacities,
 * controller state, outstanding misses, and the tail of the event
 * timeline (when one is attached). Everything a postmortem needs to
 * tell "deadlocked drain" from "lost wakeup" without re-running.
 */
struct DiagnosticDump
{
    std::string workload;
    std::string model;

    Cycle cycle = 0;
    std::uint64_t committed = 0;
    /** Cycle of the most recent commit before the abort. */
    Cycle lastCommitCycle = 0;

    // --- pipeline head -------------------------------------------------
    bool robEmpty = true;
    InstSeqNum robHeadSeq = 0;
    Addr robHeadPc = 0;
    bool robHeadCompleted = false;

    // --- window occupancy vs. capacity (at the current level) ---------
    unsigned robOcc = 0, robCap = 0;
    unsigned iqOcc = 0, iqCap = 0;
    unsigned lsqOcc = 0, lsqCap = 0;

    // --- controller state ---------------------------------------------
    unsigned level = 0;
    bool allocStopped = false;
    bool inTransition = false;

    // --- memory system -------------------------------------------------
    unsigned outstandingMisses = 0;
    std::uint64_t dramBacklog = 0;

    bool fetchHalted = false;

    // --- lockstep-checker divergence (ArchDivergence aborts) ----------
    /** True when the fields below describe a checker divergence. */
    bool hasDivergence = false;
    /** Hardware thread whose commit stream diverged (0 if 1-thread). */
    unsigned divergenceThread = 0;
    /** Zero-based index of the divergent commit in the commit stream. */
    std::uint64_t divergenceCommit = 0;
    /** PC of the divergent instruction. */
    Addr divergencePc = 0;
    /** Mismatching field: "pc", "result", "memAddr", "storeData", ... */
    std::string divergenceField;
    std::uint64_t divergenceExpected = 0;
    std::uint64_t divergenceActual = 0;
    /** Disassembly of the reference instruction at the divergence. */
    std::string divergenceInst;

    /**
     * Last few timeline events ("grow 1->2 @[120,130]", ...), newest
     * last; empty when no EventTimeline was attached to the run.
     */
    std::vector<std::string> recentEvents;

    /** Single-line JSON object (schema documented in EXPERIMENTS.md). */
    std::string toJson() const;

    /** Multi-line human-readable rendering for stderr. */
    std::string pretty() const;
};

/** See file comment. */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorCode code, const std::string &message);
    SimError(ErrorCode code, const std::string &message,
             DiagnosticDump dump);

    ErrorCode code() const { return code_; }

    /** The bare message, without the "[code]" prefix what() carries. */
    const std::string &message() const { return message_; }

    bool hasDump() const { return dump_.has_value(); }
    /** Precondition: hasDump(). */
    const DiagnosticDump &dump() const { return *dump_; }

    bool transient() const { return errorCodeTransient(code_); }

  private:
    ErrorCode code_;
    std::string message_;
    std::optional<DiagnosticDump> dump_;
};

/** Cheap ok/error value for checks that should not throw. */
class Status
{
  public:
    /** Default: ok. */
    Status() = default;

    static Status
    error(ErrorCode code, std::string message)
    {
        Status s;
        s.code_ = code;
        s.message_ = std::move(message);
        return s;
    }

    bool ok() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

} // namespace mlpwin

#endif // MLPWIN_COMMON_STATUS_HH
