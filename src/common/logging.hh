/**
 * @file
 * Error and status reporting helpers, modeled after gem5's logging.hh.
 *
 * panic()  - an internal simulator invariant was violated (a bug).
 * fatal()  - the simulation cannot continue due to a user error.
 * warn()   - something is modeled approximately; results may be off.
 * inform() - neutral status output.
 */

#ifndef MLPWIN_COMMON_LOGGING_HH
#define MLPWIN_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace mlpwin
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

#define mlpwin_panic(...)                                                \
    ::mlpwin::detail::panicImpl(__FILE__, __LINE__,                      \
        ::mlpwin::detail::formatString(__VA_ARGS__))

#define mlpwin_fatal(...)                                                \
    ::mlpwin::detail::fatalImpl(__FILE__, __LINE__,                      \
        ::mlpwin::detail::formatString(__VA_ARGS__))

#define mlpwin_warn(...)                                                 \
    ::mlpwin::detail::warnImpl(::mlpwin::detail::formatString(__VA_ARGS__))

#define mlpwin_inform(...)                                               \
    ::mlpwin::detail::informImpl(                                        \
        ::mlpwin::detail::formatString(__VA_ARGS__))

/** Assert a simulator invariant; always on, independent of NDEBUG. */
#define mlpwin_assert(cond, ...)                                         \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::mlpwin::detail::panicImpl(__FILE__, __LINE__,              \
                "assertion failed: " #cond);                             \
        }                                                                \
    } while (0)

} // namespace mlpwin

#endif // MLPWIN_COMMON_LOGGING_HH
