#include "stats.hh"

#include <cmath>
#include <iomanip>

#include "json.hh"
#include "logging.hh"

namespace mlpwin
{

Stat::Stat(StatSet *parent, std::string name, std::string desc)
    : parent_(parent), name_(std::move(name)), desc_(std::move(desc))
{
    if (parent)
        parent->add(this);
}

std::string
Stat::fullName() const
{
    return parent_ ? parent_->qualify(name_) : name_;
}

void
Counter::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << fullName() << ' '
       << std::right << std::setw(16) << value_
       << "  # " << desc() << '\n';
}

void
Counter::printJson(std::ostream &os) const
{
    os << fmtU64(value_);
}

void
Average::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << fullName() << ' '
       << std::right << std::setw(16) << std::fixed
       << std::setprecision(4) << mean()
       << "  # " << desc() << " (n=" << count_ << ")\n";
}

void
Average::printJson(std::ostream &os) const
{
    os << "{\"mean\":" << fmtDouble(mean())
       << ",\"count\":" << fmtU64(count_)
       << ",\"sum\":" << fmtDouble(sum_) << "}";
}

void
Gauge::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << fullName() << ' '
       << std::right << std::setw(16) << std::fixed
       << std::setprecision(4) << value_
       << "  # " << desc() << '\n';
}

void
Gauge::printJson(std::ostream &os) const
{
    os << fmtDouble(value_);
}

Histogram::Histogram(StatSet *parent, std::string name, std::string desc,
                     std::uint64_t bin_width, std::size_t num_bins)
    : Stat(parent, std::move(name), std::move(desc)),
      binWidth_(bin_width), bins_(num_bins, 0)
{
    mlpwin_assert(bin_width > 0);
    mlpwin_assert(num_bins > 0);
}

void
Histogram::sample(std::uint64_t v)
{
    std::size_t bin = static_cast<std::size_t>(v / binWidth_);
    if (bin < bins_.size())
        ++bins_[bin];
    else
        ++overflow_;
    ++total_;
}

void
Histogram::print(std::ostream &os) const
{
    os << fullName() << "  # " << desc() << " (total=" << total_
       << ")\n";
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        os << "  [" << i * binWidth_ << ',' << (i + 1) * binWidth_
           << ") " << bins_[i] << '\n';
    }
    if (overflow_ > 0)
        os << "  [overflow) " << overflow_ << '\n';
}

void
Histogram::printJson(std::ostream &os) const
{
    os << "{\"bin_width\":" << fmtU64(binWidth_) << ",\"bins\":[";
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (i)
            os << ',';
        os << fmtU64(bins_[i]);
    }
    os << "],\"overflow\":" << fmtU64(overflow_)
       << ",\"total\":" << fmtU64(total_) << "}";
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

StatSet::StatSet(StatSet *parent, std::string prefix)
    : parent_(parent), prefix_(std::move(prefix))
{
    if (parent_)
        parent_->children_.push_back(this);
}

void
StatSet::add(Stat *s)
{
    stats_.push_back(s);
}

std::string
StatSet::qualify(const std::string &name) const
{
    std::string full =
        prefix_.empty() ? name : prefix_ + "." + name;
    return parent_ ? parent_->qualify(full) : full;
}

void
StatSet::dump(std::ostream &os) const
{
    for (const Stat *s : stats_)
        s->print(os);
    for (const StatSet *c : children_)
        c->dump(os);
}

void
StatSet::dumpJson(std::ostream &os) const
{
    os << '{';
    bool first = true;
    dumpJsonInner(os, first);
    os << '}';
}

void
StatSet::dumpJsonInner(std::ostream &os, bool &first) const
{
    for (const Stat *s : stats_) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(s->fullName()) << "\":";
        s->printJson(os);
    }
    for (const StatSet *c : children_)
        c->dumpJsonInner(os, first);
}

void
StatSet::resetAll()
{
    for (Stat *s : stats_)
        s->reset();
    for (StatSet *c : children_)
        c->resetAll();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        mlpwin_assert(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace mlpwin
