#include "stats.hh"

#include <cmath>
#include <iomanip>

#include "logging.hh"

namespace mlpwin
{

Stat::Stat(StatSet *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (parent)
        parent->add(this);
}

void
Counter::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << ' '
       << std::right << std::setw(16) << value_
       << "  # " << desc() << '\n';
}

void
Average::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << ' '
       << std::right << std::setw(16) << std::fixed
       << std::setprecision(4) << mean()
       << "  # " << desc() << " (n=" << count_ << ")\n";
}

Histogram::Histogram(StatSet *parent, std::string name, std::string desc,
                     std::uint64_t bin_width, std::size_t num_bins)
    : Stat(parent, std::move(name), std::move(desc)),
      binWidth_(bin_width), bins_(num_bins, 0)
{
    mlpwin_assert(bin_width > 0);
    mlpwin_assert(num_bins > 0);
}

void
Histogram::sample(std::uint64_t v)
{
    std::size_t bin = static_cast<std::size_t>(v / binWidth_);
    if (bin < bins_.size())
        ++bins_[bin];
    else
        ++overflow_;
    ++total_;
}

void
Histogram::print(std::ostream &os) const
{
    os << name() << "  # " << desc() << " (total=" << total_ << ")\n";
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        os << "  [" << i * binWidth_ << ',' << (i + 1) * binWidth_
           << ") " << bins_[i] << '\n';
    }
    if (overflow_ > 0)
        os << "  [overflow) " << overflow_ << '\n';
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

void
StatSet::add(Stat *s)
{
    stats_.push_back(s);
}

void
StatSet::dump(std::ostream &os) const
{
    for (const Stat *s : stats_)
        s->print(os);
}

void
StatSet::resetAll()
{
    for (Stat *s : stats_)
        s->reset();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        mlpwin_assert(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace mlpwin
