#include "status.hh"

#include <sstream>

#include "common/json.hh"

namespace mlpwin
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::InvalidArgument:
        return "invalid_argument";
      case ErrorCode::NoProgress:
        return "no_progress";
      case ErrorCode::InvariantViolation:
        return "invariant_violation";
      case ErrorCode::ArchDivergence:
        return "arch_divergence";
      case ErrorCode::Io:
        return "io";
      case ErrorCode::Timeout:
        return "timeout";
      case ErrorCode::Interrupted:
        return "interrupted";
      case ErrorCode::WorkerCrash:
        return "worker_crash";
      case ErrorCode::WorkerUnresponsive:
        return "worker_unresponsive";
      case ErrorCode::Internal:
        return "internal";
    }
    return "?";
}

bool
parseErrorCode(const std::string &name, ErrorCode &out)
{
    for (ErrorCode c :
         {ErrorCode::Ok, ErrorCode::InvalidArgument,
          ErrorCode::NoProgress, ErrorCode::InvariantViolation,
          ErrorCode::ArchDivergence, ErrorCode::Io,
          ErrorCode::Timeout, ErrorCode::Interrupted,
          ErrorCode::WorkerCrash, ErrorCode::WorkerUnresponsive,
          ErrorCode::Internal}) {
        if (name == errorCodeName(c)) {
            out = c;
            return true;
        }
    }
    return false;
}

bool
errorCodeTransient(ErrorCode code)
{
    return code == ErrorCode::Io;
}

std::string
DiagnosticDump::toJson() const
{
    std::ostringstream os;
    os << "{\"workload\":\"" << jsonEscape(workload) << '"'
       << ",\"model\":\"" << jsonEscape(model) << '"'
       << ",\"cycle\":" << fmtU64(cycle)
       << ",\"committed\":" << fmtU64(committed)
       << ",\"lastCommitCycle\":" << fmtU64(lastCommitCycle)
       << ",\"robEmpty\":" << (robEmpty ? "true" : "false")
       << ",\"robHeadSeq\":" << fmtU64(robHeadSeq)
       << ",\"robHeadPc\":" << fmtU64(robHeadPc)
       << ",\"robHeadCompleted\":"
       << (robHeadCompleted ? "true" : "false")
       << ",\"robOcc\":" << robOcc << ",\"robCap\":" << robCap
       << ",\"iqOcc\":" << iqOcc << ",\"iqCap\":" << iqCap
       << ",\"lsqOcc\":" << lsqOcc << ",\"lsqCap\":" << lsqCap
       << ",\"level\":" << level
       << ",\"allocStopped\":" << (allocStopped ? "true" : "false")
       << ",\"inTransition\":" << (inTransition ? "true" : "false")
       << ",\"outstandingMisses\":" << outstandingMisses
       << ",\"dramBacklog\":" << fmtU64(dramBacklog)
       << ",\"fetchHalted\":" << (fetchHalted ? "true" : "false");
    if (hasDivergence) {
        os << ",\"divergenceThread\":" << divergenceThread
           << ",\"divergenceCommit\":" << fmtU64(divergenceCommit)
           << ",\"divergencePc\":" << fmtU64(divergencePc)
           << ",\"divergenceField\":\"" << jsonEscape(divergenceField)
           << '"'
           << ",\"divergenceExpected\":" << fmtU64(divergenceExpected)
           << ",\"divergenceActual\":" << fmtU64(divergenceActual)
           << ",\"divergenceInst\":\"" << jsonEscape(divergenceInst)
           << '"';
    }
    os << ",\"recentEvents\":[";
    for (std::size_t i = 0; i < recentEvents.size(); ++i) {
        if (i)
            os << ',';
        os << '"' << jsonEscape(recentEvents[i]) << '"';
    }
    os << "]}";
    return os.str();
}

std::string
DiagnosticDump::pretty() const
{
    std::ostringstream os;
    os << "  workload/model   " << workload << '/' << model << '\n'
       << "  cycle            " << cycle << " (last commit at "
       << lastCommitCycle << ", " << committed << " committed)\n";
    if (robEmpty) {
        os << "  ROB head         <empty>\n";
    } else {
        os << "  ROB head         seq " << robHeadSeq << " pc 0x"
           << std::hex << robHeadPc << std::dec
           << (robHeadCompleted ? " (completed)" : " (not completed)")
           << '\n';
    }
    os << "  occupancy        rob " << robOcc << '/' << robCap
       << "  iq " << iqOcc << '/' << iqCap << "  lsq " << lsqOcc
       << '/' << lsqCap << '\n'
       << "  controller       level " << level
       << (allocStopped ? ", alloc stopped" : "")
       << (inTransition ? ", in transition" : "") << '\n'
       << "  memory           " << outstandingMisses
       << " outstanding L2 misses, DRAM backlog " << dramBacklog
       << " cycles\n"
       << "  fetch halted     " << (fetchHalted ? "yes" : "no")
       << '\n';
    if (hasDivergence) {
        os << "  divergence       thread " << divergenceThread
           << " commit #" << divergenceCommit
           << " pc 0x" << std::hex << divergencePc << std::dec << "  "
           << divergenceInst << '\n'
           << "    field " << divergenceField << ": expected 0x"
           << std::hex << divergenceExpected << ", got 0x"
           << divergenceActual << std::dec << '\n';
    }
    if (!recentEvents.empty()) {
        os << "  recent events";
        for (const std::string &e : recentEvents)
            os << "\n    " << e;
        os << '\n';
    }
    return os.str();
}

SimError::SimError(ErrorCode code, const std::string &message)
    : std::runtime_error(std::string("[") + errorCodeName(code) +
                         "] " + message),
      code_(code), message_(message)
{
}

SimError::SimError(ErrorCode code, const std::string &message,
                   DiagnosticDump dump)
    : std::runtime_error(std::string("[") + errorCodeName(code) +
                         "] " + message),
      code_(code), message_(message), dump_(std::move(dump))
{
}

} // namespace mlpwin
