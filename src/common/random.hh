/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * construction. A fixed, seedable xorshift128+ generator keeps every
 * simulation bit-reproducible across runs and platforms (std::mt19937
 * distributions are not guaranteed portable).
 */

#ifndef MLPWIN_COMMON_RANDOM_HH
#define MLPWIN_COMMON_RANDOM_HH

#include <cstdint>

#include "logging.hh"

namespace mlpwin
{

/** xorshift128+ PRNG; fast, deterministic, and portable. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding to avoid all-zero state.
        std::uint64_t z = seed;
        for (auto *s : {&s0_, &s1_}) {
            z += 0x9e3779b97f4a7c15ULL;
            std::uint64_t x = z;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
            *s = x ^ (x >> 31);
        }
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform value in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        mlpwin_assert(bound > 0);
        return next() % bound;
    }

    /** Uniform value in [lo, hi]. @pre lo <= hi. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        mlpwin_assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return real() < p; }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace mlpwin

#endif // MLPWIN_COMMON_RANDOM_HH
