/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef MLPWIN_COMMON_TYPES_HH
#define MLPWIN_COMMON_TYPES_HH

#include <cstdint>

namespace mlpwin
{

/** Byte address in the simulated 64-bit address space. */
using Addr = std::uint64_t;

/** Absolute simulation time in processor clock cycles. */
using Cycle = std::uint64_t;

/** Global dynamic-instruction sequence number (monotonic). */
using InstSeqNum = std::uint64_t;

/** A 64-bit register value (integer view). */
using RegVal = std::uint64_t;

/** Sentinel for "no cycle scheduled". */
constexpr Cycle kNoCycle = ~Cycle(0);

/** Sentinel for "invalid address". */
constexpr Addr kNoAddr = ~Addr(0);

} // namespace mlpwin

#endif // MLPWIN_COMMON_TYPES_HH
