#include "json.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mlpwin
{

std::string
fmtDouble(double v)
{
    char buf[64];
    // 17 significant digits round-trip any IEEE-754 double exactly.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fmtU64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            out += c;
        }
    }
    return out;
}

const JsonValue &
JsonValue::field(const std::string &key) const
{
    if (kind != Kind::Object)
        throw std::runtime_error("JSON: not an object");
    for (const auto &[k, v] : object)
        if (k == key)
            return v;
    throw std::runtime_error("JSON: missing field '" + key + "'");
}

bool
JsonValue::hasField(const std::string &key) const
{
    if (kind != Kind::Object)
        return false;
    for (const auto &[k, v] : object)
        if (k == key)
            return true;
    return false;
}

std::uint64_t
JsonValue::asU64() const
{
    if (kind != Kind::Number)
        throw std::runtime_error("JSON: expected number");
    char *end = nullptr;
    std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        throw std::runtime_error("JSON: bad integer '" + text + "'");
    return v;
}

double
JsonValue::asDouble() const
{
    if (kind != Kind::Number)
        throw std::runtime_error("JSON: expected number");
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        throw std::runtime_error("JSON: bad number '" + text + "'");
    return v;
}

bool
JsonValue::asBool() const
{
    if (kind != Kind::Bool)
        throw std::runtime_error("JSON: expected bool");
    return boolean;
}

const std::string &
JsonValue::asString() const
{
    if (kind != Kind::String)
        throw std::runtime_error("JSON: expected string");
    return text;
}

JsonValue
JsonParser::parse()
{
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != src_.size())
        fail("trailing characters");
    return v;
}

void
JsonParser::fail(const std::string &why) const
{
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + why);
}

void
JsonParser::skipWs()
{
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_])))
        ++pos_;
}

char
JsonParser::peek()
{
    if (pos_ >= src_.size())
        fail("unexpected end of input");
    return src_[pos_];
}

void
JsonParser::expect(char c)
{
    if (peek() != c)
        fail(std::string("expected '") + c + "'");
    ++pos_;
}

bool
JsonParser::consumeLiteral(const char *lit)
{
    std::size_t n = std::char_traits<char>::length(lit);
    if (src_.compare(pos_, n, lit) == 0) {
        pos_ += n;
        return true;
    }
    return false;
}

JsonValue
JsonParser::parseValue()
{
    skipWs();
    char c = peek();
    if (c == '{')
        return parseObject();
    if (c == '[')
        return parseArray();
    if (c == '"')
        return parseString();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
        return parseNumber();
    JsonValue v;
    if (consumeLiteral("true")) {
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
        return v;
    }
    if (consumeLiteral("false")) {
        v.kind = JsonValue::Kind::Bool;
        return v;
    }
    if (consumeLiteral("null"))
        return v;
    fail("unexpected character");
}

JsonValue
JsonParser::parseObject()
{
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skipWs();
    if (peek() == '}') {
        ++pos_;
        return v;
    }
    for (;;) {
        skipWs();
        JsonValue key = parseString();
        skipWs();
        expect(':');
        v.object.emplace_back(key.text, parseValue());
        skipWs();
        if (peek() == ',') {
            ++pos_;
            continue;
        }
        expect('}');
        return v;
    }
}

JsonValue
JsonParser::parseArray()
{
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skipWs();
    if (peek() == ']') {
        ++pos_;
        return v;
    }
    for (;;) {
        v.array.push_back(parseValue());
        skipWs();
        if (peek() == ',') {
            ++pos_;
            continue;
        }
        expect(']');
        return v;
    }
}

JsonValue
JsonParser::parseString()
{
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    for (;;) {
        char c = peek();
        ++pos_;
        if (c == '"')
            return v;
        if (c != '\\') {
            v.text += c;
            continue;
        }
        char esc = peek();
        ++pos_;
        switch (esc) {
          case '"':
            v.text += '"';
            break;
          case '\\':
            v.text += '\\';
            break;
          case '/':
            v.text += '/';
            break;
          case 'n':
            v.text += '\n';
            break;
          case 't':
            v.text += '\t';
            break;
          case 'r':
            v.text += '\r';
            break;
          default:
            fail("unsupported escape");
        }
    }
}

JsonValue
JsonParser::parseNumber()
{
    std::size_t start = pos_;
    if (peek() == '-')
        ++pos_;
    auto digits = [&] {
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_])))
            ++pos_;
    };
    digits();
    if (pos_ < src_.size() && src_[pos_] == '.') {
        ++pos_;
        digits();
    }
    if (pos_ < src_.size() &&
        (src_[pos_] == 'e' || src_[pos_] == 'E')) {
        ++pos_;
        if (pos_ < src_.size() &&
            (src_[pos_] == '+' || src_[pos_] == '-'))
            ++pos_;
        digits();
    }
    if (pos_ == start)
        fail("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.text = src_.substr(start, pos_ - start);
    return v;
}

JsonValue
parseJson(const std::string &src)
{
    return JsonParser(src).parse();
}

} // namespace mlpwin
