/**
 * @file
 * A small statistics package: named counters, averages, and
 * fixed-bin-width histograms that register themselves with a StatSet
 * so they can be dumped uniformly at end of simulation.
 */

#ifndef MLPWIN_COMMON_STATS_HH
#define MLPWIN_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "types.hh"

namespace mlpwin
{

class StatSet;

/** Base class for all named statistics. */
class Stat
{
  public:
    /**
     * Construct and register with a stat set.
     *
     * @param parent Owning set; may be nullptr for free-standing stats.
     * @param name Dotted stat name, e.g. "l2.demand_misses".
     * @param desc Human-readable description.
     */
    Stat(StatSet *parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Print this stat ("name value  # desc" style) to a stream. */
    virtual void print(std::ostream &os) const = 0;

    /** Reset to the initial (zero) state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A monotonically increasing scalar event counter. */
class Counter : public Stat
{
  public:
    Counter(StatSet *parent, std::string name, std::string desc)
        : Stat(parent, std::move(name), std::move(desc))
    {}

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }

    void print(std::ostream &os) const override;
    void reset() override { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running arithmetic mean of observed samples. */
class Average : public Stat
{
  public:
    Average(StatSet *parent, std::string name, std::string desc)
        : Stat(parent, std::move(name), std::move(desc))
    {}

    void sample(double v) { sum_ += v; ++count_; }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void print(std::ostream &os) const override;
    void reset() override { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-bin-width histogram with an overflow bucket, as used for the
 * paper's Fig. 4 L2-miss-interval plot (8-cycle bins).
 */
class Histogram : public Stat
{
  public:
    /**
     * @param bin_width Width of each bin in sample units (> 0).
     * @param num_bins Number of regular bins before overflow.
     */
    Histogram(StatSet *parent, std::string name, std::string desc,
              std::uint64_t bin_width, std::size_t num_bins);

    void sample(std::uint64_t v);

    std::uint64_t binWidth() const { return binWidth_; }
    std::size_t numBins() const { return bins_.size(); }
    std::uint64_t binCount(std::size_t i) const { return bins_.at(i); }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t totalSamples() const { return total_; }

    void print(std::ostream &os) const override;
    void reset() override;

  private:
    std::uint64_t binWidth_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * A container of statistics that can dump all of its members.
 * StatSets can nest via a parent pointer; names are flat.
 */
class StatSet
{
  public:
    StatSet() = default;
    explicit StatSet(StatSet *parent) : parent_(parent) {}

    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /** Called by Stat's constructor. */
    void add(Stat *s);

    /** Print every registered stat, in registration order. */
    void dump(std::ostream &os) const;

    /** Reset every registered stat. */
    void resetAll();

    const std::vector<Stat *> &stats() const { return stats_; }

  private:
    StatSet *parent_ = nullptr;
    std::vector<Stat *> stats_;
};

/** Geometric mean of a sequence of positive values. */
double geomean(const std::vector<double> &values);

} // namespace mlpwin

#endif // MLPWIN_COMMON_STATS_HH
