/**
 * @file
 * A small statistics package: named counters, averages, and
 * fixed-bin-width histograms that register themselves with a StatSet
 * so they can be dumped uniformly at end of simulation.
 */

#ifndef MLPWIN_COMMON_STATS_HH
#define MLPWIN_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "types.hh"

namespace mlpwin
{

class StatSet;

/** Base class for all named statistics. */
class Stat
{
  public:
    /**
     * Construct and register with a stat set.
     *
     * @param parent Owning set; may be nullptr for free-standing stats.
     * @param name Dotted stat name, e.g. "l2.demand_misses".
     * @param desc Human-readable description.
     */
    Stat(StatSet *parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /**
     * The name with every owning-set prefix prepended with dots
     * ("telemetry.samples" for a stat "samples" registered in a
     * child set prefixed "telemetry"). Equals name() for stats in
     * prefix-less sets.
     */
    std::string fullName() const;

    /** Print this stat ("name value  # desc" style) to a stream. */
    virtual void print(std::ostream &os) const = 0;

    /**
     * Print this stat's *value* as a JSON value (no name, no
     * trailing newline): a number for counters, an object for
     * averages and histograms. The StatSet::dumpJson visitor pairs
     * it with the full dotted name.
     */
    virtual void printJson(std::ostream &os) const = 0;

    /** Reset to the initial (zero) state. */
    virtual void reset() = 0;

  private:
    StatSet *parent_ = nullptr;
    std::string name_;
    std::string desc_;
};

/** A monotonically increasing scalar event counter. */
class Counter : public Stat
{
  public:
    Counter(StatSet *parent, std::string name, std::string desc)
        : Stat(parent, std::move(name), std::move(desc))
    {}

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    void reset() override { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running arithmetic mean of observed samples. */
class Average : public Stat
{
  public:
    Average(StatSet *parent, std::string name, std::string desc)
        : Stat(parent, std::move(name), std::move(desc))
    {}

    void sample(double v) { sum_ += v; ++count_; }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    void reset() override { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * A last-written scalar measurement: unlike a Counter it does not
 * accumulate events, it records the most recent value of a derived
 * quantity (a confidence-interval width, an estimate). Used by the
 * sampling subsystem to surface its whole-run IPC estimate in the
 * stats JSON.
 */
class Gauge : public Stat
{
  public:
    Gauge(StatSet *parent, std::string name, std::string desc)
        : Stat(parent, std::move(name), std::move(desc))
    {}

    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * Fixed-bin-width histogram with an overflow bucket, as used for the
 * paper's Fig. 4 L2-miss-interval plot (8-cycle bins).
 */
class Histogram : public Stat
{
  public:
    /**
     * @param bin_width Width of each bin in sample units (> 0).
     * @param num_bins Number of regular bins before overflow.
     */
    Histogram(StatSet *parent, std::string name, std::string desc,
              std::uint64_t bin_width, std::size_t num_bins);

    void sample(std::uint64_t v);

    std::uint64_t binWidth() const { return binWidth_; }
    std::size_t numBins() const { return bins_.size(); }
    std::uint64_t binCount(std::size_t i) const { return bins_.at(i); }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t totalSamples() const { return total_; }

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    void reset() override;

  private:
    std::uint64_t binWidth_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * A container of statistics that can dump all of its members.
 *
 * StatSets nest: a child set constructed with a parent and a prefix
 * registers itself with the parent, and every stat below it dumps
 * (text and JSON alike) through the parent with "prefix." prepended
 * to its name — arbitrarily deep, giving dotted hierarchical names
 * ("telemetry.sampler.dropped") without the stats knowing anything
 * about the tree they live in.
 */
class StatSet
{
  public:
    StatSet() = default;

    /**
     * Construct a child set.
     *
     * @param parent Set this one nests under (must outlive it).
     * @param prefix Name segment prepended (with a '.') to every
     *        stat registered here or in deeper children; may be
     *        empty for pure grouping without renaming.
     */
    StatSet(StatSet *parent, std::string prefix);

    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /** Called by Stat's constructor. */
    void add(Stat *s);

    /** A stat name qualified with this set's and ancestors' prefixes. */
    std::string qualify(const std::string &name) const;

    /**
     * Print every registered stat, in registration order, then
     * recurse into child sets.
     */
    void dump(std::ostream &os) const;

    /**
     * Dump the whole tree as one flat JSON object keyed by the full
     * dotted stat names, using each stat's printJson visitor. Emits
     * a single line, no trailing newline.
     */
    void dumpJson(std::ostream &os) const;

    /** Reset every registered stat, child sets included. */
    void resetAll();

    const std::vector<Stat *> &stats() const { return stats_; }
    const std::vector<StatSet *> &children() const { return children_; }
    const std::string &prefix() const { return prefix_; }

  private:
    void dumpJsonInner(std::ostream &os, bool &first) const;

    StatSet *parent_ = nullptr;
    std::string prefix_;
    std::vector<Stat *> stats_;
    std::vector<StatSet *> children_;
};

/** Geometric mean of a sequence of positive values. */
double geomean(const std::vector<double> &values);

} // namespace mlpwin

#endif // MLPWIN_COMMON_STATS_HH
