/**
 * @file
 * Strict numeric parsing for command-line flags and environment
 * overrides. Unlike bare strtoull (which silently yields 0 for
 * garbage), these reject partial and empty parses so a typo fails
 * loudly instead of running a zero-length experiment.
 */

#ifndef MLPWIN_COMMON_PARSE_HH
#define MLPWIN_COMMON_PARSE_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>

namespace mlpwin
{

/**
 * Parse a full string as a base-10 unsigned 64-bit integer.
 *
 * @return false on empty input, trailing junk, a leading '-', or
 *         overflow; out is untouched in that case.
 */
inline bool
parseU64(const char *s, std::uint64_t &out)
{
    if (s == nullptr || *s == '\0' || *s == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s, &end, 10);
    if (errno == ERANGE || end == s || *end != '\0')
        return false;
    out = v;
    return true;
}

/** parseU64 restricted to values that fit an unsigned. */
inline bool
parseUnsigned(const char *s, unsigned &out)
{
    std::uint64_t v = 0;
    if (!parseU64(s, v) || v > 0xffffffffULL)
        return false;
    out = static_cast<unsigned>(v);
    return true;
}

/**
 * parseUnsigned additionally requiring lo <= value <= hi (both
 * inclusive); out is untouched on a range violation, so range checks
 * on flags like --threads fail as loudly as syntax errors do.
 */
inline bool
parseBoundedUnsigned(const char *s, unsigned lo, unsigned hi,
                     unsigned &out)
{
    unsigned v = 0;
    if (!parseUnsigned(s, v) || v < lo || v > hi)
        return false;
    out = v;
    return true;
}

/** parseBoundedUnsigned for 64-bit flags (cycle counts etc.). */
inline bool
parseBoundedU64(const char *s, std::uint64_t lo, std::uint64_t hi,
                std::uint64_t &out)
{
    std::uint64_t v = 0;
    if (!parseU64(s, v) || v < lo || v > hi)
        return false;
    out = v;
    return true;
}

} // namespace mlpwin

#endif // MLPWIN_COMMON_PARSE_HH
