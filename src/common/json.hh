/**
 * @file
 * Minimal JSON utilities shared by every machine-readable exporter
 * (batch results, telemetry time series, timelines, stats dumps):
 * formatting helpers that round-trip exactly, string escaping, and a
 * parser for the subset of JSON the exporters emit. Numbers keep
 * their raw text in the parse tree so 64-bit integers survive
 * without a trip through double.
 */

#ifndef MLPWIN_COMMON_JSON_HH
#define MLPWIN_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mlpwin
{

/** %.17g — 17 significant digits round-trip any IEEE-754 double. */
std::string fmtDouble(double v);

/** Decimal text of an unsigned 64-bit value. */
std::string fmtU64(std::uint64_t v);

/** Escape a string for embedding inside JSON double quotes. */
std::string jsonEscape(const std::string &s);

/** A parsed JSON value; see file comment. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; // raw number text, or decoded string
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** @throws std::runtime_error if not an object / key missing. */
    const JsonValue &field(const std::string &key) const;

    /** True if this is an object containing `key`. */
    bool hasField(const std::string &key) const;

    std::uint64_t asU64() const;
    double asDouble() const;
    bool asBool() const;
    const std::string &asString() const;
};

/**
 * Recursive-descent parser for the exporters' JSON subset.
 * @throws std::runtime_error with the offending offset on bad input.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &src) : src_(src) {}

    JsonValue parse();

  private:
    [[noreturn]] void fail(const std::string &why) const;
    void skipWs();
    char peek();
    void expect(char c);
    bool consumeLiteral(const char *lit);
    JsonValue parseValue();
    JsonValue parseObject();
    JsonValue parseArray();
    JsonValue parseString();
    JsonValue parseNumber();

    const std::string &src_;
    std::size_t pos_ = 0;
};

/** Convenience: parse a complete JSON document. */
JsonValue parseJson(const std::string &src);

} // namespace mlpwin

#endif // MLPWIN_COMMON_JSON_HH
