/**
 * @file
 * A linked, loadable program image: encoded code, initialized data
 * segments, and an entry point.
 */

#ifndef MLPWIN_ISA_PROGRAM_HH
#define MLPWIN_ISA_PROGRAM_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace mlpwin
{

/** Default base address of the code segment. */
constexpr Addr kCodeBase = 0x10000;
/** Default base address of builder-allocated data. */
constexpr Addr kDataBase = 0x10000000;

/** A contiguous initialized data region. */
struct DataSegment
{
    Addr base = 0;
    std::vector<std::uint8_t> bytes;
};

/**
 * A complete program produced by the Assembler: the unit the
 * Simulator loads and runs.
 */
class Program
{
  public:
    Program() = default;
    /**
     * @param data_end End-exclusive address of the highest allocated
     *        data byte (BSS included); 0 derives it from the
     *        initialized segments alone.
     */
    Program(std::string name, Addr code_base,
            std::vector<std::uint64_t> code,
            std::vector<DataSegment> data, Addr entry,
            Addr data_end = 0)
        : name_(std::move(name)), codeBase_(code_base),
          code_(std::move(code)), data_(std::move(data)), entry_(entry),
          dataEnd_(data_end)
    {
        for (const DataSegment &seg : data_)
            dataEnd_ = std::max(dataEnd_,
                                seg.base + seg.bytes.size());
    }

    const std::string &name() const { return name_; }
    Addr codeBase() const { return codeBase_; }
    Addr entry() const { return entry_; }
    std::size_t numInsts() const { return code_.size(); }

    /** End-exclusive byte address of the code segment. */
    Addr
    codeEnd() const
    {
        return codeBase_ + code_.size() * kInstBytes;
    }

    /** True if pc lies inside the code segment and is aligned. */
    bool
    validPc(Addr pc) const
    {
        return pc >= codeBase_ && pc < codeEnd() &&
               (pc - codeBase_) % kInstBytes == 0;
    }

    /** Encoded instruction word at pc. @pre validPc(pc). */
    std::uint64_t wordAt(Addr pc) const;

    /** Decoded instruction at pc; Nop if pc is outside the code. */
    StaticInst instAt(Addr pc) const;

    const std::vector<std::uint64_t> &code() const { return code_; }
    const std::vector<DataSegment> &data() const { return data_; }

    /** Base address of builder-allocated data. */
    Addr dataBase() const { return kDataBase; }

    /**
     * End-exclusive address of the highest allocated data byte,
     * including zero-initialized (BSS) regions.
     */
    Addr dataEnd() const { return dataEnd_; }

  private:
    std::string name_;
    Addr codeBase_ = kCodeBase;
    std::vector<std::uint64_t> code_;
    std::vector<DataSegment> data_;
    Addr entry_ = kCodeBase;
    Addr dataEnd_ = 0;
};

} // namespace mlpwin

#endif // MLPWIN_ISA_PROGRAM_HH
