/**
 * @file
 * Definition of the mini-RISC ISA used by the simulator.
 *
 * The ISA is a small 64-bit load/store architecture standing in for the
 * Alpha ISA the paper evaluated with. It has 32 integer registers
 * (x0 hardwired to zero), 32 floating-point registers (IEEE double),
 * fixed 8-byte instruction words, and the usual ALU / memory / control
 * instruction classes. The window-resizing mechanism under study is
 * ISA-agnostic; this ISA exists so workloads can be *executed*, giving
 * real dependences, real addresses, and real wrong-path instructions.
 */

#ifndef MLPWIN_ISA_ISA_HH
#define MLPWIN_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mlpwin
{

/** Size of one encoded instruction word in bytes. */
constexpr unsigned kInstBytes = 8;

/** Number of integer architectural registers (x0 reads as zero). */
constexpr unsigned kNumIntRegs = 32;
/** Number of floating-point architectural registers. */
constexpr unsigned kNumFpRegs = 32;
/** Total flat architectural register ids: [0,32) int, [32,64) fp. */
constexpr unsigned kNumArchRegs = kNumIntRegs + kNumFpRegs;

/** Flat architectural register id. */
using RegId = std::uint8_t;

/** Sentinel register id meaning "no register". */
constexpr RegId kNoReg = 0xff;

/** Flat id of integer register n. */
constexpr RegId intReg(unsigned n) { return static_cast<RegId>(n); }
/** Flat id of floating-point register n. */
constexpr RegId
fpReg(unsigned n)
{
    return static_cast<RegId>(kNumIntRegs + n);
}

/** True if the flat id names a floating-point register. */
constexpr bool
isFpRegId(RegId r)
{
    return r != kNoReg && r >= kNumIntRegs;
}

/** Instruction opcodes. */
enum class Opcode : std::uint8_t
{
    Nop = 0,
    Halt,

    // Integer register-register ALU.
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
    Mul, Div, Rem,

    // Integer register-immediate ALU.
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti,
    /** rd = imm << 16 (build large constants with Lui+Ori chains). */
    Lui,

    // Memory (8-byte, naturally aligned not required).
    Ld,  ///< rd = mem[rs1 + imm]
    St,  ///< mem[rs1 + imm] = rs2
    Fld, ///< frd = mem[rs1 + imm]
    Fst, ///< mem[rs1 + imm] = frs2

    // Floating point (operands are fp regs; Fcvt moves int->fp etc.).
    Fadd, Fsub, Fmul, Fdiv, Fsqrt, Fmin, Fmax,
    Fcvt,  ///< frd = (double)(int64)rs1  (rs1 is an int reg)
    Fcvti, ///< rd = (int64)frs1          (rd is an int reg)
    Fcmplt, ///< rd = frs1 < frs2 (rd is an int reg)

    // Control transfer. Branch targets are PC-relative byte offsets.
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Jal,  ///< rd = PC+8; PC += imm
    Jalr, ///< rd = PC+8; PC = (rs1 + imm)

    NumOpcodes
};

/** Functional-unit classes (paper Table 1 mix). */
enum class FuClass : std::uint8_t
{
    None,    ///< Nop/Halt: no FU needed.
    IntAlu,  ///< 4 units, 1-cycle, also executes branches/jumps.
    IntMul,  ///< shared iMULT/DIV pool: 2 units.
    IntDiv,  ///< same pool as IntMul.
    MemPort, ///< 2 load/store ports.
    FpAlu,   ///< 4 units.
    FpMul,   ///< shared fpMULT/DIV/SQRT pool: 2 units.
    FpDiv,   ///< same pool as FpMul.
    FpSqrt,  ///< same pool as FpMul.
};

/**
 * A decoded (static) instruction. Register fields use flat RegIds;
 * unused fields hold kNoReg. imm is sign-extended where applicable.
 */
struct StaticInst
{
    Opcode op = Opcode::Nop;
    RegId rd = kNoReg;
    RegId rs1 = kNoReg;
    RegId rs2 = kNoReg;
    std::int32_t imm = 0;

    bool isNop() const { return op == Opcode::Nop; }
    bool isHalt() const { return op == Opcode::Halt; }
    bool isLoad() const { return op == Opcode::Ld || op == Opcode::Fld; }
    bool isStore() const { return op == Opcode::St || op == Opcode::Fst; }
    bool isMem() const { return isLoad() || isStore(); }

    bool
    isCondBranch() const
    {
        return op >= Opcode::Beq && op <= Opcode::Bgeu;
    }

    bool isJal() const { return op == Opcode::Jal; }
    bool isJalr() const { return op == Opcode::Jalr; }
    bool isControl() const { return isCondBranch() || isJal() || isJalr(); }

    /** True if this is a call (JAL/JALR writing the link register x1). */
    bool isCall() const { return (isJal() || isJalr()) && rd == intReg(1); }
    /** True if this is a return (JALR through x1, no result). */
    bool
    isReturn() const
    {
        return isJalr() && rs1 == intReg(1) && rd == intReg(0);
    }

    /** Destination register, or kNoReg (x0 writes are discarded). */
    RegId
    destReg() const
    {
        if (rd == kNoReg || rd == intReg(0))
            return kNoReg;
        return rd;
    }

    /** Functional unit class required to execute this instruction. */
    FuClass fuClass() const;

    /** Execution latency in cycles on its functional unit. */
    unsigned execLatency() const;

    /** True if the FU is pipelined (can accept a new op every cycle). */
    bool fuPipelined() const;

    bool operator==(const StaticInst &o) const = default;
};

/** Encode an instruction into a 64-bit instruction word. */
std::uint64_t encodeInst(const StaticInst &inst);

/** Decode a 64-bit instruction word. Unknown opcodes decode as Nop. */
StaticInst decodeInst(std::uint64_t word);

/** Human-readable disassembly, e.g. "add x3, x4, x5". */
std::string disassemble(const StaticInst &inst);

/** Name of an opcode mnemonic. */
const char *opcodeName(Opcode op);

} // namespace mlpwin

#endif // MLPWIN_ISA_ISA_HH
