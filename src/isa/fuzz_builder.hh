/**
 * @file
 * Grammar-driven random program generator for the differential fuzzer.
 *
 * Programs are built through the Assembler DSL from a weighted grammar
 * biased toward the hazards the paper's machinery stresses: dependent
 * load chains over a sparse pointer ring (serialized L2 misses — the
 * runahead trigger), stride loops over a larger-than-L2 arena
 * (overlappable misses — the resizing win), dense data-dependent
 * branches (squash recovery), store-to-load aliasing on a hot arena,
 * mixed int/fp arithmetic, counted inner loops, and calls to tiny
 * helpers.
 *
 * Every generated program provably terminates: the only backward
 * branches are counter-decrementing loop latches over registers no
 * random instruction can touch, and random conditional branches are
 * forward-only. Generation is fully deterministic in (seed, params) —
 * the portable xorshift128+ Rng, no library randomness — so any
 * failure reproduces from the seed alone.
 */

#ifndef MLPWIN_ISA_FUZZ_BUILDER_HH
#define MLPWIN_ISA_FUZZ_BUILDER_HH

#include <cstdint>

#include "isa/program.hh"

namespace mlpwin
{

/** Shape knobs for generated programs (defaults suit CI smokes). */
struct FuzzParams
{
    /** Idiom blocks emitted per outer iteration. */
    unsigned blocks = 12;
    /** Outer-loop iterations (total work scales linearly). */
    std::uint64_t outerIters = 6;

    /** Pointer-chase ring nodes (power of two). */
    unsigned chaseNodes = 256;
    /** Byte distance between consecutive ring nodes. */
    std::uint64_t chaseSpacing = 16384;

    /** Stride-loop arena size in bytes (power of two; > L2 to miss). */
    std::uint64_t strideBytes = 4 << 20;

    /** Hot small arena for aliasing stores and fp spills (bytes). */
    std::uint64_t smallBytes = 2048;

    /** Tiny callable helper functions emitted after the main body. */
    unsigned helpers = 3;
};

/**
 * Generate a seeded, terminating random program (named
 * "fuzz_<seed>"). Identical (seed, params) produce bit-identical
 * programs on every platform.
 */
Program generateFuzzProgram(std::uint64_t seed,
                            const FuzzParams &params = FuzzParams{});

} // namespace mlpwin

#endif // MLPWIN_ISA_FUZZ_BUILDER_HH
