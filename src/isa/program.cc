#include "program.hh"

#include "common/logging.hh"

namespace mlpwin
{

std::uint64_t
Program::wordAt(Addr pc) const
{
    mlpwin_assert(validPc(pc));
    return code_[(pc - codeBase_) / kInstBytes];
}

StaticInst
Program::instAt(Addr pc) const
{
    if (!validPc(pc))
        return StaticInst{}; // Nop: garbage fetch off the code segment.
    return decodeInst(wordAt(pc));
}

} // namespace mlpwin
