#include "fuzz_builder.hh"

#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/assembler.hh"

namespace mlpwin
{

namespace
{

// Register roles. Random instructions write scratch registers only;
// the structure registers that guarantee termination (counters, arena
// bases, the chase pointer) are written exclusively by the fixed
// idiom code below.
constexpr RegId kLink = 1;        // x1: call/ret linkage.
constexpr RegId kOuterCnt = 2;    // x2: outer-loop counter.
constexpr RegId kStrideBase = 3;  // x3: stride arena base.
constexpr RegId kSmallBase = 4;   // x4: small arena base.
constexpr RegId kStrideCur = 5;   // x5: stride cursor.
constexpr RegId kInnerCnt = 16;   // x16: inner-loop counter.
constexpr RegId kChasePtr = 21;   // x21: pointer-chase cursor.

const RegId kScratch[] = {6,  7,  8,  9,  10, 11, 12, 13,
                          14, 15, 17, 18, 19, 20, 22, 23};
constexpr unsigned kNumScratch = 16;
constexpr unsigned kNumFpScratch = 8; // f0..f7.

class FuzzBuilder
{
  public:
    FuzzBuilder(std::uint64_t seed, const FuzzParams &p)
        : rng_(seed), p_(p),
          as_("fuzz_" + std::to_string(seed))
    {
    }

    Program build();

  private:
    RegId scr() { return kScratch[rng_.below(kNumScratch)]; }
    RegId fscr() { return fpReg(rng_.below(kNumFpScratch)); }

    void emitBlock(bool allowLoop);
    void emitChase();
    void emitStrideBurst();
    void emitAluMix();
    void emitFpMix();
    void emitAliasPair();
    void emitForwardBranch(bool allowLoop);
    void emitCountedLoop();
    void emitCall();

    Rng rng_;
    FuzzParams p_;
    Assembler as_;
    Addr chaseHead_ = 0;
    unsigned branchDepth_ = 0;
    std::vector<Label> helpers_;
};

void
FuzzBuilder::emitChase()
{
    // Serially dependent loads walking the pointer ring: each load's
    // address is the previous load's data, the paper's
    // isolated-miss worst case (mcf/omnetpp).
    unsigned hops = static_cast<unsigned>(rng_.between(1, 4));
    for (unsigned i = 0; i < hops; ++i)
        as_.ld(kChasePtr, kChasePtr, 0);
}

void
FuzzBuilder::emitStrideBurst()
{
    // A burst of independent loads at large strides — overlappable
    // misses, the MLP the resizing mechanism exists to expose. The
    // cursor wraps with a power-of-two mask so every address stays
    // inside the arena.
    unsigned burst = static_cast<unsigned>(rng_.between(2, 6));
    std::uint64_t stride = 64 * rng_.between(7, 97);
    for (unsigned i = 0; i < burst; ++i)
        as_.ld(scr(), kStrideCur,
               static_cast<std::int32_t>(i * stride));
    RegId t = scr();
    as_.li(t, burst * stride + 8 * rng_.between(1, 64));
    as_.add(kStrideCur, kStrideCur, t);
    as_.sub(t, kStrideCur, kStrideBase);
    as_.andi(t, t, static_cast<std::int32_t>(p_.strideBytes - 1));
    as_.add(kStrideCur, kStrideBase, t);
}

void
FuzzBuilder::emitAluMix()
{
    unsigned n = static_cast<unsigned>(rng_.between(2, 6));
    for (unsigned i = 0; i < n; ++i) {
        switch (rng_.below(8)) {
          case 0:
            as_.add(scr(), scr(), scr());
            break;
          case 1:
            as_.sub(scr(), scr(), scr());
            break;
          case 2:
            as_.xor_(scr(), scr(), scr());
            break;
          case 3:
            as_.mul(scr(), scr(), scr());
            break;
          case 4:
            as_.div(scr(), scr(), scr());
            break;
          case 5:
            as_.slli(scr(), scr(),
                     static_cast<std::int32_t>(rng_.below(63)));
            break;
          case 6:
            as_.addi(scr(), scr(),
                     static_cast<std::int32_t>(rng_.between(1, 4096)));
            break;
          default:
            as_.srl(scr(), scr(), scr());
            break;
        }
    }
}

void
FuzzBuilder::emitFpMix()
{
    // Load a couple of doubles from the small arena, combine them,
    // occasionally store one back. Long-latency fp units interleave
    // with the memory idioms.
    std::int32_t off = static_cast<std::int32_t>(
        8 * rng_.below(p_.smallBytes / 8));
    as_.fld(fscr(), kSmallBase, off);
    unsigned n = static_cast<unsigned>(rng_.between(1, 4));
    for (unsigned i = 0; i < n; ++i) {
        switch (rng_.below(5)) {
          case 0:
            as_.fadd(fscr(), fscr(), fscr());
            break;
          case 1:
            as_.fsub(fscr(), fscr(), fscr());
            break;
          case 2:
            as_.fmul(fscr(), fscr(), fscr());
            break;
          case 3:
            as_.fmin(fscr(), fscr(), fscr());
            break;
          default:
            as_.fcvt(fscr(), scr());
            break;
        }
    }
    if (rng_.chance(0.5))
        as_.fst(fscr(), kSmallBase,
                static_cast<std::int32_t>(
                    8 * rng_.below(p_.smallBytes / 8)));
}

void
FuzzBuilder::emitAliasPair()
{
    // Store then load the same hot-arena slot (plus neighbours):
    // exercises store-to-load forwarding and LSQ disambiguation.
    std::int32_t off = static_cast<std::int32_t>(
        8 * rng_.below(p_.smallBytes / 8));
    as_.st(scr(), kSmallBase, off);
    as_.ld(scr(), kSmallBase, off);
    if (rng_.chance(0.4))
        as_.st(scr(), kSmallBase,
               static_cast<std::int32_t>(
                   8 * rng_.below(p_.smallBytes / 8)));
}

void
FuzzBuilder::emitForwardBranch(bool allowLoop)
{
    // A data-dependent branch over the next 1-2 blocks. Forward-only,
    // so it cannot create a loop; the condition hangs off scratch
    // state, so both directions and mispredictions occur in practice.
    if (branchDepth_ >= 3) { // Bound the nested-block recursion.
        emitAluMix();
        return;
    }
    ++branchDepth_;
    Label skip = as_.newLabel();
    RegId a = scr(), b = scr();
    switch (rng_.below(4)) {
      case 0:
        as_.beq(a, b, skip);
        break;
      case 1:
        as_.bne(a, b, skip);
        break;
      case 2:
        as_.blt(a, b, skip);
        break;
      default:
        as_.bgeu(a, b, skip);
        break;
    }
    unsigned inner = static_cast<unsigned>(rng_.between(1, 2));
    for (unsigned i = 0; i < inner; ++i)
        emitBlock(allowLoop);
    as_.bind(skip);
    --branchDepth_;
}

void
FuzzBuilder::emitCountedLoop()
{
    // Bounded inner loop; the latch counter is a structure register
    // no random instruction writes, so the trip count is exact.
    std::uint64_t trips = rng_.between(2, 8);
    as_.li(kInnerCnt, trips);
    Label top = as_.here();
    emitBlock(/*allowLoop=*/false);
    as_.addi(kInnerCnt, kInnerCnt, -1);
    as_.bne(kInnerCnt, intReg(0), top);
}

void
FuzzBuilder::emitCall()
{
    if (helpers_.empty())
        return;
    as_.call(helpers_[rng_.below(helpers_.size())]);
}

void
FuzzBuilder::emitBlock(bool allowLoop)
{
    // Weighted idiom choice, biased toward the memory behaviours the
    // paper cares about.
    std::uint64_t roll = rng_.below(100);
    if (roll < 15) {
        emitChase();
    } else if (roll < 35) {
        emitStrideBurst();
    } else if (roll < 55) {
        emitAluMix();
    } else if (roll < 67) {
        emitFpMix();
    } else if (roll < 77) {
        emitAliasPair();
    } else if (roll < 89) {
        emitForwardBranch(allowLoop);
    } else if (roll < 97 && allowLoop) {
        emitCountedLoop();
    } else {
        emitCall();
    }
}

Program
FuzzBuilder::build()
{
    mlpwin_assert(p_.chaseNodes >= 2 &&
                  (p_.chaseNodes & (p_.chaseNodes - 1)) == 0);
    mlpwin_assert(p_.strideBytes >= 4096 &&
                  (p_.strideBytes & (p_.strideBytes - 1)) == 0);
    mlpwin_assert(p_.smallBytes >= 64);

    // --- data -----------------------------------------------------------
    Addr stride_arena = as_.allocBss(p_.strideBytes, 4096);
    Addr small_arena = as_.allocBss(p_.smallBytes, 64);
    std::vector<std::uint64_t> small_init(p_.smallBytes / 8);
    for (std::uint64_t &w : small_init)
        w = rng_.next();
    as_.initData(small_arena, small_init);

    // Pointer ring: nodes at fixed spacing, linked by a single-cycle
    // permutation (i -> i + odd step mod power-of-two size), so the
    // chase revisits every node before repeating. Each node is one
    // poked word in an otherwise-zero (sparse) arena.
    Addr chase_arena =
        as_.allocBss(p_.chaseNodes * p_.chaseSpacing, 4096);
    std::uint64_t step = rng_.between(1, p_.chaseNodes / 2) * 2 + 1;
    for (unsigned i = 0; i < p_.chaseNodes; ++i) {
        unsigned next = (i + step) & (p_.chaseNodes - 1);
        as_.pokeData(chase_arena + i * p_.chaseSpacing,
                     chase_arena + next * p_.chaseSpacing);
    }
    chaseHead_ = chase_arena;

    // --- helper stubs (bound after the halt) ----------------------------
    for (unsigned h = 0; h < p_.helpers; ++h)
        helpers_.push_back(as_.newLabel());

    // --- main body ------------------------------------------------------
    Label entry = as_.here();
    as_.li(kStrideBase, stride_arena);
    as_.li(kSmallBase, small_arena);
    as_.li(kChasePtr, chaseHead_);
    as_.mov(kStrideCur, kStrideBase);
    for (unsigned i = 0; i < kNumScratch; ++i)
        as_.li(kScratch[i], rng_.next());
    as_.li(kOuterCnt, p_.outerIters);

    Label outer = as_.here();
    for (unsigned b = 0; b < p_.blocks; ++b)
        emitBlock(/*allowLoop=*/true);
    as_.addi(kOuterCnt, kOuterCnt, -1);
    as_.bne(kOuterCnt, intReg(0), outer);
    as_.halt();

    // --- helpers --------------------------------------------------------
    for (Label l : helpers_) {
        as_.bind(l);
        unsigned n = static_cast<unsigned>(rng_.between(2, 5));
        for (unsigned i = 0; i < n; ++i) {
            if (rng_.chance(0.3))
                as_.ld(scr(), kSmallBase,
                       static_cast<std::int32_t>(
                           8 * rng_.below(p_.smallBytes / 8)));
            else
                as_.add(scr(), scr(), scr());
        }
        as_.ret();
    }

    return as_.finalize(entry);
}

} // namespace

Program
generateFuzzProgram(std::uint64_t seed, const FuzzParams &params)
{
    return FuzzBuilder(seed, params).build();
}

} // namespace mlpwin
