#include "isa.hh"

#include <array>

#include "common/logging.hh"

namespace mlpwin
{

FuClass
StaticInst::fuClass() const
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
        return FuClass::None;
      case Opcode::Mul:
        return FuClass::IntMul;
      case Opcode::Div:
      case Opcode::Rem:
        return FuClass::IntDiv;
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::Fld:
      case Opcode::Fst:
        return FuClass::MemPort;
      case Opcode::Fadd:
      case Opcode::Fsub:
      case Opcode::Fmin:
      case Opcode::Fmax:
      case Opcode::Fcvt:
      case Opcode::Fcvti:
      case Opcode::Fcmplt:
        return FuClass::FpAlu;
      case Opcode::Fmul:
        return FuClass::FpMul;
      case Opcode::Fdiv:
        return FuClass::FpDiv;
      case Opcode::Fsqrt:
        return FuClass::FpSqrt;
      default:
        return FuClass::IntAlu;
    }
}

unsigned
StaticInst::execLatency() const
{
    // Latencies follow common SimpleScalar/commercial-core values; the
    // paper does not specify FU latencies beyond the cache ones.
    switch (fuClass()) {
      case FuClass::None:
      case FuClass::IntAlu:
        return 1;
      case FuClass::IntMul:
        return 3;
      case FuClass::IntDiv:
        return 20;
      case FuClass::MemPort:
        return 1; // address generation; cache access time is added.
      case FuClass::FpAlu:
        return 3;
      case FuClass::FpMul:
        return 4;
      case FuClass::FpDiv:
        return 12;
      case FuClass::FpSqrt:
        return 24;
    }
    return 1;
}

bool
StaticInst::fuPipelined() const
{
    switch (fuClass()) {
      case FuClass::IntDiv:
      case FuClass::FpDiv:
      case FuClass::FpSqrt:
        return false;
      default:
        return true;
    }
}

namespace
{

// 64-bit instruction word layout (low to high):
//   [7:0] opcode, [15:8] rd, [23:16] rs1, [31:24] rs2, [63:32] imm.
constexpr unsigned kOpShift = 0;
constexpr unsigned kRdShift = 8;
constexpr unsigned kRs1Shift = 16;
constexpr unsigned kRs2Shift = 24;
constexpr unsigned kImmShift = 32;

} // namespace

std::uint64_t
encodeInst(const StaticInst &inst)
{
    std::uint64_t w = 0;
    w |= static_cast<std::uint64_t>(inst.op) << kOpShift;
    w |= static_cast<std::uint64_t>(inst.rd) << kRdShift;
    w |= static_cast<std::uint64_t>(inst.rs1) << kRs1Shift;
    w |= static_cast<std::uint64_t>(inst.rs2) << kRs2Shift;
    w |= static_cast<std::uint64_t>(
             static_cast<std::uint32_t>(inst.imm)) << kImmShift;
    return w;
}

StaticInst
decodeInst(std::uint64_t word)
{
    StaticInst inst;
    auto op_raw = static_cast<std::uint8_t>(word >> kOpShift);
    if (op_raw >= static_cast<std::uint8_t>(Opcode::NumOpcodes)) {
        // Fetching data or garbage (e.g. on the wrong path) yields Nop.
        return inst;
    }
    inst.op = static_cast<Opcode>(op_raw);
    inst.rd = static_cast<RegId>(word >> kRdShift);
    inst.rs1 = static_cast<RegId>(word >> kRs1Shift);
    inst.rs2 = static_cast<RegId>(word >> kRs2Shift);
    inst.imm = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(word >> kImmShift));
    return inst;
}

const char *
opcodeName(Opcode op)
{
    static const std::array<const char *,
        static_cast<std::size_t>(Opcode::NumOpcodes)> names = {
        "nop", "halt",
        "add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt",
        "sltu", "mul", "div", "rem",
        "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti",
        "lui",
        "ld", "st", "fld", "fst",
        "fadd", "fsub", "fmul", "fdiv", "fsqrt", "fmin", "fmax",
        "fcvt", "fcvti", "fcmplt",
        "beq", "bne", "blt", "bge", "bltu", "bgeu",
        "jal", "jalr",
    };
    auto idx = static_cast<std::size_t>(op);
    mlpwin_assert(idx < names.size());
    return names[idx];
}

namespace
{

std::string
regName(RegId r)
{
    if (r == kNoReg)
        return "-";
    if (isFpRegId(r))
        return "f" + std::to_string(r - kNumIntRegs);
    return "x" + std::to_string(r);
}

} // namespace

std::string
disassemble(const StaticInst &inst)
{
    std::string s = opcodeName(inst.op);
    if (inst.isNop() || inst.isHalt())
        return s;
    s += ' ';
    if (inst.isStore()) {
        s += regName(inst.rs2) + ", " + std::to_string(inst.imm) + "(" +
             regName(inst.rs1) + ")";
    } else if (inst.isLoad()) {
        s += regName(inst.rd) + ", " + std::to_string(inst.imm) + "(" +
             regName(inst.rs1) + ")";
    } else if (inst.isCondBranch()) {
        s += regName(inst.rs1) + ", " + regName(inst.rs2) + ", " +
             std::to_string(inst.imm);
    } else if (inst.isJal()) {
        s += regName(inst.rd) + ", " + std::to_string(inst.imm);
    } else if (inst.isJalr()) {
        s += regName(inst.rd) + ", " + std::to_string(inst.imm) + "(" +
             regName(inst.rs1) + ")";
    } else if (inst.op == Opcode::Lui) {
        s += regName(inst.rd) + ", " + std::to_string(inst.imm);
    } else {
        s += regName(inst.rd);
        if (inst.rs1 != kNoReg)
            s += ", " + regName(inst.rs1);
        if (inst.rs2 != kNoReg)
            s += ", " + regName(inst.rs2);
        else if (inst.op >= Opcode::Addi && inst.op <= Opcode::Slti)
            s += ", " + std::to_string(inst.imm);
    }
    return s;
}

} // namespace mlpwin
