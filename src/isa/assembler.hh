/**
 * @file
 * An assembler-style program builder DSL.
 *
 * Workload kernels are written as C++ functions that emit instructions
 * through this builder, using labels for control flow and the data
 * allocator for working sets. finalize() resolves all label fixups and
 * returns an immutable Program.
 *
 * Immediate semantics: Addi/Slti sign-extend their 32-bit immediate;
 * Andi/Ori/Xori zero-extend it; Lui places the immediate in bits
 * [63:32] (so li() builds any 64-bit constant with Lui+Ori).
 */

#ifndef MLPWIN_ISA_ASSEMBLER_HH
#define MLPWIN_ISA_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace mlpwin
{

/** Opaque label handle returned by Assembler::newLabel(). */
struct Label
{
    std::uint32_t id = ~0u;
    bool valid() const { return id != ~0u; }
};

/** Builder for Program objects; see file comment. */
class Assembler
{
  public:
    explicit Assembler(std::string program_name,
                       Addr code_base = kCodeBase,
                       Addr data_base = kDataBase);

    // --- labels -------------------------------------------------------
    /** Create a fresh, unbound label. */
    Label newLabel();
    /** Bind a label to the current emission point. One bind per label. */
    void bind(Label l);
    /** Create a label already bound to the current emission point. */
    Label here();

    // --- data allocation ----------------------------------------------
    /**
     * Reserve a zero-initialized region.
     * @param bytes Size in bytes.
     * @param align Alignment, power of two.
     * @return Base address of the region.
     */
    Addr allocBss(std::uint64_t bytes, std::uint64_t align = 8);

    /** Reserve and initialize a region holding 64-bit words. */
    Addr allocData(const std::vector<std::uint64_t> &words,
                   std::uint64_t align = 8);

    /** Store a 64-bit word into an already-allocated data region. */
    void pokeData(Addr addr, std::uint64_t value);

    /**
     * Attach initial contents to an already-reserved region (e.g.
     * from allocBss, when contents need the region's own address).
     */
    void initData(Addr base, const std::vector<std::uint64_t> &words);

    // --- raw emission ---------------------------------------------------
    /** Emit an arbitrary instruction (no label operands). */
    void emit(const StaticInst &inst);
    /** Address the next emitted instruction will occupy. */
    Addr nextPc() const;
    /** Number of instructions emitted so far. */
    std::size_t numInsts() const { return code_.size(); }

    // --- integer ALU ----------------------------------------------------
    void add(RegId rd, RegId rs1, RegId rs2);
    void sub(RegId rd, RegId rs1, RegId rs2);
    void and_(RegId rd, RegId rs1, RegId rs2);
    void or_(RegId rd, RegId rs1, RegId rs2);
    void xor_(RegId rd, RegId rs1, RegId rs2);
    void sll(RegId rd, RegId rs1, RegId rs2);
    void srl(RegId rd, RegId rs1, RegId rs2);
    void sra(RegId rd, RegId rs1, RegId rs2);
    void slt(RegId rd, RegId rs1, RegId rs2);
    void sltu(RegId rd, RegId rs1, RegId rs2);
    void mul(RegId rd, RegId rs1, RegId rs2);
    void div(RegId rd, RegId rs1, RegId rs2);
    void rem(RegId rd, RegId rs1, RegId rs2);

    void addi(RegId rd, RegId rs1, std::int32_t imm);
    void andi(RegId rd, RegId rs1, std::int32_t imm);
    void ori(RegId rd, RegId rs1, std::int32_t imm);
    void xori(RegId rd, RegId rs1, std::int32_t imm);
    void slli(RegId rd, RegId rs1, std::int32_t imm);
    void srli(RegId rd, RegId rs1, std::int32_t imm);
    void srai(RegId rd, RegId rs1, std::int32_t imm);
    void slti(RegId rd, RegId rs1, std::int32_t imm);
    void lui(RegId rd, std::int32_t imm);

    /** Load any 64-bit constant (expands to 1-2 instructions). */
    void li(RegId rd, std::uint64_t value);
    /** Register move (addi rd, rs, 0). */
    void mov(RegId rd, RegId rs);
    void nop();
    void halt();

    // --- memory ---------------------------------------------------------
    void ld(RegId rd, RegId base, std::int32_t offset);
    void st(RegId src, RegId base, std::int32_t offset);
    void fld(RegId frd, RegId base, std::int32_t offset);
    void fst(RegId fsrc, RegId base, std::int32_t offset);

    // --- floating point ---------------------------------------------------
    void fadd(RegId frd, RegId frs1, RegId frs2);
    void fsub(RegId frd, RegId frs1, RegId frs2);
    void fmul(RegId frd, RegId frs1, RegId frs2);
    void fdiv(RegId frd, RegId frs1, RegId frs2);
    void fsqrt(RegId frd, RegId frs1);
    void fmin(RegId frd, RegId frs1, RegId frs2);
    void fmax(RegId frd, RegId frs1, RegId frs2);
    void fcvt(RegId frd, RegId rs1);
    void fcvti(RegId rd, RegId frs1);
    void fcmplt(RegId rd, RegId frs1, RegId frs2);

    // --- control transfer -------------------------------------------------
    void beq(RegId rs1, RegId rs2, Label target);
    void bne(RegId rs1, RegId rs2, Label target);
    void blt(RegId rs1, RegId rs2, Label target);
    void bge(RegId rs1, RegId rs2, Label target);
    void bltu(RegId rs1, RegId rs2, Label target);
    void bgeu(RegId rs1, RegId rs2, Label target);
    void jal(RegId rd, Label target);
    void jalr(RegId rd, RegId rs1, std::int32_t offset = 0);
    /** Unconditional jump (jal x0). */
    void j(Label target);
    /** Call a label (jal x1). */
    void call(Label target);
    /** Return through the link register (jalr x0, x1). */
    void ret();

    // --- finalize ---------------------------------------------------------
    /**
     * Resolve fixups and produce the Program. The builder must have
     * emitted at least one Halt reachable from the entry.
     * @param entry Entry label; defaults to the first instruction.
     */
    Program finalize(Label entry = Label{});

  private:
    void emitBranch(Opcode op, RegId rs1, RegId rs2, Label target);
    void emitR(Opcode op, RegId rd, RegId rs1, RegId rs2);
    void emitI(Opcode op, RegId rd, RegId rs1, std::int32_t imm);

    struct Fixup
    {
        std::size_t instIndex;
        std::uint32_t labelId;
    };

    std::string name_;
    Addr codeBase_;
    Addr dataBase_;
    Addr dataPtr_;
    std::vector<StaticInst> code_;
    std::vector<Addr> labelAddrs_;     // kNoAddr while unbound.
    std::vector<Fixup> fixups_;
    std::vector<DataSegment> data_;
    bool finalized_ = false;
};

} // namespace mlpwin

#endif // MLPWIN_ISA_ASSEMBLER_HH
