#include "assembler.hh"

#include <cstring>

#include "common/logging.hh"

namespace mlpwin
{

Assembler::Assembler(std::string program_name, Addr code_base,
                     Addr data_base)
    : name_(std::move(program_name)), codeBase_(code_base),
      dataBase_(data_base), dataPtr_(data_base)
{
}

Label
Assembler::newLabel()
{
    Label l{static_cast<std::uint32_t>(labelAddrs_.size())};
    labelAddrs_.push_back(kNoAddr);
    return l;
}

void
Assembler::bind(Label l)
{
    mlpwin_assert(l.valid() && l.id < labelAddrs_.size());
    mlpwin_assert(labelAddrs_[l.id] == kNoAddr);
    labelAddrs_[l.id] = nextPc();
}

Label
Assembler::here()
{
    Label l = newLabel();
    bind(l);
    return l;
}

Addr
Assembler::allocBss(std::uint64_t bytes, std::uint64_t align)
{
    mlpwin_assert(align > 0 && (align & (align - 1)) == 0);
    dataPtr_ = (dataPtr_ + align - 1) & ~(align - 1);
    Addr base = dataPtr_;
    dataPtr_ += bytes;
    return base;
}

Addr
Assembler::allocData(const std::vector<std::uint64_t> &words,
                     std::uint64_t align)
{
    Addr base = allocBss(words.size() * 8, align);
    DataSegment seg;
    seg.base = base;
    seg.bytes.resize(words.size() * 8);
    std::memcpy(seg.bytes.data(), words.data(), seg.bytes.size());
    data_.push_back(std::move(seg));
    return base;
}

void
Assembler::initData(Addr base, const std::vector<std::uint64_t> &words)
{
    DataSegment seg;
    seg.base = base;
    seg.bytes.resize(words.size() * 8);
    std::memcpy(seg.bytes.data(), words.data(), seg.bytes.size());
    data_.push_back(std::move(seg));
}

void
Assembler::pokeData(Addr addr, std::uint64_t value)
{
    for (auto &seg : data_) {
        if (addr >= seg.base && addr + 8 <= seg.base + seg.bytes.size()) {
            std::memcpy(seg.bytes.data() + (addr - seg.base), &value, 8);
            return;
        }
    }
    // Address not inside an initialized segment: create a tiny one.
    DataSegment seg;
    seg.base = addr;
    seg.bytes.resize(8);
    std::memcpy(seg.bytes.data(), &value, 8);
    data_.push_back(std::move(seg));
}

void
Assembler::emit(const StaticInst &inst)
{
    mlpwin_assert(!finalized_);
    code_.push_back(inst);
}

Addr
Assembler::nextPc() const
{
    return codeBase_ + code_.size() * kInstBytes;
}

void
Assembler::emitR(Opcode op, RegId rd, RegId rs1, RegId rs2)
{
    emit(StaticInst{op, rd, rs1, rs2, 0});
}

void
Assembler::emitI(Opcode op, RegId rd, RegId rs1, std::int32_t imm)
{
    emit(StaticInst{op, rd, rs1, kNoReg, imm});
}

// Integer register-register forms.
void Assembler::add(RegId rd, RegId rs1, RegId rs2)
{ emitR(Opcode::Add, rd, rs1, rs2); }
void Assembler::sub(RegId rd, RegId rs1, RegId rs2)
{ emitR(Opcode::Sub, rd, rs1, rs2); }
void Assembler::and_(RegId rd, RegId rs1, RegId rs2)
{ emitR(Opcode::And, rd, rs1, rs2); }
void Assembler::or_(RegId rd, RegId rs1, RegId rs2)
{ emitR(Opcode::Or, rd, rs1, rs2); }
void Assembler::xor_(RegId rd, RegId rs1, RegId rs2)
{ emitR(Opcode::Xor, rd, rs1, rs2); }
void Assembler::sll(RegId rd, RegId rs1, RegId rs2)
{ emitR(Opcode::Sll, rd, rs1, rs2); }
void Assembler::srl(RegId rd, RegId rs1, RegId rs2)
{ emitR(Opcode::Srl, rd, rs1, rs2); }
void Assembler::sra(RegId rd, RegId rs1, RegId rs2)
{ emitR(Opcode::Sra, rd, rs1, rs2); }
void Assembler::slt(RegId rd, RegId rs1, RegId rs2)
{ emitR(Opcode::Slt, rd, rs1, rs2); }
void Assembler::sltu(RegId rd, RegId rs1, RegId rs2)
{ emitR(Opcode::Sltu, rd, rs1, rs2); }
void Assembler::mul(RegId rd, RegId rs1, RegId rs2)
{ emitR(Opcode::Mul, rd, rs1, rs2); }
void Assembler::div(RegId rd, RegId rs1, RegId rs2)
{ emitR(Opcode::Div, rd, rs1, rs2); }
void Assembler::rem(RegId rd, RegId rs1, RegId rs2)
{ emitR(Opcode::Rem, rd, rs1, rs2); }

// Integer register-immediate forms.
void Assembler::addi(RegId rd, RegId rs1, std::int32_t imm)
{ emitI(Opcode::Addi, rd, rs1, imm); }
void Assembler::andi(RegId rd, RegId rs1, std::int32_t imm)
{ emitI(Opcode::Andi, rd, rs1, imm); }
void Assembler::ori(RegId rd, RegId rs1, std::int32_t imm)
{ emitI(Opcode::Ori, rd, rs1, imm); }
void Assembler::xori(RegId rd, RegId rs1, std::int32_t imm)
{ emitI(Opcode::Xori, rd, rs1, imm); }
void Assembler::slli(RegId rd, RegId rs1, std::int32_t imm)
{ emitI(Opcode::Slli, rd, rs1, imm); }
void Assembler::srli(RegId rd, RegId rs1, std::int32_t imm)
{ emitI(Opcode::Srli, rd, rs1, imm); }
void Assembler::srai(RegId rd, RegId rs1, std::int32_t imm)
{ emitI(Opcode::Srai, rd, rs1, imm); }
void Assembler::slti(RegId rd, RegId rs1, std::int32_t imm)
{ emitI(Opcode::Slti, rd, rs1, imm); }
void Assembler::lui(RegId rd, std::int32_t imm)
{ emitI(Opcode::Lui, rd, kNoReg, imm); }

void
Assembler::li(RegId rd, std::uint64_t value)
{
    auto lo = static_cast<std::uint32_t>(value);
    auto hi = static_cast<std::uint32_t>(value >> 32);
    auto svalue = static_cast<std::int64_t>(value);
    if (svalue >= INT32_MIN && svalue <= INT32_MAX) {
        addi(rd, intReg(0), static_cast<std::int32_t>(svalue));
        return;
    }
    lui(rd, static_cast<std::int32_t>(hi));
    if (lo != 0)
        ori(rd, rd, static_cast<std::int32_t>(lo));
}

void
Assembler::mov(RegId rd, RegId rs)
{
    addi(rd, rs, 0);
}

void Assembler::nop() { emit(StaticInst{}); }
void Assembler::halt() { emit(StaticInst{Opcode::Halt}); }

// Memory.
void Assembler::ld(RegId rd, RegId base, std::int32_t offset)
{ emit(StaticInst{Opcode::Ld, rd, base, kNoReg, offset}); }
void Assembler::st(RegId src, RegId base, std::int32_t offset)
{ emit(StaticInst{Opcode::St, kNoReg, base, src, offset}); }
void Assembler::fld(RegId frd, RegId base, std::int32_t offset)
{ emit(StaticInst{Opcode::Fld, frd, base, kNoReg, offset}); }
void Assembler::fst(RegId fsrc, RegId base, std::int32_t offset)
{ emit(StaticInst{Opcode::Fst, kNoReg, base, fsrc, offset}); }

// Floating point.
void Assembler::fadd(RegId frd, RegId frs1, RegId frs2)
{ emitR(Opcode::Fadd, frd, frs1, frs2); }
void Assembler::fsub(RegId frd, RegId frs1, RegId frs2)
{ emitR(Opcode::Fsub, frd, frs1, frs2); }
void Assembler::fmul(RegId frd, RegId frs1, RegId frs2)
{ emitR(Opcode::Fmul, frd, frs1, frs2); }
void Assembler::fdiv(RegId frd, RegId frs1, RegId frs2)
{ emitR(Opcode::Fdiv, frd, frs1, frs2); }
void Assembler::fsqrt(RegId frd, RegId frs1)
{ emitR(Opcode::Fsqrt, frd, frs1, kNoReg); }
void Assembler::fmin(RegId frd, RegId frs1, RegId frs2)
{ emitR(Opcode::Fmin, frd, frs1, frs2); }
void Assembler::fmax(RegId frd, RegId frs1, RegId frs2)
{ emitR(Opcode::Fmax, frd, frs1, frs2); }
void Assembler::fcvt(RegId frd, RegId rs1)
{ emitR(Opcode::Fcvt, frd, rs1, kNoReg); }
void Assembler::fcvti(RegId rd, RegId frs1)
{ emitR(Opcode::Fcvti, rd, frs1, kNoReg); }
void Assembler::fcmplt(RegId rd, RegId frs1, RegId frs2)
{ emitR(Opcode::Fcmplt, rd, frs1, frs2); }

// Control transfer.
void
Assembler::emitBranch(Opcode op, RegId rs1, RegId rs2, Label target)
{
    mlpwin_assert(target.valid() && target.id < labelAddrs_.size());
    fixups_.push_back(Fixup{code_.size(), target.id});
    emit(StaticInst{op, kNoReg, rs1, rs2, 0});
}

void Assembler::beq(RegId rs1, RegId rs2, Label target)
{ emitBranch(Opcode::Beq, rs1, rs2, target); }
void Assembler::bne(RegId rs1, RegId rs2, Label target)
{ emitBranch(Opcode::Bne, rs1, rs2, target); }
void Assembler::blt(RegId rs1, RegId rs2, Label target)
{ emitBranch(Opcode::Blt, rs1, rs2, target); }
void Assembler::bge(RegId rs1, RegId rs2, Label target)
{ emitBranch(Opcode::Bge, rs1, rs2, target); }
void Assembler::bltu(RegId rs1, RegId rs2, Label target)
{ emitBranch(Opcode::Bltu, rs1, rs2, target); }
void Assembler::bgeu(RegId rs1, RegId rs2, Label target)
{ emitBranch(Opcode::Bgeu, rs1, rs2, target); }

void
Assembler::jal(RegId rd, Label target)
{
    mlpwin_assert(target.valid() && target.id < labelAddrs_.size());
    fixups_.push_back(Fixup{code_.size(), target.id});
    emit(StaticInst{Opcode::Jal, rd, kNoReg, kNoReg, 0});
}

void
Assembler::jalr(RegId rd, RegId rs1, std::int32_t offset)
{
    emit(StaticInst{Opcode::Jalr, rd, rs1, kNoReg, offset});
}

void Assembler::j(Label target) { jal(intReg(0), target); }
void Assembler::call(Label target) { jal(intReg(1), target); }
void Assembler::ret() { jalr(intReg(0), intReg(1), 0); }

Program
Assembler::finalize(Label entry)
{
    mlpwin_assert(!finalized_);
    finalized_ = true;

    for (const Fixup &f : fixups_) {
        Addr target = labelAddrs_.at(f.labelId);
        if (target == kNoAddr)
            mlpwin_fatal("unbound label %u in program %s", f.labelId,
                         name_.c_str());
        Addr pc = codeBase_ + f.instIndex * kInstBytes;
        std::int64_t offset = static_cast<std::int64_t>(target) -
                              static_cast<std::int64_t>(pc);
        mlpwin_assert(offset >= INT32_MIN && offset <= INT32_MAX);
        code_[f.instIndex].imm = static_cast<std::int32_t>(offset);
    }

    Addr entry_pc = codeBase_;
    if (entry.valid()) {
        entry_pc = labelAddrs_.at(entry.id);
        mlpwin_assert(entry_pc != kNoAddr);
    }

    std::vector<std::uint64_t> words;
    words.reserve(code_.size());
    for (const StaticInst &inst : code_)
        words.push_back(encodeInst(inst));

    return Program(name_, codeBase_, std::move(words), std::move(data_),
                   entry_pc, dataPtr_);
}

} // namespace mlpwin
