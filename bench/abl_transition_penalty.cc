/**
 * @file
 * Reproduces the paper's Section 4/5.1 sensitivity claim: the level
 * transition penalty has little effect — "only 1.3% slowdown even if
 * the penalty increases to 30 cycles". Sweeps the penalty over
 * {0, 10, 20, 30} cycles for the resizing model and reports GM IPC
 * relative to the paper's default (10 cycles).
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();
    const std::vector<std::string> progs = allWorkloadNames();
    const unsigned penalties[] = {0, 10, 20, 30};

    std::printf("==== Transition-penalty sensitivity (resizing) "
                "====\n");
    std::printf("%-10s %12s %12s %12s\n", "penalty", "GM mem",
                "GM comp", "GM all");

    std::vector<double> gm10(3, 1.0);
    for (unsigned pen : penalties) {
        SimConfig cfg = benchConfig(ModelKind::Resizing, 1);
        cfg.mlp.transitionPenalty = pen;
        std::vector<double> mem_v, comp_v, all_v;
        for (const std::string &w : progs) {
            double ipc = runConfig(w, cfg, budget).ipc;
            all_v.push_back(ipc);
            if (findWorkload(w).memIntensive)
                mem_v.push_back(ipc);
            else
                comp_v.push_back(ipc);
        }
        double gm[3] = {geomean(mem_v), geomean(comp_v),
                        geomean(all_v)};
        if (pen == 10) {
            gm10[0] = gm[0];
            gm10[1] = gm[1];
            gm10[2] = gm[2];
        }
        std::printf("%-10u %12.4f %12.4f %12.4f\n", pen, gm[0], gm[1],
                    gm[2]);
    }
    std::printf("\n(values are GM IPC; divide rows to get relative "
                "slowdowns — the paper reports <=1.3%% at 30 cycles)\n");
    return 0;
}
