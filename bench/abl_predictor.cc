/**
 * @file
 * Branch-predictor ablation (extension): the paper fixes a 64K-entry
 * gshare (Table 1). This sweep runs the base and resizing models with
 * bimodal, gshare, and tournament direction predictors and reports
 * the resizing speedup under each — checking that the paper's
 * conclusion does not hinge on its predictor choice, and showing how
 * prediction quality interacts with deep speculation into the large
 * window.
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();
    const std::vector<std::string> progs = allWorkloadNames();

    struct Variant
    {
        const char *label;
        DirectionKind kind;
    };
    const Variant variants[] = {
        {"bimodal", DirectionKind::Bimodal},
        {"gshare", DirectionKind::Gshare},
        {"tournament", DirectionKind::Tournament},
    };

    std::printf("==== Resizing speedup vs base, per direction "
                "predictor ====\n");
    std::printf("%-12s %12s %12s %12s %16s\n", "predictor", "GM mem",
                "GM comp", "GM all", "mispred/1k inst");
    for (const Variant &v : variants) {
        std::vector<double> mem_v, comp_v, all_v;
        double misp = 0.0;
        std::uint64_t insts = 0;
        for (const std::string &w : progs) {
            SimConfig base_cfg = benchConfig(ModelKind::Base, 1);
            base_cfg.bp.kind = v.kind;
            SimResult base = runConfig(w, base_cfg, budget);

            SimConfig res_cfg = benchConfig(ModelKind::Resizing, 1);
            res_cfg.bp.kind = v.kind;
            SimResult res = runConfig(w, res_cfg, budget);

            double rel = res.ipc / base.ipc;
            all_v.push_back(rel);
            if (findWorkload(w).memIntensive)
                mem_v.push_back(rel);
            else
                comp_v.push_back(rel);
            misp += static_cast<double>(base.committedMispredicts);
            insts += base.committed;
        }
        std::printf("%-12s %12.3f %12.3f %12.3f %16.2f\n", v.label,
                    geomean(mem_v), geomean(comp_v), geomean(all_v),
                    1000.0 * misp / static_cast<double>(insts));
    }
    return 0;
}
