/**
 * @file
 * Reproduces paper Fig. 7 (the headline result): IPC normalized to
 * the base processor for every suite program under
 *
 *   Fix1/Fix2/Fix3 — fixed-size pipelined windows at levels 1-3
 *                    (Fix1 is the base itself, printed as 1.0),
 *   Res            — the paper's MLP-aware dynamic resizing,
 *   Ideal2/Ideal3  — enlarged but non-pipelined windows (no issue or
 *                    mispredict penalty; upper bound),
 *
 * plus the GM mem / GM comp / GM all geometric-mean rows.
 *
 * Expected shape (paper): Res tracks the best fixed level per program
 * (max of Fix1..Fix3), within a few percent of the best Ideal; GM mem
 * speedup ~1.5x, GM comp ~1.0x, GM all ~1.2x.
 */

#include <algorithm>
#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();
    const std::vector<std::string> progs = allWorkloadNames();

    // The whole matrix runs in parallel (MLPWIN_BENCH_JOBS workers);
    // results come back in workload-major submission order.
    const std::vector<exp::ModelSpec> models{
        {ModelKind::Base, 1, "Fix1"},
        {ModelKind::Fixed, 2, "Fix2"},
        {ModelKind::Fixed, 3, "Fix3"},
        {ModelKind::Resizing, 1, "Res"},
        {ModelKind::Ideal, 2, "Ideal2"},
        {ModelKind::Ideal, 3, "Ideal3"},
    };
    const std::vector<SimResult> results =
        runMatrix(progs, models, budget);

    Series fix1{"Fix1", {}};
    Series fix2{"Fix2", {}};
    Series fix3{"Fix3", {}};
    Series res{"Res", {}};
    Series ideal2{"Ideal2", {}};
    Series ideal3{"Ideal3", {}};

    for (std::size_t wi = 0; wi < progs.size(); ++wi) {
        const std::string &w = progs[wi];
        const SimResult *row = &results[wi * models.size()];
        double base = row[0].ipc;
        fix1.byWorkload[w] = 1.0;
        fix2.byWorkload[w] = row[1].ipc / base;
        fix3.byWorkload[w] = row[2].ipc / base;
        res.byWorkload[w] = row[3].ipc / base;
        ideal2.byWorkload[w] = row[4].ipc / base;
        ideal3.byWorkload[w] = row[5].ipc / base;
    }

    std::vector<Series> cols{fix1, fix2, fix3, res, ideal2, ideal3};
    printTable("Fig. 7: IPC normalized to base", progs, cols);
    printGeomeans(progs, cols);

    // The paper's adaptivity claim, as a checkable number: Res vs the
    // best fixed level, per category.
    std::printf("\n%-12s %10s\n", "", "Res/bestFix");
    auto ratio = [&](const std::string &w) {
        double best = fix1.byWorkload[w];
        best = std::max(best, fix2.byWorkload[w]);
        best = std::max(best, fix3.byWorkload[w]);
        return res.byWorkload[w] / best;
    };
    std::vector<double> mem_r, comp_r;
    for (const std::string &w : progs) {
        if (findWorkload(w).memIntensive)
            mem_r.push_back(ratio(w));
        else
            comp_r.push_back(ratio(w));
    }
    std::printf("%-12s %10.3f\n", "GM mem", geomean(mem_r));
    std::printf("%-12s %10.3f\n", "GM comp", geomean(comp_r));

    // Stall decomposition from the cycle-accounting stacks: where
    // the cycles go under the base vs the resizing core. The
    // resizing win should show as memory-stall share (dram + cache)
    // converted into useful (base) cycles on the memory-bound set.
    auto share = [](const SimResult &r,
                    std::initializer_list<CpiComponent> cs) {
        if (r.threadCpi.empty())
            return 0.0;
        const CpiStack &c = r.threadCpi[0];
        std::uint64_t n = 0;
        for (CpiComponent comp : cs)
            n += c[comp];
        std::uint64_t total = c.sum();
        return total ? 100.0 * static_cast<double>(n) /
                           static_cast<double>(total)
                     : 0.0;
    };
    const auto kMem = {CpiComponent::Dram, CpiComponent::CacheMiss};
    const auto kWin = {CpiComponent::RobFull, CpiComponent::IqFull,
                       CpiComponent::LsqFull};
    const auto kUse = {CpiComponent::Base};
    std::printf("\nstall decomposition (%% of cycles)\n");
    std::printf("%-12s %28s %28s\n", "", "base: useful  mem  winfull",
                "Res:  useful  mem  winfull");
    double acc[2][2][3] = {}; // [mem/comp][base/res][use/mem/win]
    std::size_t cnt[2] = {};
    for (std::size_t wi = 0; wi < progs.size(); ++wi) {
        const SimResult *row = &results[wi * models.size()];
        unsigned cat = findWorkload(progs[wi]).memIntensive ? 0 : 1;
        const SimResult *cells[2] = {&row[0], &row[3]};
        for (unsigned m = 0; m < 2; ++m) {
            acc[cat][m][0] += share(*cells[m], kUse);
            acc[cat][m][1] += share(*cells[m], kMem);
            acc[cat][m][2] += share(*cells[m], kWin);
        }
        ++cnt[cat];
    }
    for (unsigned cat = 0; cat < 2; ++cat) {
        double n = cnt[cat] ? static_cast<double>(cnt[cat]) : 1.0;
        std::printf("%-12s %12.1f %5.1f %8.1f %14.1f %5.1f %8.1f\n",
                    cat == 0 ? "mean mem" : "mean comp",
                    acc[cat][0][0] / n, acc[cat][0][1] / n,
                    acc[cat][0][2] / n, acc[cat][1][0] / n,
                    acc[cat][1][1] / n, acc[cat][1][2] / n);
    }
    return 0;
}
