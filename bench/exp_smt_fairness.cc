/**
 * @file
 * SMT fairness experiment: memory-bound + compute-bound pairs
 * co-scheduled on the 2-thread core under each partition policy
 * (ICOUNT fetch), plus the predictive MLP-aware fetch policy on top
 * of the MLP-aware partition. Reports STP / ANTT / harmonic speedup
 * against single-thread alone runs with the same budget.
 *
 * Expected shape: the static equal split caps the memory-bound
 * thread at level 1 and forfeits its MLP; full sharing lets it
 * monopolize the window and starve the compute-bound co-runner
 * (ANTT explodes); the MLP-aware partition lends entries on miss
 * bursts and returns them, winning on STP without the unfairness.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/bench_util.hh"
#include "smt/metrics.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

namespace
{

struct Cell
{
    const char *label;
    PartitionPolicy partition;
    FetchPolicy fetch;
};

constexpr Cell kCells[] = {
    {"static", PartitionPolicy::Static, FetchPolicy::Icount},
    {"shared", PartitionPolicy::Shared, FetchPolicy::Icount},
    {"mlp", PartitionPolicy::MlpAware, FetchPolicy::Icount},
    {"mlp+pred", PartitionPolicy::MlpAware, FetchPolicy::Predictive},
};

} // namespace

int
main()
{
    const std::uint64_t budget = instBudget();
    // Memory-bound streamer/pointer-chaser + compute-bound partner.
    const std::vector<std::string> pairs = {
        "libquantum+sjeng", "libquantum+gamess", "mcf+sjeng",
        "mcf+gcc",          "milc+h264ref",
    };

    std::printf("==== SMT fairness: per-thread window partitioning "
                "on the 2-thread core ====\n");
    std::printf("(STP = system throughput, higher better; ANTT = "
                "mean slowdown, lower better;\n hmean = harmonic "
                "mean of speedups; alone runs share the budget)\n\n");
    std::printf("%-22s %-9s %8s %8s %8s\n", "pair", "policy", "STP",
                "ANTT", "hmean");

    std::map<std::string, double> alone;
    for (const std::string &pair : pairs) {
        std::vector<double> alone_ipc;
        for (const std::string &w : splitWorkloadSpec(pair)) {
            if (!alone.count(w))
                alone[w] =
                    runModel(w, ModelKind::Base, 1, budget).ipc;
            alone_ipc.push_back(alone[w]);
        }
        for (const Cell &cell : kCells) {
            SimConfig cfg = benchConfig(ModelKind::Base, 1);
            cfg.core.smt.nThreads = 2;
            cfg.core.smt.partitionPolicy = cell.partition;
            cfg.core.smt.fetchPolicy = cell.fetch;
            SimResult r = runConfig(pair, cfg, budget);
            std::printf("%-22s %-9s %8.3f %8.3f %8.3f\n",
                        pair.c_str(), cell.label,
                        stp(r.threadIpc, alone_ipc),
                        antt(r.threadIpc, alone_ipc),
                        harmonicSpeedup(r.threadIpc, alone_ipc));
        }
        std::printf("\n");
    }
    return 0;
}
