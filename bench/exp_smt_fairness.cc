/**
 * @file
 * SMT fairness experiment: memory-bound + compute-bound pairs
 * co-scheduled on the 2-thread core under each partition policy
 * (ICOUNT fetch), plus the predictive MLP-aware fetch policy on top
 * of the MLP-aware partition. Reports STP / ANTT / harmonic speedup
 * against single-thread alone runs with the same budget.
 *
 * Expected shape: the static equal split caps the memory-bound
 * thread at level 1 and forfeits its MLP; full sharing lets it
 * monopolize the window and starve the compute-bound co-runner
 * (ANTT explodes); the MLP-aware partition lends entries on miss
 * bursts and returns them, winning on STP without the unfairness.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/bench_util.hh"
#include "smt/metrics.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

namespace
{

struct Cell
{
    const char *label;
    PartitionPolicy partition;
    FetchPolicy fetch;
};

constexpr Cell kCells[] = {
    {"static", PartitionPolicy::Static, FetchPolicy::Icount},
    {"shared", PartitionPolicy::Shared, FetchPolicy::Icount},
    {"mlp", PartitionPolicy::MlpAware, FetchPolicy::Icount},
    {"mlp+pred", PartitionPolicy::MlpAware, FetchPolicy::Predictive},
};

/**
 * One thread's cycle-accounting stack as its five biggest leaves, in
 * percent of that thread's cycles. This is where a starved co-runner
 * shows up: its cycles land on smt_fetch / rob_full instead of base.
 */
void
printCpiStack(const std::string &name, std::size_t tid,
              const CpiStack &cpi)
{
    std::uint64_t total = cpi.sum();
    std::vector<std::size_t> order(kNumCpiComponents);
    for (std::size_t i = 0; i < kNumCpiComponents; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return cpi.counts[a] > cpi.counts[b];
              });
    std::printf("    t%zu %-12s cpi:", tid, name.c_str());
    std::size_t shown = 0;
    for (std::size_t i : order) {
        if (!cpi.counts[i] || shown == 5)
            break;
        ++shown;
        std::printf(" %s %.1f%%",
                    cpiComponentName(static_cast<CpiComponent>(i)),
                    total ? 100.0 *
                                static_cast<double>(cpi.counts[i]) /
                                static_cast<double>(total)
                          : 0.0);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    const std::uint64_t budget = instBudget();
    // Memory-bound streamer/pointer-chaser + compute-bound partner.
    const std::vector<std::string> pairs = {
        "libquantum+sjeng", "libquantum+gamess", "mcf+sjeng",
        "mcf+gcc",          "milc+h264ref",
    };

    std::printf("==== SMT fairness: per-thread window partitioning "
                "on the 2-thread core ====\n");
    std::printf("(STP = system throughput, higher better; ANTT = "
                "mean slowdown, lower better;\n hmean = harmonic "
                "mean of speedups; alone runs share the budget)\n\n");
    std::printf("%-22s %-9s %8s %8s %8s\n", "pair", "policy", "STP",
                "ANTT", "hmean");

    std::map<std::string, double> alone;
    for (const std::string &pair : pairs) {
        std::vector<double> alone_ipc;
        for (const std::string &w : splitWorkloadSpec(pair)) {
            if (!alone.count(w))
                alone[w] =
                    runModel(w, ModelKind::Base, 1, budget).ipc;
            alone_ipc.push_back(alone[w]);
        }
        for (const Cell &cell : kCells) {
            SimConfig cfg = benchConfig(ModelKind::Base, 1);
            cfg.core.smt.nThreads = 2;
            cfg.core.smt.partitionPolicy = cell.partition;
            cfg.core.smt.fetchPolicy = cell.fetch;
            SimResult r = runConfig(pair, cfg, budget);
            std::printf("%-22s %-9s %8.3f %8.3f %8.3f\n",
                        pair.c_str(), cell.label,
                        stp(r.threadIpc, alone_ipc),
                        antt(r.threadIpc, alone_ipc),
                        harmonicSpeedup(r.threadIpc, alone_ipc));
            std::vector<std::string> names =
                splitWorkloadSpec(pair);
            for (std::size_t t = 0; t < r.threadCpi.size(); ++t)
                printCpiStack(t < names.size() ? names[t] : "?", t,
                              r.threadCpi[t]);
        }
        std::printf("\n");
    }
    return 0;
}
