/**
 * @file
 * Reproduces paper Fig. 12 / Section 5.7: dynamic window resizing
 * versus runahead execution (with RCST useless-runahead filtering),
 * both normalized to the base processor.
 *
 * Expected shape: runahead helps memory-intensive programs but trails
 * resizing on average (paper: resizing is +8% over runahead on
 * memory-intensive, +1% on compute-intensive) because runahead
 * abandons computation while running ahead, and useless episodes can
 * even lose to the base (milc in the paper).
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();
    const std::vector<std::string> progs = allWorkloadNames();

    Series ra{"runahead", {}};
    Series res{"resizing", {}};
    std::printf("==== runahead episode statistics ====\n");
    std::printf("%-12s %10s %10s\n", "program", "episodes", "useless");
    for (const std::string &w : progs) {
        double base = runModel(w, ModelKind::Base, 1, budget).ipc;
        SimResult r = runModel(w, ModelKind::Runahead, 1, budget);
        ra.byWorkload[w] = r.ipc / base;
        res.byWorkload[w] =
            runModel(w, ModelKind::Resizing, 1, budget).ipc / base;
        std::printf("%-12s %10llu %10llu\n", w.c_str(),
                    static_cast<unsigned long long>(r.runaheadEpisodes),
                    static_cast<unsigned long long>(r.runaheadUseless));
    }

    printTable("Fig. 12: runahead vs dynamic resizing (IPC vs base)",
               progs, {ra, res});
    printGeomeans(progs, {ra, res});
    return 0;
}
