/**
 * @file
 * Reproduces paper Fig. 10 / Section 5.5's "what if the same area
 * went into more cache?" question: the base processor with an
 * enlarged 2.5 MB 5-way L2 (≈1.3x the area of the resizing scheme's
 * extra window resources) versus the dynamic resizing model, both
 * normalized to the base.
 *
 * Expected shape: the bigger L2 buys well under ~1% on average, while
 * resizing buys ~20% — window area is far more productive than cache
 * area at this design point.
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();
    const std::vector<std::string> progs = allWorkloadNames();

    SimConfig big = benchConfig(ModelKind::Base, 1);
    big.mem.l2.sizeBytes = 2621440; // 2.5 MB.
    big.mem.l2.assoc = 5;

    Series bigl2{"base+2.5MB", {}};
    Series res{"resizing", {}};
    for (const std::string &w : progs) {
        double base = runModel(w, ModelKind::Base, 1, budget).ipc;
        bigl2.byWorkload[w] = runConfig(w, big, budget).ipc / base;
        res.byWorkload[w] =
            runModel(w, ModelKind::Resizing, 1, budget).ipc / base;
    }

    printTable("Fig. 10: enlarged L2 vs dynamic resizing "
               "(IPC vs base)", progs, {bigl2, res});
    printGeomeans(progs, {bigl2, res});
    return 0;
}
