/**
 * @file
 * Ablation of the level-table *shape* (an extension beyond the paper,
 * which fixes three levels at 1x/2.5x/4x the base): how much of the
 * resizing benefit comes from having an intermediate level, and what a
 * finer four-level ladder would add. Reports GM IPC relative to the
 * base for the paper's 3-level table, a 2-level table (small/big
 * only), and a 4-level table with a finer ascent.
 *
 * Expected shape: two levels already capture most of the benefit
 * (enlargement saturates quickly under clustered misses); the fourth
 * level adds little but costs nothing — supporting the paper's choice
 * of a coarse ladder.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "resize/level_table.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

namespace
{

LevelTable
twoLevels()
{
    return LevelTable({
        ResourceLevel{64, 1, 128, 1, 64, 1},
        ResourceLevel{256, 2, 512, 2, 256, 2},
    });
}

LevelTable
fourLevels()
{
    return LevelTable({
        ResourceLevel{64, 1, 128, 1, 64, 1},
        ResourceLevel{128, 2, 256, 2, 128, 2},
        ResourceLevel{192, 2, 384, 2, 192, 2},
        ResourceLevel{256, 2, 512, 2, 256, 2},
    });
}

} // namespace

int
main()
{
    const std::uint64_t budget = instBudget();
    const std::vector<std::string> progs = allWorkloadNames();

    struct Variant
    {
        const char *label;
        LevelTable table;
    };
    const Variant variants[] = {
        {"2-level", twoLevels()},
        {"3-level", LevelTable::paperDefault()},
        {"4-level", fourLevels()},
    };

    std::printf("==== Level-ladder ablation (resizing, IPC vs base) "
                "====\n");
    std::printf("%-10s %12s %12s %12s\n", "table", "GM mem", "GM comp",
                "GM all");
    for (const Variant &v : variants) {
        std::vector<double> mem_v, comp_v, all_v;
        for (const std::string &w : progs) {
            double base = runModel(w, ModelKind::Base, 1, budget).ipc;
            SimConfig cfg = benchConfig(ModelKind::Resizing, 1);
            cfg.levels = v.table;
            double rel = runConfig(w, cfg, budget).ipc / base;
            all_v.push_back(rel);
            if (findWorkload(w).memIntensive)
                mem_v.push_back(rel);
            else
                comp_v.push_back(rel);
        }
        std::printf("%-10s %12.3f %12.3f %12.3f\n", v.label,
                    geomean(mem_v), geomean(comp_v), geomean(all_v));
    }
    return 0;
}
