/**
 * @file
 * Reproduces paper Fig. 9: energy efficiency (performance per energy,
 * proportional to 1/EDP) of the dynamic resizing model normalized to
 * the base processor, per program, with category averages.
 *
 * Expected shape: large gains on memory-intensive programs (the big
 * window costs power but buys much more performance; libquantum is
 * the extreme), roughly break-even on compute-intensive programs
 * (level 1 is selected almost always), positive overall. Paper
 * averages: +36% mem, -8% comp, +8% all.
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();
    const std::vector<std::string> progs = allWorkloadNames();

    // Both models of every workload run in parallel
    // (MLPWIN_BENCH_JOBS workers), workload-major result order.
    const std::vector<exp::ModelSpec> models{
        {ModelKind::Base, 1, ""},
        {ModelKind::Resizing, 1, ""},
    };
    const std::vector<SimResult> results =
        runMatrix(progs, models, budget);

    Series rel{"1/EDP vs base", {}};
    for (std::size_t wi = 0; wi < progs.size(); ++wi) {
        const SimResult &base = results[wi * models.size()];
        const SimResult &res = results[wi * models.size() + 1];
        // Higher 1/EDP is better; normalize so base = 1.0.
        rel.byWorkload[progs[wi]] = base.edp / res.edp;
    }

    printTable("Fig. 9: energy efficiency (1/EDP) vs base", progs,
               {rel});
    printGeomeans(progs, {rel});
    return 0;
}
