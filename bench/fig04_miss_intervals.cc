/**
 * @file
 * Reproduces paper Fig. 4: the histogram of L2 cache miss occurrences
 * over inter-miss intervals for soplex (8-cycle bins), on the base
 * processor.
 *
 * Expected shape: the vast majority of misses fall in the first few
 * bins (misses are clustered in time), with a secondary peak near the
 * main-memory latency (~300 cycles) — the window fills after a miss,
 * the pipeline stalls for one memory latency, and the next cluster
 * begins when the miss resolves. This clustering is the empirical
 * basis of the paper's enlarge-on-miss / shrink-after-latency policy.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "mem/hierarchy.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();

    SimConfig cfg = benchConfig(ModelKind::Base, 1);
    cfg.maxInsts = budget;
    const WorkloadSpec &spec = findWorkload("soplex");
    Program prog = spec.make(kForever);
    Simulator sim(cfg, prog);
    sim.run();

    const Histogram &h = sim.hierarchy().missIntervalHist();
    std::printf("==== Fig. 4: L2 miss-interval histogram, soplex "
                "(bin = %llu cycles) ====\n",
                static_cast<unsigned long long>(h.binWidth()));
    std::printf("%-14s %10s  %s\n", "interval", "misses", "share");

    std::uint64_t total = h.totalSamples();
    if (total == 0) {
        std::printf("(no L2 misses observed)\n");
        return 0;
    }

    for (std::size_t i = 0; i < h.numBins(); ++i) {
        std::uint64_t n = h.binCount(i);
        if (n == 0)
            continue;
        double share = 100.0 * static_cast<double>(n) /
                       static_cast<double>(total);
        std::printf("[%4zu,%4zu)    %10llu  %5.1f%% ", i * h.binWidth(),
                    (i + 1) * h.binWidth(),
                    static_cast<unsigned long long>(n), share);
        for (int b = 0; b < static_cast<int>(share); ++b)
            std::putchar('#');
        std::putchar('\n');
    }
    if (h.overflow()) {
        std::printf("[%4llu,  inf)   %10llu  %5.1f%%\n",
                    static_cast<unsigned long long>(h.numBins() *
                                                    h.binWidth()),
                    static_cast<unsigned long long>(h.overflow()),
                    100.0 * static_cast<double>(h.overflow()) /
                        static_cast<double>(total));
    }

    // The paper's two headline observations, as checkable numbers.
    std::uint64_t first_64 = 0;
    for (std::size_t i = 0; i < 8 && i < h.numBins(); ++i)
        first_64 += h.binCount(i);
    std::uint64_t near_latency = 0;
    for (std::size_t i = 32; i < 48 && i < h.numBins(); ++i)
        near_latency += h.binCount(i); // 256..384 cycles.
    std::printf("\nmisses within 64 cycles of the previous: %5.1f%%\n",
                100.0 * static_cast<double>(first_64) /
                    static_cast<double>(total));
    std::printf("misses 256-384 cycles after the previous: %5.1f%% "
                "(stall-then-recluster peak)\n",
                100.0 * static_cast<double>(near_latency) /
                    static_cast<double>(total));
    return 0;
}
