/**
 * @file
 * Virtual-memory experiment: pointer-chasing and scatter workloads
 * under paging, sweeping TLB reach (baseline geometry, a small
 * stressed TLB, and 2 MiB huge pages) on the base and resizing
 * models, with the resize-on-walk trigger off and on.
 *
 * Measured shape (results/exp_vm.txt): these working sets walk even
 * at the default geometry, and shrinking the TLB mostly grows the
 * tlb_walk CPI share rather than the walk count; resizing's win
 * survives paging roughly intact. Resize-on-walk moves IPC only
 * marginally — walks serialize level by level, so an outstanding
 * walk rarely signals the overlappable-miss burst the trigger is
 * tuned for. Huge pages erase walks entirely here: one fewer level
 * per walk, and 512x the reach covers the sets outright.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

namespace
{

struct Geometry
{
    const char *label;
    unsigned l1Entries;
    unsigned l1Assoc;
    unsigned stlbEntries;
    bool huge;
};

constexpr Geometry kGeometries[] = {
    {"base-tlb", 64, 4, 1024, false},
    {"small-tlb", 8, 4, 64, false},
    {"huge-pages", 8, 4, 64, true},
};

SimConfig
vmConfig(ModelKind model, const Geometry &g, bool resize_on_walk)
{
    SimConfig cfg = benchConfig(model, 1);
    cfg.vm.enabled = true;
    cfg.vm.itlb.entries = g.l1Entries;
    cfg.vm.itlb.assoc = g.l1Assoc;
    cfg.vm.dtlb.entries = g.l1Entries;
    cfg.vm.dtlb.assoc = g.l1Assoc;
    cfg.vm.stlb.entries = g.stlbEntries;
    cfg.vm.hugePages = g.huge;
    cfg.vm.resizeOnWalk = resize_on_walk;
    return cfg;
}

} // namespace

int
main()
{
    const std::uint64_t budget = instBudget();
    // Pointer chaser, gathers, and a phase mixer: the workloads whose
    // address streams defeat a small TLB.
    const std::vector<std::string> workloads = {
        "mcf", "xalancbmk", "libquantum", "omnetpp"};

    printHeader("exp_vm: TLBs, page-table walks, and "
                "translation-aware resizing");
    std::printf("(ipc per cell; walks/ki = page-table walks per 1000 "
                "committed\n instructions; tlb_walk%% = share of "
                "cycles stalled on a walk)\n\n");

    for (const Geometry &g : kGeometries) {
        std::printf("---- %s: L1 TLB %u-entry/%u-way, L2 TLB "
                    "%u-entry%s ----\n",
                    g.label, g.l1Entries, g.l1Assoc, g.stlbEntries,
                    g.huge ? ", 2 MiB pages" : "");
        std::printf("%-12s %-9s %-14s %8s %9s %9s\n", "workload",
                    "model", "resize-on-walk", "ipc", "walks/ki",
                    "tlb_walk%");
        for (const std::string &w : workloads) {
            for (ModelKind model :
                 {ModelKind::Base, ModelKind::Resizing}) {
                for (bool row : {false, true}) {
                    // resize-on-walk only changes the resizing
                    // controller's inputs; on the base model the
                    // trigger has no listener to act on.
                    if (model == ModelKind::Base && row)
                        continue;
                    progress(g.label + std::string("/") + w + "/" +
                             modelName(model) +
                             (row ? "/resize-on-walk" : ""));
                    SimResult r = runConfig(
                        w, vmConfig(model, g, row), budget);
                    const CpiStack cpi = r.cpiTotal();
                    double walk_pct = r.cycles
                        ? 100.0 *
                            static_cast<double>(
                                cpi[CpiComponent::TlbWalk]) /
                            static_cast<double>(r.cycles)
                        : 0.0;
                    double walks_per_ki = r.committed
                        ? 1000.0 * static_cast<double>(r.vm.walks) /
                            static_cast<double>(r.committed)
                        : 0.0;
                    std::printf("%-12s %-9s %-14s %8.3f %9.2f "
                                "%8.1f%%\n",
                                w.c_str(), modelName(model),
                                row ? "on" : "off", r.ipc,
                                walks_per_ki, walk_pct);
                }
            }
        }
        std::printf("\n");
    }
    return 0;
}
