/**
 * @file
 * Quantifies the paper's Section 6.3 argument against the WIB
 * (waiting instruction buffer, Lebeck et al. ISCA'02) as the way to a
 * large effective window: compares the WIB model (level-3 ROB/LSQ,
 * small single-cycle IQ, 512-entry WIB) against dynamic resizing and
 * the base, all normalized to the base.
 *
 * Expected shape: the WIB competes with resizing on memory-intensive
 * programs (both expose a large window's MLP) and keeps the small-IQ
 * ILP on compute-intensive ones, but pays movement bandwidth and
 * re-insertion latency on every parked chain; resizing matches it
 * without the extra IQ machinery the paper's critique targets.
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();
    const std::vector<std::string> progs = allWorkloadNames();

    Series wib{"wib", {}};
    Series res{"resizing", {}};
    for (const std::string &w : progs) {
        double base = runModel(w, ModelKind::Base, 1, budget).ipc;
        wib.byWorkload[w] =
            runModel(w, ModelKind::Wib, 1, budget).ipc / base;
        res.byWorkload[w] =
            runModel(w, ModelKind::Resizing, 1, budget).ipc / base;
    }

    printTable("WIB (Lebeck et al.) vs dynamic resizing "
               "(IPC vs base)", progs, {wib, res});
    printGeomeans(progs, {wib, res});
    return 0;
}
