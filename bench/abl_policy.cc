/**
 * @file
 * Ablation of the resizing *policy* (paper Section 6.2): the paper's
 * LLC-miss-driven MLP-aware controller versus a Ponomarev-style
 * occupancy-driven controller (grow on full-queue stalls, shrink on
 * low average occupancy) and the always-big Fix3 configuration, all
 * normalized to the base.
 *
 * Expected shape: occupancy-driven resizing grows the window whenever
 * the queues back up — which happens in compute-intensive code too —
 * so it pays the pipelining penalties without MLP to show for it;
 * the MLP-aware policy matches it on memory-intensive programs and
 * beats it on compute-intensive ones.
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();
    const std::vector<std::string> progs = allWorkloadNames();

    Series mlp{"mlp-aware", {}};
    Series occ{"occupancy", {}};
    Series fix3{"Fix3", {}};
    for (const std::string &w : progs) {
        double base = runModel(w, ModelKind::Base, 1, budget).ipc;
        mlp.byWorkload[w] =
            runModel(w, ModelKind::Resizing, 1, budget).ipc / base;
        occ.byWorkload[w] =
            runModel(w, ModelKind::Occupancy, 1, budget).ipc / base;
        fix3.byWorkload[w] =
            runModel(w, ModelKind::Fixed, 3, budget).ipc / base;
    }

    printTable("Policy ablation: what drives the resizing decision "
               "(IPC vs base)", progs, {mlp, occ, fix3});
    printGeomeans(progs, {mlp, occ, fix3});
    return 0;
}
