/**
 * @file
 * Reproduces paper Table 5: the average number of committed
 * instructions between adjacent mispredicted branches, per program,
 * on the base processor. This is the paper's explanation for why
 * wrong-path pollution stays small (Fig. 11): in memory-intensive
 * programs mispredicts are hundreds to millions of instructions
 * apart — large relative to even the level-3 window.
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();

    std::printf("==== Table 5: committed instructions between "
                "mispredicted branches (base) ====\n");
    std::printf("%-12s %14s   %s\n", "program", "insts/mispred",
                "category");
    for (const WorkloadSpec &spec : spec2006Suite()) {
        SimResult r = runModel(spec.name, ModelKind::Base, 1, budget);
        std::printf("%-12s %14.0f   %s\n", spec.name.c_str(),
                    r.instsPerMispredict(),
                    spec.memIntensive ? "memory-intensive"
                                      : "compute-intensive");
    }
    return 0;
}
