/**
 * @file
 * Reproduces paper Fig. 6: the resource-level transition timeline of
 * the MLP-aware controller around L2 miss clusters. Runs omnetpp
 * (mixed compute/memory phases) under the resizing model, records
 * every level transition, and prints a segment of the timeline plus
 * summary statistics (transitions per 100k cycles, residency shares).
 *
 * Expected shape: the level rises by one on each L2 miss (clamped at
 * the maximum), stays up while misses keep arriving, and steps down
 * one memory latency after the last miss — MLP is exploited at the
 * top, ILP at the bottom.
 */

#include <cstdio>
#include <vector>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

namespace
{

struct Transition
{
    Cycle cycle;
    unsigned fromLevel;
    unsigned toLevel;
    std::uint64_t missesSoFar;
};

} // namespace

int
main()
{
    const std::uint64_t budget = instBudget();

    SimConfig cfg = benchConfig(ModelKind::Resizing, 1);
    const WorkloadSpec &spec = findWorkload("omnetpp");
    Program prog = spec.make(kForever);
    Simulator sim(cfg, prog);

    // Warm up outside the traced window.
    sim.runUntil(cfg.warmupInsts);

    std::vector<Transition> log;
    unsigned level = sim.controller().level();
    Cycle start_cycle = sim.core().cycle();
    while (!sim.core().halted() &&
           sim.core().committedInsts() < cfg.warmupInsts + budget) {
        sim.tick();
        unsigned now_level = sim.controller().level();
        if (now_level != level) {
            log.push_back(Transition{sim.core().cycle(), level,
                                     now_level,
                                     sim.hierarchy().l2DemandMisses()});
            level = now_level;
        }
    }
    Cycle cycles = sim.core().cycle() - start_cycle;

    std::printf("==== Fig. 6: level transitions, omnetpp (resizing) "
                "====\n");
    std::printf("%-12s %5s -> %-5s %12s\n", "cycle", "from", "to",
                "L2 misses");
    std::size_t shown = 0;
    for (const Transition &t : log) {
        if (shown++ >= 40) {
            std::printf("... (%zu more transitions)\n",
                        log.size() - 40);
            break;
        }
        std::printf("%-12llu %5u -> %-5u %12llu\n",
                    static_cast<unsigned long long>(t.cycle),
                    t.fromLevel, t.toLevel,
                    static_cast<unsigned long long>(t.missesSoFar));
    }

    std::printf("\ntotal transitions : %zu over %llu cycles "
                "(%.2f per 100k cycles)\n",
                log.size(), static_cast<unsigned long long>(cycles),
                cycles ? 1e5 * static_cast<double>(log.size()) /
                             static_cast<double>(cycles)
                       : 0.0);
    const LevelResidency &res = sim.controller().residency();
    std::printf("cycle share per level:");
    std::uint64_t total = 0;
    for (std::uint64_t c : res.cyclesAtLevel)
        total += c;
    for (std::size_t l = 0; l < res.cyclesAtLevel.size(); ++l)
        std::printf("  L%zu %.1f%%", l + 1,
                    total ? 100.0 *
                                static_cast<double>(
                                    res.cyclesAtLevel[l]) /
                                static_cast<double>(total)
                          : 0.0);
    std::printf("\n");
    return 0;
}
