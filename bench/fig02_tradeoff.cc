/**
 * @file
 * Reproduces paper Fig. 2: IPC of libquantum (memory-intensive) and
 * gcc (compute-intensive) as the instruction window resource level is
 * varied, for the fixed-size (pipelined) and ideal (non-pipelined)
 * models, each normalized to the level-1 (base) processor.
 *
 * Expected shape: for libquantum the bars rise steeply with level and
 * the ideal line adds almost nothing on top (memory latency dominates,
 * so the pipelined-IQ issue penalty is invisible). For gcc the bars
 * are flat or falling (the issue/mispredict penalties of pipelining
 * outweigh any MLP gain) while the ideal line stays near 1.0 (a small
 * window already captures the available ILP).
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();

    for (const char *prog : {"libquantum", "gcc"}) {
        double base_ipc = 0.0;
        std::printf("\n==== Fig. 2: %s — relative IPC vs window level "
                    "====\n", prog);
        std::printf("%-8s %12s %12s\n", "level", "fixed", "ideal");
        for (unsigned level = 1; level <= 3; ++level) {
            SimResult fix =
                runModel(prog, level == 1 ? ModelKind::Base
                                          : ModelKind::Fixed,
                         level, budget);
            SimResult ideal = runModel(prog, ModelKind::Ideal, level,
                                       budget);
            if (level == 1)
                base_ipc = fix.ipc;
            std::printf("%-8u %12.3f %12.3f\n", level,
                        fix.ipc / base_ipc, ideal.ipc / base_ipc);
        }
    }
    return 0;
}
