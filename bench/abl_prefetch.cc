/**
 * @file
 * Prefetcher interplay (extension): the paper includes a stride
 * prefetcher in the base (Table 1) because commercial processors have
 * one; this ablation quantifies how much of the resizing benefit
 * survives without it, and how much the prefetcher alone buys.
 *
 * Expected shape: the prefetcher and the large window are largely
 * complementary — the prefetcher covers regular (stride) misses, the
 * window overlaps irregular ones — so resizing's relative gain
 * *increases* when the prefetcher is off (more misses left to
 * overlap), and the combination is the best absolute point.
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();
    const std::vector<std::string> progs = allWorkloadNames();

    Series pf_only{"base+pf", {}};
    Series res_nopf{"res-nopf", {}};
    Series res_pf{"res+pf", {}};

    for (const std::string &w : progs) {
        SimConfig base_nopf = benchConfig(ModelKind::Base, 1);
        base_nopf.mem.prefetcher.enabled = false;
        double base = runConfig(w, base_nopf, budget).ipc;

        pf_only.byWorkload[w] =
            runModel(w, ModelKind::Base, 1, budget).ipc / base;

        SimConfig res_off = benchConfig(ModelKind::Resizing, 1);
        res_off.mem.prefetcher.enabled = false;
        res_nopf.byWorkload[w] =
            runConfig(w, res_off, budget).ipc / base;

        res_pf.byWorkload[w] =
            runModel(w, ModelKind::Resizing, 1, budget).ipc / base;
    }

    printTable("Prefetcher interplay (IPC vs base-without-prefetcher)",
               progs, {pf_only, res_nopf, res_pf});
    printGeomeans(progs, {pf_only, res_nopf, res_pf});
    return 0;
}
