/**
 * @file
 * Simulator-throughput microbenchmarks (google-benchmark): simulated
 * instructions per wall-clock second for each model on representative
 * workloads, plus hot-component microbenchmarks (cache lookups,
 * branch prediction, functional emulation). These guard against
 * performance regressions in the simulator itself; they reproduce no
 * paper figure.
 */

#include <benchmark/benchmark.h>

#include "branch/predictor.hh"
#include "common/bench_util.hh"
#include "emu/emulator.hh"
#include "mem/cache.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

namespace
{

void
simModel(benchmark::State &state, const std::string &workload,
         ModelKind model)
{
    for (auto _ : state) {
        SimConfig cfg = benchConfig(model, model == ModelKind::Fixed
                                               ? 3 : 1);
        cfg.warmupInsts = 0;
        cfg.maxInsts = 20000;
        SimResult r = runWorkload(workload, cfg, kForever);
        benchmark::DoNotOptimize(r.cycles);
        state.counters["sim_insts_per_s"] = benchmark::Counter(
            static_cast<double>(r.committed),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}

void
BM_SimGccBase(benchmark::State &state)
{
    simModel(state, "gcc", ModelKind::Base);
}

void
BM_SimGccResizing(benchmark::State &state)
{
    simModel(state, "gcc", ModelKind::Resizing);
}

void
BM_SimLibquantumBase(benchmark::State &state)
{
    simModel(state, "libquantum", ModelKind::Base);
}

void
BM_SimLibquantumResizing(benchmark::State &state)
{
    simModel(state, "libquantum", ModelKind::Resizing);
}

void
BM_SimLibquantumRunahead(benchmark::State &state)
{
    simModel(state, "libquantum", ModelKind::Runahead);
}

void
BM_EmulatorStep(benchmark::State &state)
{
    const WorkloadSpec &spec = findWorkload("gcc");
    Program prog = spec.make(kForever);
    MainMemory mem;
    mem.loadProgram(prog);
    Emulator emu(mem, prog.entry());
    for (auto _ : state)
        benchmark::DoNotOptimize(emu.step().result);
    state.SetItemsProcessed(state.iterations());
}

void
BM_CacheLookupHit(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.lineBytes = 32;
    cfg.assoc = 2;
    Cache c("bm", cfg, nullptr);
    for (Addr a = 0; a < 64 * 1024; a += 32)
        c.insert(a, 0, Provenance::CorrPath);
    Addr a = 0;
    Cycle t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.lookup(a, ++t, true).hit);
        a = (a + 4096 + 32) & (64 * 1024 - 1);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_BranchPredict(benchmark::State &state)
{
    BranchPredictor bp(BranchPredictorConfig{}, nullptr);
    StaticInst br{Opcode::Bne, kNoReg, intReg(1), intReg(2), -64};
    Addr pc = 0x1000;
    for (auto _ : state) {
        BranchPrediction p = bp.predict(pc, br);
        bp.update(pc, br, !p.taken, pc - 64, p.historySnapshot);
        pc = (pc + kInstBytes) & 0xFFFF;
        benchmark::DoNotOptimize(p.taken);
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(BM_SimGccBase)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimGccResizing)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimLibquantumBase)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimLibquantumResizing)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimLibquantumRunahead)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EmulatorStep);
BENCHMARK(BM_CacheLookupHit);
BENCHMARK(BM_BranchPredict);

BENCHMARK_MAIN();
