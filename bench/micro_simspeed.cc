/**
 * @file
 * Simulator-throughput microbenchmarks (google-benchmark): simulated
 * instructions per wall-clock second for each model on representative
 * workloads, plus hot-component microbenchmarks (cache lookups,
 * branch prediction, functional emulation). These guard against
 * performance regressions in the simulator itself; they reproduce no
 * paper figure.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "branch/predictor.hh"
#include "common/bench_util.hh"
#include "common/json.hh"
#include "emu/emulator.hh"
#include "exp/experiment.hh"
#include "mem/cache.hh"
#include "profile/profiler.hh"
#include "sample/fastforward.hh"
#ifdef MLPWIN_WORKER_BIN
#include "serve/supervisor.hh"
#endif

#ifndef MLPWIN_GIT_SHA
#define MLPWIN_GIT_SHA "unknown"
#endif

using namespace mlpwin;
using namespace mlpwin::bench;

namespace
{

void
simModel(benchmark::State &state, const std::string &workload,
         ModelKind model)
{
    for (auto _ : state) {
        SimConfig cfg = benchConfig(model, model == ModelKind::Fixed
                                               ? 3 : 1);
        cfg.warmupInsts = 0;
        cfg.maxInsts = 20000;
        SimResult r = runWorkload(workload, cfg, kForever);
        benchmark::DoNotOptimize(r.cycles);
        state.counters["sim_insts_per_s"] = benchmark::Counter(
            static_cast<double>(r.committed),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}

void
BM_SimGccBase(benchmark::State &state)
{
    simModel(state, "gcc", ModelKind::Base);
}

void
BM_SimGccResizing(benchmark::State &state)
{
    simModel(state, "gcc", ModelKind::Resizing);
}

void
BM_SimLibquantumBase(benchmark::State &state)
{
    simModel(state, "libquantum", ModelKind::Base);
}

void
BM_SimLibquantumResizing(benchmark::State &state)
{
    simModel(state, "libquantum", ModelKind::Resizing);
}

void
BM_SimLibquantumRunahead(benchmark::State &state)
{
    simModel(state, "libquantum", ModelKind::Runahead);
}

/**
 * Sampled-mode throughput: same workload/model/budget as simModel,
 * but under SMARTS sampling. The sim_insts_per_s counter covers the
 * whole post-warmup region (fast-forwarded + detailed), so the ratio
 * to the matching detailed benchmark is the sampling speedup.
 */
void
simSampled(benchmark::State &state, const std::string &workload,
           ModelKind model)
{
    for (auto _ : state) {
        SimConfig cfg = benchConfig(model, 1);
        cfg.warmupInsts = 0;
        cfg.maxInsts = 20000;
        cfg.sampling.enabled = true;
        cfg.sampling.intervalInsts = 500;
        cfg.sampling.periodInsts = 4000;
        cfg.sampling.detailedWarmupInsts = 500;
        SimResult r = runWorkload(workload, cfg, kForever);
        benchmark::DoNotOptimize(r.cycles);
        state.counters["sim_insts_per_s"] = benchmark::Counter(
            static_cast<double>(r.committed + r.ffInsts),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}

void
BM_SimGccBaseSampled(benchmark::State &state)
{
    simSampled(state, "gcc", ModelKind::Base);
}

/**
 * A full fig07-style cell (default warm-up + 300k measured insts,
 * resizing model), detailed vs sampled under the default regime.
 * The wall-clock ratio of this pair is the headline sampling
 * speedup; the sampled variant must stay >= 5x faster.
 */
void
BM_Fig07CellGccDetailed(benchmark::State &state)
{
    for (auto _ : state) {
        SimConfig cfg = benchConfig(ModelKind::Resizing, 1);
        cfg.maxInsts = 300000;
        SimResult r = runWorkload("gcc", cfg, kForever);
        benchmark::DoNotOptimize(r.cycles);
        state.counters["sim_insts_per_s"] = benchmark::Counter(
            static_cast<double>(r.committed),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}

void
BM_Fig07CellGccSampled(benchmark::State &state)
{
    for (auto _ : state) {
        SimConfig cfg = benchConfig(ModelKind::Resizing, 1);
        cfg.maxInsts = 300000;
        cfg.sampling.enabled = true; // default 1000/20000/1000 regime
        SimResult r = runWorkload("gcc", cfg, kForever);
        benchmark::DoNotOptimize(r.cycles);
        state.counters["sim_insts_per_s"] = benchmark::Counter(
            static_cast<double>(r.committed + r.ffInsts),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}

void
BM_SimLibquantumResizingSampled(benchmark::State &state)
{
    simSampled(state, "libquantum", ModelKind::Resizing);
}

void
BM_EmulatorStep(benchmark::State &state)
{
    const WorkloadSpec &spec = findWorkload("gcc");
    Program prog = spec.make(kForever);
    MainMemory mem;
    mem.loadProgram(prog);
    Emulator emu(mem, prog.entry());
    for (auto _ : state)
        benchmark::DoNotOptimize(emu.step().result);
    state.SetItemsProcessed(state.iterations());
}

/**
 * Functional-emulation MIPS with warming attached — the fast-forward
 * configuration sampled runs and functional warm-ups actually use
 * (emulator step + cache warmTouch + predictor warm per instruction).
 */
void
BM_FunctionalFastForward(benchmark::State &state)
{
    const WorkloadSpec &spec = findWorkload("gcc");
    Program prog = spec.make(kForever);
    MainMemory mem;
    mem.loadProgram(prog);
    Emulator emu(mem, prog.entry());
    StatSet stats;
    CacheHierarchy hier(MemSystemConfig{}, &stats);
    BranchPredictor bp(BranchPredictorConfig{}, nullptr);
    FastForwarder ff(emu, &hier, &bp);
    for (auto _ : state)
        benchmark::DoNotOptimize(ff.run(1000));
    state.SetItemsProcessed(state.iterations() * 1000);
}

void
BM_CacheLookupHit(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.lineBytes = 32;
    cfg.assoc = 2;
    Cache c("bm", cfg, nullptr);
    for (Addr a = 0; a < 64 * 1024; a += 32)
        c.insert(a, 0, Provenance::CorrPath);
    Addr a = 0;
    Cycle t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.lookup(a, ++t, true).hit);
        a = (a + 4096 + 32) & (64 * 1024 - 1);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_BranchPredict(benchmark::State &state)
{
    BranchPredictor bp(BranchPredictorConfig{}, nullptr);
    StaticInst br{Opcode::Bne, kNoReg, intReg(1), intReg(2), -64};
    Addr pc = 0x1000;
    for (auto _ : state) {
        BranchPrediction p = bp.predict(pc, br);
        bp.update(pc, br, !p.taken, pc - 64, p.historySnapshot);
        pc = (pc + kInstBytes) & 0xFFFF;
        benchmark::DoNotOptimize(p.taken);
    }
    state.SetItemsProcessed(state.iterations());
}

// ---------------------------------------------------------------------
// --bench-json: one-shot summary for CI artifacts
// ---------------------------------------------------------------------

/** Wall-clock seconds spent in f(). */
template <typename F>
double
timeSeconds(F &&f)
{
    auto t0 = std::chrono::steady_clock::now();
    f();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** ISO-8601 UTC timestamp for the BENCH meta block. */
std::string
utcNow()
{
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

/**
 * Measure the headline throughput numbers directly (no
 * google-benchmark repetition machinery — CI wants one cheap,
 * robust datapoint per build, not a statistics run) and write them
 * as a small JSON object: detailed-core MIPS, functional-emulation
 * MIPS, the SMARTS sampling wall-clock speedup on a fig07-style
 * cell, and the 2-thread SMT detailed MIPS. The record also carries
 * a provenance meta block (git sha, date, host, config fingerprint)
 * so two BENCH files are comparable (tools/bench_diff), the host
 * self-profiler's per-stage wall-time shares, and the measured
 * profiler overhead on the detailed cell (budget: <= 5%).
 */
int
writeBenchJson(const char *path)
{
    // Detailed-core simulation speed (gcc, base model), profiler off.
    SimConfig det = benchConfig(ModelKind::Base, 1);
    det.warmupInsts = 0;
    det.maxInsts = 100000;
    SimResult det_r;
    // Throwaway warm-up run so both timed variants below see warm
    // code and allocator state.
    runWorkload("gcc", det, kForever);
    double det_s = timeSeconds(
        [&] { det_r = runWorkload("gcc", det, kForever); });
    double detailed_mips = static_cast<double>(det_r.committed) /
                           det_s / 1e6;

    // The same cell with the self-profiler enabled: its slowdown is
    // the profiler's overhead, and its span aggregates give the
    // per-stage host-time shares.
    Profiler &prof = Profiler::instance();
    prof.reset();
    prof.setEnabled(true);
    SimResult det_prof_r;
    double det_prof_s = timeSeconds(
        [&] { det_prof_r = runWorkload("gcc", det, kForever); });
    prof.setEnabled(false);
    double profiler_overhead_pct =
        det_s > 0.0 ? (det_prof_s / det_s - 1.0) * 100.0 : 0.0;
    if (profiler_overhead_pct < 0.0)
        profiler_overhead_pct = 0.0; // run-to-run noise
    const auto stage_agg = prof.aggregate();
    if (det_prof_r.commitStreamHash != det_r.commitStreamHash)
        std::fprintf(stderr,
                     "warning: profiled run diverged from the "
                     "baseline (commit-stream hash mismatch)\n");

    // Functional fast-forward speed (emulator + warming).
    const WorkloadSpec &spec = findWorkload("gcc");
    Program prog = spec.make(kForever);
    MainMemory mem;
    mem.loadProgram(prog);
    Emulator emu(mem, prog.entry());
    StatSet stats;
    CacheHierarchy hier(MemSystemConfig{}, &stats);
    BranchPredictor bp(BranchPredictorConfig{}, nullptr);
    FastForwarder ff(emu, &hier, &bp);
    constexpr std::uint64_t kFfInsts = 2'000'000;
    double ff_s = timeSeconds([&] { ff.run(kFfInsts); });
    double functional_mips =
        static_cast<double>(kFfInsts) / ff_s / 1e6;

    // Sampling speedup on a fig07-style cell (resizing, 300k insts).
    SimConfig cell = benchConfig(ModelKind::Resizing, 1);
    cell.maxInsts = 300000;
    double full_s = timeSeconds(
        [&] { runWorkload("gcc", cell, kForever); });
    cell.sampling.enabled = true; // default 1000/20000/1000 regime
    double samp_s = timeSeconds(
        [&] { runWorkload("gcc", cell, kForever); });
    double sampled_speedup = samp_s > 0.0 ? full_s / samp_s : 0.0;

    // 2-thread SMT cell (mem-bound + compute-bound co-schedule).
    SimConfig smt = benchConfig(ModelKind::Base, 1);
    smt.warmupInsts = 0;
    smt.maxInsts = 100000;
    smt.core.smt.nThreads = 2;
    smt.core.smt.partitionPolicy = PartitionPolicy::MlpAware;
    SimResult smt_r;
    double smt_s = timeSeconds(
        [&] { smt_r = runWorkload("mcf+gcc", smt, kForever); });
    double smt_detailed_mips =
        static_cast<double>(smt_r.committed) / smt_s / 1e6;

    // Process-isolation tax: the same 2x2 batch through the
    // in-process thread pool and through two supervised worker
    // processes (fork/exec + job serialization + piped results). The
    // cells are fig07-sized (300k insts) so the per-worker spawn cost
    // amortizes the way a real batch does. The wall-clock ratio is
    // what --isolate costs; budget: <= 5%.
    double isolate_overhead_pct = 0.0;
#ifdef MLPWIN_WORKER_BIN
    {
        exp::ExperimentSpec bspec;
        bspec.workloads = {"gcc", "libquantum"};
        bspec.models = {{ModelKind::Base, 1, ""},
                        {ModelKind::Resizing, 1, ""}};
        bspec.base = benchConfig(ModelKind::Base, 1);
        bspec.base.warmupInsts = 0;
        bspec.base.maxInsts = 300000;
        exp::ExperimentRunner runner(2, false);
        runner.runAll(bspec); // warm pass
        double inproc_s =
            timeSeconds([&] { runner.runAll(bspec); });
        serve::SupervisorOptions sopts;
        sopts.workers = 2;
        sopts.workerBin = MLPWIN_WORKER_BIN;
        serve::Supervisor sup(sopts);
        double iso_s =
            timeSeconds([&] { runner.runAll(bspec, &sup); });
        if (inproc_s > 0.0)
            isolate_overhead_pct =
                (iso_s / inproc_s - 1.0) * 100.0;
        if (isolate_overhead_pct < 0.0)
            isolate_overhead_pct = 0.0; // run-to-run noise
    }
#endif

    // Result-cache tax and win on the same 2x2 fig07-sized batch:
    // the cold pass (lookup misses + atomic stores) against a
    // cache-off pass is the miss overhead (budget: <= 5 points); the
    // warm pass (every cell adopted) against cache-off is the hit
    // speedup.
    double cache_miss_overhead_pct = 0.0;
    double cache_hit_speedup = 0.0;
    {
        exp::ExperimentSpec cspec;
        cspec.workloads = {"gcc", "libquantum"};
        cspec.models = {{ModelKind::Base, 1, ""},
                        {ModelKind::Resizing, 1, ""}};
        cspec.base = benchConfig(ModelKind::Base, 1);
        cspec.base.warmupInsts = 0;
        cspec.base.maxInsts = 300000;
        exp::ExperimentRunner runner(2, false);
        runner.runAll(cspec); // warm pass
        // Each pass is only a few hundred ms, so a CI-gated ratio
        // needs noise control: interleave the cache-off and cold
        // rounds (system-load phases then hit both variants alike)
        // and take each variant's best of five.
        std::filesystem::path cdir =
            std::filesystem::temp_directory_path() /
            "mlpwin_bench_cache";
        exp::ExperimentSpec ccspec = cspec;
        ccspec.cacheDir = cdir.string();
        double nocache_s = 1e100, cold_s = 1e100;
        for (int i = 0; i < 5; ++i) {
            nocache_s = std::min(
                nocache_s,
                timeSeconds([&] { runner.runAll(cspec); }));
            std::filesystem::remove_all(cdir); // stay cold
            cold_s = std::min(
                cold_s, timeSeconds([&] { runner.runAll(ccspec); }));
        }
        // The last cold pass left the cache populated.
        double warm_s = 1e100;
        for (int i = 0; i < 5; ++i)
            warm_s = std::min(
                warm_s, timeSeconds([&] { runner.runAll(ccspec); }));
        std::filesystem::remove_all(cdir);
        if (nocache_s > 0.0)
            cache_miss_overhead_pct =
                (cold_s / nocache_s - 1.0) * 100.0;
        if (cache_miss_overhead_pct < 0.0)
            cache_miss_overhead_pct = 0.0; // run-to-run noise
        if (warm_s > 0.0)
            cache_hit_speedup = nocache_s / warm_s;
    }

    // Paging tax: the detailed gcc cell again with the MMU on
    // (default TLB geometry). TLB lookups + the occasional walk
    // against the paging-off baseline measured above; budget: <= 5%.
    double vm_overhead_pct = 0.0;
    {
        SimConfig vmc = det;
        vmc.vm.enabled = true;
        runWorkload("gcc", vmc, kForever); // warm pass
        double vm_s = timeSeconds(
            [&] { runWorkload("gcc", vmc, kForever); });
        if (det_s > 0.0)
            vm_overhead_pct = (vm_s / det_s - 1.0) * 100.0;
        if (vm_overhead_pct < 0.0)
            vm_overhead_pct = 0.0; // run-to-run noise
    }

    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }

    char host[256] = "unknown";
    gethostname(host, sizeof host - 1);
    char fp[32];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(
                      configFingerprint(det)));

    char buf[1024];
    std::snprintf(buf, sizeof buf,
                  "{\"bench\":\"micro_simspeed\","
                  "\"meta\":{\"git_sha\":\"%s\","
                  "\"date\":\"%s\","
                  "\"host\":\"%s\","
                  "\"config_fingerprint\":\"%s\"},"
                  "\"detailed_mips\":%.4f,"
                  "\"functional_mips\":%.4f,"
                  "\"sampled_speedup\":%.2f,"
                  "\"smt_detailed_mips\":%.4f,"
                  "\"profiler_overhead_pct\":%.2f,"
                  "\"isolate_overhead_pct\":%.2f,"
                  "\"cache_miss_overhead_pct\":%.2f,"
                  "\"cache_hit_speedup\":%.2f,"
                  "\"vm_overhead_pct\":%.2f",
                  MLPWIN_GIT_SHA, utcNow().c_str(),
                  jsonEscape(host).c_str(), fp, detailed_mips,
                  functional_mips, sampled_speedup,
                  smt_detailed_mips, profiler_overhead_pct,
                  isolate_overhead_pct, cache_miss_overhead_pct,
                  cache_hit_speedup, vm_overhead_pct);

    // Host-time share of each pipeline stage (of the stage total, not
    // wall time: stage spans are sampled 1 cycle in 64, so their
    // ratios are meaningful while their absolute sum is not).
    std::string out(buf);
    double stage_total = 0.0;
    for (std::size_t i = 0; i < kFirstCoarseSpan; ++i)
        stage_total += static_cast<double>(stage_agg[i].totalNs);
    out += ",\"host_stage_shares\":{";
    bool first = true;
    for (std::size_t i = 0; i < kFirstCoarseSpan; ++i) {
        if (!stage_agg[i].count)
            continue;
        if (!first)
            out += ',';
        first = false;
        char cell[96];
        std::snprintf(cell, sizeof cell, "\"%s\":%.4f",
                      spanKindName(static_cast<SpanKind>(i)),
                      stage_total
                          ? static_cast<double>(stage_agg[i].totalNs) /
                                stage_total
                          : 0.0);
        out += cell;
    }
    out += "}}\n";
    os << out;
    std::printf("%s", out.c_str());
    return 0;
}

} // namespace

BENCHMARK(BM_SimGccBase)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimGccResizing)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimLibquantumBase)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimLibquantumResizing)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimLibquantumRunahead)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimGccBaseSampled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig07CellGccDetailed)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig07CellGccSampled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimLibquantumResizingSampled)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EmulatorStep);
BENCHMARK(BM_FunctionalFastForward);
BENCHMARK(BM_CacheLookupHit);
BENCHMARK(BM_BranchPredict);

int
main(int argc, char **argv)
{
    // --bench-json FILE: skip the google-benchmark run and write the
    // one-shot throughput summary instead (the CI artifact path).
    for (int i = 1; i + 1 < argc; ++i)
        if (!std::strcmp(argv[i], "--bench-json"))
            return writeBenchJson(argv[i + 1]);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
