/**
 * @file
 * Memory-latency sensitivity (extension): the paper evaluates one
 * design point (300-cycle main memory). This sweep varies the latency
 * — which is simultaneously the shrink timeout of the Fig. 5
 * algorithm — and reports the resizing model's GM speedup over the
 * base at each point.
 *
 * Expected shape: the deeper the memory wall, the more a large window
 * is worth; the speedup grows with latency on memory-intensive
 * programs and stays flat near 1.0 on compute-intensive ones.
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();
    const std::vector<std::string> progs = allWorkloadNames();
    const unsigned latencies[] = {100, 200, 300, 500};

    std::printf("==== Memory-latency sensitivity (resizing vs base) "
                "====\n");
    std::printf("%-10s %12s %12s %12s\n", "latency", "GM mem",
                "GM comp", "GM all");
    for (unsigned lat : latencies) {
        std::vector<double> mem_v, comp_v, all_v;
        for (const std::string &w : progs) {
            SimConfig base_cfg = benchConfig(ModelKind::Base, 1);
            base_cfg.mem.dram.minLatency = lat;
            base_cfg.mlp.memoryLatency = lat;
            double base = runConfig(w, base_cfg, budget).ipc;

            SimConfig res_cfg = benchConfig(ModelKind::Resizing, 1);
            res_cfg.mem.dram.minLatency = lat;
            res_cfg.mlp.memoryLatency = lat;
            double rel = runConfig(w, res_cfg, budget).ipc / base;

            all_v.push_back(rel);
            if (findWorkload(w).memIntensive)
                mem_v.push_back(rel);
            else
                comp_v.push_back(rel);
        }
        std::printf("%-10u %12.3f %12.3f %12.3f\n", lat,
                    geomean(mem_v), geomean(comp_v), geomean(all_v));
    }
    return 0;
}
