/**
 * @file
 * Reproduces paper Fig. 11: the breakdown of L2 cache lines brought
 * in — by correct-path loads, wrong-path loads, and the prefetcher,
 * each split into useful (later touched by a correct-path demand) and
 * useless — for the base and dynamic resizing models, normalized to
 * the number of lines the base model brought in.
 *
 * Expected shape: wrong-path lines are a small share even with the
 * large window (mispredicted branches are far apart relative to the
 * window in memory-intensive code); the resizing model brings in only
 * slightly more lines than the base; speculation-driven pollution is
 * limited.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "mem/cache.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

namespace
{

void
printRow(const char *label, const PollutionStats &ps, double base_total)
{
    auto idx = [](Provenance p) { return static_cast<unsigned>(p); };
    double corr_u = static_cast<double>(
        ps.useful[idx(Provenance::CorrPath)]);
    double corr_total = static_cast<double>(
        ps.brought[idx(Provenance::CorrPath)]);
    double wrong_u = static_cast<double>(
        ps.useful[idx(Provenance::WrongPath)]);
    double wrong_total = static_cast<double>(
        ps.brought[idx(Provenance::WrongPath)]);
    double pref_u = static_cast<double>(
        ps.useful[idx(Provenance::Prefetch)]);
    double pref_total = static_cast<double>(
        ps.brought[idx(Provenance::Prefetch)]);

    // Clamp: with warm-up deltas a line brought before the window can
    // turn useful inside it, leaving useful slightly above brought.
    auto useless = [](double total, double useful) {
        return std::max(0.0, total - useful);
    };
    std::printf("%-10s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                label, corr_u / base_total,
                useless(corr_total, corr_u) / base_total,
                wrong_u / base_total,
                useless(wrong_total, wrong_u) / base_total,
                pref_u / base_total,
                useless(pref_total, pref_u) / base_total,
                (corr_total + wrong_total + pref_total) / base_total);
}

double
totalBrought(const PollutionStats &ps)
{
    return static_cast<double>(
        ps.brought[static_cast<unsigned>(Provenance::CorrPath)] +
        ps.brought[static_cast<unsigned>(Provenance::WrongPath)] +
        ps.brought[static_cast<unsigned>(Provenance::Prefetch)]);
}

} // namespace

int
main()
{
    const std::uint64_t budget = instBudget();

    std::printf("==== Fig. 11: L2 lines brought, by provenance x "
                "usefulness (normalized to base total) ====\n");
    std::printf("%-12s %-10s %9s %9s %9s %9s %9s %9s %9s\n", "program",
                "model", "corr+", "corr-", "wrong+", "wrong-", "pref+",
                "pref-", "total");

    for (const std::string &w : allWorkloadNames()) {
        SimResult base = runModel(w, ModelKind::Base, 1, budget);
        SimResult res = runModel(w, ModelKind::Resizing, 1, budget);
        double base_total = totalBrought(base.l2Pollution);
        if (base_total == 0.0)
            base_total = 1.0;
        std::printf("%-12s ", w.c_str());
        printRow("base", base.l2Pollution, base_total);
        std::printf("%-12s ", "");
        printRow("resizing", res.l2Pollution, base_total);
    }
    std::printf("\n(+ = later touched by a correct-path load; "
                "- = never touched)\n");
    return 0;
}
