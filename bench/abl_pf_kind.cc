/**
 * @file
 * Prefetcher-algorithm ablation (extension): the paper chose a stride
 * prefetcher because "commercial processors use a stream or stride
 * prefetcher" — this bench runs the resizing model with each of the
 * two (and with none) and reports per-category means normalized to
 * the stride default.
 *
 * Expected shape: the two algorithms are close on pure streams (both
 * detect them); stride wins on strided-but-not-unit patterns and on
 * PC-stable gathers; neither helps irregular misses — which is where
 * the resizing window earns its keep, so the *resizing gain over base
 * survives under every prefetcher choice*.
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();
    const std::vector<std::string> progs = allWorkloadNames();

    struct Variant
    {
        const char *label;
        bool enabled;
        PrefetcherKind kind;
    };
    const Variant variants[] = {
        {"stride", true, PrefetcherKind::Stride},
        {"stream", true, PrefetcherKind::Stream},
        {"none", false, PrefetcherKind::Stride},
    };

    std::vector<Series> cols;
    std::map<std::string, double> ref; // stride-resizing IPC.
    for (const Variant &v : variants) {
        Series s{v.label, {}};
        for (const std::string &w : progs) {
            SimConfig cfg = benchConfig(ModelKind::Resizing, 1);
            cfg.mem.prefetcher.enabled = v.enabled;
            cfg.mem.prefetcher.kind = v.kind;
            double ipc = runConfig(w, cfg, budget).ipc;
            if (std::string(v.label) == "stride")
                ref[w] = ipc;
            s.byWorkload[w] = ipc / ref[w];
        }
        cols.push_back(std::move(s));
    }

    printTable("Prefetcher algorithm under resizing "
               "(IPC vs stride default)", progs, cols);
    printGeomeans(progs, cols);
    return 0;
}
