/**
 * @file
 * Reproduces paper Table 3: the average committed-load latency of
 * every suite program on the base processor, and the derived
 * memory-/compute-intensive classification (threshold: 10 cycles).
 *
 * Expected shape: the programs named after the paper's
 * memory-intensive set measure >= 10 cycles; the compute-intensive
 * set measures below it. Absolute values differ from the paper (our
 * kernels imitate, not replay, SPEC), but the ordering — libquantum
 * and mcf near the top, bzip2/gamess/tonto near the bottom — holds.
 */

#include <cstdio>

#include "common/bench_util.hh"

using namespace mlpwin;
using namespace mlpwin::bench;

int
main()
{
    const std::uint64_t budget = instBudget();

    std::printf("==== Table 3: average load latency (base) ====\n");
    std::printf("%-12s %5s %12s   %-18s %s\n", "program", "type",
                "latency", "measured class", "expected class");
    unsigned agree = 0, total = 0;
    for (const WorkloadSpec &spec : spec2006Suite()) {
        SimResult r = runModel(spec.name, ModelKind::Base, 1, budget);
        bool measured_mem = r.avgLoadLatency >= 10.0;
        ++total;
        if (measured_mem == spec.memIntensive)
            ++agree;
        std::printf("%-12s %5s %12.1f   %-18s %s%s\n",
                    spec.name.c_str(), spec.isInt ? "int" : "fp",
                    r.avgLoadLatency,
                    measured_mem ? "memory-intensive"
                                 : "compute-intensive",
                    spec.memIntensive ? "memory-intensive"
                                      : "compute-intensive",
                    measured_mem == spec.memIntensive ? ""
                                                      : "  (MISMATCH)");
    }
    std::printf("\nclassification agreement with the paper: %u/%u\n",
                agree, total);
    return 0;
}
