#include "common/bench_util.hh"

#include <cstdio>
#include <cstdlib>

#include "common/parse.hh"
#include "common/stats.hh"

namespace mlpwin
{
namespace bench
{

namespace
{

/** Strictly parse an env-var override; reject garbage loudly. */
std::uint64_t
envBudget(const char *var, std::uint64_t fallback)
{
    const char *env = std::getenv(var);
    if (!env)
        return fallback;
    std::uint64_t v = 0;
    if (!parseU64(env, v)) {
        std::fprintf(stderr, "%s: not a number: '%s'\n", var, env);
        std::exit(2);
    }
    return v;
}

} // namespace

std::uint64_t
instBudget()
{
    return envBudget("MLPWIN_BENCH_INSTS", kDefaultBudget);
}

std::uint64_t
warmupBudget()
{
    return envBudget("MLPWIN_BENCH_WARMUP", kDefaultWarmup);
}

unsigned
benchJobs()
{
    std::uint64_t v = envBudget("MLPWIN_BENCH_JOBS", 0);
    if (v > 1024) {
        std::fprintf(stderr,
                     "MLPWIN_BENCH_JOBS: implausible thread count "
                     "%llu\n",
                     static_cast<unsigned long long>(v));
        std::exit(2);
    }
    return static_cast<unsigned>(v);
}

std::string
telemetryDir()
{
    const char *env = std::getenv("MLPWIN_BENCH_TELEMETRY_DIR");
    return env ? std::string(env) : std::string();
}

Cycle
telemetryInterval()
{
    std::uint64_t v = envBudget("MLPWIN_BENCH_TELEMETRY_INTERVAL",
                                kDefaultTelemetryInterval);
    if (v == 0) {
        std::fprintf(stderr,
                     "MLPWIN_BENCH_TELEMETRY_INTERVAL: must be >= 1\n");
        std::exit(2);
    }
    return v;
}

SimConfig
benchConfig(ModelKind model, unsigned level)
{
    SimConfig cfg;
    cfg.model = model;
    cfg.fixedLevel = level;
    cfg.warmupInsts = warmupBudget();
    // Warm functionally: same architectural state at the measurement
    // boundary, at emulator speed instead of pipeline speed.
    cfg.functionalWarmup = true;
    cfg.warmDataCaches = true;
    return cfg;
}

SimResult
runModel(const std::string &workload, ModelKind model, unsigned level,
         std::uint64_t max_insts)
{
    return runConfig(workload, benchConfig(model, level), max_insts);
}

SimResult
runConfig(const std::string &workload, const SimConfig &cfg,
          std::uint64_t max_insts)
{
    SimConfig c = cfg;
    c.maxInsts = max_insts;
    SimResult r;
    std::string dir = telemetryDir();
    if (dir.empty()) {
        r = runWorkload(workload, c, kForever);
    } else {
        // Route through the experiment runner's telemetry path so a
        // single-cell run produces the same per-job files a matrix
        // would. Repeated runs of the same workload/model cell
        // overwrite their files; last run wins.
        exp::ExperimentSpec spec;
        spec.workloads = {workload};
        exp::ModelSpec m;
        m.model = c.model;
        m.level = c.fixedLevel;
        spec.models = {m};
        spec.base = c;
        spec.iterations = kForever;
        spec.telemetryDir = dir;
        spec.telemetryInterval = telemetryInterval();
        r = exp::ExperimentRunner(1, false).run(spec).front();
    }
    progress(workload + " [" + r.model + "]: ipc " +
             std::to_string(r.ipc));
    return r;
}

std::vector<SimResult>
runMatrix(const std::vector<std::string> &workloads,
          const std::vector<exp::ModelSpec> &models,
          std::uint64_t max_insts)
{
    exp::ExperimentSpec spec;
    spec.workloads = workloads;
    spec.models = models;
    spec.base = benchConfig(ModelKind::Base, 1);
    spec.base.maxInsts = max_insts;
    spec.iterations = kForever;
    spec.telemetryDir = telemetryDir();
    spec.telemetryInterval = telemetryInterval();

    // Contain per-cell failures: a wedged or crashing cell leaves a
    // default (zeroed) SimResult in its slot — tables print its IPC
    // as 0 and geomeans skip it — instead of killing the whole
    // figure run. The failure details still land on stderr.
    exp::BatchOutcome batch =
        exp::ExperimentRunner(benchJobs()).runAll(spec);
    std::size_t bad = 0;
    for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
        const exp::JobOutcome &o = batch.outcomes[i];
        if (o.state == exp::JobState::Ok)
            continue;
        ++bad;
        progress("FAILED " + exp::jobKey(batch.jobs[i]) + " (" +
                 exp::jobStateName(o.state) + "): " + o.errorDetail);
    }
    if (bad)
        progress(std::to_string(bad) +
                 " cell(s) failed; their table entries are zero");

    std::vector<SimResult> results;
    results.reserve(batch.outcomes.size());
    for (exp::JobOutcome &o : batch.outcomes)
        results.push_back(std::move(o.result));
    return results;
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const WorkloadSpec &w : spec2006Suite())
        names.push_back(w.name);
    return names;
}

void
progress(const std::string &msg)
{
    std::fprintf(stderr, "  .. %s\n", msg.c_str());
}

void
printHeader(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

void
printTable(const std::string &title,
           const std::vector<std::string> &workloads,
           const std::vector<Series> &series)
{
    printHeader(title);
    std::printf("%-12s", "program");
    for (const Series &s : series)
        std::printf(" %10s", s.label.c_str());
    std::printf("\n");
    for (const std::string &w : workloads) {
        std::printf("%-12s", w.c_str());
        for (const Series &s : series) {
            auto it = s.byWorkload.find(w);
            if (it == s.byWorkload.end())
                std::printf(" %10s", "-");
            else
                std::printf(" %10.3f", it->second);
        }
        std::printf("\n");
    }
}

void
printGeomeans(const std::vector<std::string> &workloads,
              const std::vector<Series> &series)
{
    auto gm_row = [&](const char *label, bool mem, bool comp) {
        std::printf("%-12s", label);
        for (const Series &s : series) {
            std::vector<double> vals;
            for (const std::string &w : workloads) {
                const WorkloadSpec &spec = findWorkload(w);
                if ((spec.memIntensive && !mem) ||
                    (!spec.memIntensive && !comp))
                    continue;
                auto it = s.byWorkload.find(w);
                if (it != s.byWorkload.end() && it->second > 0.0)
                    vals.push_back(it->second);
            }
            if (vals.empty())
                std::printf(" %10s", "-");
            else
                std::printf(" %10.3f", geomean(vals));
        }
        std::printf("\n");
    };
    gm_row("GM mem", true, false);
    gm_row("GM comp", false, true);
    gm_row("GM all", true, true);
}

} // namespace bench
} // namespace mlpwin
