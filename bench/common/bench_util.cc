#include "common/bench_util.hh"

#include <cstdio>
#include <cstdlib>

#include "common/stats.hh"

namespace mlpwin
{
namespace bench
{

std::uint64_t
instBudget()
{
    if (const char *env = std::getenv("MLPWIN_BENCH_INSTS"))
        return std::strtoull(env, nullptr, 10);
    return kDefaultBudget;
}

std::uint64_t
warmupBudget()
{
    if (const char *env = std::getenv("MLPWIN_BENCH_WARMUP"))
        return std::strtoull(env, nullptr, 10);
    return kDefaultWarmup;
}

SimConfig
benchConfig(ModelKind model, unsigned level)
{
    SimConfig cfg;
    cfg.model = model;
    cfg.fixedLevel = level;
    cfg.warmupInsts = warmupBudget();
    cfg.warmDataCaches = true;
    return cfg;
}

SimResult
runModel(const std::string &workload, ModelKind model, unsigned level,
         std::uint64_t max_insts)
{
    return runConfig(workload, benchConfig(model, level), max_insts);
}

SimResult
runConfig(const std::string &workload, const SimConfig &cfg,
          std::uint64_t max_insts)
{
    SimConfig c = cfg;
    c.maxInsts = max_insts;
    SimResult r = runWorkload(workload, c, kForever);
    progress(workload + " [" + r.model + "]: ipc " +
             std::to_string(r.ipc));
    return r;
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const WorkloadSpec &w : spec2006Suite())
        names.push_back(w.name);
    return names;
}

void
progress(const std::string &msg)
{
    std::fprintf(stderr, "  .. %s\n", msg.c_str());
}

void
printHeader(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

void
printTable(const std::string &title,
           const std::vector<std::string> &workloads,
           const std::vector<Series> &series)
{
    printHeader(title);
    std::printf("%-12s", "program");
    for (const Series &s : series)
        std::printf(" %10s", s.label.c_str());
    std::printf("\n");
    for (const std::string &w : workloads) {
        std::printf("%-12s", w.c_str());
        for (const Series &s : series) {
            auto it = s.byWorkload.find(w);
            if (it == s.byWorkload.end())
                std::printf(" %10s", "-");
            else
                std::printf(" %10.3f", it->second);
        }
        std::printf("\n");
    }
}

void
printGeomeans(const std::vector<std::string> &workloads,
              const std::vector<Series> &series)
{
    auto gm_row = [&](const char *label, bool mem, bool comp) {
        std::printf("%-12s", label);
        for (const Series &s : series) {
            std::vector<double> vals;
            for (const std::string &w : workloads) {
                const WorkloadSpec &spec = findWorkload(w);
                if ((spec.memIntensive && !mem) ||
                    (!spec.memIntensive && !comp))
                    continue;
                auto it = s.byWorkload.find(w);
                if (it != s.byWorkload.end() && it->second > 0.0)
                    vals.push_back(it->second);
            }
            if (vals.empty())
                std::printf(" %10s", "-");
            else
                std::printf(" %10.3f", geomean(vals));
        }
        std::printf("\n");
    };
    gm_row("GM mem", true, false);
    gm_row("GM comp", false, true);
    gm_row("GM all", true, true);
}

} // namespace bench
} // namespace mlpwin
