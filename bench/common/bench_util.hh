/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: run
 * matrices over (workload x model), normalized-IPC tables, and
 * geometric-mean rows, printed in the layout of the paper's plots.
 */

#ifndef MLPWIN_BENCH_BENCH_UTIL_HH
#define MLPWIN_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/experiment.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace mlpwin
{
namespace bench
{

/** Iteration count meaning "run until the instruction budget". */
constexpr std::uint64_t kForever = 1ULL << 40;

/** Default committed-instruction budget per run. */
constexpr std::uint64_t kDefaultBudget = 300000;

/**
 * Default warm-up instructions before the measurement window — the
 * one shared literal (sample/sample_config.hh) the CLI tools use too.
 */
constexpr std::uint64_t kDefaultWarmup = kDefaultWarmupInsts;

/** Budget override from the environment (MLPWIN_BENCH_INSTS). */
std::uint64_t instBudget();

/** Warm-up override from the environment (MLPWIN_BENCH_WARMUP). */
std::uint64_t warmupBudget();

/**
 * Worker-thread override from the environment (MLPWIN_BENCH_JOBS).
 * Defaults to 0 (one worker per hardware thread).
 */
unsigned benchJobs();

/**
 * Telemetry output directory from the environment
 * (MLPWIN_BENCH_TELEMETRY_DIR). When set, every bench run (both
 * runConfig and runMatrix) additionally writes
 * DIR/<workload>.<model>.telemetry.jsonl (interval time series —
 * window level vs. time, the raw data behind Fig. 8) and
 * DIR/<workload>.<model>.trace.json (event timeline). Empty = off.
 */
std::string telemetryDir();

/**
 * Telemetry sampling interval in cycles from the environment
 * (MLPWIN_BENCH_TELEMETRY_INTERVAL, default 10000).
 */
Cycle telemetryInterval();

/**
 * Default benchmark configuration: warm instruction and data caches,
 * warm-up window, and the given model/level.
 */
SimConfig benchConfig(ModelKind model, unsigned level);

/** Run one workload under one model/level with the default config. */
SimResult runModel(const std::string &workload, ModelKind model,
                   unsigned level, std::uint64_t max_insts);

/** Run one workload under an explicit configuration. */
SimResult runConfig(const std::string &workload, const SimConfig &cfg,
                    std::uint64_t max_insts);

/**
 * Run the full (workloads x models) matrix in parallel across
 * MLPWIN_BENCH_JOBS worker threads (default: all hardware threads),
 * each cell under the default bench configuration. Results are in
 * workload-major submission order: result of workloads[w] under
 * models[m] is at index w * models.size() + m — bit-identical to a
 * serial run regardless of job count.
 */
std::vector<SimResult> runMatrix(
    const std::vector<std::string> &workloads,
    const std::vector<exp::ModelSpec> &models,
    std::uint64_t max_insts);

/** All 28 suite program names, paper Table 3 order. */
std::vector<std::string> allWorkloadNames();

/** Progress note to stderr (stdout carries only the tables). */
void progress(const std::string &msg);

/** Named IPC series over a set of workloads (rows). */
struct Series
{
    std::string label;
    std::map<std::string, double> byWorkload;
};

/** Print a table: workloads as rows, series as columns. */
void printTable(const std::string &title,
                const std::vector<std::string> &workloads,
                const std::vector<Series> &series);

/**
 * Append GM rows (GM mem / GM comp / GM all over the *full* suite
 * subset present in the series) to a printed table.
 */
void printGeomeans(const std::vector<std::string> &workloads,
                   const std::vector<Series> &series);

/** Header helper. */
void printHeader(const std::string &title);

} // namespace bench
} // namespace mlpwin

#endif // MLPWIN_BENCH_BENCH_UTIL_HH
